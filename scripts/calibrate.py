"""Calibration report: measured vs paper targets for every artefact."""
from repro import build_scenario, run_study

PAPER_TABLE1 = {
    "AZ": 74.39, "DZ": 49.39, "EG": 70.41, "RW": 62.30, "UG": 75.45,
    "AR": 61.48, "RU": 8.00, "LK": 9.43, "TH": 59.05, "AE": 33.50,
    "GB": 38.65, "AU": 7.06, "CA": 0.00, "IN": 1.06, "JP": 22.71,
    "JO": 54.37, "NZ": 83.50, "PK": 65.73, "QA": 73.19, "SA": 71.43,
    "TW": 7.63, "US": 0.00, "LB": 20.24,
}

sc = build_scenario()
out = run_study(sc)

print("=== Table 1 combined non-local % (measured vs paper) ===")
for row in out.prevalence().per_country():
    paper = PAPER_TABLE1[row.country_code]
    flag = "" if abs(row.combined_pct - paper) < 12 else "  <<<"
    print(f"{row.country_code}: meas={row.combined_pct:5.1f} paper={paper:5.1f} "
          f"(reg {row.regional_pct:.0f} gov {row.government_pct:.0f}){flag}")
reg = out.prevalence().regional_mean_and_stdev()
gov = out.prevalence().government_mean_and_stdev()
print(f"reg mean {reg['mean']:.1f} sd {reg['stdev']:.1f} (paper 46.2/33.8); "
      f"gov mean {gov['mean']:.1f} sd {gov['stdev']:.1f} (paper 40.2/31.5); "
      f"pearson {out.prevalence().regional_government_correlation():.2f} (paper 0.89)")

print("\n=== Fig 5 destination shares (paper FR 43, GB 24, DE 23, AU 23, KE 14, US 5) ===")
shares = out.flows().destination_shares()
print({k: round(v, 1) for k, v in list(shares.items())[:14]})
print("src counts (paper FR 15, US 15, DE 13, GB 12):",
      dict(list(out.flows().source_count_per_destination().items())[:8]))
print("AU w/o NZ:", round(out.flows().destination_shares(exclude_sources=["NZ"]).get("AU", 0), 1), "(paper 11)")
print("MY w/o TH:", round(out.flows().destination_shares(exclude_sources=["TH"]).get("MY", 0), 2), "(paper 0.16)")

print("\n=== Fig 7 hosting (paper KE 210, DE 172, FR 92, MY 89, US 16) ===")
print(dict(list(out.hosting().domains_per_destination().items())[:14]))

print("\n=== Fig 8 orgs (paper ~70 orgs; US 50%, GB 10%, NL 4%, IL 4%) ===")
orgs = out.organizations()
print("n:", len(orgs.observed_organizations()),
      "homes:", {k: round(v) for k, v in list(orgs.home_country_distribution().items())[:6]})
print("top:", orgs.top_organizations(6))
print("cloud-hosted tracker hosts:", sum(len(v) for v in orgs.cloud_hosted_trackers().values()))
print("KE cloud-hosted:", len(orgs.cloud_hosted_in_country("KE")))

print("\n=== Fig 6 continents (Europe hub; Africa no inward) ===")
c = out.continents()
print("hub:", c.central_hub(), "| africa inward:", c.inward_flow("Africa"),
      "| oceania stays within:", round(c.share_staying_within("Oceania"), 2))

print("\n=== Funnel (paper 26K -> 14K nonlocal -> 6.1K latency -> 4.7K rdns; trackers 2.7K) ===")
f = out.funnel()
print(f"total {f.total_hosts}, nonlocal {f.nonlocal_candidates}, "
      f"after latency {f.after_latency_constraints}, after rdns {f.after_rdns}, "
      f"dest traces {f.destination_traceroutes}")

print("\n=== First party (paper 575 sites w/ nonlocal; 23 first-party, ~50% Google) ===")
fp = out.first_party()
print("sites:", fp.sites_with_nonlocal(), "fp:", len(fp.first_party_sites()), fp.owner_breakdown())

print("\n=== Fig 4 per-site counts (paper JO 15.7+-12, EG 12.1+-8.5, RW 13.3+-11.4; AR/QA 1-3) ===")
pw = out.per_website()
for cc in ("JO", "EG", "RW", "AR", "QA", "GB", "AU"):
    d = pw.distribution(cc)
    if d.box:
        print(f"{cc}: mean {d.box.mean:.1f} sd {d.box.stdev:.1f} median {d.box.median:.0f}")

print("\n=== Fig 2b load success (paper JP 64, SA 56, rest >=86) ===")
print({cc: round(ds.load_success_pct()) for cc, ds in out.datasets.items()})

print("\n=== Policy (weak negative trend) ===")
print("spearman:", round(out.policy().strictness_correlation(), 2))

print("\norigins:", out.source_trace_origins)
