"""Study-level checkpoint/resume — the interruption-equivalence proof.

A study interrupted after K countries and resumed from its checkpoint
directory must produce a ``StudyOutcome`` — datasets, verdicts, joined
records, summary, funnel, and the journal sans timings — byte-identical
to an uninterrupted run, for every backend and worker count.  Completed
countries are persisted atomically by the worker the moment they land,
so even a crash mid-fan-out (simulated here with an injected fault
under ``on_error="raise"``) loses at most the in-flight countries.
"""

from __future__ import annotations

import pickle

import pytest

from repro import FaultInjector, run_study
from repro.exec import CountryExecutionError, StudyCheckpoint
from tests.conftest import SMALL_COUNTRIES
from tests.test_exec_equivalence import assert_outcomes_identical

#: Countries completed before the simulated interruption.
INTERRUPT_AFTER = 2


@pytest.fixture(scope="module")
def uninterrupted(scenario):
    """The traced fault-free reference run over the small country set."""
    return run_study(scenario, countries=SMALL_COUNTRIES, trace=True)


def assert_resume_equivalent(uninterrupted, resumed) -> None:
    assert_outcomes_identical(uninterrupted, resumed)
    assert resumed.journal.dumps(timings=False) == uninterrupted.journal.dumps(
        timings=False
    )


class TestResumeEquivalence:
    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1), ("thread", 1), ("thread", 4), ("process", 1), ("process", 4),
    ])
    def test_interrupt_then_resume_reproduces_uninterrupted_run(
        self, scenario, uninterrupted, tmp_path, backend, jobs
    ):
        checkpoint_dir = tmp_path / "ckpt"
        first = run_study(
            scenario, countries=SMALL_COUNTRIES[:INTERRUPT_AFTER],
            checkpoint_dir=checkpoint_dir, trace=True, backend=backend, jobs=jobs,
        )
        assert sorted(first.datasets) == sorted(SMALL_COUNTRIES[:INTERRUPT_AFTER])
        resumed = run_study(
            scenario, countries=SMALL_COUNTRIES, checkpoint_dir=checkpoint_dir,
            resume=True, trace=True, backend=backend, jobs=jobs,
        )
        assert_resume_equivalent(uninterrupted, resumed)
        # The resumed countries were loaded, not re-measured.
        resumed_events = resumed.journal.events("country_resumed")
        assert [r["country"] for r in resumed_events] == SMALL_COUNTRIES[:INTERRUPT_AFTER]
        assert resumed.journal.run_record["resumed"] == SMALL_COUNTRIES[:INTERRUPT_AFTER]

    def test_crash_mid_study_checkpoints_completed_countries(
        self, scenario, uninterrupted, tmp_path
    ):
        checkpoint_dir = tmp_path / "ckpt"
        crash_country = SMALL_COUNTRIES[INTERRUPT_AFTER]
        with pytest.raises(CountryExecutionError) as excinfo:
            run_study(
                scenario, countries=SMALL_COUNTRIES, checkpoint_dir=checkpoint_dir,
                trace=True, fault_injector=FaultInjector({crash_country: 99}),
            )
        assert excinfo.value.country_code == crash_country
        # Serial execution completed (and persisted) everything before the crash.
        checkpoint = StudyCheckpoint(checkpoint_dir)
        assert checkpoint.completed_countries() == sorted(
            SMALL_COUNTRIES[:INTERRUPT_AFTER]
        )
        resumed = run_study(
            scenario, countries=SMALL_COUNTRIES, checkpoint_dir=checkpoint_dir,
            resume=True, trace=True,
        )
        assert_resume_equivalent(uninterrupted, resumed)

    def test_fully_checkpointed_study_resumes_without_any_work(
        self, scenario, uninterrupted, tmp_path
    ):
        checkpoint_dir = tmp_path / "ckpt"
        run_study(scenario, countries=SMALL_COUNTRIES,
                  checkpoint_dir=checkpoint_dir, trace=True)
        resumed = run_study(
            scenario, countries=SMALL_COUNTRIES, checkpoint_dir=checkpoint_dir,
            resume=True, trace=True,
        )
        assert_resume_equivalent(uninterrupted, resumed)
        assert len(resumed.journal.events("country_resumed")) == len(SMALL_COUNTRIES)

    def test_resume_without_checkpoint_dir_is_rejected(self, scenario):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_study(scenario, countries=["CA"], resume=True)


class TestCheckpointStore:
    def test_one_atomic_file_per_country(self, scenario, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        run_study(scenario, countries=["CA", "NZ"], checkpoint_dir=checkpoint_dir)
        names = sorted(p.name for p in checkpoint_dir.iterdir())
        # Columnar transport (the default) persists columnar frames; the
        # run's metrics snapshot lands beside the checkpoints.
        assert names == ["CA.run.col", "NZ.run.col", "metrics.json"]
        # No temp files left behind by the atomic writer.
        assert not [n for n in names if n.startswith(".")]

    def test_pickle_transport_writes_pickle_files(self, scenario, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        run_study(scenario, countries=["CA"], checkpoint_dir=checkpoint_dir,
                  transport="pickle")
        names = sorted(p.name for p in checkpoint_dir.iterdir())
        assert names == ["CA.run.pkl", "metrics.json"]

    def test_corrupt_run_file_is_quarantined_and_remeasured(
        self, scenario, uninterrupted, tmp_path
    ):
        checkpoint_dir = tmp_path / "ckpt"
        run_study(scenario, countries=SMALL_COUNTRIES,
                  checkpoint_dir=checkpoint_dir, trace=True)
        (checkpoint_dir / "CA.run.col").write_bytes(b"CRUN not a frame")
        resumed = run_study(
            scenario, countries=SMALL_COUNTRIES, checkpoint_dir=checkpoint_dir,
            resume=True, trace=True,
        )
        assert_resume_equivalent(uninterrupted, resumed)
        assert (checkpoint_dir / "CA.run.col.corrupt").exists()
        # CA was re-measured, so it is absent from the resumed set.
        assert "CA" not in [
            r["country"] for r in resumed.journal.events("country_resumed")
        ]

    def test_wrong_country_payload_is_quarantined(self, scenario, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        run_study(scenario, countries=["CA"], checkpoint_dir=checkpoint_dir)
        checkpoint = StudyCheckpoint(checkpoint_dir)
        run = checkpoint.load("CA")
        # A stale rename: NZ's slot holding CA's run must not be trusted.
        (checkpoint_dir / "NZ.run.pkl").write_bytes(pickle.dumps(run))
        assert checkpoint.load("NZ") is None
        assert (checkpoint_dir / "NZ.run.pkl.corrupt").exists()

    def test_missing_directory_reads_as_empty(self, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path / "never-created")
        assert checkpoint.completed_countries() == []
        assert checkpoint.load("CA") is None
