"""Validation utilities, scenario self-check, stub resolver, summary."""

import json

import pytest

from repro.core.analysis.summary import summarize_study
from repro.core.geoloc.validation import (
    ValidationCounts,
    misclassified_servers,
    validate_against_truth,
)
from repro.netsim.dns import NXDomain
from repro.netsim.geography import default_registry
from repro.netsim.resolver import StubResolver
from repro.worldgen.selfcheck import check_scenario

from tests.test_servers_dns import make_deployment

REG = default_registry()


class TestValidationCounts:
    def test_precision_recall_f1(self):
        counts = ValidationCounts(true_positive=8, false_positive=2, false_negative=2)
        assert counts.precision == pytest.approx(0.8)
        assert counts.recall == pytest.approx(0.8)
        assert counts.f1 == pytest.approx(0.8)

    def test_undefined_when_empty(self):
        counts = ValidationCounts()
        assert counts.precision is None
        assert counts.recall is None
        assert counts.f1 is None

    def test_merge(self):
        a = ValidationCounts(true_positive=1, true_negative=2)
        b = ValidationCounts(false_positive=3, false_negative=4)
        merged = a.merged_with(b)
        assert merged.total == 10

    def test_full_study_validation(self, scenario, study_small):
        counts = validate_against_truth(scenario.world, study_small.geolocations)
        assert counts.precision == 1.0
        assert counts.total > 200
        assert misclassified_servers(scenario.world, study_small.geolocations) == []


class TestSelfCheck:
    def test_default_scenario_healthy(self, scenario):
        assert check_scenario(scenario) == []

    def test_detects_corrupted_target(self, scenario):
        targets = scenario.targets["TH"]
        original = list(targets.regional)
        targets.regional[0] = "not-in-catalogue.example"
        try:
            problems = check_scenario(scenario)
            assert any("missing from catalogue" in p for p in problems)
        finally:
            targets.regional[:] = original

    def test_detects_bad_volunteer_ip(self, scenario):
        volunteer = scenario.volunteers["TH"]
        original = volunteer.ip
        volunteer.ip = "8.8.8.8"
        try:
            problems = check_scenario(scenario)
            assert any("not in served space" in p for p in problems)
        finally:
            volunteer.ip = original


class TestStubResolver:
    @pytest.fixture()
    def resolver(self):
        from repro.netsim.dns import GeoDNSResolver

        upstream = GeoDNSResolver()
        deployment = make_deployment(["FR", "SG"], org_name="AdOrg", domains=("adorg.net",))
        upstream.register("adorg.net", deployment)
        return StubResolver(upstream=upstream, client_city=REG.country("TH").capital)

    def test_caches_positive_answers(self, resolver):
        first = resolver.resolve("px.adorg.net")
        second = resolver.resolve("px.adorg.net")
        assert first.address == second.address
        assert resolver.stats == (1, 1)

    def test_ttl_expiry_refetches(self, resolver):
        resolver.resolve("px.adorg.net")
        resolver.advance(301)  # past the 300 s default TTL
        resolver.resolve("px.adorg.net")
        assert resolver.stats == (0, 2)

    def test_negative_caching(self, resolver):
        with pytest.raises(NXDomain):
            resolver.resolve("nope.example")
        with pytest.raises(NXDomain):
            resolver.resolve("nope.example")
        assert resolver.stats == (1, 1)

    def test_negative_ttl_expiry(self, resolver):
        with pytest.raises(NXDomain):
            resolver.resolve("nope.example")
        resolver.advance(61)
        with pytest.raises(NXDomain):
            resolver.resolve("nope.example")
        assert resolver.stats == (0, 2)

    def test_flush(self, resolver):
        resolver.resolve("px.adorg.net")
        assert resolver.cached_hosts() == 1
        resolver.flush()
        assert resolver.cached_hosts() == 0

    def test_time_flows_forward(self, resolver):
        with pytest.raises(ValueError):
            resolver.advance(-1)


class TestStudySummary:
    def test_summary_headline_and_json(self, study_full):
        summary = summarize_study(study_full)
        assert summary.countries_with_foreign_trackers == 21
        assert len(summary.countries) == 23
        assert summary.central_hub_continent == "Europe"
        assert next(iter(summary.top_destinations)) == "FR"
        headline = summary.headline()
        assert "91%" in headline or "21/23" in headline
        payload = json.loads(json.dumps(summary.to_dict()))
        assert payload["funnel"]["total_hosts"] > 0

    def test_outcome_accessor(self, study_full):
        assert study_full.summary().countries == sorted(study_full.datasets)
