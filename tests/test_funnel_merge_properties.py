"""Property-based algebra of ``FunnelCounters.merged_with``.

Parallel workers hand their per-country funnels back in completion
order; the merge in ``StudyOutcome.funnel`` must therefore behave as a
commutative monoid — merge order unobservable, empty counter neutral —
for out-of-order parallel merging to be provably safe.
"""

from __future__ import annotations

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geoloc.pipeline import FunnelCounters

FIELDS = [f.name for f in dataclasses.fields(FunnelCounters)]

counts = st.integers(min_value=0, max_value=10**9)
funnels = st.builds(FunnelCounters, **{name: counts for name in FIELDS})


@settings(max_examples=200)
@given(a=funnels, b=funnels)
def test_merge_is_commutative(a: FunnelCounters, b: FunnelCounters):
    assert a.merged_with(b) == b.merged_with(a)


@settings(max_examples=200)
@given(a=funnels, b=funnels, c=funnels)
def test_merge_is_associative(a: FunnelCounters, b: FunnelCounters, c: FunnelCounters):
    assert a.merged_with(b).merged_with(c) == a.merged_with(b.merged_with(c))


@settings(max_examples=200)
@given(a=funnels)
def test_empty_counter_is_identity(a: FunnelCounters):
    empty = FunnelCounters()
    assert a.merged_with(empty) == a
    assert empty.merged_with(a) == a


@settings(max_examples=200)
@given(a=funnels, b=funnels)
def test_merge_is_pure(a: FunnelCounters, b: FunnelCounters):
    """Merging never mutates its operands (workers may share them)."""
    a_before, b_before = dataclasses.replace(a), dataclasses.replace(b)
    a.merged_with(b)
    assert a == a_before
    assert b == b_before


@settings(max_examples=200)
@given(a=funnels, b=funnels)
def test_every_field_adds(a: FunnelCounters, b: FunnelCounters):
    """The merge is field-wise addition — no counter is dropped, so the
    dataclass can grow fields only if ``merged_with`` grows with it."""
    merged = a.merged_with(b)
    for name in FIELDS:
        assert getattr(merged, name) == getattr(a, name) + getattr(b, name), name


@settings(max_examples=200)
@given(parts=st.lists(funnels, min_size=0, max_size=8))
def test_fold_order_unobservable(parts):
    """Any fold order over a worker-result list yields the same total —
    exactly what the parallel merge relies on."""
    forward = FunnelCounters()
    for funnel in parts:
        forward = forward.merged_with(funnel)
    backward = FunnelCounters()
    for funnel in reversed(parts):
        backward = backward.merged_with(funnel)
    assert forward == backward


def test_derived_stages_consistent_after_merge():
    a = FunnelCounters(total_hosts=10, nonlocal_candidates=8, discarded_source=2,
                       discarded_destination=1, discarded_rdns=1, verified_nonlocal=4)
    b = FunnelCounters(total_hosts=7, nonlocal_candidates=5, discarded_source=1,
                       discarded_destination=0, discarded_rdns=2, verified_nonlocal=2)
    merged = a.merged_with(b)
    assert merged.after_latency_constraints == (
        a.after_latency_constraints + b.after_latency_constraints
    )
    assert merged.after_rdns == a.after_rdns + b.after_rdns
    assert merged.after_rdns == merged.verified_nonlocal
