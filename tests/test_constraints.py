"""Geolocation constraints: SOL, the 80 % rule, destination, reverse DNS."""

import math

import pytest

from repro.core.gamma.parsers import NormalizedHop, NormalizedTraceroute
from repro.core.geoloc.constraints import (
    ConstraintStatus,
    DestinationConstraint,
    ReverseDNSConstraint,
    SourceConstraint,
    adjusted_latency_ms,
    round_evidence_ms,
    source_latency_floor_ms,
)
from repro.core.geoloc.latency_stats import SyntheticStatsProvider
from repro.netsim.distance import city_distance_km, min_rtt_ms
from repro.netsim.geography import default_registry
from repro.netsim.latency import LatencyModel

REG = default_registry()
MODEL = LatencyModel()
STATS = SyntheticStatsProvider("stats", MODEL, noise_range=(1.0, 1.0))  # exact


def trace(last_rtt, first_rtt=1.0, reached=True, target="5.0.0.1"):
    hops = []
    if first_rtt is not None:
        hops.append(NormalizedHop(1, "192.168.1.1", (first_rtt,)))
    hops.append(NormalizedHop(2, target if reached else "62.0.0.1", (last_rtt,)))
    return NormalizedTraceroute(target=target, reached=reached, hops=hops)


class TestAdjustedLatency:
    def test_subtracts_first_hop(self):
        assert adjusted_latency_ms(trace(50.0, 2.0)) == pytest.approx(48.0)

    def test_keeps_last_when_no_first(self):
        assert adjusted_latency_ms(trace(50.0, None)) == pytest.approx(50.0)

    def test_keeps_last_when_first_larger(self):
        # Degenerate but possible: queueing on the gateway.
        t = trace(50.0, 60.0)
        assert adjusted_latency_ms(t) == pytest.approx(50.0)

    def test_none_when_no_hops(self):
        empty = NormalizedTraceroute(target="x", reached=False, hops=[])
        assert adjusted_latency_ms(empty) is None


class TestSourceConstraint:
    def setup_method(self):
        self.constraint = SourceConstraint(STATS, 0.8)
        self.src = REG.city("London, GB")
        self.claim = REG.city("Tokyo, JP")
        self.typical = MODEL.typical_rtt_ms(self.src, self.claim)

    def test_missing_trace_fails(self):
        assert self.constraint.check(None, self.src, self.claim).failed

    def test_unreached_trace_fails(self):
        result = self.constraint.check(trace(100, reached=False), self.src, self.claim)
        assert result.failed
        assert "did not reach" in result.reason

    def test_consistent_latency_passes(self):
        result = self.constraint.check(trace(self.typical), self.src, self.claim)
        assert result.passed

    def test_sol_violation_fails(self):
        floor = min_rtt_ms(city_distance_km(self.src, self.claim))
        result = self.constraint.check(trace(floor * 0.5), self.src, self.claim)
        assert result.failed
        assert "speed-of-light" in result.reason

    def test_eighty_percent_rule(self):
        # Above the SOL floor but below 80 % of published statistics:
        # the server responded too fast to be in Tokyo.
        floor = min_rtt_ms(city_distance_km(self.src, self.claim))
        published = STATS.published_rtt_ms(self.src, self.claim)
        midpoint = (floor + 0.8 * published) / 2
        result = self.constraint.check(trace(midpoint + 1.0, first_rtt=1.0), self.src, self.claim)
        assert result.failed
        assert "80%" in result.reason

    def test_exactly_at_threshold_passes(self):
        published = STATS.published_rtt_ms(self.src, self.claim)
        result = self.constraint.check(
            trace(0.8 * published + 1.0, first_rtt=1.0), self.src, self.claim
        )
        assert result.passed

    def test_missing_statistics_pass_on_sol_alone(self):
        sparse = SyntheticStatsProvider("sparse", MODEL, covered_cities=[])
        constraint = SourceConstraint(sparse, 0.8)
        result = constraint.check(trace(self.typical), self.src, self.claim)
        assert result.passed
        assert "no published statistics" in result.reason

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            SourceConstraint(STATS, 0.0)


class TestDestinationConstraint:
    def setup_method(self):
        self.constraint = DestinationConstraint(MODEL)
        self.probe = REG.city("Frankfurt, DE")
        self.claim = REG.city("Frankfurt, DE")

    def test_missing_trace_fails(self):
        assert self.constraint.check(None, self.probe, self.claim).failed
        assert self.constraint.check(trace(10), None, self.claim).failed

    def test_unreached_fails(self):
        assert self.constraint.check(trace(10, reached=False), self.probe, self.claim).failed

    def test_small_rtt_passes(self):
        assert self.constraint.check(trace(8.0), self.probe, self.claim).passed

    def test_large_rtt_passes_by_default(self):
        # No physical upper bound: a server behind an awful path could
        # still be in the claimed city (paper semantics).
        assert self.constraint.check(trace(250.0), self.probe, self.claim).passed

    def test_sol_floor_applies_with_distant_probe(self):
        # Probe in Paris, claim in Tokyo: an RTT below the physical floor
        # proves the server is NOT in Tokyo.
        constraint = DestinationConstraint(MODEL)
        paris = REG.city("Paris, FR")
        tokyo = REG.city("Tokyo, JP")
        result = constraint.check(trace(5.0), paris, tokyo)
        assert result.failed

    def test_strict_bound_rejects_large_rtt(self):
        strict = DestinationConstraint(MODEL, strict_bound=True)
        result = strict.check(trace(250.0), self.probe, self.claim)
        assert result.failed
        assert "too high" in result.reason

    def test_plausible_bound_monotone_in_distance(self):
        constraint = DestinationConstraint(MODEL)
        near = constraint.plausible_rtt_bound_ms(self.probe, REG.city("Paris, FR"))
        far = constraint.plausible_rtt_bound_ms(self.probe, REG.city("Tokyo, JP"))
        assert far > near

    def test_bad_params(self):
        with pytest.raises(ValueError):
            DestinationConstraint(MODEL, max_inflation=0.5)
        with pytest.raises(ValueError):
            DestinationConstraint(MODEL, slack_ms=-1)


def timeout_trace(reached=True):
    """Every hop timed out (address None): no responding hops at all."""
    hops = [NormalizedHop(1, None, ()), NormalizedHop(2, None, ())]
    return NormalizedTraceroute(target="5.0.0.1", reached=reached, hops=hops)


class TestSharedRoundingHelpers:
    """The single helpers both engines compare and report through."""

    def test_round_evidence_ms_none_passthrough(self):
        assert round_evidence_ms(None) is None

    def test_round_evidence_ms_rounds_to_microseconds(self):
        assert round_evidence_ms(12.3456789) == 12.345679
        assert round_evidence_ms(12.0) == 12.0

    def test_source_floor_is_the_exact_product(self):
        # One multiplication, no rounding: the comparison boundary both
        # engines share must be the bit-exact IEEE product.
        assert source_latency_floor_ms(0.8, 103.7) == 0.8 * 103.7

    def test_floor_scales_with_threshold(self):
        assert source_latency_floor_ms(1.0, 50.0) == 50.0
        assert source_latency_floor_ms(0.5, 50.0) == 25.0


class TestConstraintEdgeCases:
    """Degenerate traceroutes and exact threshold boundaries."""

    def setup_method(self):
        self.constraint = SourceConstraint(STATS, 0.8)
        self.src = REG.city("London, GB")
        self.claim = REG.city("Tokyo, JP")

    def test_all_timeout_hops_fail_source(self):
        result = self.constraint.check(timeout_trace(), self.src, self.claim)
        assert result.failed
        assert result.reason == "no responding hops"

    def test_empty_reached_trace_fails_source(self):
        empty = NormalizedTraceroute(target="5.0.0.1", reached=True, hops=[])
        result = self.constraint.check(empty, self.src, self.claim)
        assert result.failed
        assert result.reason == "no responding hops"

    def test_all_timeout_hops_fail_destination(self):
        constraint = DestinationConstraint(MODEL)
        result = constraint.check(timeout_trace(), self.src, self.claim)
        assert result.failed
        assert result.reason == "no responding hops"

    def test_rtt_exactly_at_eighty_percent_floor_passes(self):
        # The rule is strict-less-than: equality is (just) believable.
        floor = source_latency_floor_ms(
            0.8, STATS.published_rtt_ms(self.src, self.claim)
        )
        result = self.constraint.check(trace(floor, first_rtt=None), self.src, self.claim)
        assert result.passed
        assert result.observed_ms == floor

    def test_rtt_one_ulp_below_floor_fails(self):
        floor = source_latency_floor_ms(
            0.8, STATS.published_rtt_ms(self.src, self.claim)
        )
        below = math.nextafter(floor, 0.0)
        result = self.constraint.check(trace(below, first_rtt=None), self.src, self.claim)
        assert result.failed
        assert "80%" in result.reason

    def test_rtt_exactly_at_sol_floor_passes_sol(self):
        # Sparse statistics isolate the SOL rule: equality at the
        # physical floor is not a violation.
        sparse = SourceConstraint(SyntheticStatsProvider("sparse", MODEL, covered_cities=[]), 0.8)
        sol = min_rtt_ms(city_distance_km(self.src, self.claim))
        result = sparse.check(trace(sol, first_rtt=None), self.src, self.claim)
        assert result.passed
        assert "no published statistics" in result.reason

    def test_rtt_one_ulp_below_sol_floor_fails(self):
        sol = min_rtt_ms(city_distance_km(self.src, self.claim))
        below = math.nextafter(sol, 0.0)
        result = self.constraint.check(trace(below, first_rtt=None), self.src, self.claim)
        assert result.failed
        assert "speed-of-light" in result.reason

    def test_antipodal_claim_saturates_sol_floor(self):
        # London vs Auckland is nearly antipodal: the SOL floor
        # approaches its planetary maximum, so any ordinary RTT is a
        # violation — the constraint's strongest discard regime.
        auckland = REG.city("Auckland, NZ")
        sol = min_rtt_ms(city_distance_km(self.src, auckland))
        half_circumference_ms = min_rtt_ms(math.pi * 6371.0)
        assert sol > 0.9 * half_circumference_ms
        sparse = SourceConstraint(SyntheticStatsProvider("sparse", MODEL, covered_cities=[]), 0.8)
        assert sparse.check(trace(50.0, first_rtt=None), self.src, auckland).failed
        assert sparse.check(trace(sol, first_rtt=None), self.src, auckland).passed

    def test_equal_first_and_last_hop_keeps_raw_rtt(self):
        # first == last: the subtraction branch must NOT fire (it would
        # yield a zero-latency server); the raw last-hop RTT stands.
        t = trace(30.0, first_rtt=30.0)
        assert adjusted_latency_ms(t) == 30.0

    def test_destination_rtt_exactly_at_sol_floor_passes(self):
        constraint = DestinationConstraint(MODEL)
        paris = REG.city("Paris, FR")
        tokyo = REG.city("Tokyo, JP")
        sol = min_rtt_ms(city_distance_km(paris, tokyo))
        assert constraint.check(trace(sol, first_rtt=None), paris, tokyo).passed
        below = math.nextafter(sol, 0.0)
        assert constraint.check(trace(below, first_rtt=None), paris, tokyo).failed


class TestReverseDNSConstraint:
    def setup_method(self):
        self.constraint = ReverseDNSConstraint()
        self.claim_fr = REG.city("Paris, FR")

    def test_no_ptr_skips(self):
        result = self.constraint.check(None, self.claim_fr)
        assert result.status == ConstraintStatus.SKIP

    def test_no_hint_skips(self):
        result = self.constraint.check("server-1.example.net", self.claim_fr)
        assert result.status == ConstraintStatus.SKIP

    def test_matching_hint_passes(self):
        result = self.constraint.check("edge-2.cdg01.example.net", self.claim_fr)
        assert result.passed

    def test_same_country_other_city_passes(self):
        # Marseille hint against a Paris claim: same country, retained.
        result = self.constraint.check("edge-2.mrs01.example.net", self.claim_fr)
        assert result.passed

    def test_contradicting_hint_fails(self):
        # The paper's Fujairah/Amsterdam case.
        fujairah = REG.city("Al Fujairah City, AE")
        result = self.constraint.check("edge-7.ams02.example.net", fujairah)
        assert result.failed
        assert "Amsterdam" in result.reason
