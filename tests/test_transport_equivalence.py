"""Transport equivalence of ``run_study`` — the codec-unobservability proof.

The columnar transport only changes *how* a ``CountryRun`` crosses the
process-pool boundary (and how checkpoints are persisted), never *what*
arrives.  These tests run the same study under ``--transport pickle``
and ``--transport columnar`` across every backend and several worker
counts and assert that all study artefacts — datasets, verdicts,
funnels, joined records, summaries, and the timing-stripped journal —
are byte-identical.  They also prove the resume crossover: a checkpoint
written under one transport is readable by a study resumed under the
other.
"""

from __future__ import annotations

import pytest

from repro import run_study
from repro.core.geoloc import verdicts as verdicts_module
from repro.core.geoloc.verdicts import FunnelCounters, merge_funnels
from repro.exec import TRANSPORTS
from tests.conftest import SMALL_COUNTRIES
from tests.test_exec_equivalence import assert_outcomes_identical

#: backend/jobs grid from the parallel-equivalence suite, kept in sync.
BACKEND_GRID = [("serial", 1), ("thread", 4), ("process", 1), ("process", 4)]


@pytest.fixture(scope="module")
def reference(scenario):
    """Serial pickle-transport run: the pre-codec ground truth."""
    return run_study(
        scenario, countries=SMALL_COUNTRIES, trace=True, transport="pickle"
    )


def assert_transport_equivalent(reference, other) -> None:
    assert_outcomes_identical(reference, other)
    assert other.journal.dumps(timings=False) == reference.journal.dumps(
        timings=False
    )


class TestTransportEquivalence:
    @pytest.mark.parametrize("backend,jobs", BACKEND_GRID)
    @pytest.mark.parametrize("transport", list(TRANSPORTS))
    def test_all_transports_backends_and_job_counts_byte_identical(
        self, scenario, reference, transport, backend, jobs
    ):
        outcome = run_study(
            scenario, countries=SMALL_COUNTRIES, trace=True,
            transport=transport, backend=backend, jobs=jobs,
        )
        assert outcome.metrics.transport == transport
        assert_transport_equivalent(reference, outcome)

    def test_columnar_process_metrics_account_every_country(self, scenario):
        outcome = run_study(
            scenario, countries=SMALL_COUNTRIES, transport="columnar",
            backend="process", jobs=2,
        )
        metrics = outcome.metrics
        assert metrics.transport == "columnar"
        assert sorted(metrics.transport_bytes) == sorted(SMALL_COUNTRIES)
        assert all(nbytes > 0 for nbytes in metrics.transport_bytes.values())
        assert metrics.transport_encode_seconds >= 0
        assert metrics.transport_decode_seconds >= 0
        assert "transport_bytes" in metrics.to_dict()
        rendered = metrics.render()
        assert "transport" in rendered
        for country in SMALL_COUNTRIES:
            assert country in rendered

    @pytest.mark.parametrize("backend,jobs", [("serial", 1), ("thread", 4)])
    def test_frames_only_cross_the_process_boundary(
        self, scenario, backend, jobs
    ):
        # In-process backends hand the object graph over directly; no
        # frames are encoded, so the per-country ledger stays empty.
        outcome = run_study(
            scenario, countries=SMALL_COUNTRIES[:3], transport="columnar",
            backend=backend, jobs=jobs,
        )
        assert outcome.metrics.transport == "columnar"
        assert outcome.metrics.transport_bytes == {}
        assert "transport_bytes" not in outcome.metrics.to_dict()

    def test_pickle_transport_never_encodes_frames(self, scenario):
        outcome = run_study(
            scenario, countries=SMALL_COUNTRIES[:3], transport="pickle",
            backend="process", jobs=2,
        )
        assert outcome.metrics.transport == "pickle"
        assert outcome.metrics.transport_bytes == {}


class TestResumeCrossover:
    """Checkpoints written under one transport resume under the other."""

    @pytest.mark.parametrize("first,second,suffix", [
        ("pickle", "columnar", ".run.pkl"),
        ("columnar", "pickle", ".run.col"),
    ])
    def test_checkpoint_crosses_transports(
        self, scenario, reference, tmp_path, first, second, suffix
    ):
        checkpoint_dir = tmp_path / "ckpt"
        partial = run_study(
            scenario, countries=SMALL_COUNTRIES[:2], trace=True,
            checkpoint_dir=checkpoint_dir, transport=first,
        )
        assert sorted(partial.datasets) == sorted(SMALL_COUNTRIES[:2])
        assert sorted(p.name for p in checkpoint_dir.iterdir()) == sorted(
            [country + suffix for country in SMALL_COUNTRIES[:2]]
            + ["metrics.json"]
        )
        resumed = run_study(
            scenario, countries=SMALL_COUNTRIES, trace=True,
            checkpoint_dir=checkpoint_dir, resume=True, transport=second,
        )
        assert_transport_equivalent(reference, resumed)
        assert [r["country"] for r in resumed.journal.events("country_resumed")] \
            == SMALL_COUNTRIES[:2]


class TestMergeFunnels:
    def test_matches_sequential_merge(self, study_small):
        funnels = [g.funnel for g in study_small.geolocations.values()]
        sequential = FunnelCounters()
        for funnel in funnels:
            sequential = sequential.merged_with(funnel)
        assert merge_funnels(funnels) == sequential
        assert merge_funnels(funnels) == study_small.funnel()

    def test_empty_input_is_zero(self):
        assert merge_funnels([]) == FunnelCounters()

    def test_scalar_fallback_matches_vectorized(self, study_small, monkeypatch):
        funnels = [g.funnel for g in study_small.geolocations.values()]
        vectorized = merge_funnels(funnels)
        monkeypatch.setattr(verdicts_module, "_np", None)
        assert merge_funnels(funnels) == vectorized
