"""Confidence engine: scoring invariants, engine equality, calibration.

Four contracts are locked down here:

* **Monotonicity** — a wider decision margin can never *lower* a
  verdict's confidence (property-based, both the squash and the full
  combine formula).
* **Engine equality** — the scalar reference and the columnar masked-
  margin evaluation produce bit-identical scores on the full
  23-country study, and the scores survive the process-pool transport.
* **Annotation-only** — with confidence on, the binary verdicts,
  funnels, summaries, and stripped journals are byte-identical to a
  confidence-off run.
* **Calibration** — the metrics are exact on a hand-built confusion
  fixture, and the study-level scores meet the acceptance targets
  (ECE <= 0.10, Brier <= 0.15) against the seeded ground truth.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import StudyConfig, run_study
from repro.core.geoloc import PipelineConfig
from repro.core.geoloc.confidence import (
    CONF_CEIL,
    CONF_FLOOR,
    CONFIDENCE_KINDS,
    K_DISC_DEST_EVIDENCE,
    K_DISC_SOURCE_EVIDENCE,
    K_VERIFIED,
    ConfidenceInputs,
    ConfidenceReport,
    combine_score,
    margin_ratio,
    margin_score,
)
from repro.core.geoloc.validation import (
    BRIER_TARGET,
    ECE_TARGET,
    ValidationCounts,
    calibrate_against_truth,
)
from repro.core.geoloc.verdicts import (
    DatasetGeolocation,
    ServerStatus,
    ServerVerdict,
)
from tests.conftest import SMALL_COUNTRIES

_MARGIN_KINDS = (K_VERIFIED, K_DISC_SOURCE_EVIDENCE, K_DISC_DEST_EVIDENCE)
_ratio = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def _config(engine: str = "columnar", confidence: bool = True) -> StudyConfig:
    return StudyConfig(
        pipeline=PipelineConfig(engine=engine, confidence=confidence)
    )


def _confidences(outcome):
    return {
        country: {
            address: verdict.confidence
            for address, verdict in geolocation.verdicts.items()
        }
        for country, geolocation in outcome.geolocations.items()
    }


# -- monotonicity --------------------------------------------------------------


class TestMonotonicity:
    @settings(max_examples=200, deadline=None)
    @given(_ratio, _ratio)
    def test_margin_score_is_monotone(self, a, b):
        lo, hi = sorted((a, b))
        assert margin_score(lo) <= margin_score(hi)
        assert 0.0 <= margin_score(lo) < 1.0

    @settings(max_examples=200, deadline=None)
    @given(
        st.sampled_from(_MARGIN_KINDS),
        _ratio, _ratio,
        st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0)),
        st.booleans(),
    )
    def test_wider_margin_never_lowers_confidence(
        self, kind, a, b, consistency, rdns_hint
    ):
        lo, hi = sorted((a, b))
        tight = ConfidenceInputs(
            kind=kind, margin_src=lo,
            consistency=consistency, rdns_hint=rdns_hint,
        )
        wide = ConfidenceInputs(
            kind=kind, margin_src=hi,
            consistency=consistency, rdns_hint=rdns_hint,
        )
        assert combine_score(tight) <= combine_score(wide)

    @settings(max_examples=200, deadline=None)
    @given(st.sampled_from(range(len(CONFIDENCE_KINDS))),
           st.one_of(st.none(), _ratio),
           st.one_of(st.none(), _ratio),
           st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0)),
           st.booleans())
    def test_scores_stay_in_band(
        self, kind, margin_src, margin_dst, consistency, rdns_hint
    ):
        conf = combine_score(ConfidenceInputs(
            kind=kind, margin_src=margin_src, margin_dst=margin_dst,
            consistency=consistency, rdns_hint=rdns_hint,
        ))
        assert CONF_FLOOR <= conf <= CONF_CEIL

    def test_margin_ratio_examples(self):
        assert margin_ratio(10.0, 10.0) == 0.0
        assert margin_ratio(30.0, 10.0) == 2.0
        assert margin_ratio(0.0, 10.0) == 1.0
        # Sub-millisecond thresholds are floored at 1 ms, not divided by.
        assert margin_ratio(0.5, 0.25) == pytest.approx(0.25)


# -- engine equality -----------------------------------------------------------


@pytest.fixture(scope="module")
def study_confidence_scalar(scenario):
    return run_study(scenario, config=_config(engine="scalar"))


@pytest.fixture(scope="module")
def study_confidence_columnar(scenario):
    return run_study(scenario, config=_config(engine="columnar"))


class TestEngineEquality:
    def test_scalar_and_columnar_scores_are_identical(
        self, study_confidence_scalar, study_confidence_columnar
    ):
        scalar = _confidences(study_confidence_scalar)
        columnar = _confidences(study_confidence_columnar)
        assert scalar == columnar  # bit-identical floats, every verdict
        scored = sum(
            1 for by_address in scalar.values()
            for conf in by_address.values() if conf is not None
        )
        assert scored > 1000  # the whole study is scored, not a corner

    def test_scores_survive_the_process_transport(self, scenario):
        serial = run_study(
            scenario, countries=SMALL_COUNTRIES, config=_config()
        )
        pooled = run_study(
            scenario, countries=SMALL_COUNTRIES, config=_config(),
            jobs=2, backend="process", transport="columnar",
        )
        assert _confidences(serial) == _confidences(pooled)

    def test_frame_and_objects_agree_on_weighted_flows(self, scenario):
        framed = run_study(
            scenario, countries=SMALL_COUNTRIES, config=_config(),
            analysis_engine="columnar",
        )
        walked = run_study(
            scenario, countries=SMALL_COUNTRIES, config=_config(),
            analysis_engine="objects",
        )
        assert framed.frame is not None
        assert framed.frame.trk_confidence is not None
        by_frame = framed.tracker_confidence()
        by_objects = walked.tracker_confidence()
        assert by_frame.keys() == by_objects.keys()
        for country, (rows, mean) in by_frame.items():
            other_rows, other_mean = by_objects[country]
            assert rows == other_rows
            if mean is None:
                assert other_mean is None
            else:
                assert mean == pytest.approx(other_mean, abs=1e-12)


# -- the annotation-layer contract ---------------------------------------------


class TestAnnotationOnly:
    @pytest.fixture(scope="class")
    def on_and_off(self, scenario, tmp_path_factory):
        root = tmp_path_factory.mktemp("confidence")
        outcomes = {}
        for label, confidence in (("on", True), ("off", False)):
            outcomes[label] = run_study(
                scenario, countries=SMALL_COUNTRIES,
                config=_config(confidence=confidence),
                trace=root / f"{label}.jsonl",
            )
        return outcomes

    def test_binary_verdicts_identical_modulo_annotation(self, on_and_off):
        on, off = on_and_off["on"], on_and_off["off"]
        for country, geolocation in off.geolocations.items():
            scored = on.geolocations[country]
            for address, verdict in geolocation.verdicts.items():
                annotated = scored.verdicts[address]
                assert annotated.confidence is not None
                stripped = ServerVerdict(
                    address=annotated.address, hosts=annotated.hosts,
                    status=annotated.status, claim=annotated.claim,
                    discarded_by=annotated.discarded_by,
                    checks=annotated.checks,
                )
                assert pickle.dumps(stripped) == pickle.dumps(verdict)

    def test_funnels_and_summaries_identical(self, on_and_off):
        on, off = on_and_off["on"], on_and_off["off"]
        assert on.funnel() == off.funnel()
        dump = lambda o: json.dumps(o.summary().to_dict(), sort_keys=True)  # noqa: E731
        assert dump(on) == dump(off)

    def test_stripped_journals_identical(self, on_and_off):
        on, off = on_and_off["on"], on_and_off["off"]
        assert on.journal is not None and off.journal is not None
        assert on.journal.events("geoloc_confidence")  # annotation present...
        assert not off.journal.events("geoloc_confidence")
        # ...but stripping removes it with the other diagnostics.
        assert on.journal.dumps(timings=False) == off.journal.dumps(timings=False)

    def test_confidence_journal_events_conform_to_schema(self, on_and_off):
        from repro.obs import validate_journal

        journal = on_and_off["on"].journal
        assert validate_journal(journal.records) == []
        event = journal.events("geoloc_confidence")[0]
        assert event["kind"] in CONFIDENCE_KINDS
        assert 0.0 <= event["confidence"] <= 1.0

    def test_confidence_histogram_in_metrics_snapshot(self, on_and_off):
        snapshot = on_and_off["on"].metrics_snapshot
        assert snapshot is not None
        families = snapshot["metrics"]["families"]
        assert "geoloc_confidence" in families
        series = families["geoloc_confidence"]["series"]
        assert sum(record["count"] for record in series) > 0


# -- calibration ---------------------------------------------------------------


class _StubIPs:
    def __init__(self, truth):
        self._truth = truth

    def true_country(self, address):
        return self._truth.get(address)


class _StubWorld:
    def __init__(self, truth):
        self.ips = _StubIPs(truth)


def _verdict(address, status, confidence):
    return ServerVerdict(
        address=address, hosts=[f"host-{address}"], status=status,
        confidence=confidence,
    )


class TestCalibrationMetrics:
    def test_exact_metrics_on_hand_built_confusion(self):
        geolocation = DatasetGeolocation(country_code="US")
        geolocation.verdicts = {
            # verified + truly foreign: correct, bin 9
            "1.1.1.1": _verdict("1.1.1.1", ServerStatus.NONLOCAL_VERIFIED, 0.9),
            # verified + truly local: wrong, bin 8
            "2.2.2.2": _verdict("2.2.2.2", ServerStatus.NONLOCAL_VERIFIED, 0.8),
            # called local + truly local: correct, bin 6
            "3.3.3.3": _verdict("3.3.3.3", ServerStatus.LOCAL, 0.6),
            # discarded + truly foreign: wrong, bin 2
            "4.4.4.4": _verdict("4.4.4.4", ServerStatus.DISCARDED, 0.25),
            # unscored and truth-less verdicts are skipped, not binned
            "5.5.5.5": _verdict("5.5.5.5", ServerStatus.LOCAL, None),
            "6.6.6.6": _verdict("6.6.6.6", ServerStatus.LOCAL, 0.7),
        }
        world = _StubWorld({
            "1.1.1.1": "DE", "2.2.2.2": "US", "3.3.3.3": "US",
            "4.4.4.4": "JP", "5.5.5.5": "US",
        })
        report = calibrate_against_truth(world, {"US": geolocation})
        assert report.total == 4
        assert report.skipped == 2
        assert report.accuracy == pytest.approx(0.5)
        assert report.brier == pytest.approx(
            (0.1 ** 2 + 0.8 ** 2 + 0.4 ** 2 + 0.25 ** 2) / 4
        )
        assert report.ece == pytest.approx((0.25 + 0.4 + 0.8 + 0.1) / 4)
        populated = {
            (row.lower, row.count, row.correct)
            for row in report.bins if row.count
        }
        assert populated == {
            (0.2, 1, 0), (0.6, 1, 1), (0.8, 1, 0), (0.9, 1, 1),
        }

    def test_empty_input_reports_none_metrics(self):
        report = calibrate_against_truth(_StubWorld({}), {})
        assert report.total == 0
        assert report.brier is None and report.ece is None

    def test_study_calibration_meets_targets(
        self, scenario, study_confidence_scalar
    ):
        report = calibrate_against_truth(
            scenario.world, study_confidence_scalar.geolocations
        )
        assert report.skipped == 0
        assert report.total > 5000
        assert report.ece <= ECE_TARGET
        assert report.brier <= BRIER_TARGET

    def test_confidence_report_view(self, study_confidence_scalar):
        geolocation = next(iter(study_confidence_scalar.geolocations.values()))
        report = ConfidenceReport.from_geolocation(geolocation, low_n=3)
        assert report.scored == len(geolocation.verdicts)
        assert len(report.low_confidence) <= 3
        payload = report.as_dict()
        assert payload["scored"] == report.scored
        assert sum(
            entry["count"] for entry in payload["by_status"].values()
        ) == report.scored


# -- verdict-layer regressions the confidence work exposed ---------------------


class TestVerdictLayerRegressions:
    def test_nonlocal_hosts_tolerates_unjudged_addresses(self):
        geolocation = DatasetGeolocation(country_code="US")
        geolocation.host_to_address = {
            "tracked.example": "1.1.1.1",
            "unjudged.example": "9.9.9.9",  # no verdict: previously KeyError
        }
        geolocation.verdicts = {
            "1.1.1.1": _verdict("1.1.1.1", ServerStatus.NONLOCAL_VERIFIED, None),
        }
        assert geolocation.nonlocal_hosts() == ["tracked.example"]

    def test_f1_zero_when_positives_exist_but_none_found(self):
        counts = ValidationCounts(
            true_positive=0, false_positive=1, false_negative=1, true_negative=0
        )
        assert counts.precision == 0.0
        assert counts.recall == 0.0
        assert counts.f1 == 0.0  # 0/0-F1 convention, not None

    def test_f1_none_only_when_genuinely_undefined(self):
        assert ValidationCounts(true_negative=5).f1 is None

    def test_f1_harmonic_mean(self):
        counts = ValidationCounts(
            true_positive=1, false_positive=1, false_negative=1
        )
        assert counts.f1 == pytest.approx(0.5)
