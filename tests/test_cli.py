"""CLI entry point."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_country_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["volunteer", "XX"])

    def test_study_countries_validation(self):
        with pytest.raises(SystemExit):
            main(["study", "--countries", "CA,XX"])


class TestCommands:
    def test_volunteer_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "dataset.json"
        assert main(["volunteer", "LB", "--output", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "vol-LB" in captured
        payload = json.loads(out.read_text())
        assert payload["country"] == "LB"
        assert payload["websites"]

    def test_study_subset(self, capsys):
        assert main(["study", "--countries", "CA,NZ"]) == 0
        out = capsys.readouterr().out
        assert "CA" in out and "NZ" in out
        assert "funnel:" in out

    def test_audit(self, capsys):
        assert main(["audit", "NZ"]) == 0
        out = capsys.readouterr().out
        assert "New Zealand" in out
        assert "Destinations" in out


class TestExtensionCommands:
    def test_recruitment(self, capsys):
        assert main(["recruitment"]) == 0
        out = capsys.readouterr().out
        assert "22 volunteers covering 23 countries" in out
        assert "consent ledger consistent" in out

    def test_stability(self, capsys):
        assert main(["stability", "JO", "--visits", "2", "--limit", "10"]) == 0
        out = capsys.readouterr().out
        assert "Jaccard" in out

    def test_whatif_parser_validates_country(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["whatif", "XX"])


class TestReportCommand:
    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "PK", "--output", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# Tracker data-flow report: Pakistan (PK)")
        for heading in ("## Headline", "## Where the data goes", "## Who receives it",
                        "## Policy context", "## Measurement provenance"):
            assert heading in text
        # Pakistan's flows never reach India.
        assert "India (IN)" not in text

    def test_report_stdout(self, capsys):
        assert main(["report", "CA"]) == 0
        text = capsys.readouterr().out
        assert "Canada" in text
        assert "No verified cross-border tracker flows" in text


class TestFaultToleranceCLI:
    """--on-error / --inject-fault / --checkpoint-dir / --resume."""

    def test_skip_policy_exits_zero_with_manifest(self, tmp_path, capsys):
        journal = tmp_path / "skip.jsonl"
        assert main(["study", "--countries", "CA,NZ,RW", "--on-error", "skip",
                     "--inject-fault", "NZ", "--trace", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "Failed countries" in out
        assert "InjectedFaultError" in out
        assert '"ev": "country_failed"' in journal.read_text().replace('","', '", "') \
            or '"ev":"country_failed"' in journal.read_text()
        # The fault journal still validates and renders the failure story.
        assert main(["trace", str(journal), "--validate"]) == 0
        capsys.readouterr()
        assert main(["trace", str(journal)]) == 0
        assert "FAILED   NZ" in capsys.readouterr().out

    def test_retry_policy_recovers_transient_fault(self, capsys):
        assert main(["study", "--countries", "CA,NZ", "--on-error", "retry",
                     "--inject-fault", "NZ:1"]) == 0
        out = capsys.readouterr().out
        assert "Failed countries" not in out
        assert "NZ" in out  # the retried country completed normally

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        checkpoint_dir = tmp_path / "ckpt"
        assert main(["study", "--countries", "CA,NZ",
                     "--checkpoint-dir", str(checkpoint_dir)]) == 0
        capsys.readouterr()
        # The default columnar transport writes compact .run.col frames.
        assert sorted(p.name for p in checkpoint_dir.iterdir()) == [
            "CA.run.col", "NZ.run.col",
        ]
        assert main(["study", "--countries", "CA,NZ,RW",
                     "--checkpoint-dir", str(checkpoint_dir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "RW" in out

    def test_checkpoint_format_follows_transport(self, tmp_path, capsys):
        checkpoint_dir = tmp_path / "ckpt"
        assert main(["study", "--countries", "CA", "--transport", "pickle",
                     "--checkpoint-dir", str(checkpoint_dir)]) == 0
        capsys.readouterr()
        assert sorted(p.name for p in checkpoint_dir.iterdir()) == [
            "CA.run.pkl",
        ]
        # Crossing transports on resume reads the pickle checkpoint.
        assert main(["study", "--countries", "CA,NZ", "--transport", "columnar",
                     "--checkpoint-dir", str(checkpoint_dir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "NZ" in out

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit, match="--resume requires --checkpoint-dir"):
            main(["study", "--countries", "CA", "--resume"])

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(SystemExit, match="attempt bound"):
            main(["study", "--countries", "CA", "--inject-fault", "CA:0"])
