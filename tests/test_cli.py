"""CLI entry point."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_country_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["volunteer", "XX"])

    def test_study_countries_validation(self):
        with pytest.raises(SystemExit):
            main(["study", "--countries", "CA,XX"])


class TestCommands:
    def test_volunteer_writes_dataset(self, tmp_path, capsys):
        out = tmp_path / "dataset.json"
        assert main(["volunteer", "LB", "--output", str(out)]) == 0
        captured = capsys.readouterr().out
        assert "vol-LB" in captured
        payload = json.loads(out.read_text())
        assert payload["country"] == "LB"
        assert payload["websites"]

    def test_study_subset(self, capsys):
        assert main(["study", "--countries", "CA,NZ"]) == 0
        out = capsys.readouterr().out
        assert "CA" in out and "NZ" in out
        assert "funnel:" in out

    def test_audit(self, capsys):
        assert main(["audit", "NZ"]) == 0
        out = capsys.readouterr().out
        assert "New Zealand" in out
        assert "Destinations" in out


class TestExtensionCommands:
    def test_recruitment(self, capsys):
        assert main(["recruitment"]) == 0
        out = capsys.readouterr().out
        assert "22 volunteers covering 23 countries" in out
        assert "consent ledger consistent" in out

    def test_stability(self, capsys):
        assert main(["stability", "JO", "--visits", "2", "--limit", "10"]) == 0
        out = capsys.readouterr().out
        assert "Jaccard" in out

    def test_whatif_parser_validates_country(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["whatif", "XX"])


class TestReportCommand:
    def test_report_to_file(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "PK", "--output", str(out)]) == 0
        text = out.read_text()
        assert text.startswith("# Tracker data-flow report: Pakistan (PK)")
        for heading in ("## Headline", "## Where the data goes", "## Who receives it",
                        "## Policy context", "## Measurement provenance"):
            assert heading in text
        # Pakistan's flows never reach India.
        assert "India (IN)" not in text

    def test_report_stdout(self, capsys):
        assert main(["report", "CA"]) == 0
        text = capsys.readouterr().out
        assert "Canada" in text
        assert "No verified cross-border tracker flows" in text


class TestFaultToleranceCLI:
    """--on-error / --inject-fault / --checkpoint-dir / --resume."""

    def test_skip_policy_exits_zero_with_manifest(self, tmp_path, capsys):
        journal = tmp_path / "skip.jsonl"
        assert main(["study", "--countries", "CA,NZ,RW", "--on-error", "skip",
                     "--inject-fault", "NZ", "--trace", str(journal)]) == 0
        out = capsys.readouterr().out
        assert "Failed countries" in out
        assert "InjectedFaultError" in out
        assert '"ev": "country_failed"' in journal.read_text().replace('","', '", "') \
            or '"ev":"country_failed"' in journal.read_text()
        # The fault journal still validates and renders the failure story.
        assert main(["trace", str(journal), "--validate"]) == 0
        capsys.readouterr()
        assert main(["trace", str(journal)]) == 0
        assert "FAILED   NZ" in capsys.readouterr().out

    def test_retry_policy_recovers_transient_fault(self, capsys):
        assert main(["study", "--countries", "CA,NZ", "--on-error", "retry",
                     "--inject-fault", "NZ:1"]) == 0
        out = capsys.readouterr().out
        assert "Failed countries" not in out
        assert "NZ" in out  # the retried country completed normally

    def test_checkpoint_then_resume(self, tmp_path, capsys):
        checkpoint_dir = tmp_path / "ckpt"
        assert main(["study", "--countries", "CA,NZ",
                     "--checkpoint-dir", str(checkpoint_dir)]) == 0
        capsys.readouterr()
        # The default columnar transport writes compact .run.col frames;
        # the run's metrics snapshot lands next to them.
        assert sorted(p.name for p in checkpoint_dir.iterdir()) == [
            "CA.run.col", "NZ.run.col", "metrics.json",
        ]
        assert main(["study", "--countries", "CA,NZ,RW",
                     "--checkpoint-dir", str(checkpoint_dir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "RW" in out

    def test_checkpoint_format_follows_transport(self, tmp_path, capsys):
        checkpoint_dir = tmp_path / "ckpt"
        assert main(["study", "--countries", "CA", "--transport", "pickle",
                     "--checkpoint-dir", str(checkpoint_dir)]) == 0
        capsys.readouterr()
        assert sorted(p.name for p in checkpoint_dir.iterdir()) == [
            "CA.run.pkl", "metrics.json",
        ]
        # Crossing transports on resume reads the pickle checkpoint.
        assert main(["study", "--countries", "CA,NZ", "--transport", "columnar",
                     "--checkpoint-dir", str(checkpoint_dir), "--resume"]) == 0
        out = capsys.readouterr().out
        assert "NZ" in out

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(SystemExit, match="--resume requires --checkpoint-dir"):
            main(["study", "--countries", "CA", "--resume"])

    def test_bad_fault_spec_rejected(self):
        with pytest.raises(SystemExit, match="attempt bound"):
            main(["study", "--countries", "CA", "--inject-fault", "CA:0"])


class TestMetricsCommands:
    @pytest.fixture(scope="class")
    def snapshots(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("metrics")
        first, second = root / "run1.json", root / "run2.json"
        assert main(["study", "--countries", "CA,NZ", "--no-progress",
                     "--profile", "--metrics-out", str(first)]) == 0
        assert main(["study", "--countries", "CA,NZ", "--no-progress",
                     "--jobs", "2", "--backend", "thread",
                     "--metrics-out", str(second)]) == 0
        return first, second

    def test_study_announces_snapshot(self, snapshots, capsys):
        capsys.readouterr()
        assert main(["study", "--countries", "CA", "--no-progress",
                     "--metrics-out", str(snapshots[0].parent / "ann.json")]) == 0
        assert "metrics snapshot written to" in capsys.readouterr().out

    def test_validate(self, snapshots, capsys):
        assert main(["metrics", "validate", str(snapshots[0])]) == 0
        assert "snapshot OK" in capsys.readouterr().out

    def test_validate_rejects_corrupt(self, snapshots, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": 1, "kind": "other"}')
        assert main(["metrics", "validate", str(bad)]) == 1
        assert "SCHEMA:" in capsys.readouterr().out

    def test_show(self, snapshots, capsys):
        assert main(["metrics", "show", str(snapshots[0])]) == 0
        out = capsys.readouterr().out
        assert "study_sites_total" in out
        assert "resources (per country):" in out
        assert "cache_delta_operations_total" not in out  # runtime hidden

    def test_show_runtime(self, snapshots, capsys):
        assert main(["metrics", "show", str(snapshots[0]), "--runtime"]) == 0
        assert "cache_delta_operations_total" in capsys.readouterr().out

    def test_diff_same_study_reports_zero_regressions(self, snapshots, capsys):
        first, second = snapshots
        assert main(["metrics", "diff", str(first), str(second)]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_diff_flags_drift(self, snapshots, tmp_path, capsys):
        drifted = tmp_path / "drifted.json"
        payload = json.loads(snapshots[0].read_text())
        series = payload["metrics"]["families"]["study_sites_total"]["series"]
        series[0]["value"] += 1
        drifted.write_text(json.dumps(payload))
        assert main(["metrics", "diff", str(snapshots[0]), str(drifted)]) == 1
        out = capsys.readouterr().out
        assert "drift" in out and "regression(s)" in out

    def test_baseline_roundtrip(self, snapshots, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert main(["metrics", "baseline", str(snapshots[0]),
                     "--output", str(baseline)]) == 0
        capsys.readouterr()
        assert main(["metrics", "check", str(baseline),
                     "--snapshot", str(snapshots[1])]) == 0
        assert "baseline check(s) passed" in capsys.readouterr().out

    def test_check_report_only_never_fails(self, snapshots, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        bench = tmp_path / "BENCH_x.json"
        bench.write_text('{"speedup": 10.0}')
        assert main(["metrics", "baseline", "--bench", str(bench),
                     "--output", str(baseline)]) == 0
        bench.write_text('{"speedup": 0.1}')  # collapse below the floor
        capsys.readouterr()
        assert main(["metrics", "check", str(baseline),
                     "--bench", str(bench)]) == 1
        assert main(["metrics", "check", str(baseline),
                     "--bench", str(bench), "--report-only"]) == 0

    def test_prom_output(self, tmp_path, capsys):
        prom = tmp_path / "run.prom"
        assert main(["study", "--countries", "CA", "--no-progress",
                     "--metrics-out", str(prom)]) == 0
        from repro.obs.metrics import validate_exposition

        assert validate_exposition(prom.read_text()) == []
