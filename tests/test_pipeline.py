"""Geolocation pipeline: verdicts, funnel accounting, constraint toggles."""

import pytest

from repro.atlas.measurements import AtlasMeasurementService
from repro.core.gamma.output import VolunteerDataset, WebsiteMeasurement
from repro.core.gamma.parsers import NormalizedHop, NormalizedTraceroute
from repro.core.geoloc.latency_stats import default_stats_chain
from repro.core.geoloc.pipeline import (
    GeolocationPipeline,
    PipelineConfig,
    ServerStatus,
    SourceTraces,
)
from repro.geodb.errors import GeoErrorModel
from repro.geodb.ipmap import IPMapService
from repro.netsim.geography import default_registry
from repro.netsim.network import World

from tests.test_servers_dns import make_deployment

REG = default_registry()


@pytest.fixture()
def setup():
    """A Thai volunteer's dataset: one local host, one French tracker."""
    world = World(geo=REG)
    local = make_deployment(["TH"], org_name="ThaiHost", domains=("siam.co.th",), space=world.ips)
    foreign = make_deployment(["FR"], org_name="AdOrg", domains=("adorg.net",), space=world.ips)
    for deployment in (local, foreign):
        world.deployments[deployment.org.name] = deployment
        for domain in deployment.org.domains:
            world.dns.register(domain, deployment)
    vantage = REG.country("TH").capital
    local_ip = world.dns.resolve_address("www.siam.co.th", vantage)
    foreign_ip = world.dns.resolve_address("px.adorg.net", vantage)

    dataset = VolunteerDataset("TH", vantage.key, "5.99.0.10", "linux", "chrome")
    measurement = WebsiteMeasurement(
        url="www.siam.co.th", category="regional", loaded=True,
        requested_hosts=["www.siam.co.th", "px.adorg.net"],
        dns={"www.siam.co.th": local_ip, "px.adorg.net": foreign_ip},
        rdns={local_ip: world.rdns.lookup(local_ip), foreign_ip: world.rdns.lookup(foreign_ip)},
    )
    dataset.add(measurement)

    def realistic_trace(ip):
        destination = world.ips.true_city(ip)
        rtt = world.latency.rtt_ms(vantage, destination, f"t:{ip}")
        return NormalizedTraceroute(
            target=ip, reached=True,
            hops=[NormalizedHop(1, "192.168.1.1", (1.2,)), NormalizedHop(2, ip, (round(rtt, 3),))],
        )

    traces = SourceTraces(
        city=vantage,
        traces={local_ip: realistic_trace(local_ip), foreign_ip: realistic_trace(foreign_ip)},
    )
    return world, dataset, traces, local_ip, foreign_ip


def make_pipeline(world, errors=None, config=None):
    return GeolocationPipeline(
        ipmap=IPMapService(world, errors or GeoErrorModel(0, 0, 0)),
        atlas=AtlasMeasurementService(world),
        stats=default_stats_chain(world.latency, REG),
        latency=world.latency,
        config=config,
    )


class TestVerdicts:
    def test_local_and_nonlocal(self, setup):
        world, dataset, traces, local_ip, foreign_ip = setup
        result = make_pipeline(world).classify_dataset(dataset, traces)
        assert result.verdicts[local_ip].status == ServerStatus.LOCAL
        assert result.verdicts[foreign_ip].status == ServerStatus.NONLOCAL_VERIFIED
        assert result.verdicts[foreign_ip].claimed_country == "FR"

    def test_verdict_for_host(self, setup):
        world, dataset, traces, _, foreign_ip = setup
        result = make_pipeline(world).classify_dataset(dataset, traces)
        verdict = result.verdict_for_host("px.adorg.net")
        assert verdict is not None and verdict.is_verified_nonlocal
        assert result.verdict_for_host("unknown.example") is None
        assert result.nonlocal_hosts() == ["px.adorg.net"]

    def test_unlocated_when_db_has_no_data(self, setup):
        world, dataset, traces, local_ip, foreign_ip = setup
        pipeline = make_pipeline(world, GeoErrorModel(missing_rate=1.0, wrong_city_rate=0,
                                                      wrong_country_rate=0))
        result = pipeline.classify_dataset(dataset, traces)
        assert result.verdicts[foreign_ip].status == ServerStatus.UNLOCATED

    def test_local_claimed_foreign_is_discarded_not_verified(self, setup):
        """The paper's precision claim: a local server wrongly geolocated
        abroad must not survive as 'non-local'."""
        world, dataset, traces, local_ip, _ = setup
        pipeline = make_pipeline(world, GeoErrorModel(missing_rate=0, wrong_city_rate=0,
                                                      wrong_country_rate=1.0))
        result = pipeline.classify_dataset(dataset, traces)
        verdict = result.verdicts[local_ip]
        assert verdict.status == ServerStatus.DISCARDED

    def test_no_source_trace_discards(self, setup):
        world, dataset, _, local_ip, foreign_ip = setup
        empty = SourceTraces(city=REG.country("TH").capital, traces={})
        result = make_pipeline(world).classify_dataset(dataset, empty)
        assert result.verdicts[foreign_ip].status == ServerStatus.DISCARDED
        assert result.verdicts[foreign_ip].discarded_by == "source"
        # Local classification does not need traces at all.
        assert result.verdicts[local_ip].status == ServerStatus.LOCAL


class TestFunnel:
    def test_accounting_consistent(self, setup):
        world, dataset, traces, _, _ = setup
        funnel = make_pipeline(world).classify_dataset(dataset, traces).funnel
        assert funnel.total_hosts == 2
        assert funnel.local + funnel.nonlocal_candidates + funnel.unlocated == funnel.total_hosts
        assert funnel.after_latency_constraints >= funnel.after_rdns >= funnel.verified_nonlocal

    def test_observation_weighting(self, setup):
        world, dataset, traces, _, foreign_ip = setup
        # The same tracker host on a second site counts as a second
        # observation (section 5 counts per-site domains).
        second = WebsiteMeasurement(
            url="other.co.th", category="regional", loaded=True,
            requested_hosts=["px.adorg.net"], dns={"px.adorg.net": foreign_ip},
        )
        dataset.add(second)
        funnel = make_pipeline(world).classify_dataset(dataset, traces).funnel
        assert funnel.total_hosts == 3
        assert funnel.nonlocal_candidates == 2

    def test_destination_traceroutes_counted(self, setup):
        world, dataset, traces, _, _ = setup
        funnel = make_pipeline(world).classify_dataset(dataset, traces).funnel
        assert funnel.destination_traceroutes == 1

    def test_merged_with(self, setup):
        world, dataset, traces, _, _ = setup
        funnel = make_pipeline(world).classify_dataset(dataset, traces).funnel
        merged = funnel.merged_with(funnel)
        assert merged.total_hosts == 2 * funnel.total_hosts


class TestConstraintToggles:
    def test_disable_all_verifies_raw_claims(self, setup):
        world, dataset, traces, local_ip, _ = setup
        config = PipelineConfig(enable_source=False, enable_destination=False, enable_rdns=False)
        pipeline = make_pipeline(
            world,
            GeoErrorModel(missing_rate=0, wrong_city_rate=0, wrong_country_rate=1.0),
            config,
        )
        result = pipeline.classify_dataset(dataset, traces)
        # With no constraints, the wrongly-geolocated local server slips
        # through as "non-local" — the error the pipeline exists to stop.
        assert result.verdicts[local_ip].status == ServerStatus.NONLOCAL_VERIFIED

    def test_disable_destination_skips_probe_traffic(self, setup):
        world, dataset, traces, _, _ = setup
        config = PipelineConfig(enable_destination=False)
        result = make_pipeline(world, config=config).classify_dataset(dataset, traces)
        assert result.funnel.destination_traceroutes == 0
