"""Cross-module property-based tests on the method's core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gamma.parsers import parse_linux_traceroute, parse_windows_tracert
from repro.core.geoloc.constraints import (
    ConstraintStatus,
    ReverseDNSConstraint,
    SourceConstraint,
    adjusted_latency_ms,
)
from repro.core.geoloc.latency_stats import SyntheticStatsProvider
from repro.netsim.distance import city_distance_km, min_rtt_ms
from repro.netsim.geography import default_registry
from repro.netsim.geohints import CITY_HINT_CODES
from repro.netsim.ip import IPSpace
from repro.netsim.latency import LatencyModel
from repro.netsim.traceroute import (
    TracerouteBlocking,
    TracerouteEngine,
    render_linux,
    render_windows,
)

REG = default_registry()
MODEL = LatencyModel()
ALL_CITIES = [city for country in REG.countries for city in country.cities]
_city = st.sampled_from(ALL_CITIES)
_city_key = st.sampled_from(sorted(CITY_HINT_CODES))


def _engine_with_target(dest_city):
    space = IPSpace()
    allocation = space.allocate(9, dest_city, label="Org/x1")
    engine = TracerouteEngine(MODEL, space, TracerouteBlocking(unreachable_rate=0.0))
    return engine, str(allocation.address(1))


class TestTracerouteRoundtripProperties:
    @settings(max_examples=30, deadline=None)
    @given(_city, _city, st.integers(min_value=0, max_value=9))
    def test_both_renderings_parse_back_consistently(self, src, dst, key):
        engine, target = _engine_with_target(dst)
        trace = engine.trace(src, target, f"p{key}")
        linux = parse_linux_traceroute(render_linux(trace))
        windows = parse_windows_tracert(render_windows(trace))
        assert linux.reached == windows.reached == trace.reached
        assert len(linux.hops) == len(trace.hops)
        # Adjusted latency agrees to tracert's integer-ms rounding.
        linux_adj = adjusted_latency_ms(linux)
        windows_adj = adjusted_latency_ms(windows)
        if linux_adj is not None and windows_adj is not None and linux_adj > 5:
            assert abs(linux_adj - windows_adj) <= 2.0


class TestSourceConstraintProperties:
    """The constraint can never discard a *truthful* claim that used
    accurate statistics: physics guarantees observed >= floor, and — for
    pairs whose typical RTT dominates the local-network term — the
    adjusted latency stays above 80 % of typical.

    The adjustment subtracts the gateway hop (up to 3 ms, plus up to
    0.4 ms of per-probe sampling on each end), so for very close pairs
    (typical RTT under 5 × that ~3.8 ms bound, e.g. Brussels–Paris)
    a truthful claim *can* legitimately dip below the 80 % floor — the
    conservative rule trades those for certainty elsewhere, so the
    property is only claimed where the bound holds."""

    #: Worst case removed by the adjustment: 3.0 ms gateway + 2 × 0.4 ms
    #: probe-sample median offset, over the 20 % margin the rule allows.
    MIN_TYPICAL_RTT_MS = (3.0 + 2 * 0.4) / 0.2

    @settings(max_examples=30, deadline=None)
    @given(_city, _city, st.integers(min_value=0, max_value=9))
    def test_truthful_claims_survive(self, src, dst, key):
        if src.key == dst.key:
            return
        if MODEL.typical_rtt_ms(src, dst) < self.MIN_TYPICAL_RTT_MS:
            return
        engine, target = _engine_with_target(dst)
        trace = engine.trace(src, target, f"k{key}")
        linux = parse_linux_traceroute(render_linux(trace))
        stats = SyntheticStatsProvider("exact", MODEL, noise_range=(1.0, 1.0))
        constraint = SourceConstraint(stats, 0.8)
        result = constraint.check(linux, src, dst)
        assert result.passed, (src.key, dst.key, result.reason)

    @settings(max_examples=30, deadline=None)
    @given(_city, _city, _city, st.integers(min_value=0, max_value=4))
    def test_sol_never_flags_physically_reachable_claims(self, src, truth, claim, key):
        """A claim *nearer* than the truth always satisfies SOL (it can
        only be caught by the 80 % rule or other constraints)."""
        if city_distance_km(src, claim) > city_distance_km(src, truth):
            return
        engine, target = _engine_with_target(truth)
        trace = engine.trace(src, target, f"k{key}")
        observed = adjusted_latency_ms(parse_linux_traceroute(render_linux(trace)))
        floor = min_rtt_ms(city_distance_km(src, claim))
        # Gateway subtraction removes at most ~3 ms.
        assert observed >= floor - 3.0


class TestReverseDNSProperties:
    @settings(max_examples=60)
    @given(_city_key, st.integers(min_value=1, max_value=99))
    def test_truthful_hint_never_rejected(self, city_key, serial):
        code = CITY_HINT_CODES[city_key]
        hostname = f"edge-{serial}.{code}01.example.net"
        claim = REG.city(city_key)
        result = ReverseDNSConstraint().check(hostname, claim)
        assert result.status == ConstraintStatus.PASS

    @settings(max_examples=60)
    @given(_city_key, _city_key)
    def test_cross_country_hint_always_rejected(self, hint_key, claim_key):
        hint_country = hint_key.rsplit(", ", 1)[-1]
        claim_country = claim_key.rsplit(", ", 1)[-1]
        if hint_country == claim_country:
            return
        code = CITY_HINT_CODES[hint_key]
        result = ReverseDNSConstraint().check(f"a.{code}02.x.net", REG.city(claim_key))
        assert result.failed


class TestLatencyStatsProperties:
    @settings(max_examples=40)
    @given(_city, _city)
    def test_published_stats_bounded_by_noise_envelope(self, a, b):
        provider = SyntheticStatsProvider("w", MODEL, noise_range=(0.85, 1.25))
        published = provider.published_rtt_ms(a, b)
        typical = MODEL.typical_rtt_ms(a, b)
        if a.key == b.key:
            return
        assert 0.85 * typical - 0.1 <= published <= 1.25 * typical + 0.1

    @settings(max_examples=40)
    @given(_city, _city)
    def test_published_stats_respect_physics(self, a, b):
        provider = SyntheticStatsProvider("w", MODEL, noise_range=(0.9, 1.2))
        published = provider.published_rtt_ms(a, b)
        # Published long-run statistics can never beat the speed of light
        # either (noise floor 0.9 over an inflated-by->=1.25 base).
        assert published >= min_rtt_ms(city_distance_km(a, b)) * 0.9
