"""Smoke-run every example script (they are part of the public surface)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "quickstart.py", ["CA", "NZ"])
        assert "Prevalence of non-local trackers" in out
        assert "Geolocation funnel" in out

    def test_run_gamma_volunteer(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "run_gamma_volunteer.py", ["LB"])
        assert "session 1" in out and "session 2 (resumed)" in out
        assert "Normalised traceroute record" in out
        assert "Full dataset written" in out

    def test_audit(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "audit_data_localization.py", ["QA"])
        assert "Data-localization audit: Qatar" in out
        assert "Evidence trail" in out
        assert "Bottom line" in out

    def test_browser_comparison(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "browser_comparison.py", ["NZ"])
        assert "chrome" in out and "brave" in out
        assert "shields removed" in out

    def test_regulation_whatif(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "regulation_whatif.py", ["QA", "1.0"])
        assert "Longitudinal effect" in out
        assert "reduction" in out

    @pytest.mark.slow
    def test_multidb_comparison(self, monkeypatch, capsys):
        out = run_example(monkeypatch, capsys, "multidb_comparison.py")
        assert "constraint pipeline (the paper)" in out
        assert "1.0000" in out
