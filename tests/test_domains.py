"""Public-suffix list and eTLD+1 extraction."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.domains import (
    PUBLIC_SUFFIXES,
    is_subdomain,
    public_suffix,
    registrable_domain,
    split_host,
    validate_hostname,
)


class TestValidateHostname:
    def test_lowercases(self):
        assert validate_hostname("EXAMPLE.Com") == "example.com"

    def test_strips_trailing_dot(self):
        assert validate_hostname("example.com.") == "example.com"

    def test_strips_whitespace(self):
        assert validate_hostname("  example.com ") == "example.com"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            validate_hostname("")

    def test_empty_label_raises(self):
        with pytest.raises(ValueError):
            validate_hostname("a..b")

    def test_long_label_raises(self):
        with pytest.raises(ValueError):
            validate_hostname("x" * 64 + ".com")


class TestPublicSuffix:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("example.com", "com"),
            ("example.co.uk", "co.uk"),
            ("www.example.gov.au", "gov.au"),
            ("a.b.gob.ar", "gob.ar"),
            ("site.gouv.fr", "gouv.fr"),
            ("ministry.go.th", "go.th"),
            ("x.nic.in", "nic.in"),
            ("plain.unknowntld", "unknowntld"),
        ],
    )
    def test_known_suffixes(self, host, expected):
        assert public_suffix(host) == expected

    def test_prefers_longest_match(self):
        # gov.uk beats uk.
        assert public_suffix("service.gov.uk") == "gov.uk"


class TestRegistrableDomain:
    @pytest.mark.parametrize(
        "host,expected",
        [
            ("www.example.com", "example.com"),
            ("example.com", "example.com"),
            ("stats.g.doubleclick.net", "doubleclick.net"),
            ("www.bbc.co.uk", "bbc.co.uk"),
            ("health.gov.au", "health.gov.au"),
            ("google.com.eg", "google.com.eg"),
            ("deep.sub.of.google.com.eg", "google.com.eg"),
        ],
    )
    def test_extraction(self, host, expected):
        assert registrable_domain(host) == expected

    def test_bare_suffix_returns_none(self):
        assert registrable_domain("com") is None
        assert registrable_domain("co.uk") is None

    def test_case_insensitive(self):
        assert registrable_domain("WWW.Example.COM") == "example.com"


class TestSplitHost:
    def test_with_subdomain(self):
        assert split_host("a.b.example.com") == ("a.b", "example.com")

    def test_without_subdomain(self):
        assert split_host("example.com") == ("", "example.com")

    def test_bare_suffix(self):
        assert split_host("co.uk") == ("", "co.uk")


class TestIsSubdomain:
    def test_equal(self):
        assert is_subdomain("example.com", "example.com")

    def test_true_subdomain(self):
        assert is_subdomain("a.example.com", "example.com")

    def test_not_suffix_string_trick(self):
        # notexample.com must NOT count as a subdomain of example.com.
        assert not is_subdomain("notexample.com", "example.com")

    def test_reverse_is_false(self):
        assert not is_subdomain("example.com", "a.example.com")


# Hostname label strategy (lowercase alphanumerics).
_label = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789", min_size=1, max_size=10)


class TestProperties:
    @given(st.lists(_label, min_size=1, max_size=4))
    def test_registrable_is_suffix_of_host(self, labels):
        host = ".".join(labels)
        base = registrable_domain(host)
        if base is not None:
            assert is_subdomain(host, base)

    @given(st.lists(_label, min_size=2, max_size=4))
    def test_split_reassembles(self, labels):
        host = ".".join(labels)
        sub, base = split_host(host)
        reassembled = f"{sub}.{base}" if sub else base
        assert reassembled == validate_hostname(host)

    @given(st.lists(_label, min_size=1, max_size=4))
    def test_public_suffix_in_table_or_last_label(self, labels):
        host = ".".join(labels)
        suffix = public_suffix(host)
        assert suffix in PUBLIC_SUFFIXES or suffix == labels[-1]
