"""Scalar-vs-columnar differential harness for the geolocation engines.

The columnar engine's contract is *byte identity*: for any batch of
addresses it must return exactly the verdicts the scalar oracle returns
— same dataclasses, same evidence floats, same funnel movement, same
order, same pickled bytes.  This suite attacks that contract from three
sides:

* **Property-based batches** — hypothesis generates adversarial server
  batches (unlocated/local/foreign claims, missing/unreached/zero-hop
  traceroutes, contradicting PTR records) and every verdict is compared
  field by field across all constraint-toggle configurations.
* **Exact boundaries** — deterministic batches place observed RTTs
  exactly at (and one ulp below) the SOL floor, the 80 %-rule floor and
  the strict destination ceiling, where a single float discrepancy
  between engines would flip a verdict.
* **Study-level golden run** — the full 23-country study executed with
  either engine yields identical outcomes, identical pickled verdict
  maps, and byte-identical stripped run journals, with the engine name
  surfaced in ``ExecMetrics``.

Stub services live at module level so the engines (which hold service
references) stay picklable — the same property the process-pool backend
relies on, locked down here by a pickle round-trip test.
"""

from __future__ import annotations

import json
import math
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_study
from repro.atlas.probes import Probe
from repro.core.gamma.parsers import NormalizedHop, NormalizedTraceroute
from repro.core.geoloc.columnar import HAVE_NUMPY
from repro.core.geoloc.constraints import source_latency_floor_ms
from repro.core.geoloc.latency_stats import SyntheticStatsProvider
from repro.core.geoloc.pipeline import (
    FunnelCounters,
    GeolocationPipeline,
    PipelineConfig,
    SourceTraces,
)
from repro.geodb.ipmap import GeoClaim
from repro.netsim.distance import city_distance_km, min_rtt_ms
from repro.netsim.geography import default_registry
from repro.netsim.latency import LatencyModel
from repro.study import StudyConfig
from tests.test_exec_equivalence import assert_outcomes_identical

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="columnar engine requires numpy"
)

REG = default_registry()
MODEL = LatencyModel()

#: The measurement vantage: a GB volunteer in London.
MEASUREMENT_COUNTRY = "GB"
SOURCE_CITY = REG.city("London, GB")

#: Foreign-claim palette: near (Paris), far (Tokyo), antipodal
#: (Auckland), probe-less countries (NZ), stats-less pairs (Auckland,
#: Nairobi) and a claim whose probe sits in a *different* city of the
#: claimed country (Al Fujairah City vs the Dubai probe).
CLAIM_KEYS = [
    "Paris, FR",
    "Tokyo, JP",
    "Auckland, NZ",
    "Nairobi, KE",
    "New York, US",
    "Al Fujairah City, AE",
]

#: Probe mesh: one probe per country; NZ deliberately has none.
PROBES = {
    "FR": Probe(1001, REG.city("Marseille, FR")),
    "JP": Probe(1002, REG.city("Tokyo, JP")),
    "KE": Probe(1003, REG.city("Mombasa, KE")),
    "US": Probe(1004, REG.city("Ashburn, US")),
    "AE": Probe(1005, REG.city("Dubai, AE")),
}

#: Published statistics cover some pairs only — Auckland and Nairobi
#: claims exercise the "SOL ok; no published statistics" branch.
STATS = SyntheticStatsProvider(
    "columnar-test",
    MODEL,
    covered_cities=[
        "London, GB", "Paris, FR", "Tokyo, JP", "New York, US",
        "Dubai, AE", "Al Fujairah City, AE",
    ],
)

#: PTR palette: missing, hint-free, and hints that match/contradict the
#: claim palette (mba = Mombasa KE, ams = Amsterdam NL).
RDNS_VALUES = [
    None,
    "server-1.example.net",
    "edge-1.cdg01.example.net",
    "edge-2.nrt01.example.net",
    "edge-3.mba01.example.net",
    "edge-7.ams02.example.net",
]


class StubIPMap:
    """Address -> fixed claim (or None); deterministic and picklable."""

    def __init__(self, claims):
        self._claims = claims

    def locate(self, address):
        return self._claims.get(address)


class StubMesh:
    def __init__(self, probes):
        self._probes = probes

    def probe_for_country(self, country_code, near_city=None):
        return self._probes.get(country_code), country_code


class StubAtlas:
    """Fixed destination traces keyed by target address."""

    def __init__(self, mesh, traces):
        self.mesh = mesh
        self._traces = traces

    def dest_traceroute(self, probe, address):
        return self._traces[address]


def make_trace(kind, first=None, last=None, target="t"):
    """Build the traceroute shapes the constraints branch on."""
    if kind == "missing":
        return None
    if kind == "unreached":
        hops = [NormalizedHop(1, "62.0.0.1", (last if last is not None else 10.0,))]
        return NormalizedTraceroute(target=target, reached=False, hops=hops)
    if kind == "empty":  # reached, but zero hops recorded
        return NormalizedTraceroute(target=target, reached=True, hops=[])
    if kind == "timeouts":  # reached, every hop timed out (address None)
        hops = [NormalizedHop(1, None, ()), NormalizedHop(2, None, ())]
        return NormalizedTraceroute(target=target, reached=True, hops=hops)
    hops = []
    if first is not None:
        hops.append(NormalizedHop(1, "192.168.1.1", (first,)))
    hops.append(NormalizedHop(2, "10.0.0.1", (last,)))
    return NormalizedTraceroute(target=target, reached=True, hops=hops)


RTT = st.floats(min_value=0.0, max_value=400.0, allow_nan=False, allow_infinity=False)

SOURCE_SPEC = st.one_of(
    st.just(("missing",)),
    st.just(("unreached",)),
    st.just(("empty",)),
    st.just(("timeouts",)),
    st.tuples(st.just("ok"), st.one_of(st.none(), RTT), RTT),
)

DEST_SPEC = st.one_of(
    st.just(("unreached",)),
    st.just(("timeouts",)),
    st.tuples(st.just("ok"), st.one_of(st.none(), RTT), RTT),
)

ADDRESS_SPEC = st.fixed_dictionaries(
    {
        "claim": st.sampled_from(["unlocated", "local"] + CLAIM_KEYS),
        "source": SOURCE_SPEC,
        "dest": DEST_SPEC,
        "rdns": st.sampled_from(RDNS_VALUES),
        "hosts": st.integers(min_value=1, max_value=3),
    }
)

#: Constraint-toggle grid: every engine branch must agree under every
#: configuration, not just the study default.
CONFIG_GRID = [
    {},
    {"strict_destination_bound": True},
    {"enable_source": False},
    {"enable_destination": False},
    {"enable_rdns": False},
    {"conservative_threshold": 1.0, "strict_destination_bound": True},
]


def build_batch(specs):
    """Expand hypothesis specs into the classify_addresses inputs."""
    claims, addresses, src_traces, dest_traces, rdns = {}, {}, {}, {}, {}
    for i, spec in enumerate(specs):
        address = f"198.51.{i // 250}.{i % 250 + 1}"
        if spec["claim"] == "local":
            claims[address] = GeoClaim(address, SOURCE_CITY)
        elif spec["claim"] != "unlocated":
            claims[address] = GeoClaim(address, REG.city(spec["claim"]))
        addresses[address] = [f"host-{i}-{h}.example.net" for h in range(spec["hosts"])]
        trace = make_trace(*spec["source"], target=address) if spec["source"][0] != "ok" \
            else make_trace("ok", spec["source"][1], spec["source"][2], target=address)
        if trace is not None:
            src_traces[address] = trace
        dest_traces[address] = make_trace(*spec["dest"], target=address) \
            if spec["dest"][0] != "ok" \
            else make_trace("ok", spec["dest"][1], spec["dest"][2], target=address)
        if spec["rdns"] is not None:
            rdns[address] = spec["rdns"]
    return claims, addresses, src_traces, dest_traces, rdns


def build_pipeline(engine, claims, dest_traces, **config_kwargs):
    return GeolocationPipeline(
        ipmap=StubIPMap(claims),
        atlas=StubAtlas(StubMesh(PROBES), dest_traces),
        stats=STATS,
        latency=MODEL,
        config=PipelineConfig(engine=engine, **config_kwargs),
    )


def classify(pipeline, addresses, src_traces, rdns):
    funnel = FunnelCounters()
    verdicts = pipeline.classify_addresses(
        addresses,
        MEASUREMENT_COUNTRY,
        SourceTraces(city=SOURCE_CITY, traces=src_traces),
        rdns,
        funnel,
    )
    return verdicts, funnel


def canonical_verdict_bytes(geolocations):
    """Identity-free byte encoding of every verdict in a study.

    Floats are rendered with ``float.hex`` so two runs agree only if
    every evidence value is *bit* identical, while string/object
    identity (which raw pickle memoises) cannot influence the bytes.
    """
    def ms(value):
        return None if value is None else float.hex(value)

    payload = {
        cc: [
            [
                v.address, list(v.hosts), v.status,
                v.claim.city_key if v.claim else None,
                v.discarded_by,
                [
                    [c.constraint, c.status, c.reason,
                     ms(c.observed_ms), ms(c.expected_ms)]
                    for c in v.checks
                ],
            ]
            for v in geoloc.verdicts.values()
        ]
        for cc, geoloc in geolocations.items()
    }
    return json.dumps(payload, sort_keys=False).encode()


def assert_batches_identical(scalar, columnar):
    """Field-by-field and byte-level equality of two classify results."""
    scalar_verdicts, scalar_funnel = scalar
    columnar_verdicts, columnar_funnel = columnar
    assert list(scalar_verdicts) == list(columnar_verdicts)  # order too
    for address, expected in scalar_verdicts.items():
        actual = columnar_verdicts[address]
        assert expected == actual, address
        assert len(expected.checks) == len(actual.checks), address
        for want, got in zip(expected.checks, actual.checks):
            for name in ("constraint", "status", "reason", "observed_ms", "expected_ms"):
                assert getattr(want, name) == getattr(got, name), (address, name)
            # Materialised evidence must be built-in floats (no numpy
            # scalars leaking into verdicts / pickles / journals).
            for value in (got.observed_ms, got.expected_ms):
                assert value is None or type(value) is float, address
    assert scalar_funnel == columnar_funnel
    assert pickle.dumps(scalar_verdicts) == pickle.dumps(columnar_verdicts)


class TestDifferentialBatches:
    @pytest.mark.parametrize("config_kwargs", CONFIG_GRID,
                             ids=lambda kw: ",".join(kw) or "default")
    @given(specs=st.lists(ADDRESS_SPEC, min_size=0, max_size=25))
    @settings(max_examples=25, deadline=None)
    def test_engines_agree_on_generated_batches(self, config_kwargs, specs):
        claims, addresses, src_traces, dest_traces, rdns = build_batch(specs)
        scalar = build_pipeline("scalar", claims, dest_traces, **config_kwargs)
        columnar = build_pipeline("columnar", claims, dest_traces, **config_kwargs)
        assert scalar.engine_name == "scalar"
        assert columnar.engine_name == "columnar"
        assert_batches_identical(
            classify(scalar, addresses, src_traces, rdns),
            classify(columnar, addresses, src_traces, rdns),
        )

    @given(specs=st.lists(ADDRESS_SPEC, min_size=1, max_size=15))
    @settings(max_examples=10, deadline=None)
    def test_columnar_engine_pickle_round_trip(self, specs):
        claims, addresses, src_traces, dest_traces, rdns = build_batch(specs)
        pipeline = build_pipeline("columnar", claims, dest_traces)
        engine = pipeline._columnar
        clone = pickle.loads(pickle.dumps(engine))
        funnel_a, funnel_b = FunnelCounters(), FunnelCounters()
        traces = SourceTraces(city=SOURCE_CITY, traces=src_traces)
        original = engine.classify_batch(
            addresses, MEASUREMENT_COUNTRY, traces, rdns, funnel_a
        )
        revived = clone.classify_batch(
            addresses, MEASUREMENT_COUNTRY, traces, rdns, funnel_b
        )
        # Equality, not pickle-byte equality: the revived engine's claims
        # were unpickled, so the str/City identity sharing that pickle
        # memoises differs even though every value is equal.  Byte
        # identity within one process is asserted by the study-level
        # golden test below.
        assert original == revived
        assert funnel_a == funnel_b
        assert pickle.loads(pickle.dumps(revived)) == original


class TestExactBoundaries:
    """Batches pinned to the exact comparison boundaries of every rule."""

    def boundary_batch(self):
        """Addresses whose observed RTTs sit exactly on (or one ulp
        below) the SOL floor, the 80 %-rule floor and the strict
        destination ceiling for a London -> Paris claim."""
        paris = REG.city("Paris, FR")
        sol = min_rtt_ms(city_distance_km(SOURCE_CITY, paris))
        floor = source_latency_floor_ms(0.8, STATS.published_rtt_ms(SOURCE_CITY, paris))
        probe = PROBES["FR"]
        dest_sol = min_rtt_ms(city_distance_km(probe.city, paris))
        specs = {
            "at-sol": (sol, None),
            "below-sol": (math.nextafter(sol, 0.0), None),
            "at-floor": (floor, None),
            "below-floor": (math.nextafter(floor, 0.0), None),
            "dest-at-sol": (floor, dest_sol),
            "dest-below-sol": (floor, math.nextafter(dest_sol, 0.0)),
        }
        claims, addresses, src_traces, dest_traces = {}, {}, {}, {}
        for i, (label, (src_rtt, dest_rtt)) in enumerate(specs.items()):
            address = f"203.0.113.{i + 1}"
            claims[address] = GeoClaim(address, paris)
            addresses[address] = [f"{label}.example.net"]
            src_traces[address] = make_trace("ok", None, src_rtt, target=address)
            dest_traces[address] = make_trace(
                "ok", None, dest_rtt if dest_rtt is not None else 20.0, target=address
            )
        return claims, addresses, src_traces, dest_traces

    @pytest.mark.parametrize("config_kwargs", [{}, {"strict_destination_bound": True}])
    def test_engines_agree_at_thresholds(self, config_kwargs):
        claims, addresses, src_traces, dest_traces = self.boundary_batch()
        scalar = build_pipeline("scalar", claims, dest_traces, **config_kwargs)
        columnar = build_pipeline("columnar", claims, dest_traces, **config_kwargs)
        assert_batches_identical(
            classify(scalar, addresses, src_traces, {}),
            classify(columnar, addresses, src_traces, {}),
        )

    def test_boundary_semantics_match_scalar_rules(self):
        """Pin the rules themselves: equality passes, one ulp below fails."""
        claims, addresses, src_traces, dest_traces = self.boundary_batch()
        pipeline = build_pipeline("columnar", claims, dest_traces)
        verdicts, _ = classify(pipeline, addresses, src_traces, {})
        by_label = {v.hosts[0].split(".")[0]: v for v in verdicts.values()}
        assert by_label["below-sol"].discarded_by == "source"
        assert "speed-of-light" in by_label["below-sol"].checks[0].reason
        assert by_label["below-floor"].discarded_by == "source"
        assert "80%" in by_label["below-floor"].checks[0].reason
        assert by_label["dest-below-sol"].discarded_by == "destination"
        # Exactly at the SOL floor the SOL rule does NOT fire — but the
        # 80 %-rule floor sits above it for a stats-covered pair, so the
        # verdict is still a (different) source discard.
        assert by_label["at-sol"].discarded_by == "source"
        assert "80%" in by_label["at-sol"].checks[0].reason
        for label in ("at-floor", "dest-at-sol"):
            assert by_label[label].discarded_by == "", label


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown geoloc engine"):
            build_pipeline("simd", {}, {})

    def test_scalar_pipeline_has_no_columnar_engine(self):
        assert build_pipeline("scalar", {}, {})._columnar is None


class TestStudyEngineEquivalence:
    """The golden acceptance run: a full traced 23-country study per engine."""

    @pytest.fixture(scope="class")
    def full_scalar(self, scenario):
        return run_study(
            scenario, trace=True,
            config=StudyConfig(pipeline=PipelineConfig(engine="scalar")),
        )

    @pytest.fixture(scope="class")
    def full_columnar(self, scenario):
        return run_study(scenario, trace=True)  # columnar is the default

    def test_outcomes_identical_across_engines(self, full_scalar, full_columnar):
        assert_outcomes_identical(full_scalar, full_columnar)

    def test_engine_surfaced_in_metrics(self, full_scalar, full_columnar):
        assert full_scalar.metrics.geoloc_engine == "scalar"
        assert full_columnar.metrics.geoloc_engine == "columnar"
        assert full_scalar.metrics.to_dict()["geoloc_engine"] == "scalar"
        assert " geoloc=columnar " in full_columnar.metrics.render().splitlines()[0] + " "

    def test_verdicts_bit_identical(self, full_scalar, full_columnar):
        # Raw pickle bytes differ across *any* two runs (the memoised
        # ipmap shares claim strings with whichever run came first, and
        # pickle memoises by identity), so byte identity is asserted on
        # a canonical encoding: every field, with floats as bit patterns.
        assert canonical_verdict_bytes(full_scalar.geolocations) == \
            canonical_verdict_bytes(full_columnar.geolocations)

    def test_stripped_journals_byte_identical(self, full_scalar, full_columnar):
        assert full_scalar.journal.dumps(timings=False) == full_columnar.journal.dumps(
            timings=False
        )

    @pytest.mark.parametrize("backend,jobs", [("thread", 4), ("process", 4)])
    def test_scalar_engine_parallel_equivalence(self, scenario, backend, jobs):
        config = StudyConfig(pipeline=PipelineConfig(engine="scalar"))
        serial = run_study(scenario, countries=["CA", "QA", "EG"], config=config)
        parallel = run_study(
            scenario, countries=["CA", "QA", "EG"], config=config,
            jobs=jobs, backend=backend,
        )
        assert parallel.metrics.geoloc_engine == "scalar"
        assert_outcomes_identical(serial, parallel)
