"""Determinism helpers: the root of all reproducibility."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.determinism import stable_choice, stable_hash, stable_rng, stable_uniform


class TestStableHash:
    def test_repeatable(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_differs_by_part(self):
        assert stable_hash("a") != stable_hash("b")

    def test_differs_by_order(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_no_separator_collision(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_64_bit_range(self):
        value = stable_hash("anything")
        assert 0 <= value < 2**64

    @given(st.lists(st.text(), min_size=1, max_size=5))
    def test_stable_across_calls(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)


class TestStableRng:
    def test_returns_random_instance(self):
        assert isinstance(stable_rng("x"), random.Random)

    def test_same_seed_same_stream(self):
        a = stable_rng("seed", 1)
        b = stable_rng("seed", 1)
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_seed_different_stream(self):
        a = stable_rng("seed", 1).random()
        b = stable_rng("seed", 2).random()
        assert a != b


class TestStableUniform:
    def test_within_bounds(self):
        for i in range(50):
            value = stable_uniform(2.0, 5.0, "k", i)
            assert 2.0 <= value < 5.0

    def test_deterministic(self):
        assert stable_uniform(0, 1, "a") == stable_uniform(0, 1, "a")


class TestStableChoice:
    def test_choice_in_options(self):
        options = ["x", "y", "z"]
        assert stable_choice(options, "key") in options

    def test_deterministic(self):
        options = list(range(100))
        assert stable_choice(options, "k") == stable_choice(options, "k")

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            stable_choice([], "k")
