"""Gamma configuration, dataset model, OS adapters."""

import pytest

from repro.core.gamma.config import GammaComponents, GammaConfig
from repro.core.gamma.osadapt import DarwinAdapter, LinuxAdapter, WindowsAdapter, adapter_for
from repro.core.gamma.output import (
    ANONYMIZED_IP,
    VolunteerDataset,
    WebsiteMeasurement,
    anonymize,
)
from repro.core.gamma.parsers import NormalizedHop, NormalizedTraceroute


class TestGammaConfig:
    def test_study_defaults_match_paper(self):
        config = GammaConfig.study_defaults()
        assert config.browser == "chrome"
        assert config.instances == 1
        assert config.wait_time_s == 20.0
        assert config.hard_timeout_s == 180.0

    def test_invalid_browser(self):
        with pytest.raises(ValueError):
            GammaConfig(browser="lynx")

    def test_invalid_instances(self):
        with pytest.raises(ValueError):
            GammaConfig(instances=0)

    def test_hard_timeout_must_cover_wait(self):
        with pytest.raises(ValueError):
            GammaConfig(wait_time_s=200, hard_timeout_s=100)

    def test_c1_required(self):
        with pytest.raises(ValueError):
            GammaConfig(components=frozenset({GammaComponents.NETINFO}))

    def test_unknown_component(self):
        with pytest.raises(ValueError):
            GammaConfig(components=frozenset({"C1", "C9"}))

    def test_unknown_os(self):
        with pytest.raises(ValueError):
            GammaConfig(os_name="beos")

    def test_without_traceroutes(self):
        config = GammaConfig.study_defaults().without_traceroutes()
        assert not config.traceroutes_enabled
        assert config.netinfo_enabled

    def test_component_flags(self):
        config = GammaConfig.study_defaults()
        assert config.traceroutes_enabled and config.netinfo_enabled


class TestAdapters:
    def test_adapter_for(self):
        assert isinstance(adapter_for("linux"), LinuxAdapter)
        assert isinstance(adapter_for("windows"), WindowsAdapter)
        assert isinstance(adapter_for("darwin"), DarwinAdapter)

    def test_unknown_os_rejected(self):
        with pytest.raises(ValueError):
            adapter_for("plan9")

    def test_commands(self):
        assert adapter_for("linux").traceroute_command == "traceroute"
        assert adapter_for("windows").traceroute_command == "tracert"
        assert adapter_for("darwin").traceroute_command == "traceroute"


def _measurement(url="x.co.th", loaded=True):
    trace = NormalizedTraceroute(
        target="5.0.0.1", reached=True,
        hops=[NormalizedHop(1, "192.168.1.1", (1.0,)), NormalizedHop(2, "5.0.0.1", (30.0,))],
        tool="traceroute",
    )
    measurement = WebsiteMeasurement(url=url, category="regional", loaded=loaded)
    if loaded:  # failed loads record nothing beyond the failure itself
        measurement.requested_hosts = ["x.co.th", "t.tracker.net"]
        measurement.background_hosts = ["update.googleapis.com"]
        measurement.dns = {"x.co.th": "5.0.1.1", "t.tracker.net": "5.0.0.1"}
        measurement.rdns = {"5.0.0.1": "edge-1.fra01.example.net", "5.0.1.1": None}
        measurement.traceroutes = {"5.0.0.1": trace}
    return measurement


class TestDataset:
    def _dataset(self):
        ds = VolunteerDataset(
            country_code="TH", city_key="Bangkok, TH", volunteer_ip="5.9.9.10",
            os_name="linux", browser="chrome",
        )
        ds.add(_measurement())
        ds.add(_measurement("y.co.th", loaded=False))
        return ds

    def test_counts(self):
        ds = self._dataset()
        assert ds.attempted_count == 2
        assert ds.loaded_count == 1
        assert ds.load_success_pct() == 50.0

    def test_traceroute_counts(self):
        ds = self._dataset()
        assert ds.traceroute_counts() == {"attempted": 1, "reached": 1}
        assert not ds.traceroutes_all_failed

    def test_all_failed_detection(self):
        ds = self._dataset()
        trace = ds.websites["x.co.th"].traceroutes["5.0.0.1"]
        ds.websites["x.co.th"].traceroutes["5.0.0.1"] = NormalizedTraceroute(
            target=trace.target, reached=False, hops=trace.hops, tool=trace.tool,
        )
        assert ds.traceroutes_all_failed

    def test_resolved_addresses_unique_ordered(self):
        measurement = _measurement()
        assert measurement.resolved_addresses == ["5.0.1.1", "5.0.0.1"]

    def test_json_roundtrip(self):
        ds = self._dataset()
        back = VolunteerDataset.from_json(ds.to_json())
        assert back.country_code == "TH"
        assert back.websites["x.co.th"].dns == ds.websites["x.co.th"].dns
        assert back.websites["x.co.th"].traceroutes["5.0.0.1"].reached

    def test_all_requested_hosts(self):
        ds = self._dataset()
        assert set(ds.all_requested_hosts()) == {"x.co.th", "t.tracker.net"}

    def test_anonymize(self):
        ds = self._dataset()
        anonymize(ds)
        assert ds.volunteer_ip == ANONYMIZED_IP

    def test_empty_dataset_pct(self):
        ds = VolunteerDataset("TH", "Bangkok, TH", "1.2.3.4", "linux", "chrome")
        assert ds.load_success_pct() == 0.0
