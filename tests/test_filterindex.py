"""Indexed filter matching: equivalence with the naive scan, and the
memoised verdict cache.

The load-bearing property is byte-identical verdicts: ``FilterSet.match``
(suffix index + fragment gates) must return exactly what
``FilterSet.match_naive`` (the original O(lists × rules) scan, kept as
the reference oracle) returns — same ``FilterMatch``, same attributed
rule object — over arbitrary rule sets and hostnames.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.trackers.filterindex import FilterSetIndex, host_suffixes
from repro.core.trackers.filterlist import (
    FilterList,
    FilterSet,
    RuleKind,
    parse_filter_text,
)
from repro.core.trackers.identify import TrackerIdentifier
from repro.core.trackers.orgs import OrganizationDirectory, OrgEntry

# ---------------------------------------------------------------------------
# Generators: ABP-ish rule lines and hostnames drawn from a shared pool of
# base domains, so generated hosts actually collide with generated rules.

_BASES = [
    "ads.example", "track.example", "cdn.example", "pixel.example",
    "metrics.example", "doubleclick.net", "stats.co.uk", "banner.org",
]
_SUBS = ["", "a", "x.y", "telemetry", "stats.g"]

_base = st.sampled_from(_BASES)
_option = st.sampled_from(["", "$third-party", "$script,third-party", "$document"])


@st.composite
def _rule_line(draw) -> str:
    base = draw(_base)
    option = draw(_option)
    shape = draw(st.integers(0, 9))
    if shape <= 2:
        return f"||{base}^{option}"
    if shape == 3:
        return f"@@||{base}^{option}"
    if shape == 4:
        sub = draw(st.sampled_from(_SUBS))
        prefix = f"{sub}." if sub else ""
        return f"||{prefix}{base}^{option}"
    if shape == 5:
        return f"{base}."  # bare domain-fragment substring rule
    if shape == 6:
        return f"@@{base}."  # substring exception
    if shape == 7:
        return f"||{base}/ads/banner^{option}"  # path part: URL rule
    if shape == 8:
        return "/banner/ads/*"  # path substring, never matches hosts
    return "! a comment line"


@st.composite
def _hostname(draw) -> str:
    sub = draw(st.sampled_from(_SUBS))
    base = draw(st.one_of(_base, st.sampled_from(["innocent.org", "unrelated.example"])))
    return f"{sub}.{base}" if sub else base


@st.composite
def _filter_set(draw) -> FilterSet:
    n_lists = draw(st.integers(1, 3))
    lists = []
    for i in range(n_lists):
        lines = draw(st.lists(_rule_line(), min_size=0, max_size=12))
        lists.append(FilterList.parse(f"list-{i}", "\n".join(lines)))
    return FilterSet(lists)


class TestEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(_filter_set(), _hostname())
    def test_indexed_matches_naive(self, fset, host):
        assert fset.match(host) == fset.match_naive(host)

    @settings(max_examples=100, deadline=None)
    @given(_filter_set(), st.lists(_hostname(), min_size=1, max_size=8))
    def test_equivalence_over_host_batches(self, fset, hosts):
        for host in hosts:
            indexed = fset.match(host)
            naive = fset.match_naive(host)
            assert indexed == naive
            if indexed is not None:
                # Byte-identical attribution: the very same rule line.
                assert indexed.rule.raw == naive.rule.raw
                assert indexed.list_name == naive.list_name

    def test_host_suffixes(self):
        assert host_suffixes("a.b.c.com") == ["a.b.c.com", "b.c.com", "c.com", "com"]


class TestPrecedence:
    def test_earlier_rule_wins_attribution(self):
        text = "||sub.ads.example^\n||ads.example^\n"
        fset = FilterSet([FilterList.parse("t", text)])
        match = fset.match("x.sub.ads.example")
        assert match.rule.raw == "||sub.ads.example^"
        assert match == fset.match_naive("x.sub.ads.example")

    def test_fragment_rule_before_domain_rule_wins(self):
        text = "ads.example.\n||cdn.ads.example.net^\n"
        fset = FilterSet([FilterList.parse("t", text)])
        match = fset.match("cdn.ads.example.net")
        assert match.rule.kind == RuleKind.SUBSTRING
        assert match == fset.match_naive("cdn.ads.example.net")

    def test_domain_rule_before_fragment_rule_wins(self):
        text = "||cdn.ads.example.net^\nads.example.\n"
        fset = FilterSet([FilterList.parse("t", text)])
        match = fset.match("cdn.ads.example.net")
        assert match.rule.kind == RuleKind.DOMAIN_BLOCK
        assert match == fset.match_naive("cdn.ads.example.net")

    def test_exception_is_list_global(self):
        blocker = FilterList.parse("a", "||cdn.example^\n")
        excepter = FilterList.parse("b", "@@||cdn.example^\n")
        fset = FilterSet([blocker, excepter])
        assert fset.match("x.cdn.example") is None

    def test_substring_exception_suppresses_domain_block(self):
        text = "||telemetry.example.net^\n@@telemetry.example.\n"
        fset = FilterSet([FilterList.parse("t", text)])
        assert fset.match("telemetry.example.net") is None
        assert fset.match_naive("telemetry.example.net") is None

    def test_first_list_wins(self):
        fset = FilterSet([
            FilterList.parse("easylist", "||ads.example^\n"),
            FilterList.parse("easyprivacy", "||ads.example^\n"),
        ])
        assert fset.match("x.ads.example").list_name == "easylist"

    def test_option_rules_still_match(self):
        fset = FilterSet([FilterList.parse("t", "||ads.example^$third-party\n")])
        match = fset.match("ads.example")
        assert match is not None
        assert match.rule.options == ("third-party",)


class TestIndexMechanics:
    def test_lazy_build_and_invalidation(self):
        fset = FilterSet([FilterList.parse("a", "||ads.example^\n")])
        assert fset._index is None  # not built yet
        assert fset.match("ads.example") is not None
        first = fset.index
        assert fset.index is first  # cached
        fset.add(FilterList.parse("b", "@@||ads.example^\n"))
        assert fset._index is None  # invalidated by mutation
        assert fset.match("ads.example") is None

    def test_deterministic_rebuild(self):
        text = "||ads.example^\ntrack.example.\n@@||safe.example^\n"
        a = FilterSet([FilterList.parse("l", text)])
        b = FilterSet([FilterList.parse("l", text)])
        hosts = ["ads.example", "x.track.example.net", "safe.example", "other.org"]
        assert [a.match(h) for h in hosts] == [b.match(h) for h in hosts]
        assert a.index.stats() == b.index.stats()

    def test_index_pickles(self):
        text = "||ads.example^\ntrack.example.\n@@optout.example.\n@@||safe.example^\n"
        fset = FilterSet([FilterList.parse("l", text)])
        _ = fset.index  # force the build before pickling
        restored = pickle.loads(pickle.dumps(fset))
        for host in ["ads.example", "x.track.example.net", "safe.example",
                     "a.optout.example.org", "other.org"]:
            assert restored.match(host) == fset.match_naive(host)

    def test_standalone_index_pickles(self):
        lists = [FilterList.parse("l", "||ads.example^\ntrack.example.\n")]
        index = FilterSetIndex.build(lists)
        restored = pickle.loads(pickle.dumps(index))
        assert restored.match("sub.ads.example") == index.match("sub.ads.example")
        assert restored.match("x.track.example.org") == index.match("x.track.example.org")

    def test_empty_set(self):
        fset = FilterSet()
        assert fset.match("anything.example") is None
        assert fset.index.stats()["indexed_rules"] == 0

    def test_stats_shape(self):
        text = "||ads.example^\n||ads.example^\ntrack.example.\n@@||safe.example^\n"
        fset = FilterSet([FilterList.parse("l", text)])
        stats = fset.index.stats()
        # Duplicate domains collapse to one entry; earliest wins.
        assert stats == {
            "lists": 1,
            "indexed_rules": 2,
            "exception_domains": 1,
            "has_exception_gate": False,
        }


# ---------------------------------------------------------------------------
# The memoised verdict cache: classification through the cache must be
# byte-identical to the uncached reference path, with exact accounting.


@pytest.fixture()
def identifier():
    directory = OrganizationDirectory([
        OrgEntry("ManualAds", "JO", ("manualads.example",), is_tracker=True),
    ])
    global_lists = FilterSet([FilterList.parse("easylist", "||doubleclick.net^\n")])
    regional = {"IN": FilterSet([FilterList.parse("regional-IN", "||admobi.in^\n")])}
    return TrackerIdentifier(global_lists, regional, directory)


class TestVerdictCache:
    def test_cached_equals_uncached(self, identifier):
        for host in ["ad.doubleclick.net", "px.manualads.example", "innocent.org"]:
            for cc in [None, "IN", "TH"]:
                assert identifier.classify(host, cc) == identifier.classify_uncached(host, cc)

    def test_hit_miss_accounting(self, identifier):
        before = identifier.cache_info()
        identifier.classify("ad.doubleclick.net", "TH")
        identifier.classify("ad.doubleclick.net", "TH")
        after = identifier.cache_info()
        assert after.misses - before.misses == 1
        assert after.hits - before.hits == 1

    def test_countries_without_regional_list_share_entries(self, identifier):
        identifier.classify("ad.doubleclick.net", "TH")
        before = identifier.cache_info()
        # JP has no regional list either -> same cache key as TH.
        identifier.classify("ad.doubleclick.net", "JP")
        after = identifier.cache_info()
        assert after.hits - before.hits == 1
        assert after.misses == before.misses

    def test_regional_country_gets_own_entry(self, identifier):
        identifier.classify("ads.admobi.in", "TH")
        before = identifier.cache_info()
        identifier.classify("ads.admobi.in", "IN")  # regional list exists
        after = identifier.cache_info()
        assert after.misses - before.misses == 1
        # And the verdicts genuinely differ across that key split.
        assert identifier.classify("ads.admobi.in", "IN").is_tracker
        assert not identifier.classify("ads.admobi.in", "TH").is_tracker

    def test_identifier_pickles_with_cache(self, identifier):
        verdict = identifier.classify("ad.doubleclick.net", "TH")
        restored = pickle.loads(pickle.dumps(identifier))
        assert restored.classify("ad.doubleclick.net", "TH") == verdict
        # The memo travelled: the first lookup after unpickling is a hit.
        info = restored.cache_info()
        assert info.hits >= 1

    @settings(max_examples=60, deadline=None)
    @given(_hostname(), st.sampled_from([None, "IN", "TH", "JP"]))
    def test_property_cached_equals_uncached(self, host, cc):
        directory = OrganizationDirectory([
            OrgEntry("Ads", "US", ("ads.example",), is_tracker=True),
        ])
        fresh = TrackerIdentifier(
            FilterSet([FilterList.parse("l", "||doubleclick.net^\ntrack.example.\n")]),
            {"IN": FilterSet([FilterList.parse("r", "||metrics.example^\n")])},
            directory,
        )
        assert fresh.classify(host, cc) == fresh.classify_uncached(host, cc)
