"""Websites, embedded resources, and the site catalogue."""

import pytest

from repro.web.catalog import SiteCatalog
from repro.web.website import (
    CATEGORY_GOVERNMENT,
    CATEGORY_REGIONAL,
    EmbeddedResource,
    ResourceKind,
    Website,
)


def make_site(domain="news.example.com", country="TH", category=CATEGORY_REGIONAL, **kwargs):
    return Website(domain=domain, country_code=country, category=category,
                   owner_org="Pub", **kwargs)


class TestEmbeddedResource:
    def test_validates_host(self):
        with pytest.raises(ValueError):
            EmbeddedResource(host="")

    def test_validates_kind(self):
        with pytest.raises(ValueError):
            EmbeddedResource(host="x.com", kind="weird")

    def test_validates_probability(self):
        with pytest.raises(ValueError):
            EmbeddedResource(host="x.com", load_probability=0.0)
        with pytest.raises(ValueError):
            EmbeddedResource(host="x.com", load_probability=1.5)

    def test_always_fires_at_p1(self):
        resource = EmbeddedResource(host="x.com")
        assert all(resource.fires(f"v{i}") for i in range(10))

    def test_probabilistic_fire_deterministic(self):
        resource = EmbeddedResource(host="x.com", load_probability=0.5)
        assert resource.fires("v1") == resource.fires("v1")

    def test_probabilistic_fire_varies_by_visit(self):
        resource = EmbeddedResource(host="x.com", load_probability=0.5)
        outcomes = {resource.fires(f"v{i}") for i in range(40)}
        assert outcomes == {True, False}

    def test_country_targeting(self):
        resource = EmbeddedResource(host="x.com", countries=("AU", "QA"))
        assert resource.fires("v", "AU")
        assert not resource.fires("v", "TH")
        assert not resource.fires("v", None)


class TestWebsite:
    def test_invalid_category_rejected(self):
        with pytest.raises(ValueError):
            make_site(category="blog")

    def test_complexity_floor(self):
        with pytest.raises(ValueError):
            make_site(complexity=0.5)

    def test_requested_hosts_order(self):
        site = make_site(embedded=[EmbeddedResource(host="t.tracker.com")])
        hosts = site.requested_hosts("v1", "TH")
        assert hosts[0] == ("news.example.com", "document")
        assert hosts[1] == ("static.news.example.com", ResourceKind.IMAGE)
        assert ("t.tracker.com", ResourceKind.SCRIPT) in hosts

    def test_geo_targeted_resource_respects_country(self):
        site = make_site(embedded=[EmbeddedResource(host="t.tracker.com", countries=("AU",))])
        assert "t.tracker.com" not in [h for h, _ in site.requested_hosts("v1", "TH")]
        assert "t.tracker.com" in [h for h, _ in site.requested_hosts("v1", "AU")]

    def test_is_government(self):
        assert make_site(domain="x.go.th", category=CATEGORY_GOVERNMENT).is_government
        assert not make_site().is_government

    def test_embedded_hosts(self):
        site = make_site(embedded=[EmbeddedResource(host="a.com"), EmbeddedResource(host="b.com")])
        assert site.embedded_hosts() == ["a.com", "b.com"]


class TestSiteCatalog:
    def test_add_and_get(self):
        catalog = SiteCatalog([make_site()])
        assert catalog.get("news.example.com").country_code == "TH"
        assert catalog.has("news.example.com")
        assert len(catalog) == 1

    def test_duplicate_rejected(self):
        catalog = SiteCatalog([make_site()])
        with pytest.raises(ValueError):
            catalog.add(make_site())

    def test_missing_raises(self):
        with pytest.raises(KeyError):
            SiteCatalog().get("nope.example")

    def test_in_country_by_category(self):
        catalog = SiteCatalog([
            make_site("a.co.th", "TH", CATEGORY_REGIONAL),
            make_site("b.go.th", "TH", CATEGORY_GOVERNMENT),
            make_site("c.com.eg", "EG", CATEGORY_REGIONAL),
        ])
        assert len(catalog.regional("TH")) == 1
        assert len(catalog.government("TH")) == 1
        assert len(catalog.in_country("TH")) == 2
        assert catalog.countries == ["EG", "TH"]

    def test_market_includes_listed_globals(self):
        global_site = make_site("google.example", "US", listed_in=("TH", "EG"))
        catalog = SiteCatalog([make_site("a.co.th", "TH"), global_site])
        th_market = {s.domain for s in catalog.market("TH", CATEGORY_REGIONAL)}
        assert th_market == {"a.co.th", "google.example"}
        # Not listed in PK.
        assert {s.domain for s in catalog.market("PK")} == set()

    def test_market_does_not_duplicate_home_country(self):
        global_site = make_site("google.example", "US", listed_in=("TH",))
        catalog = SiteCatalog([global_site])
        us_market = catalog.market("US")
        assert [s.domain for s in us_market] == ["google.example"]
