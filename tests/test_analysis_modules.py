"""Per-figure analyses over hand-built study records."""

import pytest

from repro.core.analysis.continents import ContinentFlowAnalysis
from repro.core.analysis.firstparty import FirstPartyAnalysis
from repro.core.analysis.flows import FlowAnalysis
from repro.core.analysis.hosting import HostingAnalysis
from repro.core.analysis.organizations import OrganizationAnalysis
from repro.core.analysis.perwebsite import PerWebsiteAnalysis
from repro.core.analysis.policy import PolicyAnalysis
from repro.core.analysis.prevalence import PrevalenceAnalysis
from repro.core.analysis.records import CountryStudyResult, NonLocalTracker, SiteTrackerRecord
from repro.core.analysis.report import render_table
from repro.core.gamma.output import VolunteerDataset
from repro.core.geoloc.pipeline import DatasetGeolocation
from repro.core.trackers.orgs import OrganizationDirectory, OrgEntry
from repro.core.trackers.party import PartyClassifier
from repro.netsim.geography import default_registry
from repro.policy.registry import default_policy_registry

REG = default_registry()


def tracker(host, dest, org=None, address="5.0.0.1"):
    return NonLocalTracker(host=host, address=address, destination_country=dest,
                           destination_city_key=f"X, {dest}", org_name=org)


def site(url, cc, category, trackers=()):
    return SiteTrackerRecord(url=url, country_code=cc, category=category,
                             trackers=list(trackers))


def result(cc, sites):
    return CountryStudyResult(
        country_code=cc,
        dataset=VolunteerDataset(cc, f"City, {cc}", "0.0.0.0", "linux", "chrome"),
        geolocation=DatasetGeolocation(country_code=cc),
        sites=sites,
    )


@pytest.fixture()
def results():
    """Two countries: NZ (foreign-heavy, flows to AU) and CA (clean)."""
    nz_sites = [
        site("a.co.nz", "NZ", "regional",
             [tracker("t1.ads.example", "AU", "Google"), tracker("t2.ads.example", "US", "Heap")]),
        site("b.co.nz", "NZ", "regional", [tracker("t1.ads.example", "AU", "Google")]),
        site("c.co.nz", "NZ", "regional"),
        site("health.govt.nz", "NZ", "government", [tracker("t1.ads.example", "AU", "Google")]),
    ]
    ca_sites = [
        site("a.co.ca", "CA", "regional"),
        site("gc.gc.ca", "CA", "government"),
    ]
    return [result("NZ", nz_sites), result("CA", ca_sites)]


class TestPrevalence:
    def test_per_country(self, results):
        rows = {r.country_code: r for r in PrevalenceAnalysis(results).per_country()}
        assert rows["NZ"].regional_pct == pytest.approx(100 * 2 / 3)
        assert rows["NZ"].government_pct == 100.0
        assert rows["NZ"].combined_pct == pytest.approx(75.0)
        assert rows["CA"].combined_pct == 0.0

    def test_countries_with_foreign_trackers(self, results):
        assert PrevalenceAnalysis(results).countries_with_foreign_trackers() == ["NZ"]

    def test_mean_and_stdev(self, results):
        summary = PrevalenceAnalysis(results).regional_mean_and_stdev()
        assert summary["mean"] == pytest.approx((100 * 2 / 3 + 0) / 2)

    def test_correlation(self, results):
        # Two points give a perfect correlation by construction.
        assert PrevalenceAnalysis(results).regional_government_correlation() == pytest.approx(1.0)


class TestPerWebsite:
    def test_counts_only_sites_with_trackers(self, results):
        analysis = PerWebsiteAnalysis(results)
        assert sorted(analysis.counts_for("NZ")) == [1, 1, 2]
        assert analysis.counts_for("CA") == []

    def test_distribution_boxplot(self, results):
        dist = PerWebsiteAnalysis(results).distribution("NZ")
        assert dist.box.median == 1
        assert dist.sites_with_trackers == 3

    def test_empty_distribution(self, results):
        dist = PerWebsiteAnalysis(results).distribution("CA")
        assert dist.box is None

    def test_histogram(self, results):
        assert PerWebsiteAnalysis(results).histogram("NZ") == {1: 2, 2: 1}

    def test_histogram_clamps(self, results):
        assert PerWebsiteAnalysis(results).histogram("NZ", max_count=1) == {1: 3}

    def test_unknown_country_raises(self, results):
        with pytest.raises(KeyError):
            PerWebsiteAnalysis(results).counts_for("ZZ")


class TestFlows:
    def test_edges(self, results):
        analysis = FlowAnalysis(results)
        edges = {(e.source, e.destination): e.website_count for e in analysis.edges()}
        assert edges[("NZ", "AU")] == 3
        assert edges[("NZ", "US")] == 1

    def test_destination_shares(self, results):
        shares = FlowAnalysis(results).destination_shares()
        assert shares["AU"] == pytest.approx(100.0)  # every tracked site uses AU
        assert shares["US"] == pytest.approx(100 / 3)

    def test_single_source_effect(self, results):
        effects = FlowAnalysis(results).single_source_effect("AU")
        assert effects["NZ"] == 0.0  # removing NZ removes all AU flow

    def test_source_counts(self, results):
        assert FlowAnalysis(results).source_count_per_destination() == {"AU": 1, "US": 1}

    def test_dominant_source(self, results):
        assert FlowAnalysis(results).dominant_source("AU") == "NZ"
        assert FlowAnalysis(results).dominant_source("FR") is None

    def test_destinations_of(self, results):
        assert FlowAnalysis(results).destinations_of("NZ") == {"AU": 3, "US": 1}

    def test_category_filter(self, results):
        gov_edges = FlowAnalysis(results).edges(category="government")
        assert {(e.source, e.destination) for e in gov_edges} == {("NZ", "AU")}


class TestContinents:
    def test_matrix_and_hub(self, results):
        analysis = ContinentFlowAnalysis(results, REG)
        matrix = analysis.matrix()
        assert matrix[("Oceania", "Oceania")] == 3
        assert matrix[("Oceania", "North America")] == 1
        assert analysis.inward_flow("North America") == 1
        assert analysis.inward_flow("Oceania") == 0
        assert analysis.intra_flow("Oceania") == 3

    def test_share_staying_within(self, results):
        analysis = ContinentFlowAnalysis(results, REG)
        assert analysis.share_staying_within("Oceania") == pytest.approx(0.75)

    def test_inward_source_continents(self, results):
        analysis = ContinentFlowAnalysis(results, REG)
        assert analysis.inward_source_continents("North America") == ["Oceania"]


class TestOrganizations:
    @pytest.fixture()
    def directory(self):
        return OrganizationDirectory([
            OrgEntry("Google", "US", ("google-t.example",), is_tracker=True),
            OrgEntry("Heap", "US", ("heap-t.example",), is_tracker=True),
        ])

    def test_flow_edges_and_tops(self, results, directory):
        analysis = OrganizationAnalysis(results, directory)
        edges = {(s, o): n for s, o, n in analysis.flow_edges()}
        assert edges[("NZ", "Google")] == 3
        assert analysis.top_organizations(1) == [("Google", 3)]

    def test_home_country_distribution(self, results, directory):
        distribution = OrganizationAnalysis(results, directory).home_country_distribution()
        assert distribution == {"US": 100.0}

    def test_country_exclusive(self, results, directory):
        exclusive = OrganizationAnalysis(results, directory).country_exclusive_organizations()
        assert exclusive == {"NZ": ["Google", "Heap"]}

    def test_cloud_requires_ipinfo(self, results, directory):
        with pytest.raises(ValueError):
            OrganizationAnalysis(results, directory).cloud_hosted_trackers()


class TestHosting:
    def test_domains_per_destination(self, results):
        counts = HostingAnalysis(results).domains_per_destination()
        # (NZ, t1)->AU and (NZ, t2)->US: one distinct pair each.
        assert counts == {"AU": 1, "US": 1}

    def test_breakdown_by_source(self, results):
        assert HostingAnalysis(results).breakdown_by_source("AU") == {"NZ": 1}

    def test_destinations_hosting_exactly(self, results):
        assert HostingAnalysis(results).destinations_hosting_exactly(1) == ["AU", "US"]

    def test_unique_domains(self, results):
        assert HostingAnalysis(results).unique_domains_per_destination() == {"AU": 1, "US": 1}


class TestFirstParty:
    def test_detection(self):
        directory = OrganizationDirectory([
            OrgEntry("Google", "US", ("google.jo", "googleapis.com"), is_tracker=True,
                     tracking_domains=("googleapis.com",)),
        ])
        records = [result("JO", [
            site("google.jo", "JO", "regional", [tracker("fonts.googleapis.com", "FR", "Google")]),
            site("news.jo", "JO", "regional", [tracker("fonts.googleapis.com", "FR", "Google")]),
        ])]
        analysis = FirstPartyAnalysis(records, PartyClassifier(directory))
        assert analysis.sites_with_nonlocal() == 2
        first_party = analysis.first_party_sites()
        assert [s.url for s in first_party] == ["google.jo"]
        assert analysis.owner_breakdown() == {"Google": 1}
        assert analysis.first_party_share() == pytest.approx(0.5)


class TestPolicyAnalysis:
    def test_rows_ordered_by_strictness(self, results):
        analysis = PolicyAnalysis(results, default_policy_registry())
        rows = analysis.table_rows()
        assert [r.country_code for r in rows] == ["CA", "NZ"]  # both TA, alphabetical
        assert all(r.policy_type == "TA" for r in rows)

    def test_mean_by_type(self, results):
        means = PolicyAnalysis(results, default_policy_registry()).mean_rate_by_policy_type()
        assert means["TA"] == pytest.approx((0.0 + 75.0) / 2)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["a", "bb"], [["x", 1], ["yyy", 22]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5
