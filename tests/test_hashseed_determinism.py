"""Cross-process determinism under Python hash randomisation.

Every stochastic decision flows through SHA-256-seeded RNGs, so results
must be identical across processes with different ``PYTHONHASHSEED``
values.  (A regression here once slipped in via iterating a ``set``
whose order is hash-seed dependent.)
"""

import os
import subprocess
import sys

SNIPPET = """
import json
from repro import build_scenario, run_study
outcome = run_study(build_scenario(), countries=["RW", "GB"])
funnel = outcome.funnel()
print(json.dumps({
    "funnel": [funnel.total_hosts, funnel.nonlocal_candidates, funnel.after_rdns],
    "rw_hosts": sorted(outcome.result_for("RW").nonlocal_tracker_hosts())[:20],
    "gb_pct": round(outcome.prevalence().combined_pct_by_country()["GB"], 4),
}, sort_keys=True))
"""


def _run_with_hashseed(seed: str) -> str:
    env = dict(os.environ, PYTHONHASHSEED=seed)
    result = subprocess.run(
        [sys.executable, "-c", SNIPPET],
        capture_output=True, text=True, env=env, check=True,
    )
    return result.stdout.strip()


def test_identical_results_across_hash_seeds():
    outputs = {_run_with_hashseed(seed) for seed in ("0", "12345", "random")}
    assert len(outputs) == 1, f"hash-seed-dependent results: {outputs}"
