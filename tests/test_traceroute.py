"""Traceroute synthesis, blocking, and raw-output rendering."""

import re

import pytest

from repro.netsim.distance import city_distance_km, min_rtt_ms
from repro.netsim.geography import default_registry
from repro.netsim.ip import IPSpace
from repro.netsim.latency import LatencyModel
from repro.netsim.routing import hop_count_for_distance, synthesize_path
from repro.netsim.traceroute import (
    TracerouteBlocking,
    TracerouteEngine,
    render_linux,
    render_windows,
)

REG = default_registry()


@pytest.fixture()
def engine_and_target():
    space = IPSpace()
    allocation = space.allocate(5, REG.city("Frankfurt, DE"), label="X/fra1")
    engine = TracerouteEngine(LatencyModel(), space, TracerouteBlocking(unreachable_rate=0.0))
    return engine, str(allocation.address(1)), space


class TestRouting:
    def test_hop_count_scales_with_distance(self):
        assert hop_count_for_distance(100) < hop_count_for_distance(10000)

    def test_hop_count_bounds(self):
        assert hop_count_for_distance(0) == 3
        assert hop_count_for_distance(1e6) == 20

    def test_negative_distance_raises(self):
        with pytest.raises(ValueError):
            hop_count_for_distance(-1)

    def test_fractions_strictly_increasing(self):
        src, dst = REG.city("London, GB"), REG.city("Tokyo, JP")
        path = synthesize_path(src, dst, "k")
        fractions = [w.fraction for w in path]
        assert all(b > a for a, b in zip(fractions, fractions[1:]))
        assert all(0 < f < 1 for f in fractions)

    def test_path_deterministic(self):
        src, dst = REG.city("London, GB"), REG.city("Tokyo, JP")
        assert synthesize_path(src, dst, "k") == synthesize_path(src, dst, "k")


class TestTracerouteEngine:
    def test_reaches_destination(self, engine_and_target):
        engine, target, _ = engine_and_target
        result = engine.trace(REG.city("London, GB"), target)
        assert result.reached
        assert result.hops[-1].address == target

    def test_rtts_monotone_nondecreasing(self, engine_and_target):
        engine, target, _ = engine_and_target
        result = engine.trace(REG.city("Bangkok, TH"), target)
        rtts = [h.rtt_ms for h in result.hops if h.responded]
        assert all(b >= a for a, b in zip(rtts, rtts[1:]))

    def test_last_hop_respects_sol(self, engine_and_target):
        engine, target, _ = engine_and_target
        src = REG.city("Bangkok, TH")
        result = engine.trace(src, target)
        floor = min_rtt_ms(city_distance_km(src, REG.city("Frankfurt, DE")))
        assert result.last_hop_rtt >= floor

    def test_first_hop_is_gateway(self, engine_and_target):
        engine, target, _ = engine_and_target
        result = engine.trace(REG.city("London, GB"), target)
        assert result.hops[0].address == "192.168.1.1"
        assert result.hops[0].rtt_ms < 5

    def test_unknown_target_unreached(self, engine_and_target):
        engine, _, _ = engine_and_target
        result = engine.trace(REG.city("London, GB"), "8.8.8.8")
        assert not result.reached
        assert result.destination_rtt is None

    def test_blocked_source_country_fails_entirely(self):
        space = IPSpace()
        allocation = space.allocate(5, REG.city("Frankfurt, DE"), label="X/fra1")
        engine = TracerouteEngine(
            LatencyModel(), space,
            TracerouteBlocking(blocked_source_countries={"AU"}, unreachable_rate=0.0),
        )
        result = engine.trace(REG.city("Sydney, AU"), str(allocation.address(1)))
        assert not result.reached
        assert all(not h.responded for h in result.hops)

    def test_deterministic(self, engine_and_target):
        engine, target, _ = engine_and_target
        a = engine.trace(REG.city("London, GB"), target, "k")
        b = engine.trace(REG.city("London, GB"), target, "k")
        assert [(h.address, h.rtt_ms) for h in a.hops] == [(h.address, h.rtt_ms) for h in b.hops]

    def test_unreachable_rate_applies(self):
        space = IPSpace()
        allocation = space.allocate(5, REG.city("Frankfurt, DE"), label="X/fra1")
        engine = TracerouteEngine(LatencyModel(), space, TracerouteBlocking(unreachable_rate=1.0))
        result = engine.trace(REG.city("London, GB"), str(allocation.address(1)))
        assert not result.reached

    def test_first_last_rtt_properties(self, engine_and_target):
        engine, target, _ = engine_and_target
        result = engine.trace(REG.city("London, GB"), target)
        assert result.first_hop_rtt <= result.last_hop_rtt
        assert result.destination_rtt == result.last_hop_rtt


class TestRendering:
    def test_linux_format(self, engine_and_target):
        engine, target, _ = engine_and_target
        text = render_linux(engine.trace(REG.city("London, GB"), target))
        assert text.startswith(f"traceroute to {target}")
        assert re.search(r"\d+\.\d+ ms", text)

    def test_windows_format(self, engine_and_target):
        engine, target, _ = engine_and_target
        text = render_windows(engine.trace(REG.city("London, GB"), target))
        assert "Tracing route to" in text
        assert "Trace complete." in text

    def test_windows_unreached_not_complete(self, engine_and_target):
        engine, _, _ = engine_and_target
        text = render_windows(engine.trace(REG.city("London, GB"), "8.8.8.8"))
        assert "Trace complete." not in text
        assert "Request timed out." in text

    def test_linux_star_hops(self, engine_and_target):
        engine, _, _ = engine_and_target
        text = render_linux(engine.trace(REG.city("London, GB"), "8.8.8.8"))
        assert "* * *" in text
