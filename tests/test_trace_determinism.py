"""Journal determinism and coverage — the observability acceptance suite.

The run journal must itself be a backend-equivalence artefact: the same
scenario traced through serial/thread/process backends at any worker
count yields byte-identical JSONL once timing/runtime fields are
stripped.  The suite also proves the journal is *complete* (one
constraint-decision event per geolocated server, funnel drill-down equal
to ``StudyOutcome.funnel()``) and *free* (tracing off ⇒ no buffers, no
journal, artefacts unchanged — extending the equivalence harness in
``tests/test_exec_equivalence.py``).
"""

from __future__ import annotations

import pytest

from repro import run_study, strip_timings
from repro.cli import main
from repro.obs import RunJournal, funnel_from_journal, validate_journal
from tests.test_exec_equivalence import assert_outcomes_identical

#: Three countries exercising the interesting paths: a tracker-local
#: country (CA), the cross-border Atlas probe fallback (QA), and the
#: traceroute opt-out volunteer (EG).
TRACE_COUNTRIES = ["CA", "QA", "EG"]


@pytest.fixture(scope="module")
def traced_serial(scenario):
    return run_study(scenario, countries=TRACE_COUNTRIES, trace=True)


class TestJournalDeterminism:
    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1), ("thread", 1), ("thread", 4), ("process", 1), ("process", 4),
    ])
    def test_stripped_journal_byte_identical_across_backends(
        self, scenario, traced_serial, backend, jobs
    ):
        other = run_study(
            scenario, countries=TRACE_COUNTRIES, jobs=jobs, backend=backend,
            trace=True,
        )
        assert other.journal.dumps(timings=False) == traced_serial.journal.dumps(
            timings=False
        )

    def test_tracing_does_not_perturb_study_artefacts(self, scenario, traced_serial):
        untraced = run_study(scenario, countries=TRACE_COUNTRIES)
        assert_outcomes_identical(untraced, traced_serial)

    def test_no_timings_write_matches_strip_of_timed_write(
        self, traced_serial, tmp_path
    ):
        timed = traced_serial.journal.write(tmp_path / "timed.jsonl")
        stripped = traced_serial.journal.write(
            tmp_path / "stripped.jsonl", timings=False
        )
        rejournal = RunJournal(strip_timings(RunJournal.read(timed).records))
        assert stripped.read_text() == rejournal.dumps()


class TestJournalCoverage:
    def test_every_line_conforms_to_schema(self, traced_serial):
        assert validate_journal(traced_serial.journal.records) == []

    def test_one_decision_event_per_geolocated_server(self, traced_serial):
        journal = traced_serial.journal
        for cc in TRACE_COUNTRIES:
            recorded = {
                r["address"]
                for r in journal.events("geoloc_decision")
                if r["span"] == f"study/{cc}/geoloc"
            }
            assert recorded == set(traced_serial.geolocations[cc].verdicts), cc

    def test_funnel_drilldown_equals_outcome_funnel(self, traced_serial):
        merged = funnel_from_journal(traced_serial.journal)["ALL"]
        funnel = traced_serial.funnel()
        for key, value in merged.items():
            assert value == getattr(funnel, key), key

    def test_span_tree_covers_every_country_and_phase(self, traced_serial):
        journal = traced_serial.journal
        country_spans = {s["name"] for s in journal.spans("country")}
        assert country_spans == set(TRACE_COUNTRIES)
        for cc in TRACE_COUNTRIES:
            phases = {
                s["name"] for s in journal.spans("phase")
                if s["parent"] == f"study/{cc}"
            }
            assert phases == {"gamma", "source_traces", "geoloc", "join"}, cc
        assert [s["name"] for s in journal.spans("study")] == ["study"]

    def test_site_visits_match_dataset(self, traced_serial):
        journal = traced_serial.journal
        for cc in TRACE_COUNTRIES:
            visits = [
                r for r in journal.events("site_visit")
                if r["span"].startswith(f"study/{cc}/")
            ]
            dataset = traced_serial.datasets[cc]
            assert len(visits) == dataset.attempted_count, cc
            assert sum(1 for v in visits if v["loaded"]) == dataset.loaded_count, cc

    def test_tracker_matches_attribute_a_method(self, traced_serial):
        matches = traced_serial.journal.events("tracker_match")
        assert matches, "study with trackers produced no attribution events"
        assert all(m["method"] in ("global_list", "regional_list", "manual")
                   for m in matches)


class TestTracingDisabled:
    def test_default_run_has_no_journal_or_buffers(self, study_small):
        assert study_small.journal is None

    def test_trace_true_attaches_without_writing(self, traced_serial):
        assert traced_serial.journal is not None
        assert traced_serial.journal.run_record["countries"] == TRACE_COUNTRIES


class TestProcessBackendCacheStats:
    def test_worker_side_cache_activity_is_counted(self, scenario):
        outcome = run_study(scenario, countries=["CA", "NZ"], jobs=2,
                            backend="process")
        infos = outcome.metrics.cache_infos
        verdicts = infos.get("trackers.verdicts", {"hits": 0, "misses": 0})
        assert verdicts["hits"] + verdicts["misses"] > 0
        assert sum(i["hits"] + i["misses"] for i in infos.values()) > 0


class TestTraceCLI:
    def test_study_trace_roundtrip(self, tmp_path, capsys):
        journal_path = tmp_path / "run.jsonl"
        assert main(["study", "--countries", "CA", "--backend", "process",
                     "--jobs", "2", "--trace", str(journal_path),
                     "--cache-stats"]) == 0
        out = capsys.readouterr().out
        assert "run journal written" in out
        assert "Memo-cache statistics" in out
        assert "%" in out  # phase-share column in the metrics block

        assert main(["trace", str(journal_path), "--validate"]) == 0
        assert "journal OK" in capsys.readouterr().out

        assert main(["trace", str(journal_path), "--top", "3"]) == 0
        rendered = capsys.readouterr().out
        assert "span tree" in rendered
        assert "funnel drill-down" in rendered
        assert "top 3 slowest site visits" in rendered
        assert "cache activity" in rendered

    def test_no_timings_flag_strips_journal(self, tmp_path, capsys):
        journal_path = tmp_path / "flat.jsonl"
        assert main(["study", "--countries", "CA", "--trace", str(journal_path),
                     "--no-timings"]) == 0
        capsys.readouterr()
        journal = RunJournal.read(journal_path)
        assert all("dur" not in r and "t" not in r for r in journal.records)
        assert "backend" not in journal.run_record

    def test_trace_validate_rejects_bad_journal(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ev": "nope"}\n')
        assert main(["trace", str(bad), "--validate"]) == 1
        assert "SCHEMA" in capsys.readouterr().out

    def test_trace_missing_file_fails_cleanly(self, tmp_path, capsys):
        assert main(["trace", str(tmp_path / "absent.jsonl")]) == 1
        assert "cannot read journal" in capsys.readouterr().out
