"""End-to-end study integration: method correctness against ground truth.

These tests run the real pipeline on the calibrated scenario (subset of
countries for speed) and check the *method's* properties — most
importantly the paper's precision claim: every verdict of "verified
non-local" corresponds to a server whose ground-truth location really is
outside the measurement country.
"""

import pytest

from repro import run_study
from repro.core.geoloc.pipeline import ServerStatus
from tests.conftest import SMALL_COUNTRIES


class TestPrecisionOracle:
    def test_verified_nonlocal_is_truly_foreign(self, scenario, study_small):
        """The 100 %-precision property (section 2.3)."""
        total = 0
        for cc, geolocation in study_small.geolocations.items():
            for verdict in geolocation.verdicts.values():
                if not verdict.is_verified_nonlocal:
                    continue
                total += 1
                truth = scenario.world.ips.true_country(verdict.address)
                assert truth is not None
                assert truth != cc, (
                    f"{verdict.address} verified non-local for {cc} "
                    f"but ground truth is {truth}"
                )
        assert total > 100  # the check must actually exercise many servers

    def test_local_verdicts_mostly_truly_local(self, scenario, study_small):
        """Local classification is raw-database; its precision is bounded
        by the injected wrong-country rate, not 100 %."""
        wrong = total = 0
        for cc, geolocation in study_small.geolocations.items():
            for verdict in geolocation.verdicts.values():
                if verdict.status != ServerStatus.LOCAL:
                    continue
                total += 1
                if scenario.world.ips.true_country(verdict.address) != cc:
                    wrong += 1
        assert total > 50
        assert wrong / total < 0.1


class TestCountryShapes:
    def test_canada_has_zero_nonlocal_trackers(self, study_small):
        row = next(r for r in study_small.prevalence().per_country() if r.country_code == "CA")
        assert row.combined_pct == 0.0

    def test_new_zealand_flows_to_australia(self, study_small):
        flows = study_small.flows().destinations_of("NZ")
        assert flows.get("AU", 0) > 0
        assert flows["AU"] == max(flows.values())

    def test_rwanda_flows_to_kenya_and_europe(self, study_small):
        flows = study_small.flows().destinations_of("RW")
        assert flows.get("KE", 0) > 0
        assert flows.get("FR", 0) + flows.get("DE", 0) > 0

    def test_rwanda_kenya_trackers_on_cloud(self, study_small):
        kenya_hosted = study_small.organizations().cloud_hosted_in_country("KE")
        assert len(kenya_hosted) > 5  # the AWS-Nairobi cluster

    def test_egypt_google_flows_to_germany(self, study_small):
        result = study_small.result_for("EG")
        google_dests = {
            t.destination_country
            for site in result.sites
            for t in site.trackers
            if t.org_name == "Google"
        }
        assert google_dests == {"DE"}


class TestFallbackPaths:
    def test_egypt_uses_atlas_fallback(self, study_small):
        assert study_small.source_trace_origins["EG"].startswith("atlas:")

    def test_qatar_fallback_crosses_border(self, study_small):
        origin = study_small.source_trace_origins["QA"]
        assert origin.startswith("atlas:")
        assert origin.split(":")[1] != "QA"

    def test_volunteer_countries_use_own_traces(self, study_small):
        assert study_small.source_trace_origins["CA"] == "volunteer"
        assert study_small.source_trace_origins["NZ"] == "volunteer"

    def test_qatar_volunteer_traceroutes_all_failed(self, study_small):
        assert study_small.datasets["QA"].traceroutes_all_failed

    def test_egypt_recorded_no_traceroutes(self, study_small):
        counts = study_small.datasets["EG"].traceroute_counts()
        assert counts["attempted"] == 0


class TestFunnelInvariants:
    def test_funnel_conservation(self, study_small):
        funnel = study_small.funnel()
        assert funnel.total_hosts == (
            funnel.unlocated + funnel.local + funnel.nonlocal_candidates
        )
        assert funnel.nonlocal_candidates >= funnel.after_latency_constraints
        assert funnel.after_latency_constraints >= funnel.after_rdns
        assert funnel.after_rdns == funnel.verified_nonlocal

    def test_substantial_discard_like_paper(self, study_small):
        funnel = study_small.funnel()
        # The paper discarded ~2/3 of non-local candidates; ours discards a
        # substantial share too (>20 %).
        assert funnel.verified_nonlocal < 0.8 * funnel.nonlocal_candidates


class TestDatasetHygiene:
    def test_ips_anonymized_after_analysis(self, study_small):
        for dataset in study_small.datasets.values():
            assert dataset.volunteer_ip == "0.0.0.0"

    def test_background_requests_never_in_tracker_records(self, study_small):
        from repro.browser.engine import CHROMEDRIVER_BACKGROUND_HOSTS

        for result in study_small.results:
            for site in result.sites:
                for tracker in site.trackers:
                    assert tracker.host not in CHROMEDRIVER_BACKGROUND_HOSTS

    def test_opted_out_sites_absent(self, scenario, study_full):
        for cc, volunteer in scenario.volunteers.items():
            dataset = study_full.datasets[cc]
            for url in volunteer.opted_out_sites:
                assert url not in dataset.websites


class TestDeterminism:
    def test_rerun_identical(self, scenario, study_small):
        again = run_study(scenario, countries=SMALL_COUNTRIES)
        for cc in SMALL_COUNTRIES:
            assert again.datasets[cc].to_json() == study_small.datasets[cc].to_json()
        first = {r.country_code: r.nonlocal_tracker_hosts() for r in study_small.results}
        second = {r.country_code: r.nonlocal_tracker_hosts() for r in again.results}
        assert first == second
