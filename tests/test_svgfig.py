"""SVG figure rendering."""

import xml.etree.ElementTree as ET

import pytest

from repro.core.analysis.sankey import Flow
from repro.core.analysis.svgfig import svg_flow_diagram, svg_grouped_bars

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestGroupedBars:
    def test_valid_svg_with_bars(self):
        rows = [("NZ", 77.1, 93.6), ("CA", 0.0, 0.0), ("RW", 86.0, 36.0)]
        root = parse(svg_grouped_bars(rows, "Figure 3"))
        assert root.tag == f"{SVG_NS}svg"
        rects = root.findall(f"{SVG_NS}rect")
        # background + 2 legend swatches + 2 bars per row
        assert len(rects) == 1 + 2 + 2 * len(rows)

    def test_bar_widths_proportional(self):
        rows = [("A", 100.0, 50.0)]
        root = parse(svg_grouped_bars(rows, "t"))
        bars = [r for r in root.findall(f"{SVG_NS}rect")][3:]
        widths = [float(r.get("width")) for r in bars]
        assert widths[0] == pytest.approx(2 * widths[1], rel=0.01)

    def test_labels_escaped(self):
        root = parse(svg_grouped_bars([("A&B", 1, 2)], "T<itle>"))
        texts = [t.text for t in root.findall(f"{SVG_NS}text")]
        assert "A&B" in texts

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_grouped_bars([], "t")


class TestFlowDiagram:
    def _flows(self):
        return [Flow("NZ", "AU", 100), Flow("PK", "FR", 60), Flow("PK", "DE", 40)]

    def test_valid_svg_with_nodes_and_ribbons(self):
        root = parse(svg_flow_diagram(self._flows(), "Figure 5"))
        rects = root.findall(f"{SVG_NS}rect")
        paths = root.findall(f"{SVG_NS}path")
        assert len(paths) == 3  # one ribbon per flow
        assert len(rects) == 1 + 2 + 3  # background + 2 sources + 3 targets

    def test_ribbon_thickness_proportional(self):
        root = parse(svg_flow_diagram(self._flows(), "t"))
        thicknesses = sorted(
            float(p.get("stroke-width")) for p in root.findall(f"{SVG_NS}path")
        )
        assert thicknesses[-1] == pytest.approx(2.5 * thicknesses[0], rel=0.05)

    def test_node_labels_present(self):
        svg = svg_flow_diagram(self._flows(), "t")
        assert "NZ (100)" in svg and "FR (60)" in svg

    def test_max_nodes_truncates(self):
        flows = [Flow(f"S{i:02d}", "T", 10) for i in range(30)]
        root = parse(svg_flow_diagram(flows, "t", max_nodes=5))
        paths = root.findall(f"{SVG_NS}path")
        assert len(paths) == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_flow_diagram([Flow("A", "B", 0)], "t")


class TestBundleIntegration:
    def test_svgs_in_export(self, study_small, tmp_path):
        from repro import export_study

        export_study(study_small, tmp_path / "bundle")
        svg_dir = tmp_path / "bundle" / "figures" / "svg"
        for name in ("fig3_prevalence.svg", "fig5_flows.svg", "fig6_continents.svg"):
            text = (svg_dir / name).read_text()
            parse(text)  # well-formed XML
