"""Unit tests for the observability substrate (``repro.obs``).

Covers the tracer's span/event mechanics, the journal's canonical
assembly and timing-strip contract, the per-line event schema, the
renderers, and the ExecMetrics satellites that ride along: the exact
``aggregate_seconds`` invariant, the phase-share render column, and the
per-worker cache-delta merge.
"""

from __future__ import annotations

import json

import pytest

from repro.exec.cache import CacheInfo
from repro.exec.metrics import CountryTimings, ExecMetrics
from repro.obs import (
    RunJournal,
    Tracer,
    funnel_from_journal,
    maybe_span,
    render_journal,
    strip_timings,
    validate_journal,
    validate_record,
)


class TestTracer:
    def test_span_paths_nest_under_root(self):
        tracer = Tracer(root="study")
        with tracer.span("country", "CA"):
            with tracer.span("phase", "gamma"):
                tracer.event("site_visit", url="a.ca", category="regional", loaded=True)
        spans = {r["span"]: r for r in tracer.events() if r["ev"] == "span"}
        assert set(spans) == {"study/CA", "study/CA/gamma"}
        assert spans["study/CA/gamma"]["parent"] == "study/CA"
        assert spans["study/CA"]["parent"] == "study"

    def test_spans_close_post_order(self):
        tracer = Tracer()
        with tracer.span("country", "outer"):
            with tracer.span("phase", "inner"):
                pass
        names = [r["name"] for r in tracer.events()]
        assert names == ["inner", "outer"]

    def test_events_attach_to_current_span(self):
        tracer = Tracer(root="study")
        with tracer.span("country", "NZ"):
            tracer.event("tracker_match", host="t.example", method="global_list")
        (event,) = [r for r in tracer.events() if r["ev"] == "tracker_match"]
        assert event["span"] == "study/NZ"
        assert event["host"] == "t.example"

    def test_spans_carry_timings(self):
        tracer = Tracer()
        with tracer.span("phase", "work"):
            pass
        (span,) = tracer.events()
        assert span["dur"] >= 0.0
        assert span["t"] >= 0.0

    def test_buffer_is_plain_json(self):
        tracer = Tracer(root="study")
        with tracer.span("country", "CA", origin="volunteer"):
            tracer.event("site_skip", url="x.ca", reason="opted_out")
        json.loads(json.dumps(tracer.events()))  # round-trips losslessly

    def test_maybe_span_is_noop_without_tracer(self):
        with maybe_span(None, "phase", "anything"):
            pass  # no error, nothing recorded anywhere


class TestJournal:
    def _journal(self) -> RunJournal:
        run = {"ev": "run", "schema": 1, "countries": ["CA"], "backend": "serial",
               "jobs": 1, "wall_seconds": 1.5}
        buffer = [
            {"ev": "span", "kind": "country", "name": "CA", "span": "study/CA",
             "parent": "study", "t": 0.0, "dur": 1.0},
            {"ev": "country_caches", "span": "study", "t": 1.0,
             "country": "CA", "caches": {"c": {"hits": 1, "misses": 2, "size": 3}}},
        ]
        tail = [{"ev": "span", "kind": "study", "name": "study", "span": "study",
                 "parent": "", "t": 0.0, "dur": 1.5}]
        return RunJournal.assemble(run, [buffer], tail)

    def test_assemble_orders_run_buffers_tail(self):
        journal = self._journal()
        assert [r["ev"] for r in journal] == ["run", "span", "country_caches", "span"]
        assert journal.run_record["backend"] == "serial"

    def test_strip_removes_timings_env_and_diagnostics(self):
        stripped = strip_timings(self._journal().records)
        assert [r["ev"] for r in stripped] == ["run", "span", "span"]
        for record in stripped:
            assert "t" not in record and "dur" not in record
        run = stripped[0]
        for key in ("backend", "jobs", "wall_seconds"):
            assert key not in run
        assert run["countries"] == ["CA"]

    def test_write_read_roundtrip(self, tmp_path):
        journal = self._journal()
        path = journal.write(tmp_path / "run.jsonl")
        assert RunJournal.read(path).records == journal.records

    def test_no_timings_write_equals_stripped_bytes(self, tmp_path):
        journal = self._journal()
        assert journal.dumps(timings=False) == RunJournal(
            strip_timings(journal.records)
        ).dumps()

    def test_lines_are_compact_sorted_json(self):
        line = next(iter(self._journal().lines()))
        assert line == json.dumps(json.loads(line), sort_keys=True,
                                  separators=(",", ":"))

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ev": "run"}\nnot json\n')
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            RunJournal.read(path)

    def test_filters(self):
        journal = self._journal()
        assert len(journal.events("country_caches")) == 1
        assert len(journal.spans("country")) == 1
        assert len(journal.spans()) == 2


class TestSchema:
    def test_valid_records_pass(self):
        assert validate_record({"ev": "run", "schema": 1, "countries": []}) == []
        assert validate_record({
            "ev": "geoloc_decision", "span": "study/CA/geoloc", "t": 0.1,
            "address": "1.2.3.4", "hosts": ["a"], "weight": 2,
            "status": "local", "claim_country": "CA", "discarded_by": None,
            "checks": [],
        }) == []

    def test_unknown_event_type_flagged(self):
        assert validate_record({"ev": "mystery"}, lineno=7) == [
            "line 7: unknown event type 'mystery'"
        ]

    def test_missing_required_field_flagged(self):
        problems = validate_record({"ev": "tracker_match", "host": "x"})
        assert any("method" in p for p in problems)

    def test_bool_not_accepted_as_int(self):
        problems = validate_record(
            {"ev": "site_traceroutes", "url": "u", "attempted": True, "reached": 0}
        )
        assert any("attempted" in p for p in problems)

    def test_undeclared_field_flagged(self):
        problems = validate_record({"ev": "site_skip", "url": "u", "reason": "r",
                                    "surprise": 1})
        assert any("surprise" in p for p in problems)

    def test_journal_must_start_with_run_record(self):
        records = [{"ev": "site_skip", "url": "u", "reason": "r"}]
        assert any("must start" in p for p in validate_journal(records))

    def test_unknown_span_kind_flagged(self):
        problems = validate_record({"ev": "span", "kind": "galaxy", "name": "n",
                                    "span": "n", "parent": ""})
        assert any("galaxy" in p for p in problems)


class TestRenderers:
    def _decision(self, country, status, weight, by=None):
        return {
            "ev": "geoloc_decision", "span": f"study/{country}/geoloc",
            "address": "9.9.9.9", "hosts": ["h"], "weight": weight,
            "status": status, "discarded_by": by,
        }

    def test_funnel_from_decisions(self):
        journal = RunJournal([
            {"ev": "run", "schema": 1, "countries": ["CA"]},
            self._decision("CA", "local", 3),
            self._decision("CA", "unlocated", 1),
            self._decision("CA", "nonlocal_verified", 4),
            self._decision("CA", "discarded", 2, by="source"),
            self._decision("CA", "discarded", 1, by="rdns"),
            {"ev": "country_funnel", "span": "study/CA/geoloc", "country": "CA",
             "funnel": {"destination_traceroutes": 5}},
        ])
        funnel = funnel_from_journal(journal)["CA"]
        assert funnel["total_hosts"] == 11
        assert funnel["local"] == 3
        assert funnel["unlocated"] == 1
        assert funnel["nonlocal_candidates"] == 7
        assert funnel["discarded_source"] == 2
        assert funnel["discarded_rdns"] == 1
        assert funnel["verified_nonlocal"] == 4
        assert funnel["destination_traceroutes"] == 5
        assert funnel_from_journal(journal)["ALL"]["total_hosts"] == 11

    def test_render_journal_handles_stripped_journal(self):
        journal = RunJournal(strip_timings([
            {"ev": "run", "schema": 1, "countries": ["CA"], "backend": "serial",
             "jobs": 1, "wall_seconds": 0.5},
            {"ev": "span", "kind": "study", "name": "study", "span": "study",
             "parent": "", "t": 0.0, "dur": 0.5},
        ]))
        text = render_journal(journal)
        assert "run journal" in text
        assert "backend=" not in text  # env fields stripped
        assert "no site timings" in text


class TestExecMetricsSatellites:
    def test_aggregate_equals_sum_of_country_seconds_exactly(self):
        metrics = ExecMetrics()
        # Values chosen to make naive float accumulation drift.
        for code, seconds in [("AA", 0.1), ("BB", 0.2), ("CC", 0.30000007),
                              ("DD", 1e-7), ("EE", 123.4567891)]:
            timings = CountryTimings(code)
            timings.phase_seconds["gamma"] = seconds
            metrics.record_country(timings)
        assert sum(metrics.country_seconds.values()) == metrics.aggregate_seconds

    def test_country_seconds_rounded_to_6_places(self):
        metrics = ExecMetrics()
        timings = CountryTimings("AA")
        timings.phase_seconds["gamma"] = 0.123456789
        metrics.record_country(timings)
        assert metrics.country_seconds["AA"] == 0.123457
        assert metrics.aggregate_seconds == 0.123457

    def test_render_has_phase_share_and_speedup(self):
        metrics = ExecMetrics(backend="thread", jobs=2, wall_seconds=2.0)
        for code, gamma, join in [("AA", 3.0, 1.0)]:
            timings = CountryTimings(code)
            timings.phase_seconds["gamma"] = gamma
            timings.phase_seconds["join"] = join
            metrics.record_country(timings)
        text = metrics.render()
        assert "speedup=2.00x" in text
        assert "gamma" in text and "75.0%" in text
        assert "join" in text and "25.0%" in text

    def test_render_with_zero_aggregate_does_not_divide(self):
        metrics = ExecMetrics()
        metrics.phase_seconds["gamma"] = 0.0
        assert "0.0%" in metrics.render()

    def test_merge_worker_caches_adds_deltas(self):
        metrics = ExecMetrics(backend="process", jobs=2)
        metrics.record_caches([CacheInfo("c", hits=10, misses=5, size=4)])
        metrics.merge_worker_caches([
            {"c": {"hits": 3, "misses": 2, "size": 9}},
            {"c": {"hits": 1, "misses": 0, "size": 2},
             "fresh": {"hits": 7, "misses": 7, "size": 7}},
        ])
        c = metrics.cache_infos["c"]
        assert (c["hits"], c["misses"]) == (14, 7)
        assert c["size"] == 9  # max population seen in any one process
        assert c["hit_rate"] == round(14 / 21, 4)
        fresh = metrics.cache_infos["fresh"]
        assert (fresh["hits"], fresh["misses"]) == (7, 7)
