"""Cache correctness: memoised lookups equal their uncached computations.

Every cache the execution layer added (great-circle distance, latency
inflation, reverse DNS, GeoDNS resolution) memoises a pure function, so
cached and uncached answers must be identical over any sample of keys —
and hit counters must actually move, or the "cache" is dead weight.
"""

from __future__ import annotations

import pickle
import threading

import pytest

from repro.determinism import stable_rng
from repro.exec.cache import ReadThroughCache, cache_registry, cache_snapshot
from repro.netsim.distance import city_distance_km, distance_cache, haversine_km
from repro.netsim.dns import NXDomain
from repro.netsim.latency import LatencyModel
from repro.netsim.resolver import GeoDNSMemo


def sample_city_pairs(registry, count: int, seed: str):
    cities = [city for country in registry.countries for city in country.cities]
    rng = stable_rng("exec-cache-sample", seed)
    return [(rng.choice(cities), rng.choice(cities)) for _ in range(count)]


class TestDistanceCache:
    def test_cached_equals_uncached_over_seeded_sample(self, registry):
        for a, b in sample_city_pairs(registry, 200, "distance"):
            assert city_distance_km(a, b) == haversine_km(a.lat, a.lon, b.lat, b.lon)

    def test_hit_counter_increments(self, registry):
        a = registry.city("London, GB")
        b = registry.city("Nairobi, KE")
        city_distance_km(a, b)  # ensure the pair is cached
        before = distance_cache.info()
        city_distance_km(a, b)
        after = distance_cache.info()
        assert after.hits == before.hits + 1
        assert after.misses == before.misses

    def test_registered_for_reporting(self):
        assert any(info.name == "netsim.distance" for info in cache_registry())

    def test_cache_snapshot_filters_by_prefix(self):
        snapshot = cache_snapshot("netsim.")
        assert "netsim.distance" in snapshot
        assert all(name.startswith("netsim.") for name in snapshot)


class TestVerdictCacheSurfacing:
    """The tracker verdict cache reports through the exec metrics layer."""

    def test_study_metrics_include_verdict_cache(self, study_small):
        infos = study_small.metrics.cache_infos
        assert "trackers.verdicts" in infos
        verdicts = infos["trackers.verdicts"]
        # The ~100 sites per country repeat hosts heavily: the study join
        # must produce real hits, and counters must reconcile.
        assert verdicts["hits"] > 0
        assert verdicts["misses"] > 0
        assert 0.0 <= verdicts["hit_rate"] <= 1.0

    def test_metrics_render_shows_cache_counters(self, study_small):
        rendered = study_small.metrics.render()
        assert "cache trackers.verdicts:" in rendered
        assert "hit_rate=" in rendered

    def test_metrics_to_dict_includes_caches(self, study_small):
        as_dict = study_small.metrics.to_dict()
        assert "trackers.verdicts" in as_dict["caches"]


class TestInflationCache:
    def test_cached_equals_fresh_model(self, registry):
        cached = LatencyModel(seed="cache-check")
        for a, b in sample_city_pairs(registry, 100, "inflation"):
            fresh = LatencyModel(seed="cache-check")  # empty cache every time
            assert cached.inflation(a, b) == fresh.inflation(a, b)

    def test_symmetry_survives_caching(self, registry):
        model = LatencyModel(seed="sym")
        for a, b in sample_city_pairs(registry, 50, "sym"):
            assert model.inflation(a, b) == model.inflation(b, a)

    def test_hit_counter_increments(self, registry):
        model = LatencyModel(seed="hits")
        a = registry.city("Paris, FR")
        b = registry.city("Tokyo, JP")
        model.inflation(a, b)
        assert model.inflation_cache.info().misses == 1
        model.inflation(a, b)
        model.inflation(b, a)  # sorted pair key: same entry
        info = model.inflation_cache.info()
        assert info.hits == 2
        assert info.misses == 1

    def test_model_with_cache_pickles(self, registry):
        model = LatencyModel(seed="pickle")
        a = registry.city("Paris, FR")
        b = registry.city("Tokyo, JP")
        expected = model.inflation(a, b)
        clone = pickle.loads(pickle.dumps(model))
        assert clone.inflation(a, b) == expected


class TestReverseDNSCache:
    def _sample_addresses(self, scenario, count=150):
        rng = stable_rng("exec-cache-sample", "rdns")
        allocations = list(scenario.world.ips)
        return [
            str(rng.choice(allocations).address(rng.randint(1, 200)))
            for _ in range(count)
        ]

    def test_cached_equals_uncached_over_seeded_sample(self, scenario):
        rdns = scenario.world.rdns
        for address in self._sample_addresses(scenario):
            assert rdns.lookup(address) == rdns._lookup_uncached(address)

    def test_hit_counter_increments(self, scenario):
        rdns = scenario.world.rdns
        address = self._sample_addresses(scenario, count=1)[0]
        rdns.lookup(address)
        before = rdns.lookup_cache.info()
        rdns.lookup(address)
        after = rdns.lookup_cache.info()
        assert after.hits == before.hits + 1

    def test_override_invalidates(self, scenario):
        rdns = scenario.world.rdns
        address = self._sample_addresses(scenario, count=1)[0]
        unpatched = rdns.lookup(address)  # populate the memo
        try:
            rdns.override(address, "planted.ptr.example.net")
            assert rdns.lookup(address) == "planted.ptr.example.net"
            rdns.override(address, None)
            assert rdns.lookup(address) is None
        finally:
            # The scenario fixture is session-scoped: drop the override so
            # later tests observe the original generated PTR record.
            rdns._overrides.pop(address, None)
            rdns.lookup_cache.invalidate(address)
        assert rdns.lookup(address) == unpatched


class TestGeoDNSMemo:
    @staticmethod
    def _outcome(resolve, host, city):
        """Answer or exception kind, so restricted hosts compare too."""
        try:
            return ("ok", resolve(host, city))
        except NXDomain:
            return ("nx", None)
        except LookupError:
            return ("refused", None)

    def test_cached_equals_uncached_for_catalog_hosts(self, scenario, registry):
        memo = GeoDNSMemo(scenario.world.dns, name="test.geodns")
        city = registry.city("Bangkok, TH")
        hosts = scenario.world.dns.all_registered_domains()[:100]
        for host in hosts:
            assert self._outcome(memo.resolve, host, city) == self._outcome(
                scenario.world.dns.resolve, host, city
            ), host

    def test_negative_answers_memoised(self, scenario, registry):
        memo = GeoDNSMemo(scenario.world.dns, name="test.geodns.nx")
        city = registry.city("Bangkok, TH")
        for _ in range(2):
            with pytest.raises(NXDomain):
                memo.resolve("no-such-host.invalid-zone.example", city)
        info = memo.cache.info()
        assert info.misses == 1
        assert info.hits == 1

    def test_hit_counter_increments(self, scenario, registry):
        memo = GeoDNSMemo(scenario.world.dns, name="test.geodns.hits")
        city = registry.city("Bangkok, TH")
        host = scenario.world.dns.all_registered_domains()[0]
        first = self._outcome(memo.resolve, host, city)
        second = self._outcome(memo.resolve, host, city)
        assert first == second
        info = memo.cache.info()
        assert (info.hits, info.misses) == (1, 1)


class TestReadThroughCacheConcurrency:
    def test_each_key_computed_exactly_once_under_contention(self):
        cache = ReadThroughCache("test.concurrency")
        computed = []

        def compute_for(key):
            def compute():
                computed.append(key)
                return key * 2
            return compute

        keys = list(range(64))
        errors = []

        def hammer():
            try:
                for key in keys * 20:
                    assert cache.get(key, compute_for(key)) == key * 2
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert sorted(computed) == keys  # each key computed exactly once
        info = cache.info()
        assert info.misses == len(keys)
        assert info.hits == 8 * 20 * len(keys) - len(keys)

    def test_maxsize_evicts_oldest(self):
        cache = ReadThroughCache("test.evict", maxsize=2)
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        cache.get("c", lambda: 3)  # evicts "a"
        assert len(cache) == 2
        present, _ = cache.peek("a")
        assert not present

    def test_pickle_roundtrip_keeps_entries_and_counters(self):
        cache = ReadThroughCache("test.pickle")
        cache.get("k", lambda: "v")
        cache.get("k", lambda: "v")
        clone = pickle.loads(pickle.dumps(cache))
        info = clone.info()
        assert (info.hits, info.misses, info.size) == (1, 1, 1)
        assert clone.get("k", lambda: "other") == "v"


class TestReadThroughCacheSingleFlight:
    """Computes run outside the lock, coordinated per key.

    The original implementation held the cache lock *during* compute, so
    one slow lookup stalled every other key.  These tests are the
    regression net: distinct keys must compute concurrently, same-key
    callers must share one compute, and an owner's failure must hand
    ownership to a waiter instead of poisoning the key.
    """

    def test_distinct_keys_compute_concurrently(self):
        # Each compute blocks until the *other* compute has started.
        # Under lock-held-compute this deadlocks; under single-flight it
        # completes immediately.
        cache = ReadThroughCache("test.sf.parallel")
        started_a = threading.Event()
        started_b = threading.Event()
        results = {}

        def compute_a():
            started_a.set()
            assert started_b.wait(timeout=20), "compute 'b' never entered"
            return "va"

        def compute_b():
            started_b.set()
            assert started_a.wait(timeout=20), "compute 'a' never entered"
            return "vb"

        threads = [
            threading.Thread(target=lambda: results.update(a=cache.get("a", compute_a))),
            threading.Thread(target=lambda: results.update(b=cache.get("b", compute_b))),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads), "computes serialised"
        assert results == {"a": "va", "b": "vb"}
        info = cache.info()
        assert (info.hits, info.misses) == (0, 2)

    def test_same_key_waiters_share_one_compute(self):
        cache = ReadThroughCache("test.sf.shared")
        in_compute = threading.Event()
        release = threading.Event()
        calls = []
        results = []

        def slow_compute():
            calls.append(1)
            in_compute.set()
            assert release.wait(timeout=20)
            return "value"

        threads = [
            threading.Thread(target=lambda: results.append(cache.get("k", slow_compute)))
            for _ in range(6)
        ]
        threads[0].start()
        assert in_compute.wait(timeout=20)
        for thread in threads[1:]:  # all join while the owner is inside compute
            thread.start()
        release.set()
        for thread in threads:
            thread.join(timeout=30)
        assert results == ["value"] * 6
        assert len(calls) == 1  # one compute served every caller
        info = cache.info()
        assert (info.hits, info.misses) == (5, 1)

    def test_owner_error_propagates_and_waiter_takes_over(self):
        cache = ReadThroughCache("test.sf.errors")
        in_compute = threading.Event()
        release = threading.Event()
        calls = []
        outcome = {}

        def failing_then_ok():
            calls.append(1)
            if len(calls) == 1:
                in_compute.set()
                assert release.wait(timeout=20)
                raise RuntimeError("boom")
            return 42

        def owner():
            try:
                cache.get("k", failing_then_ok)
            except RuntimeError as error:
                outcome["owner_error"] = str(error)

        def waiter():
            outcome["waiter_value"] = cache.get("k", failing_then_ok)

        owner_thread = threading.Thread(target=owner)
        owner_thread.start()
        assert in_compute.wait(timeout=20)
        waiter_thread = threading.Thread(target=waiter)
        waiter_thread.start()
        release.set()
        owner_thread.join(timeout=30)
        waiter_thread.join(timeout=30)
        assert outcome == {"owner_error": "boom", "waiter_value": 42}
        assert len(calls) == 2  # the failure was retried, not cached
        present, value = cache.peek("k")
        assert present and value == 42

    def test_failed_compute_leaves_no_entry(self):
        cache = ReadThroughCache("test.sf.clean")
        with pytest.raises(KeyError):
            cache.get("k", lambda: (_ for _ in ()).throw(KeyError("nope")))
        assert len(cache) == 0
        assert cache.get("k", lambda: "ok") == "ok"
