"""Statistics helpers: correlation, quantiles, boxplots, skewness."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.analysis.stats import (
    boxplot_stats,
    mean,
    pearson,
    quantile,
    skewness,
    spearman,
    stdev,
)

# Subnormal floats make 0.5*a + 0.5*a differ from a in the last ulp,
# which is numerical noise rather than a quantile bug; exclude them.
_floats = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_subnormal=False),
    min_size=2, max_size=50,
)


class TestBasics:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev_population(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_stdev_constant_zero(self):
        assert stdev([5, 5, 5]) == 0.0


class TestPearson:
    def test_perfect_positive(self):
        assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_uncorrelated(self):
        assert abs(pearson([1, 2, 3, 4], [1, -1, 1, -1])) < 0.5

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pearson([1], [1, 2])

    def test_constant_undefined(self):
        with pytest.raises(ValueError):
            pearson([1, 1, 1], [1, 2, 3])

    @given(_floats)
    def test_self_correlation_is_one(self, xs):
        if stdev(xs) == 0:
            return
        assert pearson(xs, xs) == pytest.approx(1.0)

    @given(_floats)
    def test_bounded(self, xs):
        ys = list(reversed(xs))
        if stdev(xs) == 0 or stdev(ys) == 0:
            return
        assert -1.0 - 1e-9 <= pearson(xs, ys) <= 1.0 + 1e-9


class TestSpearman:
    def test_monotone_nonlinear_is_one(self):
        xs = [1, 2, 3, 4, 5]
        ys = [math.exp(x) for x in xs]
        assert spearman(xs, ys) == pytest.approx(1.0)

    def test_handles_ties(self):
        # Ties get averaged ranks; result stays in [-1, 1].
        rho = spearman([1, 1, 2, 3], [4, 4, 5, 6])
        assert -1 - 1e-9 <= rho <= 1 + 1e-9
        assert rho == pytest.approx(1.0)


class TestQuantile:
    def test_median_odd(self):
        assert quantile([3, 1, 2], 0.5) == 2

    def test_median_even_interpolates(self):
        assert quantile([1, 2, 3, 4], 0.5) == 2.5

    def test_extremes(self):
        values = [5, 1, 9]
        assert quantile(values, 0.0) == 1
        assert quantile(values, 1.0) == 9

    def test_invalid_q(self):
        with pytest.raises(ValueError):
            quantile([1], 1.5)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)

    @given(_floats, st.floats(min_value=0, max_value=1))
    def test_within_range(self, values, q):
        result = quantile(values, q)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(_floats)
    def test_monotone_in_q(self, values):
        qs = [0.1, 0.25, 0.5, 0.75, 0.9]
        results = [quantile(values, q) for q in qs]
        assert all(b >= a - 1e-9 for a, b in zip(results, results[1:]))


class TestBoxplot:
    def test_five_number_summary(self):
        box = boxplot_stats([1, 2, 3, 4, 5, 6, 7, 8, 9])
        assert box.median == 5
        assert box.q1 == 3
        assert box.q3 == 7
        assert box.minimum == 1 and box.maximum == 9
        assert box.iqr == 4

    def test_outliers_detected(self):
        box = boxplot_stats([1, 2, 3, 4, 5, 100])
        assert 100 in box.outliers
        assert box.whisker_high <= 5

    def test_no_outliers(self):
        box = boxplot_stats([1, 2, 3, 4, 5])
        assert box.outliers == ()
        assert box.whisker_low == 1 and box.whisker_high == 5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            boxplot_stats([])

    @given(_floats)
    def test_ordering_invariants(self, values):
        box = boxplot_stats(values)
        assert box.minimum <= box.q1 <= box.median <= box.q3 <= box.maximum
        assert box.count == len(values)


class TestSkewness:
    def test_right_skew_positive(self):
        assert skewness([1, 1, 1, 2, 2, 10]) > 0

    def test_left_skew_negative(self):
        assert skewness([1, 9, 9, 10, 10, 10]) < 0

    def test_symmetric_near_zero(self):
        assert abs(skewness([1, 2, 3, 4, 5])) < 1e-9

    def test_degenerate_none(self):
        assert skewness([1, 2]) is None
        assert skewness([3, 3, 3]) is None
