"""Data-localization policy registry (Table 1 inputs)."""

import pytest

from repro.netsim.geography import MEASUREMENT_COUNTRIES
from repro.policy.registry import (
    PolicyRecord,
    PolicyRegistry,
    PolicyType,
    default_policy_registry,
)


class TestPolicyType:
    def test_strictness_order(self):
        assert PolicyType.strictness_rank("CS") == 0
        assert PolicyType.strictness_rank("NR") == 4
        assert PolicyType.strictness_rank("PA") < PolicyType.strictness_rank("AC")

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            PolicyType.strictness_rank("XX")


class TestPolicyRecord:
    def test_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            PolicyRecord("XX", "ZZ", True)

    def test_strictness_property(self):
        assert PolicyRecord("AZ", "CS", True).strictness_rank == 0


class TestDefaultRegistry:
    def test_covers_all_measurement_countries(self):
        registry = default_policy_registry()
        for cc in MEASUREMENT_COUNTRIES:
            assert registry.has(cc)
        assert len(registry) == 23

    def test_paper_assignments(self):
        registry = default_policy_registry()
        assert registry.get("AZ").policy_type == PolicyType.CONSENT_OF_SUBJECT
        assert registry.get("DZ").policy_type == PolicyType.PRIOR_APPROVAL
        assert registry.get("RU").policy_type == PolicyType.APPROVED_COUNTRIES
        assert registry.get("US").policy_type == PolicyType.TRANSFERS_ALLOWED
        assert registry.get("LB").policy_type == PolicyType.NO_RESTRICTIONS

    def test_not_yet_enacted(self):
        registry = default_policy_registry()
        for cc in ("IN", "PK", "TH"):
            assert not registry.get(cc).enacted
        assert registry.get("JO").enacted

    def test_by_strictness_order(self):
        rows = default_policy_registry().by_strictness()
        assert rows[0].country_code == "AZ"  # only CS country
        assert rows[-1].country_code == "LB"  # only NR country
        ranks = [r.strictness_rank for r in rows]
        assert ranks == sorted(ranks)

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            PolicyRegistry([
                PolicyRecord("AZ", "CS", True),
                PolicyRecord("AZ", "PA", True),
            ])

    def test_unknown_country_raises(self):
        with pytest.raises(KeyError):
            default_policy_registry().get("FR")
