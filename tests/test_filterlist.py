"""ABP filter-list parsing and host matching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.trackers.filterlist import (
    FilterList,
    FilterSet,
    RuleKind,
    parse_filter_text,
)

SAMPLE = """[Adblock Plus 2.0]
! Title: test list
||doubleclick.net^
||google-analytics.com^$third-party
@@||allowlisted.net^
/banner/ads/*
##.ad-box
#@#.not-an-ad
||tracker.example^$script,third-party
bad-pattern-no-domain
"""


class TestParsing:
    def test_counts_by_kind(self):
        rules = parse_filter_text(SAMPLE)
        kinds = [r.kind for r in rules]
        assert kinds.count(RuleKind.HEADER) == 1
        assert kinds.count(RuleKind.COMMENT) == 1
        assert kinds.count(RuleKind.DOMAIN_BLOCK) == 3
        assert kinds.count(RuleKind.DOMAIN_EXCEPTION) == 1
        assert kinds.count(RuleKind.ELEMENT_HIDING) == 2
        assert kinds.count(RuleKind.SUBSTRING) == 2

    def test_options_parsed(self):
        rules = [r for r in parse_filter_text(SAMPLE) if r.domain == "tracker.example"]
        assert rules[0].options == ("script", "third-party")

    def test_blank_lines_skipped(self):
        assert parse_filter_text("\n\n\n") == []

    def test_domain_normalised(self):
        (rule,) = parse_filter_text("||EXAMPLE.COM^")
        assert rule.domain == "example.com"

    def test_exception_flag(self):
        (rule,) = parse_filter_text("@@||ok.example^")
        assert rule.kind == RuleKind.DOMAIN_EXCEPTION

    def test_exception_without_anchor_is_substring_exception(self):
        # Regression: these used to parse as DOMAIN_EXCEPTION with
        # domain=None and explode in matches_host.
        (rule,) = parse_filter_text("@@/telemetry/opt-out/*")
        assert rule.kind == RuleKind.SUBSTRING_EXCEPTION
        assert rule.domain is None
        assert rule.pattern == "/telemetry/opt-out/*"
        assert not rule.matches_host("telemetry.example.com")  # no AssertionError

    def test_exception_fragment_matches_hosts(self):
        (rule,) = parse_filter_text("@@optout.example.")
        assert rule.kind == RuleKind.SUBSTRING_EXCEPTION
        assert rule.is_exception
        assert rule.matches_host("a.optout.example.net")
        assert not rule.matches_host("other.example.net")

    def test_domain_rule_with_path_falls_back_to_substring(self):
        # Regression: ``||example.com/ads^`` used to become a DOMAIN_BLOCK
        # whose "domain" contained a slash.  The hostname part of a
        # path-anchored rule ends at the first "/": the rule targets URLs,
        # so it is kept as a substring rule that never matches bare hosts.
        (rule,) = parse_filter_text("||example.com/ads^")
        assert rule.kind == RuleKind.SUBSTRING
        assert rule.domain is None
        assert not rule.matches_host("example.com")
        assert not rule.matches_host("ads.example.com")

    def test_domain_exception_with_path_falls_back(self):
        (rule,) = parse_filter_text("@@||example.com/ads^")
        assert rule.kind == RuleKind.SUBSTRING_EXCEPTION
        assert not rule.matches_host("example.com")

    def test_interior_separator_is_not_a_domain_rule(self):
        (rule,) = parse_filter_text("||ads.example^script^")
        assert rule.kind == RuleKind.SUBSTRING

    def test_trailing_slash_still_domain_rule(self):
        (rule,) = parse_filter_text("||example.com/")
        assert rule.kind == RuleKind.DOMAIN_BLOCK
        assert rule.domain == "example.com"


class TestRuleMatching:
    def test_domain_block_matches_subdomains(self):
        (rule,) = parse_filter_text("||doubleclick.net^")
        assert rule.matches_host("stats.g.doubleclick.net")
        assert rule.matches_host("doubleclick.net")
        assert not rule.matches_host("notdoubleclick.net")

    def test_fqdn_entry_matches_only_that_branch(self):
        (rule,) = parse_filter_text("||analytics.yahoo.com^")
        assert rule.matches_host("analytics.yahoo.com")
        assert rule.matches_host("px.analytics.yahoo.com")
        assert not rule.matches_host("www.yahoo.com")

    def test_substring_domain_fragment(self):
        (rule,) = parse_filter_text("adserver.example.")
        assert rule.kind == RuleKind.SUBSTRING
        assert rule.matches_host("cdn.adserver.example.net")

    def test_path_substring_never_matches_hosts(self):
        (rule,) = parse_filter_text("/banner/ads/*")
        assert not rule.matches_host("banner.example.com")

    def test_element_hiding_never_matches(self):
        rules = parse_filter_text("##.ad-box")
        assert not rules[0].matches_host("ad-box.example.com")


class TestFilterList:
    def test_block_match(self):
        flist = FilterList.parse("test", SAMPLE)
        match = flist.block_match("ad.doubleclick.net")
        assert match is not None and match.domain == "doubleclick.net"

    def test_exception_suppresses(self):
        text = "||allowlisted.net^\n@@||allowlisted.net^\n"
        flist = FilterList.parse("test", text)
        assert flist.block_match("x.allowlisted.net") is None

    def test_substring_exception_suppresses(self):
        text = "||telemetry.example.net^\n@@telemetry.example.\n"
        flist = FilterList.parse("test", text)
        assert flist.block_match("telemetry.example.net") is None

    def test_no_match(self):
        flist = FilterList.parse("test", SAMPLE)
        assert flist.block_match("innocent.example.org") is None

    def test_network_rules_property(self):
        flist = FilterList.parse("test", SAMPLE)
        assert all(r.is_network_rule for r in flist.network_rules)
        assert len(flist.network_rules) == 6


class TestFilterSet:
    def test_first_list_wins_attribution(self):
        easylist = FilterList.parse("easylist", "||ads.example^\n")
        easyprivacy = FilterList.parse("easyprivacy", "||ads.example^\n||track.example^\n")
        fset = FilterSet([easylist, easyprivacy])
        assert fset.match("x.ads.example").list_name == "easylist"
        assert fset.match("x.track.example").list_name == "easyprivacy"

    def test_cross_list_exception(self):
        blocker = FilterList.parse("a", "||cdn.example^\n")
        excepter = FilterList.parse("b", "@@||cdn.example^\n")
        fset = FilterSet([blocker, excepter])
        assert fset.match("x.cdn.example") is None

    def test_no_lists_no_match(self):
        assert FilterSet().match("anything.example") is None

    def test_add_and_names(self):
        fset = FilterSet()
        fset.add(FilterList.parse("x", ""))
        assert fset.list_names == ["x"]
        assert len(fset) == 1


_domain = st.from_regex(r"[a-z]{3,10}\.(com|net|org)", fullmatch=True)


class TestProperties:
    @given(_domain)
    def test_block_rule_always_matches_own_domain(self, domain):
        flist = FilterList.parse("t", f"||{domain}^\n")
        assert flist.block_match(domain) is not None
        assert flist.block_match(f"sub.{domain}") is not None

    @given(_domain, _domain)
    def test_exception_beats_block(self, d1, d2):
        text = f"||{d1}^\n@@||{d1}^\n||{d2}^\n"
        flist = FilterList.parse("t", text)
        assert flist.block_match(d1) is None
