"""Serving policies, deployments, and GeoDNS resolution."""

import pytest

from repro.netsim.dns import GeoDNSResolver, NXDomain
from repro.netsim.geography import default_registry
from repro.netsim.ip import IPSpace
from repro.netsim.servers import Deployment, Organization, PoP, ServingPolicy, nearest_pop

REG = default_registry()


def make_deployment(pop_countries, policy=None, org_name="TestOrg", domains=("testorg.com",), space=None):
    # Note: an empty IPSpace is falsy (it defines __len__), so this must
    # be an identity check, not a truthiness one.
    space = space if space is not None else IPSpace()
    pops = []
    for cc in pop_countries:
        city = REG.country(cc).capital
        allocation = space.allocate(1000, city, label=f"{org_name}/{cc.lower()}1")
        pops.append(PoP(org_name=org_name, name=f"{cc.lower()}1", city=city, allocation=allocation))
    org = Organization(name=org_name, home_country="US", domains=domains, is_tracker=True)
    return Deployment(org=org, pops=pops, policy=policy or ServingPolicy())


class TestServingPolicy:
    def test_default_allows_everything(self):
        assert ServingPolicy().allowed("PK", "IN")

    def test_exclusion(self):
        policy = ServingPolicy(exclusions={"PK": {"IN"}})
        assert not policy.allowed("PK", "IN")
        assert policy.allowed("LK", "IN")

    def test_restriction(self):
        policy = ServingPolicy(restricted={"IN": {"IN"}})
        assert policy.allowed("IN", "IN")
        assert not policy.allowed("PK", "IN")

    def test_weight_default_and_override(self):
        policy = ServingPolicy(preferences={"FR": 1.5})
        assert policy.weight("FR") == 1.5
        assert policy.weight("DE") == 1.0

    def test_nonpositive_weight_rejected(self):
        policy = ServingPolicy(preferences={"FR": 0.0})
        with pytest.raises(ValueError):
            policy.weight("FR")


class TestDeployment:
    def test_empty_pops_rejected(self):
        org = Organization("X", "US", ("x.com",))
        with pytest.raises(ValueError):
            Deployment(org=org, pops=[])

    def test_serves_nearest(self):
        deployment = make_deployment(["FR", "JP"])
        client = REG.country("DE").capital
        assert deployment.serve(client).country_code == "FR"

    def test_preference_overrides_distance(self):
        # Italy is nearer to Algiers than Germany, but a strong preference
        # weight pulls traffic to the German PoP.
        policy = ServingPolicy(preferences={"DE": 3.0})
        deployment = make_deployment(["IT", "DE"], policy)
        client = REG.country("DZ").capital
        assert deployment.serve(client).country_code == "DE"

    def test_restriction_blocks_nearest(self):
        # Indian PoP restricted to Indian clients: Pakistan is served from
        # France despite India being far closer.
        policy = ServingPolicy(restricted={"IN": {"IN"}})
        deployment = make_deployment(["IN", "FR"], policy)
        client = REG.country("PK").capital
        assert deployment.serve(client).country_code == "FR"
        assert deployment.serve(REG.country("IN").capital).country_code == "IN"

    def test_pinned_client(self):
        policy = ServingPolicy(pinned={"EG": "DE"})
        deployment = make_deployment(["IT", "FR", "DE"], policy)
        client = REG.country("EG").capital
        assert deployment.serve(client).country_code == "DE"

    def test_no_eligible_pop_raises(self):
        policy = ServingPolicy(restricted={"IN": {"IN"}})
        deployment = make_deployment(["IN"], policy)
        with pytest.raises(LookupError):
            deployment.serve(REG.country("PK").capital)

    def test_candidate_pops(self):
        policy = ServingPolicy(restricted={"IN": {"IN"}})
        deployment = make_deployment(["IN", "FR"], policy)
        assert {p.country_code for p in deployment.candidate_pops("PK")} == {"FR"}

    def test_pop_countries(self):
        deployment = make_deployment(["FR", "JP"])
        assert deployment.pop_countries == {"FR", "JP"}

    def test_pop_named(self):
        deployment = make_deployment(["FR"])
        assert deployment.pop_named("fr1") is not None
        assert deployment.pop_named("zz9") is None

    def test_nearest_pop_helper(self):
        deployment = make_deployment(["FR", "JP"])
        assert nearest_pop(deployment.pops, REG.country("TH").capital).country_code == "JP"

    def test_nearest_pop_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_pop([], REG.country("TH").capital)


class TestGeoDNS:
    def _resolver(self):
        resolver = GeoDNSResolver()
        deployment = make_deployment(["FR", "JP"])
        for domain in deployment.org.domains:
            resolver.register(domain, deployment)
        return resolver, deployment

    def test_resolves_subdomains_by_registrable(self):
        resolver, _ = self._resolver()
        answer = resolver.resolve("cdn.testorg.com", REG.country("DE").capital)
        assert answer.org_name == "TestOrg"

    def test_geodns_differs_by_client(self):
        resolver, _ = self._resolver()
        eu = resolver.resolve("x.testorg.com", REG.country("DE").capital)
        asia = resolver.resolve("x.testorg.com", REG.country("TH").capital)
        assert eu.pop.country_code == "FR"
        assert asia.pop.country_code == "JP"
        assert eu.address != asia.address

    def test_same_host_same_pop_stable_address(self):
        resolver, _ = self._resolver()
        a = resolver.resolve("x.testorg.com", REG.country("DE").capital)
        b = resolver.resolve("x.testorg.com", REG.country("FR").capital)
        assert a.address == b.address  # both served from the FR PoP

    def test_different_hosts_different_addresses(self):
        resolver, _ = self._resolver()
        a = resolver.resolve("a.testorg.com", REG.country("DE").capital)
        b = resolver.resolve("b.testorg.com", REG.country("DE").capital)
        assert a.address != b.address

    def test_nxdomain(self):
        resolver, _ = self._resolver()
        with pytest.raises(NXDomain):
            resolver.resolve("unknown.example", REG.country("DE").capital)
        assert not resolver.knows("unknown.example")

    def test_conflicting_registration_rejected(self):
        resolver, deployment = self._resolver()
        other = make_deployment(["US"], org_name="Rival", domains=("testorg.com",))
        with pytest.raises(ValueError):
            resolver.register("testorg.com", other)

    def test_reregister_same_org_ok(self):
        resolver, deployment = self._resolver()
        resolver.register("testorg.com", deployment)  # idempotent

    def test_exact_registration_beats_registrable(self):
        resolver, deployment = self._resolver()
        special = make_deployment(["US"], org_name="Special", domains=("special.net",))
        resolver.register("exact.testorg.com", special, exact=True)
        answer = resolver.resolve("exact.testorg.com", REG.country("DE").capital)
        assert answer.org_name == "Special"

    def test_owner_org(self):
        resolver, _ = self._resolver()
        assert resolver.owner_org("www.testorg.com") == "TestOrg"
        assert resolver.owner_org("nope.example") is None

    def test_is_ip_literal(self):
        assert GeoDNSResolver.is_ip_literal("10.1.2.3")
        assert not GeoDNSResolver.is_ip_literal("example.com")

    def test_all_registered_domains(self):
        resolver, _ = self._resolver()
        assert resolver.all_registered_domains() == ["testorg.com"]
