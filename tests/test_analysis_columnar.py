"""Columnar analysis engine — the frame-unobservability proof.

The columnar engine only changes *how* the analyses answer (numpy
reductions over a :class:`~repro.core.analysis.frames.StudyFrame`
instead of per-record object walks), never *what* they answer.  Three
layers of evidence:

* **Property-based differential** — hypothesis-generated multi-country
  result sets pushed through every public analysis accessor under both
  engines, comparing exact values *and* exact orderings.
* **Study-level byte-equality** — the same study run under
  ``--analysis-engine objects`` and ``columnar`` across backends and
  transports produces identical summaries, funnels, artefacts, and
  timing-stripped journals, including through checkpoint/resume
  crossovers (an objects-engine checkpoint resumed under the columnar
  engine, and vice versa).
* **Slots compatibility** — the ``__slots__`` rollout on the hot
  measurement records keeps the historical pickle state contract:
  old-style dict states (what pre-slots checkpoints contain) still
  restore, and current pickles stay byte-stable through a round trip.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import run_study
from repro.core.analysis.firstparty import FirstPartyAnalysis
from repro.core.analysis.flows import FlowAnalysis
from repro.core.analysis.frames import (
    ANALYSIS_ENGINES,
    CountryFrame,
    StudyFrame,
    resolve_analysis_engine,
)
from repro.core.analysis.hosting import HostingAnalysis
from repro.core.analysis.organizations import OrganizationAnalysis
from repro.core.analysis.perwebsite import PerWebsiteAnalysis
from repro.core.analysis.prevalence import PrevalenceAnalysis
from repro.core.analysis.records import (
    CountryStudyResult,
    NonLocalTracker,
    SiteTrackerRecord,
)
from repro.core.gamma.output import VolunteerDataset, WebsiteMeasurement
from repro.core.gamma.parsers import NormalizedHop, NormalizedTraceroute
from repro.core.geoloc.pipeline import DatasetGeolocation
from repro.core.trackers.orgs import OrganizationDirectory, OrgEntry
from repro.exec.worker import StudyWorker
from repro.study import StudyConfig
from tests.conftest import SMALL_COUNTRIES
from tests.test_exec_equivalence import assert_outcomes_identical

#: backend/jobs grid from the parallel-equivalence suite, kept in sync.
BACKEND_GRID = [("serial", 1), ("thread", 4), ("process", 4)]

SOURCES = ["NZ", "CA", "RW", "QA"]
DESTINATIONS = ["US", "AU", "DE", "RW"]
HOSTS = [f"t{i}.ads.example" for i in range(6)]
ORGS = [None, "Google", "Heap", "Demdex"]

DIRECTORY = OrganizationDirectory([
    OrgEntry(name="Google", home_country="US", domains=("ads.example",)),
    OrgEntry(name="Heap", home_country="US", domains=()),
    OrgEntry(name="Demdex", home_country="US", domains=()),
])


trackers_st = st.builds(
    NonLocalTracker,
    host=st.sampled_from(HOSTS),
    address=st.sampled_from([f"5.0.0.{i}" for i in range(4)]),
    destination_country=st.sampled_from(DESTINATIONS),
    destination_city_key=st.sampled_from([f"X, {cc}" for cc in DESTINATIONS]),
    org_name=st.sampled_from(ORGS),
)


def _results_strategy():
    def country(cc: str):
        def build(site_specs):
            sites = [
                SiteTrackerRecord(
                    url=f"s{i}.{cc.lower()}.example",
                    country_code=cc,
                    category=category,
                    trackers=trackers,
                )
                for i, (category, trackers) in enumerate(site_specs)
            ]
            return CountryStudyResult(
                country_code=cc,
                dataset=VolunteerDataset(cc, f"City, {cc}", "0.0.0.0", "linux", "chrome"),
                geolocation=DatasetGeolocation(country_code=cc),
                sites=sites,
            )

        return st.lists(
            st.tuples(
                st.sampled_from(["regional", "government"]),
                st.lists(trackers_st, max_size=4),
            ),
            max_size=6,
        ).map(build)

    return st.lists(st.sampled_from(SOURCES), min_size=1, max_size=4, unique=True).flatmap(
        lambda codes: st.tuples(*[country(cc) for cc in codes]).map(list)
    )


def _frame(results):
    return StudyFrame.assemble([CountryFrame.from_result(r) for r in results])


def _ordered(mapping):
    """Items in iteration order — exact-ordering comparison for dicts."""
    return list(mapping.items())


def _outcome(fn):
    """Value or the raised ValueError's message — engines must match both."""
    try:
        return ("ok", fn())
    except ValueError as error:
        return ("raise", str(error))


class TestDifferentialAccessors:
    """Objects vs columnar over every public accessor, exact ordering."""

    @settings(max_examples=60, deadline=None)
    @given(results=_results_strategy())
    def test_flows(self, results):
        frame = _frame(results)
        obj = FlowAnalysis(results)
        col = FlowAnalysis(results, frame=frame)
        for category in (None, "regional", "government"):
            assert col.edges(category) == obj.edges(category)
            assert col.sites_with_nonlocal(category) == obj.sites_with_nonlocal(category)
            assert _ordered(col.destination_shares(category)) == _ordered(
                obj.destination_shares(category)
            )
            assert _ordered(
                col.source_count_per_destination(category)
            ) == _ordered(obj.source_count_per_destination(category))
            for destination in DESTINATIONS:
                assert _ordered(
                    col.single_source_effect(destination, category)
                ) == _ordered(obj.single_source_effect(destination, category))
        for destination in DESTINATIONS:
            assert col.dominant_source(destination) == obj.dominant_source(destination)
        for source in SOURCES:
            assert _ordered(col.destinations_of(source)) == _ordered(
                obj.destinations_of(source)
            )
        excluded = [r.country_code for r in results][:1]
        assert _ordered(
            col.destination_shares(exclude_sources=excluded)
        ) == _ordered(obj.destination_shares(exclude_sources=excluded))

    @settings(max_examples=60, deadline=None)
    @given(results=_results_strategy())
    def test_prevalence(self, results):
        frame = _frame(results)
        obj = PrevalenceAnalysis(results)
        col = PrevalenceAnalysis(results, frame=frame)
        assert col.per_country() == obj.per_country()
        assert _ordered(col.combined_pct_by_country()) == _ordered(
            obj.combined_pct_by_country()
        )
        assert col.regional_mean_and_stdev() == obj.regional_mean_and_stdev()
        assert col.government_mean_and_stdev() == obj.government_mean_and_stdev()
        # The correlation is undefined for degenerate studies (one
        # country, constant columns): both engines must raise alike.
        assert _outcome(col.regional_government_correlation) == _outcome(
            obj.regional_government_correlation
        )
        assert (
            col.countries_with_foreign_trackers()
            == obj.countries_with_foreign_trackers()
        )

    @settings(max_examples=60, deadline=None)
    @given(results=_results_strategy())
    def test_per_website(self, results):
        frame = _frame(results)
        obj = PerWebsiteAnalysis(results)
        col = PerWebsiteAnalysis(results, frame=frame)
        for result in results:
            cc = result.country_code
            for category in (None, "regional", "government"):
                assert col.counts_for(cc, category) == obj.counts_for(cc, category)
                assert col.distribution(cc, category) == obj.distribution(cc, category)
            assert _ordered(col.histogram(cc)) == _ordered(obj.histogram(cc))
            assert _ordered(col.histogram(cc, max_count=2)) == _ordered(
                obj.histogram(cc, max_count=2)
            )
            assert col.outlier_sites(cc) == obj.outlier_sites(cc)
        assert col.all_distributions() == obj.all_distributions()
        assert col.all_distributions("regional") == obj.all_distributions("regional")

    @settings(max_examples=60, deadline=None)
    @given(results=_results_strategy())
    def test_hosting(self, results):
        frame = _frame(results)
        obj = HostingAnalysis(results)
        col = HostingAnalysis(results, frame=frame)
        assert col.domain_observations() == obj.domain_observations()
        assert _ordered(col.domains_per_destination()) == _ordered(
            obj.domains_per_destination()
        )
        assert col.top_destinations(3) == obj.top_destinations(3)
        for destination in DESTINATIONS:
            assert _ordered(col.breakdown_by_source(destination)) == _ordered(
                obj.breakdown_by_source(destination)
            )
        for count in (1, 2):
            assert col.destinations_hosting_exactly(count) == (
                obj.destinations_hosting_exactly(count)
            )
        # Tie order between equal-count destinations is set-iteration
        # dependent on the object path (documented divergence), so this
        # one compares values only, not ordering.
        assert col.unique_domains_per_destination() == (
            obj.unique_domains_per_destination()
        )

    @settings(max_examples=60, deadline=None)
    @given(results=_results_strategy())
    def test_organizations(self, results):
        frame = _frame(results)
        obj = OrganizationAnalysis(results, DIRECTORY)
        col = OrganizationAnalysis(results, DIRECTORY, frame=frame)
        assert col.flow_edges() == obj.flow_edges()
        assert col.observed_organizations() == obj.observed_organizations()
        assert col.top_organizations(3) == obj.top_organizations(3)
        assert _ordered(col.home_country_distribution()) == _ordered(
            obj.home_country_distribution()
        )
        assert _ordered(col.country_exclusive_organizations()) == _ordered(
            obj.country_exclusive_organizations()
        )


class TestDifferentialWithScenario:
    """Accessors that need real scenario services, over a real result."""

    @pytest.fixture(scope="class")
    def run(self, scenario):
        return StudyWorker(scenario, StudyConfig())("NZ")

    @pytest.fixture(scope="class")
    def pair(self, run):
        results = [run.result]
        frame = StudyFrame.assemble(
            [CountryFrame.from_result(run.result, dataset=run.dataset)]
        )
        return results, frame

    def test_cloud_hosting_queries(self, scenario, pair):
        results, frame = pair
        obj = OrganizationAnalysis(results, scenario.directory, scenario.ipinfo)
        col = OrganizationAnalysis(
            results, scenario.directory, scenario.ipinfo, frame=frame
        )
        assert _ordered(col.cloud_hosted_trackers()) == _ordered(
            obj.cloud_hosted_trackers()
        )
        for destination in ("US", "AU"):
            assert col.cloud_hosted_in_country(destination) == (
                obj.cloud_hosted_in_country(destination)
            )

    def test_first_party(self, scenario, pair):
        results, frame = pair
        obj = FirstPartyAnalysis(results, scenario.party_classifier)
        col = FirstPartyAnalysis(results, scenario.party_classifier, frame=frame)
        assert col.sites_with_nonlocal() == obj.sites_with_nonlocal()
        assert col.first_party_sites() == obj.first_party_sites()
        assert _ordered(col.owner_breakdown()) == _ordered(obj.owner_breakdown())
        assert col.first_party_share() == obj.first_party_share()


class TestEngineResolution:
    def test_engines_and_validation(self):
        assert ANALYSIS_ENGINES == ("objects", "columnar")
        assert resolve_analysis_engine("objects") == "objects"
        assert resolve_analysis_engine("columnar") == "columnar"
        with pytest.raises(ValueError):
            resolve_analysis_engine("vectorized")

    def test_columnar_falls_back_to_objects_without_numpy(self, monkeypatch):
        import repro.core.analysis.frames as frames

        monkeypatch.setattr(frames, "HAVE_NUMPY", False)
        assert frames.resolve_analysis_engine("columnar") == "objects"


class TestStudyEquivalence:
    """Whole-study byte-equality across engines, backends, transports."""

    @pytest.fixture(scope="class")
    def reference(self, scenario):
        """Serial objects-engine pickle-transport run: the ground truth."""
        return run_study(
            scenario, countries=SMALL_COUNTRIES, trace=True,
            analysis_engine="objects", transport="pickle",
        )

    @pytest.mark.parametrize("backend,jobs", BACKEND_GRID)
    @pytest.mark.parametrize("engine", ["objects", "columnar"])
    def test_engines_byte_identical_across_backends(
        self, scenario, reference, engine, backend, jobs
    ):
        outcome = run_study(
            scenario, countries=SMALL_COUNTRIES, trace=True,
            analysis_engine=engine, backend=backend, jobs=jobs,
        )
        assert outcome.metrics.analysis_engine == engine
        assert (outcome.frame is not None) == (engine == "columnar")
        assert outcome.funnel() == reference.funnel()
        assert_outcomes_identical(reference, outcome)
        assert outcome.journal.dumps(timings=False) == reference.journal.dumps(
            timings=False
        )

    @pytest.mark.parametrize("transport", ["pickle", "columnar"])
    def test_columnar_engine_over_both_transports_process(
        self, scenario, reference, transport
    ):
        outcome = run_study(
            scenario, countries=SMALL_COUNTRIES, trace=True,
            analysis_engine="columnar", transport=transport,
            backend="process", jobs=4,
        )
        assert_outcomes_identical(reference, outcome)
        assert outcome.journal.dumps(timings=False) == reference.journal.dumps(
            timings=False
        )

    def test_exported_bundles_byte_identical(self, scenario, reference, tmp_path):
        from repro.artifacts import export_study

        outcome = run_study(
            scenario, countries=SMALL_COUNTRIES, trace=True,
            analysis_engine="columnar", transport="columnar",
            backend="process", jobs=4,
        )
        ref_paths = export_study(reference, tmp_path / "objects")
        col_paths = export_study(outcome, tmp_path / "columnar")
        assert [p.relative_to(tmp_path / "objects") for p in ref_paths] == [
            p.relative_to(tmp_path / "columnar") for p in col_paths
        ]
        for ref_path, col_path in zip(ref_paths, col_paths):
            assert col_path.read_bytes() == ref_path.read_bytes(), col_path.name

    def test_snapshot_records_engine(self, scenario):
        outcome = run_study(
            scenario, countries=SMALL_COUNTRIES[:2], analysis_engine="columnar"
        )
        assert outcome.metrics_snapshot["meta"]["analysis_engine"] == "columnar"
        assert outcome.metrics.to_dict()["analysis_engine"] == "columnar"

    def test_checkpoint_engine_crossover(self, scenario, tmp_path):
        """An objects-engine checkpoint resumes under columnar (and back)."""
        fresh = run_study(
            scenario, countries=SMALL_COUNTRIES, analysis_engine="columnar"
        )
        for first, second in (("objects", "columnar"), ("columnar", "objects")):
            checkpoint_dir = tmp_path / f"ckpt-{first}"
            run_study(
                scenario, countries=SMALL_COUNTRIES[:3], analysis_engine=first,
                checkpoint_dir=checkpoint_dir,
            )
            resumed = run_study(
                scenario, countries=SMALL_COUNTRIES, analysis_engine=second,
                checkpoint_dir=checkpoint_dir, resume=True,
            )
            assert resumed.metrics.analysis_engine == second
            assert_outcomes_identical(fresh, resumed)

    def test_lazy_containers_materialise_on_demand(self, scenario, reference):
        outcome = run_study(
            scenario, countries=SMALL_COUNTRIES, analysis_engine="columnar",
            transport="columnar", backend="process", jobs=4,
        )
        # Key iteration never decodes; indexing materialises one country.
        assert list(outcome.datasets) == SMALL_COUNTRIES
        assert sorted(outcome.datasets) == sorted(SMALL_COUNTRIES)
        assert len(outcome.results) == len(SMALL_COUNTRIES)
        assert outcome.datasets["CA"].to_json() == reference.datasets["CA"].to_json()
        assert outcome.results[0].country_code == SMALL_COUNTRIES[0]
        assert [r.country_code for r in outcome.results] == SMALL_COUNTRIES
        views = outcome.cross_country().views("yahoo.com")
        assert views == reference.cross_country().views("yahoo.com")


class TestSlotsPickleCompat:
    """Pre-slots checkpoint states still restore; current pickles round-trip."""

    CASES = [
        (
            NonLocalTracker,
            {
                "host": "t.ads.example", "address": "5.0.0.1",
                "destination_country": "US",
                "destination_city_key": "X, US", "org_name": "Google",
            },
        ),
        (
            SiteTrackerRecord,
            {
                "url": "a.example", "country_code": "NZ",
                "category": "regional", "trackers": [],
            },
        ),
        (
            NormalizedHop,
            {"hop": 3, "address": "1.2.3.4", "rtts_ms": (1.0, 2.0)},
        ),
        (
            WebsiteMeasurement,
            {
                "url": "a.example", "category": "regional", "loaded": True,
                "requested_hosts": [], "background_hosts": [], "dns": {},
                "rdns": {}, "traceroutes": {}, "failure_reason": None,
                "page_html": "", "hardcoded_domains": [],
            },
        ),
    ]

    @pytest.mark.parametrize("cls,state", CASES, ids=lambda c: getattr(c, "__name__", ""))
    def test_old_dict_state_restores(self, cls, state):
        """What a pre-slots pickle supplies: a plain ``__dict__`` state."""
        revived = cls.__new__(cls)
        revived.__setstate__(dict(state))
        for name, value in state.items():
            assert getattr(revived, name) == value

    @pytest.mark.parametrize("cls,state", CASES, ids=lambda c: getattr(c, "__name__", ""))
    def test_two_tuple_state_restores(self, cls, state):
        """The (dict, slots) form some pickle protocols emit."""
        revived = cls.__new__(cls)
        revived.__setstate__((None, dict(state)))
        for name, value in state.items():
            assert getattr(revived, name) == value

    def test_current_pickles_round_trip(self):
        trace = NormalizedTraceroute(
            target="1.2.3.4", reached=True,
            hops=[NormalizedHop(hop=1, address="9.9.9.9", rtts_ms=(3.0,))],
            tool="tracert",
        )
        record = SiteTrackerRecord(
            url="a.example", country_code="NZ", category="regional",
            trackers=[
                NonLocalTracker(
                    host="t.ads.example", address="5.0.0.1",
                    destination_country="US", destination_city_key="X, US",
                    org_name="Google",
                )
            ],
        )
        record.tracker_count  # warm the derived memo: must not pickle
        for obj in (trace, record):
            clone = pickle.loads(pickle.dumps(obj))
            assert clone == obj
            assert pickle.dumps(clone) == pickle.dumps(obj)

    def test_derived_memo_excluded_and_invalidation_safe(self):
        record = SiteTrackerRecord(
            url="a.example", country_code="NZ", category="regional",
        )
        assert record.tracker_count == 0
        record.trackers.append(
            NonLocalTracker(
                host="t.ads.example", address="5.0.0.1",
                destination_country="US", destination_city_key="X, US",
            )
        )
        # The builder path appends after a read: the memo re-derives.
        assert record.tracker_count == 1
        assert record.destination_countries() == ["US"]
        assert "_derived" not in record.__getstate__()
