"""Fault-tolerant study execution: retry/skip policies and the manifest.

The paper's suite was built to survive real-world failure (volunteers
ran Gamma in chunks, section 3.3); the study driver mirrors that with a
per-country failure policy.  The contracts locked down here:

* ``on_error="retry"`` with a transient injected fault produces a
  ``StudyOutcome`` byte-identical to the fault-free run — including the
  stripped journal — for every backend.
* ``on_error="skip"`` (and exhausted retries) records the country on
  ``outcome.failures`` with the worker-side traceback while every other
  country completes and every analysis degrades to the surviving set.
* ``on_error="raise"`` keeps the historical fail-fast contract, now
  carrying the formatted worker traceback across the process-pool
  pickle boundary (which drops ``__traceback__``).
* The retry backoff schedule is a deterministic function of
  ``(country, attempt)``.
"""

from __future__ import annotations

import pytest

from repro import FaultInjector, run_study
from repro.exec import CountryExecutionError
from repro.exec.resilience import (
    CountryFailure,
    InjectedFaultError,
    ResilientWorker,
    backoff_delay,
)
from repro.study import StudyConfig
from tests.conftest import SMALL_COUNTRIES
from tests.test_exec_equivalence import assert_outcomes_identical

#: Zero backoff keeps the retry suites fast; determinism is untouched.
FAST_RETRY = dict(config=StudyConfig(retry_base_delay=0.0))

FAULT_COUNTRIES = ["CA", "NZ", "RW"]


class TestFaultInjector:
    def test_bounded_fault_is_transient(self):
        injector = FaultInjector({"NZ": 2})
        assert injector.should_fail("NZ", 1)
        assert injector.should_fail("NZ", 2)
        assert not injector.should_fail("NZ", 3)
        assert not injector.should_fail("CA", 1)

    def test_check_raises_the_typed_fault(self):
        with pytest.raises(InjectedFaultError, match="NZ attempt 1"):
            FaultInjector({"NZ": 1}).check("NZ", 1)
        FaultInjector({"NZ": 1}).check("NZ", 2)  # past the bound: no-op

    def test_parse_specs(self):
        injector = FaultInjector.parse("nz:1, ca")
        assert injector.should_fail("NZ", 1) and not injector.should_fail("NZ", 2)
        assert injector.should_fail("CA", 10 ** 6)

    @pytest.mark.parametrize("spec", ["", ",", "NZ:0", "NZ:x", ":3"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultInjector.parse(spec)

    def test_injector_pickles(self):
        import pickle

        injector = pickle.loads(pickle.dumps(FaultInjector({"NZ": 2})))
        assert injector.should_fail("NZ", 2)


class TestBackoffDeterminism:
    def test_schedule_is_reproducible(self):
        assert backoff_delay("NZ", 1, 0.1) == backoff_delay("NZ", 1, 0.1)
        assert backoff_delay("NZ", 1, 0.1) != backoff_delay("CA", 1, 0.1)
        assert backoff_delay("NZ", 1, 0.1) != backoff_delay("NZ", 2, 0.1)

    def test_exponential_envelope_with_jitter(self):
        for attempt in (1, 2, 3, 4):
            delay = backoff_delay("NZ", attempt, 0.1)
            nominal = 0.1 * 2 ** (attempt - 1)
            assert 0.5 * nominal <= delay < 1.5 * nominal

    def test_zero_base_disables_sleeping(self):
        assert backoff_delay("NZ", 3, 0.0) == 0.0


# -- ResilientWorker unit level (no scenario: a tiny fake worker) ------------
class FlakyWorker:
    """Picklable worker failing the first ``fail_attempts`` calls per country."""

    def __init__(self, fail_attempts):
        self.fail_attempts = dict(fail_attempts)
        self.calls = []

    def __call__(self, country_code, attempt=1):
        self.calls.append((country_code, attempt))
        if attempt <= self.fail_attempts.get(country_code, 0):
            raise ValueError(f"flaky {country_code} attempt {attempt}")
        return f"ok:{country_code}"


class TestResilientWorkerUnit:
    def test_raise_mode_is_transparent(self):
        wrapper = ResilientWorker(FlakyWorker({"NZ": 1}), on_error="raise")
        with pytest.raises(ValueError, match="flaky NZ"):
            wrapper("NZ")
        assert wrapper("CA") == "ok:CA"

    def test_retry_recovers_transient_fault(self):
        worker = FlakyWorker({"NZ": 2})
        wrapper = ResilientWorker(worker, on_error="retry", max_retries=2,
                                  base_delay=0.0)
        assert wrapper("NZ") == "ok:NZ"
        assert worker.calls == [("NZ", 1), ("NZ", 2), ("NZ", 3)]

    def test_retry_exhaustion_returns_manifest_entry(self):
        wrapper = ResilientWorker(FlakyWorker({"NZ": 99}), on_error="retry",
                                  max_retries=2, base_delay=0.0)
        failure = wrapper("NZ")
        assert isinstance(failure, CountryFailure)
        assert failure.country_code == "NZ"
        assert failure.attempts == 3
        assert failure.error_type == "ValueError"
        assert "flaky NZ attempt 3" in failure.message
        assert "ValueError" in failure.traceback

    def test_skip_gives_exactly_one_attempt(self):
        worker = FlakyWorker({"NZ": 99})
        failure = ResilientWorker(worker, on_error="skip", max_retries=5,
                                  base_delay=0.0)("NZ")
        assert failure.attempts == 1
        assert worker.calls == [("NZ", 1)]

    def test_traced_failure_carries_journal_buffer(self):
        wrapper = ResilientWorker(FlakyWorker({"NZ": 99}), on_error="retry",
                                  max_retries=1, base_delay=0.0, trace=True)
        failure = wrapper("NZ")
        assert [r["ev"] for r in failure.events] == ["country_retry", "country_failed"]
        assert failure.events[-1]["attempts"] == 2
        assert failure.events[-1]["traceback"] == failure.traceback

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            ResilientWorker(FlakyWorker({}), on_error="explode")
        with pytest.raises(ValueError):
            ResilientWorker(FlakyWorker({}), max_retries=-1)

    def test_run_study_rejects_bad_policy(self, scenario):
        with pytest.raises(ValueError):
            run_study(scenario, countries=["CA"], on_error="explode")


# -- study level: the acceptance criteria ------------------------------------
class TestRetryEquivalence:
    """A transient fault under retry is invisible in the artefacts."""

    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1), ("thread", 4), ("process", 4),
    ])
    def test_outcome_byte_identical_to_fault_free_run(
        self, scenario, study_small, backend, jobs
    ):
        faulted = run_study(
            scenario, countries=SMALL_COUNTRIES, backend=backend, jobs=jobs,
            on_error="retry", fault_injector=FaultInjector({"NZ": 1, "QA": 2}),
            **FAST_RETRY,
        )
        assert faulted.failures == []
        assert_outcomes_identical(study_small, faulted)

    def test_stripped_journal_identical_to_fault_free_run(self, scenario):
        clean = run_study(scenario, countries=FAULT_COUNTRIES, trace=True)
        faulted = run_study(
            scenario, countries=FAULT_COUNTRIES, on_error="retry",
            fault_injector=FaultInjector({"NZ": 1}), trace=True, **FAST_RETRY,
        )
        assert faulted.journal.events("country_retry")  # fault really happened
        assert faulted.journal.dumps(timings=False) == clean.journal.dumps(
            timings=False
        )


class TestSkipManifest:
    @pytest.fixture(scope="class")
    def skipped(self, scenario):
        return run_study(
            scenario, countries=FAULT_COUNTRIES, on_error="skip",
            fault_injector=FaultInjector.parse("NZ"), trace=True, **FAST_RETRY,
        )

    def test_failure_manifest_fields(self, skipped):
        assert skipped.failed_countries() == ["NZ"]
        failure = skipped.failures[0]
        assert failure.attempts == 1
        assert failure.error_type == "InjectedFaultError"
        assert "injected fault: NZ" in failure.message
        assert "InjectedFaultError" in failure.traceback

    def test_surviving_countries_complete(self, skipped):
        assert sorted(skipped.datasets) == ["CA", "RW"]
        assert [r.country_code for r in skipped.results] == ["CA", "RW"]
        assert sorted(skipped.source_trace_origins) == ["CA", "RW"]

    def test_analyses_degrade_to_survivors(self, skipped):
        assert skipped.funnel().total_hosts > 0
        per_country = skipped.prevalence().per_country()
        assert [r.country_code for r in per_country] == ["CA", "RW"]
        assert skipped.summary().to_dict()  # flows/hosting/orgs/policy all build
        with pytest.raises(KeyError, match="failed after 1 attempt"):
            skipped.result_for("NZ")

    def test_journal_tells_the_failure_story(self, skipped):
        failed = skipped.journal.events("country_failed")
        assert [r["country"] for r in failed] == ["NZ"]
        assert "InjectedFaultError" in failed[0]["traceback"]
        assert skipped.journal.run_record["failed"] == ["NZ"]
        # A permanent failure is study content, not a diagnostic: it
        # survives the determinism strip (unlike retry/resume records).
        stripped = skipped.journal.dumps(timings=False)
        assert '"ev":"country_failed"' in stripped
        assert '"ev":"country_retry"' not in stripped

    def test_retry_exhaustion_counts_attempts(self, scenario):
        exhausted = run_study(
            scenario, countries=["CA", "NZ", "RW"], on_error="retry",
            max_retries=1, fault_injector=FaultInjector({"NZ": 99}), **FAST_RETRY,
        )
        assert exhausted.failures[0].attempts == 2
        assert sorted(exhausted.datasets) == ["CA", "RW"]

    @pytest.mark.parametrize("backend,jobs", [("thread", 2), ("process", 2)])
    def test_skip_is_backend_independent(self, scenario, skipped, backend, jobs):
        parallel = run_study(
            scenario, countries=FAULT_COUNTRIES, on_error="skip",
            fault_injector=FaultInjector.parse("NZ"), trace=True,
            backend=backend, jobs=jobs, **FAST_RETRY,
        )
        assert parallel.failed_countries() == ["NZ"]
        assert parallel.journal.dumps(timings=False) == skipped.journal.dumps(
            timings=False
        )
        assert parallel.summary().to_dict() == skipped.summary().to_dict()


class TestRaiseTraceback:
    """Satellite: the worker traceback survives every backend."""

    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1), ("thread", 2), ("process", 2),
    ])
    def test_country_execution_error_carries_worker_traceback(
        self, scenario, backend, jobs
    ):
        with pytest.raises(CountryExecutionError) as excinfo:
            run_study(
                scenario, countries=["CA", "NZ"], backend=backend, jobs=jobs,
                fault_injector=FaultInjector({"NZ": 99}),
            )
        error = excinfo.value
        assert error.country_code == "NZ"
        assert error.worker_traceback is not None
        assert "InjectedFaultError" in error.worker_traceback
        assert "injected fault: NZ attempt 1" in error.worker_traceback
