"""Telemetry must never change the study, and must not depend on how it ran.

Two contracts, both locked down over the 5-country subset:

* **Backend-independence of the metrics**: every deterministic
  (non-runtime) metric family — verdict statuses, funnel stages,
  constraint checks, evidence-latency histograms, tracker attributions,
  site counts — lands on exactly equal values for the serial, thread,
  and process backends at any worker count, across both transports, and
  under a retried fault.  Runtime families (timings, cache traffic) are
  excluded by classification, not by tolerance.
* **Telemetry-independence of the study**: enabling progress streaming
  and resource profiling changes no artefact — the stripped journal is
  byte-identical and the study summary equal, which is what keeps
  ``--progress``/``--profile`` safe to leave on.
"""

from __future__ import annotations

import io

import pytest

from repro import run_study
from repro.exec.resilience import FaultInjector
from repro.obs.metrics import (
    diff_snapshots,
    strip_runtime,
    to_prometheus,
    validate_exposition,
    validate_study_snapshot,
)
from repro.obs.progress import ProgressReporter
from repro.obs.schema import validate_journal

from tests.conftest import SMALL_COUNTRIES


def _run(scenario, **kwargs):
    kwargs.setdefault("countries", SMALL_COUNTRIES)
    return run_study(scenario, **kwargs)


@pytest.fixture(scope="module")
def backend_runs(scenario):
    return {
        "serial": _run(scenario),
        "thread-1": _run(scenario, backend="thread", jobs=1),
        "thread-4": _run(scenario, backend="thread", jobs=4),
        "process-4": _run(scenario, backend="process", jobs=4),
    }


class TestBackendIndependence:
    def test_snapshots_validate(self, backend_runs):
        for name, outcome in backend_runs.items():
            problems = validate_study_snapshot(outcome.metrics_snapshot)
            assert problems == [], (name, problems)

    def test_nonruntime_families_exact(self, backend_runs):
        reference = strip_runtime(backend_runs["serial"].metrics_snapshot["metrics"])
        assert reference["families"], "expected deterministic metric families"
        for name, outcome in backend_runs.items():
            stripped = strip_runtime(outcome.metrics_snapshot["metrics"])
            assert stripped == reference, f"{name} diverged from serial"

    def test_histogram_totals_exact(self, backend_runs):
        # Float histogram sums (simulated evidence latencies) must match
        # bit-for-bit: per-country registries merge in input country
        # order, so scheduling cannot reorder the additions.
        def evidence(outcome):
            entry = outcome.metrics_snapshot["metrics"]["families"]["geoloc_evidence_ms"]
            return [
                (record["labels"], record["counts"], record["sum"], record["count"])
                for record in entry["series"]
            ]

        reference = evidence(backend_runs["serial"])
        assert sum(count for _, _, _, count in reference) > 0
        for name, outcome in backend_runs.items():
            assert evidence(outcome) == reference, name

    def test_diff_between_backends_reports_no_regressions(self, backend_runs):
        findings = diff_snapshots(
            backend_runs["serial"].metrics_snapshot,
            backend_runs["process-4"].metrics_snapshot,
        )
        assert findings == [], [f.render() for f in findings]

    def test_exposition_renders_and_validates(self, backend_runs):
        text = to_prometheus(backend_runs["serial"].metrics_snapshot["metrics"])
        assert validate_exposition(text) == []
        assert "study_sites_total" in text

    def test_study_counts_match_artefacts(self, backend_runs):
        outcome = backend_runs["serial"]
        families = outcome.metrics_snapshot["metrics"]["families"]
        countries = families["study_countries_total"]["series"][0]["value"]
        assert countries == len(SMALL_COUNTRIES)
        loaded = next(
            record["value"]
            for record in families["study_sites_total"]["series"]
            if record["labels"] == {"outcome": "loaded"}
        )
        assert loaded == sum(d.loaded_count for d in outcome.datasets.values())
        funnel = {
            record["labels"]["stage"]: record["value"]
            for record in families["geoloc_funnel_total"]["series"]
        }
        assert funnel["total_hosts"] == outcome.funnel().total_hosts
        assert funnel["verified_nonlocal"] == outcome.funnel().verified_nonlocal


class TestFaultAndTransportIndependence:
    def test_retry_fault_leaves_totals_exact(self, scenario, backend_runs):
        retried = _run(
            scenario, backend="thread", jobs=4, on_error="retry",
            fault_injector=FaultInjector({"NZ": 1}),
        )
        assert retried.failures == []
        assert strip_runtime(retried.metrics_snapshot["metrics"]) == strip_runtime(
            backend_runs["serial"].metrics_snapshot["metrics"]
        )

    def test_transports_agree(self, scenario, backend_runs):
        pickled = _run(scenario, backend="process", jobs=2, transport="pickle")
        assert strip_runtime(pickled.metrics_snapshot["metrics"]) == strip_runtime(
            backend_runs["process-4"].metrics_snapshot["metrics"]
        )

    def test_skipped_country_drops_only_its_contribution(self, scenario):
        clean = _run(scenario, countries=["CA", "RW"])
        partial = _run(
            scenario, countries=["CA", "NZ", "RW"], on_error="skip",
            fault_injector=FaultInjector({"NZ": FaultInjector.ALWAYS}),
        )
        assert partial.failed_countries() == ["NZ"]
        assert partial.metrics_snapshot["meta"]["failed"] == ["NZ"]
        families = partial.metrics_snapshot["metrics"]["families"]
        assert families["study_countries_total"]["series"][0]["value"] == 2
        assert strip_runtime(partial.metrics_snapshot["metrics"]) == strip_runtime(
            clean.metrics_snapshot["metrics"]
        )


class TestTelemetryInvariance:
    """Satellite contract: progress + profiling change no artefact."""

    @pytest.fixture(scope="class")
    def plain_and_instrumented(self, scenario):
        plain = _run(scenario, trace=True)
        reporter = ProgressReporter(
            len(SMALL_COUNTRIES), stream=io.StringIO(), record_events=True
        )
        instrumented = _run(
            scenario, trace=True, progress=reporter, profile=True,
        )
        return plain, instrumented, reporter

    def test_stripped_journal_bytes_identical(self, plain_and_instrumented):
        plain, instrumented, _ = plain_and_instrumented
        assert plain.journal.dumps(timings=False) == instrumented.journal.dumps(
            timings=False
        )

    def test_instrumented_journal_has_diagnostics_and_validates(
        self, plain_and_instrumented
    ):
        _, instrumented, reporter = plain_and_instrumented
        events = {record.get("ev") for record in instrumented.journal.records}
        assert "progress" in events
        assert "country_resources" in events
        assert validate_journal(instrumented.journal.records) == []
        assert len(reporter.events()) == len(SMALL_COUNTRIES)

    def test_progress_stream_saw_every_country(self, plain_and_instrumented):
        _, _, reporter = plain_and_instrumented
        events = reporter.events()
        assert events[-1]["done"] == events[-1]["total"] == len(SMALL_COUNTRIES)
        assert {event["country"] for event in events} == set(SMALL_COUNTRIES)

    def test_summary_and_artefacts_equal(self, plain_and_instrumented):
        plain, instrumented, _ = plain_and_instrumented
        assert plain.summary() == instrumented.summary()
        assert plain.source_trace_origins == instrumented.source_trace_origins
        assert plain.funnel() == instrumented.funnel()

    def test_resources_recorded_per_country(self, plain_and_instrumented):
        _, instrumented, _ = plain_and_instrumented
        resources = instrumented.metrics_snapshot["resources"]
        assert sorted(resources) == sorted(SMALL_COUNTRIES)
        for usage in resources.values():
            assert usage["cpu_seconds"] >= 0.0
            assert set(usage["phases"]) <= {"gamma", "source_traces", "geoloc", "join"}

    def test_metrics_can_be_disabled(self, scenario):
        outcome = _run(scenario, countries=["CA"], collect_metrics=False)
        assert outcome.metrics_snapshot is None
        assert outcome.results  # the study itself still ran
