"""Geolocation databases: error injection and metadata lookups."""

import pytest

from repro.geodb.errors import GeoErrorKind, GeoErrorModel
from repro.geodb.ipinfo import IPInfoService
from repro.geodb.ipmap import IPMapService
from repro.netsim.geography import default_registry
from repro.netsim.network import World
from repro.netsim.servers import Deployment, Organization, PoP

REG = default_registry()


@pytest.fixture()
def world_with_org():
    world = World(geo=REG)
    asys = world.asns.register("ORG-NET", "OrgX", "US")
    cloud = world.asns.register("CLOUD-NET", "CloudCo", "US", is_cloud=True)
    pops = []
    for cc in ("FR", "DE", "JP"):
        city = REG.country(cc).capital
        allocation = world.ips.allocate(asys.asn, city, label=f"OrgX/{cc.lower()}1")
        pops.append(PoP("OrgX", f"{cc.lower()}1", city, allocation, asys.asn))
    cloud_alloc = world.ips.allocate(cloud.asn, REG.city("Nairobi, KE"), label="CloudCo/OrgX-ke")
    pops.append(PoP("OrgX", "ke1", REG.city("Nairobi, KE"), cloud_alloc, cloud.asn))
    world.add_deployment(Deployment(org=Organization("OrgX", "US", ("orgx.com",)), pops=pops))
    return world


class TestGeoErrorModel:
    def test_rates_must_sum_below_one(self):
        with pytest.raises(ValueError):
            GeoErrorModel(missing_rate=0.5, wrong_city_rate=0.4, wrong_country_rate=0.3)

    def test_zero_rates_never_err(self):
        model = GeoErrorModel(missing_rate=0, wrong_city_rate=0, wrong_country_rate=0)
        assert all(model.classify(f"5.0.0.{i}") == GeoErrorKind.NONE for i in range(100))

    def test_classification_deterministic(self):
        model = GeoErrorModel()
        assert model.classify("5.0.0.1") == model.classify("5.0.0.1")

    def test_rates_approximately_respected(self):
        model = GeoErrorModel(missing_rate=0.2, wrong_city_rate=0.0, wrong_country_rate=0.0)
        missing = sum(
            1 for i in range(500) if model.classify(f"5.0.{i // 250}.{i % 250}") == GeoErrorKind.MISSING
        )
        assert 60 < missing < 140  # ~100 expected

    def test_wrong_city_prefers_siblings(self):
        model = GeoErrorModel()
        true_city = REG.city("Frankfurt, DE")
        siblings = [REG.city("Paris, FR"), REG.city("Tokyo, JP")]
        hits = 0
        for i in range(100):
            wrong = model.pick_wrong_city(f"5.0.1.{i}", true_city, REG, siblings)
            assert wrong.key != true_city.key
            if wrong.key in {c.key for c in siblings}:
                hits += 1
        assert hits > 60

    def test_wrong_city_same_country(self):
        model = GeoErrorModel()
        wrong = model.pick_wrong_city_same_country("5.0.0.9", REG.city("Paris, FR"), REG)
        assert wrong.country_code == "FR"
        assert wrong.name != "Paris"

    def test_wrong_city_same_country_single_city_none(self):
        model = GeoErrorModel()
        assert model.pick_wrong_city_same_country("5.0.0.9", REG.city("Doha, QA"), REG) is None


class TestIPMapService:
    def test_perfect_db_returns_truth(self, world_with_org):
        ipmap = IPMapService(world_with_org, GeoErrorModel(0, 0, 0))
        for allocation in world_with_org.ips:
            claim = ipmap.locate(str(allocation.address(1)))
            assert claim.city_key == allocation.city.key

    def test_unknown_address_none(self, world_with_org):
        ipmap = IPMapService(world_with_org)
        assert ipmap.locate("8.8.8.8") is None

    def test_wrong_country_biased_to_sibling_pops(self, world_with_org):
        model = GeoErrorModel(missing_rate=0, wrong_city_rate=0, wrong_country_rate=1.0)
        ipmap = IPMapService(world_with_org, model)
        pop_cities = {"Paris, FR", "Frankfurt, DE", "Tokyo, JP", "Nairobi, KE"}
        sibling_hits = 0
        allocation = next(iter(world_with_org.ips))
        for host in range(1, 100):
            claim = ipmap.locate(str(allocation.address(host)))
            assert claim.city_key != allocation.city.key
            if claim.city_key in pop_cities:
                sibling_hits += 1
        assert sibling_hits > 50

    def test_caches_consistently(self, world_with_org):
        ipmap = IPMapService(world_with_org)
        allocation = next(iter(world_with_org.ips))
        address = str(allocation.address(3))
        assert ipmap.locate(address) is ipmap.locate(address)

    def test_is_correct_oracle(self, world_with_org):
        perfect = IPMapService(world_with_org, GeoErrorModel(0, 0, 0))
        allocation = next(iter(world_with_org.ips))
        assert perfect.is_correct(str(allocation.address(1))) is True
        assert perfect.is_correct("8.8.8.8") is None

    def test_always_wrong_country_flagged(self, world_with_org):
        model = GeoErrorModel(missing_rate=0, wrong_city_rate=0, wrong_country_rate=1.0)
        ipmap = IPMapService(world_with_org, model)
        allocation = next(iter(world_with_org.ips))
        assert ipmap.is_correct(str(allocation.address(1))) is False


class TestIPInfoService:
    def test_lookup_metadata(self, world_with_org):
        ipinfo = IPInfoService(world_with_org)
        allocation = next(a for a in world_with_org.ips if a.label.startswith("OrgX/"))
        meta = ipinfo.lookup(str(allocation.address(1)))
        assert meta.org == "OrgX"
        assert meta.country_code == allocation.city.country_code
        assert not meta.is_cloud_hosted

    def test_cloud_attribution(self, world_with_org):
        ipinfo = IPInfoService(world_with_org)
        cloud_alloc = next(a for a in world_with_org.ips if a.label.startswith("CloudCo/"))
        meta = ipinfo.lookup(str(cloud_alloc.address(1)))
        assert meta.org == "CloudCo"
        assert meta.is_cloud_hosted
        assert ipinfo.hosted_on_cloud(str(cloud_alloc.address(1)))

    def test_unknown_address_none(self, world_with_org):
        ipinfo = IPInfoService(world_with_org)
        assert ipinfo.lookup("8.8.8.8") is None
        assert ipinfo.asn_of("8.8.8.8") is None
        assert not ipinfo.hosted_on_cloud("8.8.8.8")
