"""Extension modules: cross-country behaviour, local trackers, visit
variability, longitudinal compliance, artifact export."""

import json

import pytest

from repro import (
    LongitudinalStudy,
    VisitVariabilityStudy,
    build_scenario,
    export_study,
    load_datasets,
    run_study,
)


class TestCrossCountry:
    def test_yahoo_regional_adaptation(self, study_full):
        """The paper's closing observation: yahoo.com ships Adobe/Oracle/
        Taboola trackers only to some countries."""
        analysis = study_full.cross_country()
        differences = analysis.org_differences("yahoo.com")
        regional_only = {"Adobe", "Oracle", "Taboola"} & set(differences)
        assert regional_only
        for org in regional_only:
            assert set(differences[org]) <= {"AU", "QA", "AE"}
        assert not analysis.is_uniform("yahoo.com")

    def test_uniform_site(self, study_full):
        analysis = study_full.cross_country()
        # wikipedia.org embeds no trackers anywhere.
        assert analysis.is_uniform("wikipedia.org")

    def test_countries_measuring(self, study_full):
        analysis = study_full.cross_country()
        measuring = analysis.countries_measuring("google.com")
        assert len(measuring) >= 18  # charted everywhere, most loads succeed

    def test_view_contents(self, study_full):
        analysis = study_full.cross_country()
        view = analysis.view("yahoo.com", "AU")
        assert view is not None
        assert "Yahoo" in view.tracker_orgs

    def test_view_missing_country(self, study_full):
        analysis = study_full.cross_country()
        assert analysis.view("yahoo.com", "CA") is None  # not in CA's list

    def test_most_adapted_ranking(self, study_full):
        analysis = study_full.cross_country()
        ranked = analysis.most_adapted_sites(["yahoo.com", "wikipedia.org", "google.com"])
        assert ranked[0][0] == "yahoo.com"


class TestLocalTrackers:
    def test_local_heavy_countries_have_local_trackers(self, study_full):
        analysis = study_full.local_trackers()
        per_country = analysis.per_country()
        # The US and India are tracker-heavy but local.
        assert per_country["US"] > 60
        assert per_country["IN"] > 60
        # Their *non-local* rates are ~0/1 — the trackers are domestic.
        rows = {r.country_code: r.combined_pct for r in study_full.prevalence().per_country()}
        assert rows["US"] == 0.0

    def test_ownership_dominated_by_majors(self, study_full):
        analysis = study_full.local_trackers()
        ownership = analysis.ownership("IN")
        assert "Google" in ownership

    def test_foreign_owned_share_of_local_servers(self, study_full):
        """The sovereignty point: even in-country tracking servers mostly
        belong to foreign (US) companies."""
        analysis = study_full.local_trackers()
        share = analysis.foreign_owned_share("IN")
        assert share is not None and share > 0.5

    def test_russia_local_trackers_domestic(self, study_full):
        analysis = study_full.local_trackers()
        ownership = analysis.ownership("RU")
        assert "Metrika" in ownership

    def test_records_have_homes(self, study_full):
        analysis = study_full.local_trackers()
        records = analysis.records("RU")
        metrika = [r for r in records if r.org_name == "Metrika"]
        assert metrika and metrika[0].domestically_owned


class TestVisitVariability:
    def test_multi_visit_site(self, scenario):
        study = VisitVariabilityStudy(scenario)
        # A Jordanian site: long-tail embeds include flaky ad slots.
        url = scenario.targets["JO"].regional[0]
        stability = study.measure_site(url, "JO", visits=4)
        assert stability.visits == 4
        assert stability.intersection_hosts <= stability.union_hosts

    def test_country_summary_detects_missed_trackers(self, scenario):
        study = VisitVariabilityStudy(scenario)
        summary = study.country_summary("JO", visits=3, limit=25)
        assert 0.0 <= summary["missed_share"] <= 1.0
        assert summary["missed_share"] > 0.0  # a single crawl misses some
        assert summary["mean_jaccard"] < 1.0

    def test_stable_market_near_perfect(self, scenario):
        # Canada's embeds are all always-on (no flaky long tail).
        study = VisitVariabilityStudy(scenario)
        summary = study.country_summary("CA", visits=3, limit=15)
        assert summary["mean_jaccard"] > 0.9

    def test_visits_must_be_positive(self, scenario):
        study = VisitVariabilityStudy(scenario)
        with pytest.raises(ValueError):
            study.measure_site("google.com", "CA", visits=0)


class TestLongitudinal:
    @pytest.fixture()
    def fresh_scenario(self):
        # Longitudinal experiments mutate the world; never reuse the
        # session-scoped scenario.
        return build_scenario(seed="longitudinal-test")

    def test_compliance_reduces_nonlocal_rate(self, fresh_scenario):
        study = LongitudinalStudy(fresh_scenario)
        report = study.measure_effect("JO", adoption=1.0)
        assert report.localized_orgs
        assert report.after_pct < report.before_pct
        assert report.reduction_points > 15

    def test_residency_pops_serve_only_domestic_clients(self, fresh_scenario):
        study = LongitudinalStudy(fresh_scenario)
        study.enact_localization("JO", orgs=["Google"])
        world = fresh_scenario.world
        google = world.deployments["Google"]
        jo_client = fresh_scenario.volunteers["JO"].city
        assert google.serve(jo_client).country_code == "JO"
        # Lebanese clients (nearby) must not leak onto the JO residency PoP.
        lb_client = fresh_scenario.volunteers["LB"].city
        assert google.serve(lb_client).country_code != "JO"

    def test_foreign_serving_orgs_listing(self, fresh_scenario):
        study = LongitudinalStudy(fresh_scenario)
        orgs = study.foreign_serving_orgs("JO")
        assert "Google" in orgs and "Meta" in orgs

    def test_unknown_org_rejected(self, fresh_scenario):
        study = LongitudinalStudy(fresh_scenario)
        with pytest.raises(KeyError):
            study.enact_localization("JO", orgs=["NoSuchOrg"])

    def test_bad_adoption_rejected(self, fresh_scenario):
        with pytest.raises(ValueError):
            LongitudinalStudy(fresh_scenario).enact_localization("JO", adoption=0.0)


class TestArtifacts:
    def test_export_and_reload(self, study_small, tmp_path):
        files = export_study(study_small, tmp_path / "bundle")
        assert (tmp_path / "bundle" / "manifest.json").exists()
        manifest = json.loads((tmp_path / "bundle" / "manifest.json").read_text())
        assert set(manifest["countries"]) == set(study_small.datasets)
        assert len(files) == len(manifest["files"]) + 1  # + manifest itself

        datasets = load_datasets(tmp_path / "bundle")
        for cc, dataset in datasets.items():
            assert dataset.to_json() == study_small.datasets[cc].to_json()

    def test_figures_rendered(self, study_small, tmp_path):
        export_study(study_small, tmp_path / "bundle")
        fig3 = (tmp_path / "bundle" / "figures" / "fig3_prevalence.txt").read_text()
        assert "Figure 3" in fig3

    def test_geolocation_evidence_exported(self, study_small, tmp_path):
        export_study(study_small, tmp_path / "bundle")
        payload = json.loads((tmp_path / "bundle" / "geolocation" / "NZ.json").read_text())
        assert payload["funnel"]["total_hosts"] > 0
        statuses = {s["status"] for s in payload["servers"]}
        assert "nonlocal_verified" in statuses

    def test_load_requires_manifest(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_datasets(tmp_path)

    def test_exported_ips_anonymised(self, study_small, tmp_path):
        export_study(study_small, tmp_path / "bundle")
        for cc in study_small.datasets:
            text = (tmp_path / "bundle" / "datasets" / f"{cc}.json").read_text()
            assert '"volunteer_ip": "0.0.0.0"' in text


class TestTabularExports:
    def test_prevalence_csv(self, study_small):
        from repro.core.analysis.tabular import prevalence_csv

        text = prevalence_csv(study_small.prevalence())
        lines = text.strip().splitlines()
        assert lines[0].startswith("country,regional_pct")
        assert len(lines) == 1 + len(study_small.datasets)
        assert any(line.startswith("CA,0.00,0.00,0.00") for line in lines)

    def test_flows_csv(self, study_small):
        from repro.core.analysis.tabular import flows_csv

        text = flows_csv(study_small.flows())
        assert text.startswith("source,destination,website_count\n")
        assert "NZ,AU," in text

    def test_hosting_csv(self, study_small):
        from repro.core.analysis.tabular import hosting_csv

        text = hosting_csv(study_small.hosting())
        assert text.startswith("hosting_country,")

    def test_per_website_csv(self, study_small):
        from repro.core.analysis.tabular import per_website_csv

        text = per_website_csv(study_small.per_website(), ["NZ", "RW"])
        rows = text.strip().splitlines()[1:]
        assert all(r.split(",")[0] in ("NZ", "RW") for r in rows)
        assert all(int(r.split(",")[1]) >= 1 for r in rows)

    def test_flows_geojson(self, study_small, scenario):
        import json as _json

        from repro.core.analysis.tabular import flows_geojson

        payload = _json.loads(flows_geojson(study_small.flows(), scenario.world.geo))
        assert payload["type"] == "FeatureCollection"
        assert payload["features"]
        feature = payload["features"][0]
        assert feature["geometry"]["type"] == "LineString"
        assert len(feature["geometry"]["coordinates"]) == 2
        assert feature["properties"]["website_count"] >= 1

    def test_geojson_min_weight_filter(self, study_small, scenario):
        import json as _json

        from repro.core.analysis.tabular import flows_geojson

        all_flows = _json.loads(flows_geojson(study_small.flows(), scenario.world.geo))
        heavy = _json.loads(flows_geojson(study_small.flows(), scenario.world.geo, min_weight=10))
        assert len(heavy["features"]) < len(all_flows["features"])

    def test_bundle_includes_data_directory(self, study_small, tmp_path):
        from repro import export_study

        export_study(study_small, tmp_path / "bundle")
        data = tmp_path / "bundle" / "data"
        assert (data / "prevalence.csv").exists()
        assert (data / "flows.geojson").exists()
        assert (data / "summary.json").exists()


class TestReanalysis:
    def test_geolocations_roundtrip(self, scenario, study_small, tmp_path):
        from repro.artifacts import export_study, load_geolocations

        export_study(study_small, tmp_path / "bundle")
        loaded = load_geolocations(tmp_path / "bundle", scenario.world.geo)
        for cc, original in study_small.geolocations.items():
            rebuilt = loaded[cc]
            assert rebuilt.funnel.total_hosts == original.funnel.total_hosts
            assert set(rebuilt.verdicts) == set(original.verdicts)
            for address, verdict in original.verdicts.items():
                assert rebuilt.verdicts[address].status == verdict.status
                assert rebuilt.verdicts[address].claimed_country == verdict.claimed_country

    def test_reanalysis_matches_in_memory_figures(self, scenario, study_small, tmp_path):
        from repro.artifacts import export_study, reanalyze
        from repro.core.analysis.prevalence import PrevalenceAnalysis

        export_study(study_small, tmp_path / "bundle")
        results = reanalyze(tmp_path / "bundle", scenario.identifier, scenario.world.geo)
        from_disk = {
            r.country_code: r.combined_pct for r in PrevalenceAnalysis(results).per_country()
        }
        in_memory = study_small.prevalence().combined_pct_by_country()
        assert from_disk == in_memory
