"""Study-level equivalence of the probe-layer fast paths.

Three independent switches accelerate component C3 — direct
normalisation instead of the render → parse round trip, the per-country
first-observation trace memo, and the cross-country destination-probe
memo.  The contract: none of them may change a study artefact.  Direct
normalisation and the destination memo are *byte-invisible* everywhere
(``assert_outcomes_identical``); the trace memo replays each address's
first observation for later sites, so per-site duplicate entries carry
the first site's RTT samples — while everything downstream (first
observations, source traces, verdicts, funnel, summary) stays
byte-identical.
"""

from __future__ import annotations

import json

from repro import StudyConfig, run_study
from repro.atlas.measurements import DEST_TRACE_CACHE_NAME
from repro.core.gamma.probes import TRACE_CACHE_NAME, ProbeRunner
from tests.test_exec_equivalence import assert_outcomes_identical

#: Mixed-format sample: CA/NZ volunteers run Linux traceroute, AZ runs
#: Windows tracert — both quantisations cross the study path.
COUNTRIES = ["CA", "NZ", "AZ"]


def _first_observations(dataset):
    """First trace per address in site-visit order, as stored dicts."""
    merged = {}
    for measurement in dataset.websites.values():
        for address, trace in measurement.traceroutes.items():
            merged.setdefault(address, json.dumps(trace.to_dict()))
    return merged


class TestExerciseParsersEquivalence:
    def test_direct_normalisation_byte_identical_to_parser_path(self, scenario):
        fast = run_study(scenario, countries=COUNTRIES, config=StudyConfig())
        oracle = run_study(
            scenario, countries=COUNTRIES, config=StudyConfig(exercise_parsers=True)
        )
        assert_outcomes_identical(fast, oracle)

    def test_tool_provenance_matches_volunteer_os(self, scenario):
        outcome = run_study(scenario, countries=COUNTRIES, config=StudyConfig())
        tools = {
            cc: {
                trace.tool
                for measurement in outcome.datasets[cc].websites.values()
                for trace in measurement.traceroutes.values()
            }
            for cc in COUNTRIES
        }
        assert tools["CA"] <= {"traceroute"}
        assert tools["NZ"] <= {"traceroute"}
        assert tools["AZ"] <= {"tracert"}
        assert tools["AZ"]  # tracert actually produced records


class TestTraceMemoEquivalence:
    def test_memo_preserves_every_downstream_artefact(self, scenario):
        memo = run_study(scenario, countries=COUNTRIES, config=StudyConfig())
        legacy = run_study(
            scenario, countries=COUNTRIES, config=StudyConfig(memo_traces=False)
        )
        # Everything the analyses consume is byte-identical.
        assert memo.source_trace_origins == legacy.source_trace_origins
        for cc in COUNTRIES:
            assert _first_observations(memo.datasets[cc]) == _first_observations(
                legacy.datasets[cc]
            ), cc
            a, b = memo.geolocations[cc], legacy.geolocations[cc]
            assert a.funnel == b.funnel, cc
            assert a.host_to_address == b.host_to_address, cc
            assert a.verdicts == b.verdicts, cc
        assert memo.funnel() == legacy.funnel()
        assert json.dumps(memo.summary().to_dict()) == json.dumps(
            legacy.summary().to_dict()
        )

    def test_memo_replays_first_observation_for_duplicates(self, scenario):
        outcome = run_study(scenario, countries=["CA"], config=StudyConfig())
        dataset = outcome.datasets["CA"]
        seen = {}
        duplicates = 0
        for measurement in dataset.websites.values():
            for address, trace in measurement.traceroutes.items():
                if address in seen:
                    duplicates += 1
                    assert trace == seen[address], address
                else:
                    seen[address] = trace
        # ~100 sites share third-party infrastructure heavily; the memo
        # must actually be getting exercised for this test to mean much.
        assert duplicates > 0

    def test_reached_flag_is_measurement_key_independent(self, scenario):
        # The memo may serve a trace launched under another site's key;
        # downstream per-site reached counts only stay stable because
        # reachability never depends on the measurement key.
        volunteer = scenario.volunteers["NZ"]
        runner = ProbeRunner(scenario.world, volunteer.os_name)
        address = next(iter(scenario.world.ips)).address(1)
        first = runner.traceroute(volunteer.city, str(address), "site-a:0")
        second = runner.traceroute(volunteer.city, str(address), "site-b:7")
        assert first.reached == second.reached


class TestProbeRunnerMemo:
    def _target(self, scenario):
        return str(next(iter(scenario.world.ips)).address(2))

    def test_memo_hits_counted_on_registered_cache(self, scenario, registry):
        runner = ProbeRunner(scenario.world, "linux")
        city = registry.city("Toronto, CA")
        target = self._target(scenario)
        from repro.exec.cache import cache_snapshot

        before = cache_snapshot(TRACE_CACHE_NAME)[TRACE_CACHE_NAME]
        runner.traceroute_many(city, [target], key_prefix="s1", memo=True)
        runner.traceroute_many(city, [target], key_prefix="s2", memo=True)
        after = cache_snapshot(TRACE_CACHE_NAME)[TRACE_CACHE_NAME]
        assert after.misses == before.misses + 1
        assert after.hits == before.hits + 1

    def test_runners_never_share_memo_entries(self, scenario, registry):
        city = registry.city("Toronto, CA")
        target = self._target(scenario)
        first = ProbeRunner(scenario.world, "linux")
        second = ProbeRunner(scenario.world, "linux")
        a = first.traceroute_many(city, [target], key_prefix="x", memo=True)
        b = second.traceroute_many(city, [target], key_prefix="y", memo=True)
        # Same inputs, isolated namespaces: both computed (equal values,
        # launched under their own keys — not served from each other).
        assert a[target].target == b[target].target
        info = ProbeRunner(scenario.world, "linux")  # fresh namespace token
        assert info._memo_namespace > second._memo_namespace

    def test_memo_off_recomputes_per_site(self, scenario, registry):
        runner = ProbeRunner(scenario.world, "linux")
        city = registry.city("Toronto, CA")
        target = self._target(scenario)
        one = runner.traceroute_many(city, [target], key_prefix="a", memo=False)
        two = runner.traceroute_many(city, [target], key_prefix="b", memo=False)
        assert one[target].reached == two[target].reached


class TestDestinationMemoEquivalence:
    def test_dest_traceroute_identical_to_unmemoised_call(self, scenario):
        atlas = scenario.atlas
        probe, _ = atlas.mesh.probe_for_country("US", None)
        address = str(next(iter(scenario.world.ips)).address(3))
        memoised = atlas.dest_traceroute(probe, address)
        direct = atlas.traceroute(probe, address, f"dest:{address}")
        assert memoised.target == direct.target
        assert memoised.reached == direct.reached
        assert [(h.index, h.address, h.rtt_ms) for h in memoised.hops] == [
            (h.index, h.address, h.rtt_ms) for h in direct.hops
        ]
        # And the repeat is a hit on the registered cache.
        info = atlas.dest_trace_cache.info()
        assert info.misses >= 1

    def test_study_metrics_surface_probe_caches(self, scenario):
        outcome = run_study(scenario, countries=COUNTRIES, config=StudyConfig())
        infos = outcome.metrics.cache_infos
        assert TRACE_CACHE_NAME in infos
        assert infos[TRACE_CACHE_NAME]["hits"] > 0  # duplicate addresses replayed
        assert DEST_TRACE_CACHE_NAME in infos
        # Countries share tracker destinations, so the cross-country memo
        # must produce real hits even on a 3-country sample.
        assert infos[DEST_TRACE_CACHE_NAME]["hits"] > 0
