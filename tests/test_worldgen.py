"""World generation: org specs, deployments, profiles, site generation."""

import pytest

from repro.domains import registrable_domain
from repro.netsim.geography import MEASUREMENT_COUNTRIES, default_registry
from repro.worldgen.datacenters import datacenter_city, volunteer_city
from repro.worldgen.lists_gen import build_directory, build_filter_lists, tracking_entries_for
from repro.worldgen.orgs_data import CLOUD_SPECS, LONGTAIL_SPECS, MAJOR_SPECS, all_org_specs
from repro.worldgen.orgspec import ListMembership, OrgKind, OrgSpec
from repro.worldgen.profiles import PROFILES
from repro.worldgen.sites import generate_country_sites, generate_global_sites

REG = default_registry()


class TestOrgSpec:
    def test_hosts_must_be_under_domains(self):
        with pytest.raises(ValueError):
            OrgSpec(name="X", home="US", kind=OrgKind.LONGTAIL,
                    domains=("a.com",), hosts=("h.b.com",), pops=("US",))

    def test_restriction_on_unknown_pop_rejected(self):
        with pytest.raises(ValueError):
            OrgSpec(name="X", home="US", kind=OrgKind.LONGTAIL,
                    domains=("a.com",), pops=("US",), restricted={"FR": ("FR",)})

    def test_needs_pops_unless_cloud(self):
        with pytest.raises(ValueError):
            OrgSpec(name="X", home="US", kind=OrgKind.LONGTAIL, domains=("a.com",))

    def test_effective_hosts_falls_back_to_domains(self):
        spec = OrgSpec(name="X", home="US", kind=OrgKind.LONGTAIL,
                       domains=("a.com",), pops=("US",))
        assert spec.effective_hosts == ("a.com",)


class TestCatalogueData:
    def test_all_specs_valid_and_unique(self):
        specs = all_org_specs()
        names = [s.name for s in specs]
        assert len(names) == len(set(names))
        domains = [d for s in specs for d in s.domains]
        assert len(domains) == len(set(domains))

    def test_pop_countries_exist(self):
        for spec in all_org_specs():
            for cc in spec.pops:
                assert REG.has_country(cc), f"{spec.name}: {cc}"

    def test_cloud_pops_reference_cloud_orgs(self):
        clouds = {s.name for s in CLOUD_SPECS}
        for spec in all_org_specs():
            for cloud in spec.cloud_pops.values():
                assert cloud in clouds

    def test_tracker_org_count_and_ownership(self):
        trackers = [s for s in all_org_specs() if s.is_tracker]
        assert 60 <= len(trackers) <= 100  # paper: ~70 observed
        us_share = sum(1 for s in trackers if s.home == "US") / len(trackers)
        assert 0.4 <= us_share <= 0.6  # paper: 50 %

    def test_majors_have_no_pops_in_foreign_heavy_countries(self):
        # The calibration core: no major tracking network hosts in the
        # countries the paper found to be foreign-heavy.
        foreign_heavy = {"AZ", "EG", "RW", "UG", "QA", "PK", "NZ", "JO", "SA", "TH"}
        for spec in MAJOR_SPECS:
            assert not (set(spec.pops) & foreign_heavy), spec.name

    def test_majors_cover_local_heavy_countries(self):
        google = next(s for s in MAJOR_SPECS if s.name == "Google")
        for cc in ("US", "CA", "GB", "IN", "JP", "AU", "RU", "TW", "LK"):
            assert cc in google.pops

    def test_india_caches_restricted(self):
        for spec in MAJOR_SPECS:
            if "IN" in spec.pops:
                assert spec.restricted.get("IN") == ("IN",), spec.name

    def test_nairobi_edge_serves_africa_only(self):
        ke_orgs = [s for s in LONGTAIL_SPECS if "KE" in s.pops]
        assert len(ke_orgs) >= 20  # the paper's AWS-Nairobi cluster
        for spec in ke_orgs:
            assert "PK" not in spec.restricted.get("KE", ()), spec.name
            assert set(spec.restricted["KE"]) <= {"RW", "UG", "KE", "EG", "DZ", "GH", "ZA"}

    def test_google_pinned_to_germany_for_egypt(self):
        google = next(s for s in MAJOR_SPECS if s.name == "Google")
        assert google.pinned.get("EG") == "DE"


class TestFilterListGeneration:
    def test_lists_parse_and_cover_trackers(self):
        global_set, regional, texts = build_filter_lists(all_org_specs())
        assert set(texts) >= {"easylist", "easyprivacy", "regional-IN", "regional-LK"}
        assert global_set.match("stats.g.doubleclick.net") is not None
        assert global_set.match("dpm.demdex.net").list_name == "easyprivacy"

    def test_manual_only_orgs_not_in_lists(self):
        global_set, regional, _ = build_filter_lists(all_org_specs())
        # theozone-project.com is the paper's manually-labelled example.
        assert global_set.match("elements.theozone-project.com") is None
        for fset in regional.values():
            assert fset.match("elements.theozone-project.com") is None

    def test_directory_covers_manual_orgs(self):
        directory = build_directory(all_org_specs())
        assert directory.is_tracking_host("elements.theozone-project.com")

    def test_youtube_split_from_google(self):
        directory = build_directory(all_org_specs())
        assert directory.org_for_host("youtube.com").name == "YouTube"
        assert directory.org_for_host("www.google.com").name == "Google"
        assert not directory.is_tracking_host("youtube.com")

    def test_content_hosts_not_tracking(self):
        directory = build_directory(all_org_specs())
        assert not directory.is_tracking_host("s.yimg.com")
        assert not directory.is_tracking_host("abs.twimg.com")
        assert directory.is_tracking_host("analytics.yahoo.com")

    def test_tracking_entries_for_non_tracker_empty(self):
        spec = next(s for s in all_org_specs() if s.name == "CloudMesh")
        assert tracking_entries_for(spec) == ()


class TestProfiles:
    def test_every_measurement_country_profiled(self):
        assert set(PROFILES) == set(MEASUREMENT_COUNTRIES)

    def test_adoption_probabilities_valid(self):
        for profile in PROFILES.values():
            for org, p in profile.major_adoption.items():
                assert 0 < p <= 1, (profile.country, org)
            assert 0 < profile.monetized_rate <= 1
            assert 0 < profile.gov_monetized_rate <= 1

    def test_adopted_orgs_exist(self):
        names = {s.name for s in all_org_specs()}
        for profile in PROFILES.values():
            for org in profile.major_adoption:
                assert org in names, (profile.country, org)
            for org, _w in profile.longtail_pool:
                assert org in names, (profile.country, org)

    def test_egypt_volunteer_opts_out_of_traceroutes(self):
        assert PROFILES["EG"].traceroute_opt_out

    def test_load_failure_rates_match_figure_2b(self):
        assert PROFILES["JP"].load_failure_rate == pytest.approx(0.36)
        assert PROFILES["SA"].load_failure_rate == pytest.approx(0.44)
        for cc, profile in PROFILES.items():
            if cc not in ("JP", "SA"):
                assert profile.load_failure_rate <= 0.14

    def test_canada_pool_is_canadian_capable(self):
        ca = PROFILES["CA"]
        assert {name for name, _ in ca.longtail_pool} <= {"IndexExchange", "Sharethrough"}


class TestSiteGeneration:
    def test_country_sites_structure(self):
        generated = generate_country_sites(PROFILES["TH"], REG, {s.name: s for s in all_org_specs()})
        regional = [g for g in generated if g.website.category == "regional"]
        government = [g for g in generated if g.website.category == "government"]
        assert len(regional) == 92
        assert len(government) == PROFILES["TH"].gov_site_count
        assert sum(1 for g in regional if g.website.adult) == 4
        assert sum(1 for g in regional if g.website.banned) == 3

    def test_gov_sites_use_gov_tld(self):
        generated = generate_country_sites(PROFILES["AR"], REG, {s.name: s for s in all_org_specs()})
        for item in generated:
            if item.website.category == "government":
                assert item.website.domain.endswith(".gob.ar")

    def test_site_domains_registrable(self):
        generated = generate_country_sites(PROFILES["EG"], REG, {s.name: s for s in all_org_specs()})
        for item in generated:
            assert registrable_domain(item.website.domain) is not None

    def test_deterministic(self):
        specs = {s.name: s for s in all_org_specs()}
        a = generate_country_sites(PROFILES["TH"], REG, specs)
        b = generate_country_sites(PROFILES["TH"], REG, specs)
        assert [g.website.domain for g in a] == [g.website.domain for g in b]
        assert [len(g.website.embedded) for g in a] == [len(g.website.embedded) for g in b]

    def test_global_sites_placement(self):
        specs = {s.name: s for s in all_org_specs()}
        generated = generate_global_sites(PROFILES, specs)
        domains = {g.website.domain for g in generated}
        assert "google.com" in domains and "wikipedia.org" in domains
        google_com = next(g for g in generated if g.website.domain == "google.com")
        assert set(google_com.website.listed_in) == set(MEASUREMENT_COUNTRIES)
        assert google_com.hosting_org == "Google"

    def test_youtube_embeds_many_google_trackers(self):
        # Section 6.2: YouTube in Azerbaijan embedded dozens of Google
        # tracking domains.
        specs = {s.name: s for s in all_org_specs()}
        generated = generate_global_sites(PROFILES, specs)
        youtube = next(g for g in generated if g.website.domain == "youtube.com")
        assert len(youtube.website.embedded) >= 10


class TestDatacenters:
    def test_us_datacenter_is_ashburn(self):
        assert datacenter_city(REG, "US").name == "Ashburn"

    def test_volunteer_in_capital(self):
        assert volunteer_city(REG, "US").name == "New York"

    def test_fallback_to_capital(self):
        assert datacenter_city(REG, "QA").name == "Doha"
