"""The determinism fast paths vs their reference implementations.

``stable_hash`` memoises partially-fed SHA-256 states per leading tuple
and ``stable_uniform``/``stable_choice`` reseed one thread-local
generator instead of allocating a fresh ``random.Random`` per draw.
Both rewrites must be *invisible*: every value equals what the
historical implementation — digest the ``\\x1f``-joined string, seed a
fresh generator — produced.  These properties pin that equivalence
down, including under prefix-memo reuse, memo resets, and thread
contention.
"""

from __future__ import annotations

import hashlib
import random
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import determinism
from repro.determinism import stable_choice, stable_hash, stable_rng, stable_uniform


def reference_stable_hash(*parts: object) -> int:
    """The historical implementation, verbatim."""
    text = "\x1f".join(str(p) for p in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


#: Part values as call sites use them — strings (including ones that
#: contain the separator), numbers, bools, tuples.
_part = st.one_of(
    st.text(max_size=24),
    st.text(alphabet="\x1f\\x1f|:", max_size=6),
    st.integers(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.booleans(),
    st.tuples(st.integers(), st.text(max_size=5)),
)
_parts = st.lists(_part, min_size=0, max_size=6)


class TestStableHashFastPath:
    @settings(max_examples=300, deadline=None)
    @given(_parts)
    def test_equals_reference(self, parts):
        assert stable_hash(*parts) == reference_stable_hash(*parts)

    def test_no_parts_and_single_part(self):
        assert stable_hash() == reference_stable_hash()
        assert stable_hash("x") == reference_stable_hash("x")
        assert stable_hash(42) == reference_stable_hash(42)

    def test_prefix_memo_reuse_is_invisible(self):
        # Same leading tuple thousands of times: the first call builds
        # the memoised state, the rest copy it — values never drift.
        for i in range(2000):
            key = ("trace", "Auckland, NZ", "10.1.2.3", f"site:{i}")
            assert stable_hash(*key) == reference_stable_hash(*key)

    def test_prefix_boundary_does_not_alias(self):
        # ("ab", "c") and ("a", "bc") share the joined text length but
        # not the digest; the separator keeps part boundaries distinct
        # in both the memoised prefix and the final update.
        assert stable_hash("ab", "c") != stable_hash("a", "bc")
        assert stable_hash("ab", "c") == reference_stable_hash("ab", "c")
        assert stable_hash("a", "bc") == reference_stable_hash("a", "bc")

    def test_memo_reset_preserves_values(self, monkeypatch):
        monkeypatch.setattr(determinism, "_PREFIX_STATE_LIMIT", 8)
        determinism._PREFIX_STATES.clear()
        try:
            for i in range(64):  # crosses the reset threshold repeatedly
                key = (f"prefix-{i}", "tail")
                assert stable_hash(*key) == reference_stable_hash(*key)
                assert stable_hash(*key) == reference_stable_hash(*key)
            assert len(determinism._PREFIX_STATES) <= 8
        finally:
            determinism._PREFIX_STATES.clear()


class TestSingleDrawFastPath:
    @settings(max_examples=200, deadline=None)
    @given(_parts, st.floats(min_value=-1e6, max_value=1e6),
           st.floats(min_value=0.0, max_value=1e6))
    def test_uniform_equals_reference(self, parts, low, span):
        expected = random.Random(
            reference_stable_hash("uniform", *parts)
        ).uniform(low, low + span)
        assert stable_uniform(low, low + span, *parts) == expected

    @settings(max_examples=200, deadline=None)
    @given(_parts, st.lists(st.integers(), min_size=1, max_size=20))
    def test_choice_equals_reference(self, parts, options):
        expected = random.Random(
            reference_stable_hash("choice", *parts)
        ).choice(list(options))
        assert stable_choice(options, *parts) == expected
        assert stable_choice(tuple(options), *parts) == expected

    def test_choice_rejects_empty(self):
        with pytest.raises(ValueError):
            stable_choice([], "k")

    def test_draws_do_not_disturb_each_other(self):
        # Interleaving the thread-local draw helpers with fresh stable_rng
        # generators must leave every value exactly as when called alone.
        alone_uniform = stable_uniform(0.0, 1.0, "a")
        alone_choice = stable_choice([1, 2, 3, 4], "b")
        rng = stable_rng("seq")
        mixed = []
        for _ in range(3):
            mixed.append(rng.random())
            assert stable_uniform(0.0, 1.0, "a") == alone_uniform
            assert stable_choice([1, 2, 3, 4], "b") == alone_choice
        fresh = stable_rng("seq")
        assert mixed == [fresh.random() for _ in range(3)]

    def test_threaded_draws_match_reference(self):
        errors = []

        def hammer(tid):
            try:
                for i in range(400):
                    key = ("thread", tid, i)
                    expected = random.Random(
                        reference_stable_hash("uniform", *key)
                    ).uniform(0.0, 10.0)
                    assert stable_uniform(0.0, 10.0, *key) == expected
            except Exception as error:  # pragma: no cover - failure reporting
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors


class TestStableRngUnchanged:
    def test_fresh_instance_every_call(self):
        first = stable_rng("k")
        second = stable_rng("k")
        assert first is not second
        assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]

    def test_seeded_from_fast_hash(self):
        assert stable_rng("a", "b").random() == random.Random(
            reference_stable_hash("a", "b")
        ).random()
