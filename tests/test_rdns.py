"""Reverse DNS generation: styles, coverage, hints, overrides."""

import pytest

from repro.netsim.geography import default_registry
from repro.netsim.geohints import extract_hint
from repro.netsim.ip import IPSpace
from repro.netsim.rdns import RDNSStyle, ReverseDNSService

REG = default_registry()


def make_service(coverage=1.0, hinted=True):
    space = IPSpace()
    allocation = space.allocate(77, REG.city("Frankfurt, DE"), label="OrgX/fra1")
    service = ReverseDNSService(space)
    service.set_style("OrgX", RDNSStyle(apex="orgx-dc.net", coverage=coverage, hinted=hinted))
    return service, allocation


class TestRDNSStyle:
    def test_invalid_coverage_rejected(self):
        with pytest.raises(ValueError):
            RDNSStyle(apex="x.net", coverage=1.5)


class TestReverseDNSService:
    def test_full_coverage_always_answers(self):
        service, allocation = make_service(coverage=1.0)
        for host in range(1, 30):
            assert service.lookup(allocation.address(host)) is not None

    def test_zero_coverage_never_answers(self):
        service, allocation = make_service(coverage=0.0)
        for host in range(1, 30):
            assert service.lookup(allocation.address(host)) is None

    def test_hinted_hostname_decodes_to_true_city(self):
        service, allocation = make_service(coverage=1.0, hinted=True)
        ptr = service.lookup(allocation.address(5))
        assert ptr.endswith(".orgx-dc.net")
        assert extract_hint(ptr) == "Frankfurt, DE"

    def test_unhinted_hostname_has_no_geo(self):
        service, allocation = make_service(coverage=1.0, hinted=False)
        ptr = service.lookup(allocation.address(5))
        assert extract_hint(ptr) is None

    def test_deterministic(self):
        service, allocation = make_service(coverage=0.5)
        address = allocation.address(9)
        assert service.lookup(address) == service.lookup(address)

    def test_unallocated_address_none(self):
        service, _ = make_service()
        assert service.lookup("9.9.9.9") is None

    def test_override_plants_specific_record(self):
        # The section-4.1.3 scenario: a record claiming another city.
        service, allocation = make_service()
        address = str(allocation.address(3))
        service.override(address, "edge-1.ams02.orgx-dc.net")
        assert extract_hint(service.lookup(address)) == "Amsterdam, NL"

    def test_override_with_none_removes_record(self):
        service, allocation = make_service(coverage=1.0)
        address = str(allocation.address(3))
        service.override(address, None)
        assert service.lookup(address) is None

    def test_default_style_for_unknown_org(self):
        space = IPSpace()
        allocation = space.allocate(1, REG.city("Paris, FR"), label="Mystery/par1")
        service = ReverseDNSService(space)
        # Default style is unhinted; any PTR produced has no geo hint.
        for host in range(1, 20):
            ptr = service.lookup(allocation.address(host))
            if ptr is not None:
                assert extract_hint(ptr) is None

    def test_coverage_is_statistical(self):
        service, allocation = make_service(coverage=0.5)
        answered = sum(
            1 for host in range(1, 101) if service.lookup(allocation.address(host))
        )
        assert 25 < answered < 75
