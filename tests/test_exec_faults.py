"""Fault behaviour of the parallel executor.

A worker that raises mid-country must fail the study with a clear error
naming the country code, cancel the remaining work, and always release
the pool — no deadlocks, no orphaned workers.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import run_study
from repro.exec import (
    CountryExecutionError,
    ProcessPoolStudyExecutor,
    SerialStudyExecutor,
    ThreadPoolStudyExecutor,
    create_executor,
)

COUNTRIES = ["AA", "BB", "CC", "DD"]


class ExplodingWorker:
    """Picklable worker raising for selected countries (module level so the
    process pool can ship it)."""

    def __init__(self, failing, delay_s: float = 0.0):
        self.failing = set(failing)
        self.delay_s = delay_s

    def __call__(self, country_code: str) -> str:
        if self.delay_s:
            time.sleep(self.delay_s)
        if country_code in self.failing:
            raise ValueError(f"probe melted in {country_code}")
        return f"ok:{country_code}"


def all_executors():
    return [
        SerialStudyExecutor(),
        ThreadPoolStudyExecutor(jobs=2),
        ThreadPoolStudyExecutor(jobs=8),
        ProcessPoolStudyExecutor(jobs=2),
    ]


@pytest.mark.parametrize("executor", all_executors(), ids=lambda e: f"{e.name}-{e.jobs}")
class TestWorkerFaults:
    def test_error_names_the_country(self, executor):
        with pytest.raises(CountryExecutionError) as excinfo:
            executor.map_countries(ExplodingWorker(failing={"CC"}), COUNTRIES)
        assert excinfo.value.country_code == "CC"
        assert "CC" in str(excinfo.value)
        assert "probe melted" in str(excinfo.value)

    def test_earliest_failing_country_wins(self, executor):
        with pytest.raises(CountryExecutionError) as excinfo:
            executor.map_countries(ExplodingWorker(failing={"BB", "DD"}), COUNTRIES)
        assert excinfo.value.country_code == "BB"

    def test_healthy_run_returns_in_input_order(self, executor):
        results = executor.map_countries(ExplodingWorker(failing=()), COUNTRIES)
        assert results == [f"ok:{cc}" for cc in COUNTRIES]


class TestPoolHygiene:
    def test_thread_pool_released_after_failure(self):
        executor = ThreadPoolStudyExecutor(jobs=4)
        before = threading.active_count()
        for _ in range(3):
            with pytest.raises(CountryExecutionError):
                executor.map_countries(
                    ExplodingWorker(failing={"AA"}, delay_s=0.01), COUNTRIES
                )
        deadline = time.time() + 10.0
        while threading.active_count() > before and time.time() < deadline:
            time.sleep(0.05)
        assert threading.active_count() <= before

    def test_failure_does_not_deadlock_with_slow_siblings(self):
        executor = ThreadPoolStudyExecutor(jobs=2)
        worker = ExplodingWorker(failing={"AA"}, delay_s=0.05)
        finished = []

        def run():
            with pytest.raises(CountryExecutionError):
                executor.map_countries(worker, COUNTRIES)
            finished.append(True)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=30.0)
        assert finished, "executor deadlocked after a worker fault"

    def test_process_pool_shuts_down_after_failure(self):
        executor = ProcessPoolStudyExecutor(jobs=2)
        with pytest.raises(CountryExecutionError) as excinfo:
            executor.map_countries(ExplodingWorker(failing={"DD"}), COUNTRIES)
        assert excinfo.value.country_code == "DD"
        # The pool context exited; a fresh map on the same executor object
        # builds a new pool and still works.
        assert executor.map_countries(ExplodingWorker(failing=()), ["AA"]) == ["ok:AA"]


class TestRunStudyFaults:
    @pytest.mark.parametrize("backend,jobs", [("serial", 1), ("thread", 2)])
    def test_study_failure_names_country(self, scenario, monkeypatch, backend, jobs):
        from repro.exec import worker as worker_module

        original = worker_module.StudyWorker.__call__

        def explode(self, country_code):
            if country_code == "NZ":
                raise RuntimeError("volunteer laptop caught fire")
            return original(self, country_code)

        monkeypatch.setattr(worker_module.StudyWorker, "__call__", explode)
        with pytest.raises(CountryExecutionError) as excinfo:
            run_study(scenario, countries=["CA", "NZ"], jobs=jobs, backend=backend)
        assert excinfo.value.country_code == "NZ"
        assert "NZ" in str(excinfo.value)

    def test_unknown_country_fails_cleanly(self, scenario):
        with pytest.raises(CountryExecutionError) as excinfo:
            run_study(scenario, countries=["ZZ"])
        assert excinfo.value.country_code == "ZZ"
        assert isinstance(excinfo.value.cause, KeyError)


class TestExecutorConstruction:
    def test_auto_backend_selection(self):
        assert create_executor("auto", 1).name == "serial"
        assert create_executor("auto", 4).name == "process"

    def test_jobs_zero_means_cpu_count(self):
        import os

        executor = create_executor("thread", 0)
        assert executor.jobs == (os.cpu_count() or 1)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            create_executor("auto", -1)
        with pytest.raises(ValueError):
            create_executor("warpdrive", 2)
        with pytest.raises(ValueError):
            ThreadPoolStudyExecutor(jobs=0)
        with pytest.raises(ValueError):
            ProcessPoolStudyExecutor(jobs=0)
