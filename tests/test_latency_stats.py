"""Published latency statistics providers and the fallback chain."""

import pytest

from repro.core.geoloc.latency_stats import (
    StatsChain,
    SyntheticStatsProvider,
    VERIZON_HUB_CITIES,
    default_stats_chain,
)
from repro.netsim.geography import default_registry
from repro.netsim.latency import LatencyModel

REG = default_registry()
MODEL = LatencyModel()


class TestSyntheticProvider:
    def test_covers_listed_cities_only(self):
        provider = SyntheticStatsProvider("v", MODEL, covered_cities=["Paris, FR"])
        assert provider.covers(REG.city("Paris, FR"))
        assert not provider.covers(REG.city("Kigali, RW"))

    def test_none_coverage_means_universal(self):
        provider = SyntheticStatsProvider("w", MODEL)
        assert provider.covers(REG.city("Kigali, RW"))

    def test_uncovered_pair_returns_none(self):
        provider = SyntheticStatsProvider("v", MODEL, covered_cities=["Paris, FR"])
        assert provider.published_rtt_ms(REG.city("Paris, FR"), REG.city("Kigali, RW")) is None

    def test_published_close_to_typical(self):
        provider = SyntheticStatsProvider("w", MODEL, noise_range=(0.9, 1.1))
        a, b = REG.city("Paris, FR"), REG.city("Tokyo, JP")
        typical = MODEL.typical_rtt_ms(a, b)
        published = provider.published_rtt_ms(a, b)
        assert 0.9 * typical <= published <= 1.1 * typical

    def test_symmetric(self):
        provider = SyntheticStatsProvider("w", MODEL)
        a, b = REG.city("Paris, FR"), REG.city("Tokyo, JP")
        assert provider.published_rtt_ms(a, b) == provider.published_rtt_ms(b, a)

    def test_same_city(self):
        provider = SyntheticStatsProvider("w", MODEL)
        a = REG.city("Paris, FR")
        assert provider.published_rtt_ms(a, a) == pytest.approx(2 * MODEL.access_penalty(a), abs=0.1)

    def test_bad_noise_range(self):
        with pytest.raises(ValueError):
            SyntheticStatsProvider("x", MODEL, noise_range=(0.0, 1.0))


class TestStatsChain:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            StatsChain([])

    def test_fallback_order(self):
        verizon = SyntheticStatsProvider("verizon-like", MODEL, covered_cities=["Paris, FR", "Tokyo, JP"])
        wonder = SyntheticStatsProvider("wondernetwork-like", MODEL)
        chain = StatsChain([verizon, wonder])
        hub_pair = (REG.city("Paris, FR"), REG.city("Tokyo, JP"))
        sparse_pair = (REG.city("Paris, FR"), REG.city("Kigali, RW"))
        assert chain.source_of(*hub_pair) == "verizon-like"
        assert chain.source_of(*sparse_pair) == "wondernetwork-like"
        assert chain.published_rtt_ms(*sparse_pair) is not None

    def test_default_chain_full_coverage_over_registry(self):
        chain = default_stats_chain(MODEL, REG)
        for key in ("Kigali, RW", "Doha, QA", "Auckland, NZ"):
            assert chain.published_rtt_ms(REG.city("Paris, FR"), REG.city(key)) is not None

    def test_default_chain_prefers_verizon_between_hubs(self):
        chain = default_stats_chain(MODEL, REG)
        assert chain.source_of(REG.city("Paris, FR"), REG.city("Tokyo, JP")) == "verizon-like"

    def test_hub_cities_exist_in_registry(self):
        for key in VERIZON_HUB_CITIES:
            assert REG.city(key)
