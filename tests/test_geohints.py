"""Hostname geo-hint codes and extraction."""

from repro.netsim.geohints import (
    CITY_HINT_CODES,
    city_for_hint,
    extract_hint,
    hint_for_city,
)


class TestHintTables:
    def test_roundtrip_every_code(self):
        for city_key, code in CITY_HINT_CODES.items():
            assert city_for_hint(code) == city_key
            assert hint_for_city(city_key) == code

    def test_codes_unique(self):
        codes = list(CITY_HINT_CODES.values())
        assert len(codes) == len(set(codes))

    def test_unknown_city_returns_none(self):
        assert hint_for_city("Atlantis, XX") is None

    def test_unknown_code_returns_none(self):
        assert city_for_hint("zzz") is None

    def test_case_insensitive_reverse(self):
        assert city_for_hint("FRA") == "Frankfurt, DE"


class TestExtractHint:
    def test_plain_code_label(self):
        assert extract_hint("edge-1.fra.example.net") == "Frankfurt, DE"

    def test_code_with_digits(self):
        assert extract_hint("srv.nbo02.tracker.com") == "Nairobi, KE"

    def test_no_hint(self):
        assert extract_hint("server-12.example.net") is None

    def test_empty(self):
        assert extract_hint("") is None
        assert extract_hint(None) is None

    def test_stopwords_not_hints(self):
        # "cdn" happens to be 3 letters but is a stopword; and even if it
        # were not, it is not in the hint table.
        assert extract_hint("cdn.www.net.com") is None

    def test_first_hint_wins(self):
        # Hostname with two codes: scanning order is left to right.
        assert extract_hint("ams1.fra2.example.net") == "Amsterdam, NL"

    def test_uppercase_hostname(self):
        assert extract_hint("EDGE-3.LHR01.EXAMPLE.NET") == "London, GB"

    def test_code_embedded_in_longer_label_ignored(self):
        # "strasbourg" contains no standalone code label.
        assert extract_hint("strasbourg.example.net") is None
