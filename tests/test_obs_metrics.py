"""Unit coverage for :mod:`repro.obs.metrics` and its consumers.

The registry's merge algebra is the load-bearing property: per-country
worker deltas merge at the coordinator, so merging must be associative
and commutative (completion order unobservable) — locked down here with
hypothesis over dyadic-rational amounts (``k/1024``), which float
addition handles exactly, so equality is exact rather than approximate.
The progress reporter and resource profiler are exercised against fake
clocks/streams; exposition and snapshot documents against their own
validators.
"""

from __future__ import annotations

import io
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.metrics import (
    MS_BUCKETS,
    SECONDS_BUCKETS,
    MetricsRegistry,
    check_baseline,
    derive_baseline,
    diff_snapshots,
    exponential_buckets,
    load_snapshot,
    merge_snapshots,
    strip_runtime,
    to_prometheus,
    validate_exposition,
    validate_metrics_snapshot,
    validate_study_snapshot,
    write_snapshot,
)
from repro.obs.profiling import ResourceProfiler, maybe_phase
from repro.obs.progress import ProgressReporter


class TestBuckets:
    def test_exponential_buckets_values(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    def test_fixed_bucket_sets_are_deterministic(self):
        # The shared bucket vocabularies are part of the snapshot schema:
        # histograms only merge when bounds match exactly.
        assert SECONDS_BUCKETS[0] == 0.001
        assert len(SECONDS_BUCKETS) == 18
        assert MS_BUCKETS[0] == 1.0
        assert list(SECONDS_BUCKETS) == sorted(SECONDS_BUCKETS)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)


class TestRegistry:
    def test_counter_get_or_create_and_int_preservation(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", {"cache": "x"})
        counter.inc()
        counter.inc(4)
        assert registry.counter("hits_total", {"cache": "x"}) is counter
        value = registry.value("hits_total", {"cache": "x"})
        assert value == 5 and isinstance(value, int)

    def test_counter_rejects_negative(self):
        counter = MetricsRegistry().counter("n_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("size")
        gauge.set(7)
        gauge.inc(3)
        assert registry.value("size") == 10

    def test_histogram_observe(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 1]  # one per bucket + overflow
        assert hist.count == 4
        assert hist.sum == 555.5

    def test_type_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))

    def test_missing_series_reads_none(self):
        registry = MetricsRegistry()
        registry.counter("x_total", {"a": "1"})
        assert registry.value("x_total", {"a": "2"}) is None
        assert registry.value("unknown_total") is None

    def test_snapshot_shape_and_sorting(self):
        registry = MetricsRegistry()
        registry.counter("z_total", {"b": "2"}).inc()
        registry.counter("z_total", {"a": "1"}).inc(2)
        registry.counter("a_total", help="first", runtime=True).inc()
        snapshot = registry.snapshot()
        assert list(snapshot["families"]) == ["a_total", "z_total"]
        assert snapshot["families"]["a_total"]["runtime"] is True
        assert "runtime" not in snapshot["families"]["z_total"]
        labels = [s["labels"] for s in snapshot["families"]["z_total"]["series"]]
        assert labels == [{"a": "1"}, {"b": "2"}]
        assert validate_metrics_snapshot(snapshot) == []

    def test_merge_counters_gauges_histograms(self):
        def build(counter, gauge, observations):
            registry = MetricsRegistry()
            registry.counter("c_total").inc(counter)
            registry.gauge("g").set(gauge)
            hist = registry.histogram("h", buckets=(1.0, 10.0))
            for value in observations:
                hist.observe(value)
            return registry.snapshot()

        merged = merge_snapshots(
            [build(3, 5, [0.5, 20.0]), build(4, 2, [5.0])]
        )
        families = merged["families"]
        assert families["c_total"]["series"][0]["value"] == 7
        assert families["g"]["series"][0]["value"] == 5  # gauges merge by max
        record = families["h"]["series"][0]
        assert record["counts"] == [1, 1, 1]
        assert record["count"] == 3
        assert record["sum"] == 25.5

    def test_strip_runtime(self):
        registry = MetricsRegistry()
        registry.counter("study_total").inc()
        registry.counter("wall_total", runtime=True).inc()
        stripped = strip_runtime(registry.snapshot())
        assert list(stripped["families"]) == ["study_total"]

    def test_validator_catches_corrupt_histogram(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        snapshot["families"]["h"]["series"][0]["count"] = 99
        assert validate_metrics_snapshot(snapshot)


# Dyadic rationals: exactly representable, and bounded sums of them are
# too, so float addition is associative over this domain and merge
# equality can be exact.
dyadic = st.integers(min_value=0, max_value=1 << 20).map(lambda k: k / 1024)
FAMILIES = ("alpha_total", "beta_total", "gamma_total")
LABELS = ({"k": "a"}, {"k": "b"}, None)


def _registry_from(entries) -> dict:
    registry = MetricsRegistry()
    for kind, family, label_index, amount in entries:
        labels = LABELS[label_index]
        if kind == 0:
            registry.counter(family, labels).inc(amount)
        elif kind == 1:
            registry.gauge(family + "_g", labels).set(amount)
        else:
            registry.histogram(
                family + "_h", labels, buckets=(1.0, 64.0, 512.0)
            ).observe(amount)
    return registry.snapshot()


snapshots = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.sampled_from(FAMILIES),
        st.integers(min_value=0, max_value=len(LABELS) - 1),
        dyadic,
    ),
    max_size=12,
).map(_registry_from)


class TestMergeAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(a=snapshots, b=snapshots)
    def test_merge_is_commutative(self, a, b):
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    @settings(max_examples=100, deadline=None)
    @given(a=snapshots, b=snapshots, c=snapshots)
    def test_merge_is_associative(self, a, b, c):
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left == right

    @settings(max_examples=100, deadline=None)
    @given(a=snapshots)
    def test_empty_is_identity(self, a):
        empty = MetricsRegistry().snapshot()
        assert merge_snapshots([a, empty]) == merge_snapshots([a])
        assert merge_snapshots([empty, a]) == merge_snapshots([a])

    @settings(max_examples=50, deadline=None)
    @given(a=snapshots, b=snapshots)
    def test_merge_never_mutates_inputs(self, a, b):
        a_before = json.loads(json.dumps(a))
        b_before = json.loads(json.dumps(b))
        merge_snapshots([a, b])
        assert a == a_before and b == b_before


class TestPrometheus:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter(
            "verdicts_total", {"status": "ok\nline"}, help='say "hi" \\ there'
        ).inc(3)
        registry.gauge("size", unit="bytes").set(2.5)
        hist = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(5.0)
        return registry.snapshot()

    def test_exposition_shape(self):
        text = to_prometheus(self._snapshot())
        assert '# TYPE verdicts_total counter' in text
        assert 'verdicts_total{status="ok\\nline"} 3' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text  # cumulative
        assert "lat_seconds_sum 5.05" in text
        assert "lat_seconds_count 2" in text
        assert text.endswith("\n")

    def test_exposition_validates(self):
        assert validate_exposition(to_prometheus(self._snapshot())) == []

    def test_validator_rejects_garbage(self):
        good = to_prometheus(self._snapshot())
        assert validate_exposition(good + "not a sample line !\n")
        assert validate_exposition("size 1\nsize 2\n")  # duplicate sample
        assert validate_exposition(good.rstrip("\n"))  # no trailing newline


class TestStudySnapshotDocument:
    def _study_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("study_sites_total", {"outcome": "loaded"}).inc(100)
        from repro.obs.metrics import build_study_snapshot

        return build_study_snapshot(
            {"countries": ["CA"], "backend": "serial", "jobs": 1},
            {"wall_seconds": 1.25},
            registry.snapshot(),
            {"CA": {"cpu_seconds": 0.5, "gc_collections": 3}},
        )

    def test_document_validates(self):
        assert validate_study_snapshot(self._study_snapshot()) == []

    def test_document_rejects_wrong_kind(self):
        document = self._study_snapshot()
        document["kind"] = "other"
        assert validate_study_snapshot(document)

    def test_write_and_load_json(self, tmp_path):
        document = self._study_snapshot()
        path = tmp_path / "metrics.json"
        write_snapshot(path, document)
        assert load_snapshot(path) == document
        # Deterministic serialization: same document -> same bytes.
        text = path.read_text()
        write_snapshot(path, json.loads(json.dumps(document)))
        assert path.read_text() == text

    def test_write_prom_variant(self, tmp_path):
        path = tmp_path / "metrics.prom"
        write_snapshot(path, self._study_snapshot())
        assert validate_exposition(path.read_text()) == []


class TestDiff:
    def _snapshot(self, sites=100, wall=1.0):
        registry = MetricsRegistry()
        registry.counter("study_sites_total").inc(sites)
        registry.counter("wall_seconds_total", runtime=True).inc(wall)
        return registry.snapshot()

    def test_identical_runs_have_no_findings(self):
        assert diff_snapshots(self._snapshot(), self._snapshot()) == []

    def test_deterministic_difference_is_drift(self):
        findings = diff_snapshots(self._snapshot(100), self._snapshot(101))
        assert [f.severity for f in findings] == ["drift"]
        assert findings[0].metric == "study_sites_total"
        assert "100" in findings[0].render()

    def test_runtime_excluded_by_default(self):
        assert diff_snapshots(self._snapshot(wall=1.0), self._snapshot(wall=9.0)) == []

    def test_runtime_threshold_verdicts(self):
        def sev(old, new):
            findings = diff_snapshots(
                self._snapshot(wall=old), self._snapshot(wall=new),
                threshold=0.25, include_runtime=True,
            )
            return [f.severity for f in findings]

        assert sev(1.0, 1.1) == ["info"]
        assert sev(1.0, 2.0) == ["regression"]
        assert sev(2.0, 1.0) == ["improvement"]

    def test_missing_family_reported(self):
        empty = MetricsRegistry().snapshot()
        findings = diff_snapshots(self._snapshot(), empty)
        assert any(f.severity == "drift" for f in findings)


class TestBaseline:
    BENCH = {"study": {"speedup": 2.0, "wall_seconds": 3.0}, "cache_hit_rate": 0.9}

    def _snapshot(self, sites=100):
        registry = MetricsRegistry()
        registry.counter("study_sites_total").inc(sites)
        registry.counter("phase_seconds_total", runtime=True).inc(5.0)
        return registry.snapshot()

    def test_derive_covers_metrics_and_bench_floors(self):
        baseline = derive_baseline(
            self._snapshot(), {"BENCH_x": self.BENCH}, margin=0.5
        )
        by_kind = {}
        for check in baseline["checks"]:
            by_kind.setdefault("bench" if "bench" in check else "metric", []).append(check)
        # runtime families are never pinned; wall_seconds has no guard.
        assert [c["metric"] for c in by_kind["metric"]] == ["study_sites_total"]
        assert sorted(c["path"] for c in by_kind["bench"]) == [
            "cache_hit_rate", "study.speedup",
        ]
        floor = next(c for c in by_kind["bench"] if c["path"] == "study.speedup")
        assert floor["op"] == "min" and floor["value"] == 1.0

    def test_check_passes_on_reference_inputs(self):
        baseline = derive_baseline(self._snapshot(), {"BENCH_x": self.BENCH})
        findings = check_baseline(
            baseline, self._snapshot(), {"BENCH_x": self.BENCH}
        )
        assert findings and all(f.ok for f in findings)

    def test_check_flags_drift_and_collapse(self):
        baseline = derive_baseline(self._snapshot(100), {"BENCH_x": self.BENCH})
        bad_bench = {"study": {"speedup": 0.4, "wall_seconds": 3.0}, "cache_hit_rate": 0.9}
        findings = check_baseline(baseline, self._snapshot(101), {"BENCH_x": bad_bench})
        failures = {f.target for f in findings if not f.ok}
        assert failures == {"study_sites_total", "BENCH_x:study.speedup"}

    def test_checks_without_target_are_skipped(self):
        baseline = derive_baseline(self._snapshot(), {"BENCH_x": self.BENCH})
        findings = check_baseline(baseline, snapshot=None, bench_files=None)
        assert findings == []

    def test_bench_keys_containing_dots_roundtrip(self):
        # Real BENCH payloads key caches by dotted names ("atlas.dest_traces");
        # derive/check must resolve those paths back despite the "." joiner.
        bench = {"caches": {"atlas.dest_traces": {"hit_rate": 0.75}}}
        baseline = derive_baseline(self._snapshot(), {"BENCH_p": bench})
        floor = next(c for c in baseline["checks"] if "bench" in c)
        assert floor["path"] == "caches.atlas.dest_traces.hit_rate"
        findings = check_baseline(baseline, self._snapshot(), {"BENCH_p": bench})
        dotted = next(f for f in findings if f.target == "BENCH_p:" + floor["path"])
        assert dotted.ok, dotted.render()


class _Tty(io.StringIO):
    def isatty(self):  # pragma: no cover - trivial
        return True


class TestProgressReporter:
    def _clock(self, step=1.0):
        state = {"now": 0.0}

        def clock():
            state["now"] += step
            return state["now"]

        return clock

    def test_nontty_appends_full_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(3, stream=stream, clock=self._clock())
        reporter.start()
        reporter.country_done("CA", sites=100)
        reporter.country_done("NZ", sites=50, failed=True)
        reporter.finish()
        lines = stream.getvalue().splitlines()
        assert any("1/3" in line and "CA" in line for line in lines)
        assert any("2/3" in line for line in lines)
        assert lines[-1].startswith("progress: 2/3 countries, 150 sites")
        assert "1 failed" in lines[-1]
        assert "\r" not in stream.getvalue()

    def test_tty_redraws_in_place(self):
        stream = _Tty()
        reporter = ProgressReporter(2, stream=stream, clock=self._clock())
        reporter.start()
        reporter.country_done("CA", sites=10)
        reporter.country_done("NZ", sites=10)
        reporter.finish()
        assert stream.getvalue().count("\r") >= 2

    def test_events_recorded_with_running_totals(self):
        reporter = ProgressReporter(
            2, stream=io.StringIO(), record_events=True, clock=self._clock()
        )
        reporter.start()
        reporter.country_done("CA", sites=100, resumed=True)
        reporter.country_done("NZ", sites=20, failed=True)
        events = reporter.events()
        assert [e["ev"] for e in events] == ["progress", "progress"]
        assert events[0]["resumed"] is True
        assert events[1] == {
            "ev": "progress", "span": "study", "t": events[1]["t"],
            "country": "NZ", "done": 2, "total": 2, "sites": 120,
            "failed": 1, "sites_per_second": events[1]["sites_per_second"],
            "eta_seconds": 0.0,
        }

    def test_broken_stream_never_raises(self):
        class Broken(io.StringIO):
            def write(self, text):
                raise OSError("gone")

        reporter = ProgressReporter(1, stream=Broken(), clock=self._clock())
        reporter.start()
        reporter.country_done("CA", sites=1)
        reporter.finish()  # must not raise


class TestResourceProfiler:
    def test_phases_accumulate(self):
        profiler = ResourceProfiler()
        profiler.start()
        with profiler.phase("gamma"):
            sum(range(50_000))
        with profiler.phase("join"):
            pass
        snapshot = profiler.snapshot()
        assert set(snapshot["phases"]) == {"gamma", "join"}
        assert snapshot["cpu_seconds"] >= 0.0
        assert snapshot["gc_collections"] >= 0
        for usage in snapshot["phases"].values():
            assert usage["cpu_seconds"] >= 0.0

    def test_tracemalloc_section(self):
        profiler = ResourceProfiler(track_malloc=True)
        profiler.start()
        with profiler.phase("alloc"):
            blob = [bytes(1000) for _ in range(100)]
        snapshot = profiler.snapshot()
        assert blob is not None
        section = snapshot.get("tracemalloc")
        assert section is not None
        assert section["peak_kb"] >= 0
        assert isinstance(section.get("top", []), list)

    def test_maybe_phase_with_none_is_noop(self):
        with maybe_phase(None, "gamma"):
            pass
