"""Browser engine: page loads, failures, background noise, Brave shields."""

import pytest

from repro.browser.engine import (
    CHROMEDRIVER_BACKGROUND_HOSTS,
    BrowserConfig,
    BrowserEngine,
    BrowserKind,
)
from repro.browser.har import NetworkRequest, PageLoadRecord, RequestStatus
from repro.netsim.geography import default_registry
from repro.netsim.network import World
from repro.web.catalog import SiteCatalog
from repro.web.website import CATEGORY_REGIONAL, EmbeddedResource, Website

from tests.test_servers_dns import make_deployment

REG = default_registry()


@pytest.fixture()
def mini_world():
    """A world with one publisher site and one tracker org."""
    world = World(geo=REG)
    publisher = make_deployment(["TH"], org_name="ThaiHost", domains=("siamnews.co.th",),
                                space=world.ips)
    tracker = make_deployment(["FR", "SG"], org_name="AdOrg", domains=("adorg.net",),
                              space=world.ips)
    google = make_deployment(["US"], org_name="Google",
                             domains=("googleapis.com", "google.com"), space=world.ips)
    for deployment in (publisher, tracker, google):
        world.deployments[deployment.org.name] = deployment
        for domain in deployment.org.domains:
            world.dns.register(domain, deployment)
    site = Website(
        domain="www.siamnews.co.th", country_code="TH", category=CATEGORY_REGIONAL,
        owner_org="ThaiPub",
        embedded=[EmbeddedResource(host="px.adorg.net"),
                  EmbeddedResource(host="missing.invalid-zone.example")],
    )
    world.dns.register("www.siamnews.co.th", publisher)
    return world, SiteCatalog([site])


class TestBrowserConfig:
    def test_invalid_browser(self):
        with pytest.raises(ValueError):
            BrowserConfig(browser="netscape")

    def test_invalid_timeouts(self):
        with pytest.raises(ValueError):
            BrowserConfig(wait_time_s=0)

    def test_invalid_failure_rate(self):
        with pytest.raises(ValueError):
            BrowserConfig(failure_rates={"TH": 1.2})

    def test_failure_rate_lookup(self):
        config = BrowserConfig(failure_rates={"JP": 0.36}, default_failure_rate=0.05)
        assert config.failure_rate("JP") == 0.36
        assert config.failure_rate("TH") == 0.05


class TestBrowserEngine:
    def test_successful_load_records_requests(self, mini_world):
        world, catalog = mini_world
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.0))
        record = engine.load("www.siamnews.co.th", REG.country("TH").capital)
        assert record.loaded
        hosts = record.requested_hosts()
        assert hosts[0] == "www.siamnews.co.th"
        assert "static.www.siamnews.co.th" in hosts
        assert "px.adorg.net" in hosts

    def test_geodns_affects_recorded_address(self, mini_world):
        world, catalog = mini_world
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.0))
        th = engine.load("www.siamnews.co.th", REG.country("TH").capital)
        # px.adorg.net resolves to the SG PoP from Thailand.
        address = th.host_addresses()["px.adorg.net"]
        assert world.ips.true_country(address) == "SG"

    def test_dns_failure_recorded(self, mini_world):
        world, catalog = mini_world
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.0))
        record = engine.load("www.siamnews.co.th", REG.country("TH").capital)
        failed = [r for r in record.requests if r.status == RequestStatus.DNS_ERROR]
        assert [r.host for r in failed] == ["missing.invalid-zone.example"]

    def test_unknown_site_fails(self, mini_world):
        world, catalog = mini_world
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.0))
        record = engine.load("nonexistent.example", REG.country("TH").capital)
        assert not record.loaded
        assert record.failure_reason == "dns_error"

    def test_failure_rate_one_always_fails(self, mini_world):
        world, catalog = mini_world
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.99))
        record = engine.load("www.siamnews.co.th", REG.country("TH").capital)
        assert not record.loaded

    def test_chrome_emits_background_requests(self, mini_world):
        world, catalog = mini_world
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.0))
        record = engine.load("www.siamnews.co.th", REG.country("TH").capital)
        background = {r.host for r in record.requests if r.background}
        assert background == set(CHROMEDRIVER_BACKGROUND_HOSTS)
        # Stripped from analysis-facing views by default:
        assert not set(record.requested_hosts()) & background

    def test_firefox_has_no_background_requests(self, mini_world):
        world, catalog = mini_world
        engine = BrowserEngine(
            world, catalog,
            BrowserConfig(browser=BrowserKind.FIREFOX, default_failure_rate=0.0),
        )
        record = engine.load("www.siamnews.co.th", REG.country("TH").capital)
        assert not any(r.background for r in record.requests)

    def test_brave_blocks_blocklisted_hosts(self, mini_world):
        world, catalog = mini_world
        engine = BrowserEngine(
            world, catalog,
            BrowserConfig(browser=BrowserKind.BRAVE, default_failure_rate=0.0,
                          blocklist={"adorg.net"}),
        )
        record = engine.load("www.siamnews.co.th", REG.country("TH").capital)
        blocked = [r for r in record.requests if r.status == RequestStatus.BLOCKED]
        assert [r.host for r in blocked] == ["px.adorg.net"]

    def test_load_many_and_progress(self, mini_world):
        world, catalog = mini_world
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.0))
        seen = []
        records = engine.load_many(
            ["www.siamnews.co.th"], REG.country("TH").capital,
            progress=lambda url, rec: seen.append(url),
        )
        assert seen == ["www.siamnews.co.th"]
        assert records["www.siamnews.co.th"].loaded

    def test_deterministic(self, mini_world):
        world, catalog = mini_world
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.3))
        a = engine.load("www.siamnews.co.th", REG.country("TH").capital, "v1")
        b = engine.load("www.siamnews.co.th", REG.country("TH").capital, "v1")
        assert a.loaded == b.loaded


class TestPageLoadRecord:
    def test_json_roundtrip(self):
        record = PageLoadRecord(
            url="x.com", country_code="TH", browser="chrome", loaded=True,
            render_time_s=3.21,
            requests=[NetworkRequest("a.com", "script", RequestStatus.OK, "5.0.0.1"),
                      NetworkRequest("b.com", "script", RequestStatus.DNS_ERROR)],
        )
        back = PageLoadRecord.from_dict(record.to_dict())
        assert back.url == "x.com"
        assert back.requests[0].address == "5.0.0.1"
        assert back.requests[1].status == RequestStatus.DNS_ERROR

    def test_host_addresses_skips_failures(self):
        record = PageLoadRecord(
            url="x.com", country_code="TH", browser="chrome", loaded=True, render_time_s=1,
            requests=[NetworkRequest("a.com", "script", RequestStatus.OK, "5.0.0.1"),
                      NetworkRequest("b.com", "script", RequestStatus.REFUSED)],
        )
        assert record.host_addresses() == {"a.com": "5.0.0.1"}
