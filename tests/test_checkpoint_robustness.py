"""Gamma per-site checkpoint robustness (the section-3.3 resume file).

Regression suite for two historical defects:

* ``Checkpoint.load`` raised ``json.JSONDecodeError``/``TypeError`` on a
  corrupt or schema-drifted file instead of starting fresh — it now
  quarantines the bad file as ``<name>.corrupt`` and returns an empty
  checkpoint.
* ``Checkpoint.mark_done`` re-serialised the entire dataset after every
  site (O(sites²) across a run) even when the checkpoint had no path —
  serialisation now happens once per :meth:`save`, from the live
  dataset reference, with the on-disk format unchanged.
"""

from __future__ import annotations

import json

import pytest

from repro.core.gamma.checkpoint import Checkpoint
from repro.core.gamma.output import VolunteerDataset


def _dataset() -> VolunteerDataset:
    return VolunteerDataset(
        country_code="CA", city_key="ca-toronto", volunteer_ip="10.0.0.1",
        os_name="linux", browser="chrome",
    )


class TestCorruptionQuarantine:
    def test_truncated_json_starts_fresh_and_quarantines(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text('{"completed": ["a.com", "b.co')  # interrupted write
        checkpoint = Checkpoint.load(path)
        assert checkpoint.completed == set()
        assert checkpoint.path == path
        assert not path.exists()
        assert (tmp_path / "ckpt.json.corrupt").read_text().startswith('{"completed"')

    @pytest.mark.parametrize("payload", [
        '["not", "an", "object"]',
        '{"completed": 42}',
        '{"completed": [1, 2, 3]}',
        '{"completed": [], "dataset": 7}',
        '{"completed": [], "dataset": "not json either"}',
        '{"completed": [], "dataset": "[1, 2]"}',
        "\x00\x01\x02",
    ])
    def test_schema_drift_starts_fresh_and_quarantines(self, tmp_path, payload):
        path = tmp_path / "ckpt.json"
        path.write_text(payload)
        checkpoint = Checkpoint.load(path)
        assert checkpoint.completed == set()
        assert checkpoint.partial_dataset() is None
        assert (tmp_path / "ckpt.json.corrupt").exists()

    def test_quarantined_checkpoint_can_be_overwritten(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("garbage")
        checkpoint = Checkpoint.load(path)
        checkpoint.mark_done("a.com", _dataset())
        reloaded = Checkpoint.load(path)
        assert reloaded.completed == {"a.com"}
        assert reloaded.partial_dataset().country_code == "CA"

    def test_valid_checkpoint_loads_untouched(self, tmp_path):
        path = tmp_path / "ckpt.json"
        original = Checkpoint(path=path)
        original.mark_done("a.com", _dataset())
        loaded = Checkpoint.load(path)
        assert loaded.completed == {"a.com"}
        assert loaded.partial_dataset().country_code == "CA"
        assert not (tmp_path / "ckpt.json.corrupt").exists()


class TestSerialisationCost:
    def test_mark_done_without_path_never_serialises(self, monkeypatch):
        calls = []
        original = VolunteerDataset.to_json

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(VolunteerDataset, "to_json", counting)
        checkpoint = Checkpoint()
        dataset = _dataset()
        for n in range(50):
            checkpoint.mark_done(f"site-{n}.com", dataset)
        assert calls == []  # the old per-call caching serialised 50 times

    def test_save_serialises_exactly_once(self, tmp_path, monkeypatch):
        calls = []
        original = VolunteerDataset.to_json

        def counting(self, *args, **kwargs):
            calls.append(1)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(VolunteerDataset, "to_json", counting)
        checkpoint = Checkpoint(path=tmp_path / "ckpt.json")
        dataset = _dataset()
        checkpoint.completed.add("a.com")
        checkpoint.dataset = dataset
        checkpoint.save()
        assert len(calls) == 1

    def test_on_disk_format_unchanged(self, tmp_path):
        path = tmp_path / "ckpt.json"
        checkpoint = Checkpoint(path=path)
        dataset = _dataset()
        checkpoint.mark_done("b.com", dataset)
        checkpoint.mark_done("a.com", dataset)
        payload = json.loads(path.read_text())
        assert sorted(payload) == ["completed", "dataset"]
        assert payload["completed"] == ["a.com", "b.com"]  # sorted, as before
        assert payload["dataset"] == dataset.to_json()

    def test_partial_dataset_returns_a_copy(self):
        checkpoint = Checkpoint()
        dataset = _dataset()
        checkpoint.mark_done("a.com", dataset)
        partial = checkpoint.partial_dataset()
        assert partial is not dataset
        assert partial.country_code == dataset.country_code
