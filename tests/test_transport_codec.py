"""Columnar ``CountryRun`` codec: round-trip and framing contracts.

The transport codec (:mod:`repro.exec.transport`) must be lossless in
the strongest sense that matters for the study contract: the decoded
graph equals the original field by field, preserves the object-graph
*sharing topology* (memoised traces, the dataset/geolocation shared by
run and result), and — on graphs whose equal strings are already shared
by value, which is what the decoder's interning produces — pickles to
the very same bytes.  Hypothesis drives the round trip over randomly
shaped runs; a real single-country study run pins the production shape.
"""

from __future__ import annotations

import pickle
import zlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.analysis.records import (
    CountryStudyResult,
    NonLocalTracker,
    SiteTrackerRecord,
)
from repro.core.gamma.output import VolunteerDataset, WebsiteMeasurement
from repro.core.gamma.parsers import NormalizedHop, NormalizedTraceroute
from repro.core.geoloc.constraints import ConstraintResult
from repro.core.geoloc.verdicts import (
    DatasetGeolocation,
    FunnelCounters,
    ServerVerdict,
)
from repro.core.trackers.identify import TrackerVerdict
from repro.exec.checkpoint import StudyCheckpoint
from repro.exec.metrics import CountryTimings
from repro.exec.transport import (
    TRANSPORTS,
    EncodedCountryRun,
    TransportDecodeError,
    checkpoint_format,
    decode_run,
    encode_run,
    resolve_transport,
)
from repro.exec.worker import CountryRun, StudyWorker
from repro.geodb.ipmap import GeoClaim
from repro.netsim.geography import City

# -- strategies --------------------------------------------------------------

#: Drawing every string from this fixed pool makes equal strings the
#: *same object* in the generated graph — the precondition for the
#: pickle-byte-identity property (the decoder value-interns, so its
#: output always has that shape).  Includes non-ASCII to exercise the
#: per-string decode path.  No entry may equal a dataclass attribute
#: name ("rdns", "dns", ...): those are compile-time-interned, so the
#: original graph would memo-share them with the pickle's own field
#: names — sharing with out-of-band strings that a value-interning
#: codec cannot (and should not) reproduce.
_STRINGS = [
    "tracker.example", "cdn.example", "ads.example", "static.example",
    "10.0.0.1", "10.0.0.2", "192.168.7.9", "site-a", "site-b",
    "https://a.example", "https://b.example", "regional", "government",
    "CA", "NZ", "RW", "toronto", "auckland", "kigali", "Montréal–Øst",
    "ipmap", "rdns.example", "source_latency", "pass", "fail", "easylist", "",
]

#: Journal-event payload values come from a pool *disjoint* from
#: ``_STRINGS``: events cross the codec as one nested pickle blob, so a
#: string shared between an event and the outer graph would decode to
#: two objects where the original had one.
_EVENT_STRINGS = ["evt-started", "evt-finished", "evt-CA", "evt-NZ"]

_pooled = st.sampled_from(_STRINGS)
_opt_pooled = st.one_of(st.none(), _pooled)
#: Finite floats; mixes exactly-milli values (scaled-int columns) with
#: arbitrary doubles (raw f8 columns), plus signed zeros.
_floats = st.one_of(
    st.integers(min_value=0, max_value=10_000_000).map(lambda n: n / 1000.0),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)
_counters = st.integers(min_value=0, max_value=2**40)


@st.composite
def _traceroutes(draw):
    hops = [
        NormalizedHop(
            hop=draw(st.integers(min_value=0, max_value=64)),
            address=draw(_opt_pooled),
            rtts_ms=tuple(draw(st.lists(_floats, max_size=3))),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    ]
    return NormalizedTraceroute(
        target=draw(_pooled), reached=draw(st.booleans()), hops=hops,
        tool=draw(_pooled),
    )


@st.composite
def _measurements(draw, traces):
    hosts = draw(st.lists(_pooled, max_size=4))
    addresses = draw(st.lists(_pooled, max_size=3, unique=True))
    return WebsiteMeasurement(
        url=draw(_pooled),
        category=draw(st.sampled_from(["regional", "government"])),
        loaded=draw(st.booleans()),
        requested_hosts=hosts,
        background_hosts=draw(st.lists(_pooled, max_size=2)),
        dns={host: draw(_pooled) for host in set(hosts)},
        rdns={address: draw(_opt_pooled) for address in addresses},
        traceroutes=(
            {address: draw(st.sampled_from(traces)) for address in addresses}
            if traces else {}
        ),
        failure_reason=draw(_opt_pooled),
        page_html=draw(_opt_pooled),
        hardcoded_domains=draw(st.lists(_pooled, max_size=2)),
    )


@st.composite
def _datasets(draw, traces):
    dataset = VolunteerDataset(
        country_code=draw(_pooled), city_key=draw(_pooled),
        volunteer_ip=draw(_pooled), os_name=draw(_pooled),
        browser=draw(_pooled),
    )
    for key in draw(st.lists(_pooled, max_size=3, unique=True)):
        dataset.websites[key] = draw(_measurements(traces))
    return dataset


@st.composite
def _verdicts(draw, claims):
    checks = [
        ConstraintResult(
            constraint=draw(_pooled), status=draw(_pooled),
            reason=draw(_pooled),
            observed_ms=draw(st.one_of(st.none(), _floats)),
            expected_ms=draw(st.one_of(st.none(), _floats)),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    ]
    return ServerVerdict(
        address=draw(_pooled),
        hosts=draw(st.lists(_pooled, max_size=3)),
        status=draw(st.sampled_from(
            ["local", "nonlocal_verified", "discarded", "unlocated"]
        )),
        claim=draw(st.one_of(st.none(), st.sampled_from(claims))) if claims else None,
        discarded_by=draw(_pooled),
        checks=checks,
    )


@st.composite
def _geolocations(draw, claims):
    geo = DatasetGeolocation(
        country_code=draw(_pooled),
        funnel=FunnelCounters(*(draw(_counters) for _ in range(9))),
    )
    geo.host_to_address = {
        host: draw(_pooled)
        for host in draw(st.lists(_pooled, max_size=3, unique=True))
    }
    for key in draw(st.lists(_pooled, max_size=3, unique=True)):
        geo.verdicts[key] = draw(_verdicts(claims))
    return geo


@st.composite
def country_runs(draw):
    """A small, randomly shaped — but realistically shared — run graph."""
    cities = [
        City(name=draw(_pooled), country_code=draw(_pooled),
             lat=draw(_floats), lon=draw(_floats))
        for _ in range(draw(st.integers(min_value=1, max_value=3)))
    ]
    claims = [
        GeoClaim(address=draw(_pooled), city=draw(st.sampled_from(cities)),
                 source=draw(_pooled))
        for _ in range(draw(st.integers(min_value=0, max_value=3)))
    ]
    traces = draw(st.lists(_traceroutes(), max_size=3))
    dataset = draw(_datasets(traces))
    geolocation = draw(_geolocations(claims))

    result = CountryStudyResult(
        country_code=draw(_pooled),
        # Sometimes the run and its result share the dataset/geolocation
        # objects (the production shape), sometimes not.
        dataset=dataset if draw(st.booleans()) else draw(_datasets(traces)),
        geolocation=(
            geolocation if draw(st.booleans()) else draw(_geolocations(claims))
        ),
    )
    for key in draw(st.lists(_pooled, max_size=3, unique=True)):
        result.tracker_verdicts[key] = TrackerVerdict(
            host=draw(_pooled), is_tracker=draw(st.booleans()),
            method=draw(_opt_pooled), list_name=draw(_opt_pooled),
            org_name=draw(_opt_pooled),
        )
    for _ in range(draw(st.integers(min_value=0, max_value=3))):
        site = SiteTrackerRecord(
            url=draw(_pooled), country_code=draw(_pooled),
            category=draw(_pooled),
        )
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            site.trackers.append(NonLocalTracker(
                host=draw(_pooled), address=draw(_pooled),
                destination_country=draw(_pooled),
                destination_city_key=draw(_pooled),
                org_name=draw(_opt_pooled),
            ))
        result.sites.append(site)

    timings = CountryTimings(draw(_pooled))
    for phase in draw(st.lists(_pooled, max_size=3, unique=True)):
        timings.phase_seconds[phase] = draw(_floats)

    return CountryRun(
        country_code=draw(_pooled),
        dataset=dataset,
        geolocation=geolocation,
        result=result,
        source_trace_origin=draw(_pooled),
        timings=timings,
        geoloc_engine=draw(st.sampled_from(["", "scalar", "columnar"])),
        cache_deltas={
            name: {
                "hits": draw(_counters), "misses": draw(_counters),
                "size": draw(_counters),
            }
            for name in draw(st.lists(_pooled, max_size=2, unique=True))
        },
        events=draw(st.one_of(
            st.none(),
            st.lists(
                st.fixed_dictionaries({
                    "ev": st.sampled_from(_EVENT_STRINGS),
                    "country": st.sampled_from(_EVENT_STRINGS),
                }),
                max_size=2,
            ),
        )),
    )


def assert_runs_equal(decoded: CountryRun, original: CountryRun) -> None:
    assert decoded.country_code == original.country_code
    assert decoded.dataset == original.dataset
    assert decoded.geolocation == original.geolocation
    assert decoded.result.country_code == original.result.country_code
    assert decoded.result.dataset == original.result.dataset
    assert decoded.result.geolocation == original.result.geolocation
    assert decoded.result.tracker_verdicts == original.result.tracker_verdicts
    assert decoded.result.sites == original.result.sites
    assert decoded.source_trace_origin == original.source_trace_origin
    assert decoded.timings == original.timings
    assert decoded.geoloc_engine == original.geoloc_engine
    assert decoded.cache_deltas == original.cache_deltas
    assert decoded.events == original.events


# -- property tests ----------------------------------------------------------


class TestRoundTripProperties:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(run=country_runs())
    def test_decode_inverts_encode(self, run):
        decoded = decode_run(encode_run(run))
        assert_runs_equal(decoded, run)

    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(run=country_runs())
    def test_round_trip_is_pickle_identical(self, run):
        # Equal strings in the generated graph are identical objects (the
        # pool strategy guarantees it), so pickle's id()-memoisation sees
        # the same structure before and after the columnar round trip.
        decoded = decode_run(encode_run(run))
        assert pickle.dumps(decoded) == pickle.dumps(run)

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(run=country_runs())
    def test_canonical_re_encode(self, run):
        encoded = encode_run(run)
        assert encode_run(decode_run(encoded)) == encoded

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(run=country_runs())
    def test_sharing_topology_preserved(self, run):
        decoded = decode_run(encode_run(run))
        assert (decoded.result.dataset is decoded.dataset) == (
            run.result.dataset is run.dataset
        )
        assert (decoded.result.geolocation is decoded.geolocation) == (
            run.result.geolocation is run.geolocation
        )
        originals = {
            id(trace): trace
            for measurement in run.dataset.websites.values()
            for trace in measurement.traceroutes.values()
        }
        rebuilt = {
            id(trace): trace
            for measurement in decoded.dataset.websites.values()
            for trace in measurement.traceroutes.values()
        }
        # Memo-shared traceroutes stay shared: same number of distinct
        # trace objects on both sides of the round trip.
        assert len(rebuilt) == len(originals)


# -- the production shape ----------------------------------------------------


@pytest.fixture(scope="module")
def real_run(scenario):
    from repro.study import StudyConfig

    return StudyWorker(scenario, StudyConfig())("CA")


class TestRealRun:
    def test_round_trip_and_sharing(self, real_run):
        decoded = decode_run(encode_run(real_run))
        assert_runs_equal(decoded, real_run)
        assert decoded.result.dataset is decoded.dataset
        assert decoded.result.geolocation is decoded.geolocation
        assert decoded.dataset.to_json() == real_run.dataset.to_json()

    def test_canonical_and_compact(self, real_run):
        encoded = encode_run(real_run)
        assert encode_run(decode_run(encoded)) == encoded
        # The ISSUE's headline: frames are much smaller than the pickle.
        assert len(encoded) * 3 < len(pickle.dumps(real_run))

    def test_compression_flag(self, real_run):
        compressed = encode_run(real_run)
        raw = encode_run(real_run, compress=False)
        assert compressed[5] & 0x01
        assert not raw[5] & 0x01
        assert len(compressed) < len(raw)
        assert_runs_equal(decode_run(raw), real_run)


# -- framing and failure modes ----------------------------------------------


class TestFraming:
    def test_bad_magic_rejected(self):
        with pytest.raises(TransportDecodeError, match="magic"):
            decode_run(b"NOPE" + b"\x01\x00" + b"junk")

    def test_bad_version_rejected(self):
        with pytest.raises(TransportDecodeError, match="version"):
            decode_run(b"CRUN" + bytes((99, 0)) + b"junk")

    def test_corrupt_compressed_body_rejected(self):
        with pytest.raises(TransportDecodeError, match="corrupt"):
            decode_run(b"CRUN" + bytes((1, 1)) + b"not zlib at all")

    def test_truncated_body_rejected(self, real_run):
        encoded = encode_run(real_run, compress=False)
        with pytest.raises(TransportDecodeError):
            decode_run(encoded[: len(encoded) // 2])

    def test_garbage_section_table_rejected(self):
        body = zlib.compress(b"\xff" * 64)
        with pytest.raises(TransportDecodeError):
            decode_run(b"CRUN" + bytes((1, 1)) + body)


class TestTransportSelection:
    def test_transports_tuple(self):
        assert TRANSPORTS == ("pickle", "columnar")

    def test_resolve_passthrough(self):
        assert resolve_transport("pickle") == "pickle"
        assert resolve_transport("columnar") == "columnar"  # numpy present

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown transport"):
            resolve_transport("arrow")

    def test_resolve_falls_back_without_numpy(self, monkeypatch):
        import repro.exec.transport as transport

        monkeypatch.setattr(transport, "HAVE_NUMPY", False)
        assert transport.resolve_transport("columnar") == "pickle"
        assert transport.resolve_transport("pickle") == "pickle"

    def test_checkpoint_format(self):
        assert checkpoint_format("columnar") == "col"
        assert checkpoint_format("pickle") == "pkl"


# -- pool-boundary hand-off --------------------------------------------------


class TestEncodedCountryRun:
    def test_inline_ship_and_load(self, real_run):
        payload = encode_run(real_run)
        shipped = EncodedCountryRun.ship("CA", payload, 0.01, shm_threshold=0)
        assert shipped.shm_name is None
        assert shipped.nbytes == len(payload)
        assert_runs_equal(shipped.load(), real_run)

    def test_shared_memory_ship_and_load(self, real_run):
        payload = encode_run(real_run)
        shipped = EncodedCountryRun.ship(
            "CA", payload, 0.01, shm_threshold=1
        )
        assert shipped.shm_name is not None
        assert shipped.payload is None
        # The descriptor that crosses the pool boundary is tiny.
        assert len(pickle.dumps(shipped)) < 512
        assert_runs_equal(shipped.load(), real_run)

    def test_load_is_single_use(self, real_run):
        payload = encode_run(real_run)
        shipped = EncodedCountryRun.ship("CA", payload, 0.01, shm_threshold=0)
        shipped.load()
        with pytest.raises(ValueError, match="consumed"):
            shipped.load()

    def test_release_unlinks_shared_memory(self, real_run):
        from multiprocessing import shared_memory

        payload = encode_run(real_run)
        shipped = EncodedCountryRun.ship("CA", payload, 0.01, shm_threshold=1)
        name = shipped.shm_name
        shipped.release()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        shipped.release()  # idempotent

    def test_threshold_keeps_small_payloads_inline(self, real_run):
        payload = encode_run(real_run)
        shipped = EncodedCountryRun.ship(
            "CA", payload, 0.01, shm_threshold=len(payload) + 1
        )
        assert shipped.shm_name is None
        assert shipped.payload == payload


# -- checkpoint reuse --------------------------------------------------------


class TestColumnarCheckpoint:
    def test_store_load_round_trip(self, real_run, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path, fmt="col")
        path = checkpoint.store(real_run)
        assert path.name == "CA.run.col"
        assert path.read_bytes()[:4] == b"CRUN"
        assert_runs_equal(checkpoint.load("CA"), real_run)
        assert checkpoint.completed_countries() == ["CA"]

    def test_cross_format_load(self, real_run, tmp_path):
        # Written as pickle, read back by a columnar-configured store —
        # and the other way around.
        StudyCheckpoint(tmp_path, fmt="pkl").store(real_run)
        assert_runs_equal(
            StudyCheckpoint(tmp_path, fmt="col").load("CA"), real_run
        )
        StudyCheckpoint(tmp_path / "b", fmt="col").store(real_run)
        assert_runs_equal(
            StudyCheckpoint(tmp_path / "b", fmt="pkl").load("CA"), real_run
        )

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown checkpoint format"):
            StudyCheckpoint(tmp_path, fmt="parquet")

    def test_corrupt_columnar_file_quarantined(self, real_run, tmp_path):
        checkpoint = StudyCheckpoint(tmp_path, fmt="col")
        checkpoint.store(real_run)
        checkpoint.path_for("CA").write_bytes(b"CRUN\x01\x00garbage")
        assert checkpoint.load("CA") is None
        assert (tmp_path / "CA.run.col.corrupt").exists()

    def test_columnar_checkpoint_is_smaller(self, real_run, tmp_path):
        pkl = StudyCheckpoint(tmp_path / "pkl", fmt="pkl").store(real_run)
        col = StudyCheckpoint(tmp_path / "col", fmt="col").store(real_run)
        assert col.stat().st_size * 3 < pkl.stat().st_size
