"""Whole-scenario invariants: the built world must be self-consistent."""

import pytest

from repro.domains import registrable_domain
from repro.netsim.dns import NXDomain
from repro.netsim.geography import MEASUREMENT_COUNTRIES


class TestDNSConsistency:
    def test_every_target_site_resolves_from_its_country(self, scenario):
        for cc, targets in scenario.targets.items():
            city = scenario.volunteers[cc].city
            for url in targets.all_sites:
                address = scenario.world.dns.resolve_address(url, city)
                assert scenario.world.ips.lookup(address) is not None

    def test_every_embedded_host_resolves_or_is_geo_gated(self, scenario):
        failures = []
        for cc in ("NZ", "RW", "JO"):
            city = scenario.volunteers[cc].city
            for url in scenario.targets[cc].all_sites:
                site = scenario.catalog.get(url)
                for resource in site.embedded:
                    try:
                        scenario.world.dns.resolve(resource.host, city)
                    except NXDomain:
                        failures.append((cc, url, resource.host))
                    except LookupError:
                        pass  # org refuses this region: legitimate
        assert not failures, failures[:5]

    def test_static_hosts_resolve(self, scenario):
        city = scenario.volunteers["TH"].city
        for url in scenario.targets["TH"].regional[:20]:
            assert scenario.world.dns.resolve_address(f"static.{url}", city)


class TestAddressSpaceConsistency:
    def test_every_allocation_has_known_asn(self, scenario):
        for allocation in scenario.world.ips:
            assert scenario.world.asns.has(allocation.asn), allocation.label

    def test_labels_name_real_orgs_or_infrastructure(self, scenario):
        org_like = set(scenario.world.organizations)
        for allocation in scenario.world.ips:
            owner = allocation.label.split("/", 1)[0]
            assert (
                owner in org_like
                or owner.startswith("Hosting-")
                or owner.endswith("-Telecom")
            ), allocation.label

    def test_cloud_labels_use_cloud_asns(self, scenario):
        for allocation in scenario.world.ips:
            owner = allocation.label.split("/", 1)[0]
            org = scenario.world.organizations.get(owner)
            if org is not None and org.is_cloud:
                assert scenario.world.asns.get(allocation.asn).is_cloud


class TestDeploymentConsistency:
    def test_every_tracker_org_serves_some_measurement_country(self, scenario):
        unreachable = []
        for name, deployment in scenario.world.deployments.items():
            if not deployment.org.is_tracker:
                continue
            served = 0
            for cc in MEASUREMENT_COUNTRIES:
                try:
                    deployment.serve(scenario.volunteers[cc].city)
                    served += 1
                except LookupError:
                    continue
            if served == 0:
                unreachable.append(name)
        assert not unreachable

    def test_geodns_answers_belong_to_the_serving_org(self, scenario):
        city = scenario.volunteers["GB"].city
        for host in ("stats.g.doubleclick.net", "connect.facebook.net", "cdn.taboola.com"):
            answer = scenario.world.dns.resolve(host, city)
            allocation = scenario.world.ips.lookup(answer.address)
            assert answer.org_name in allocation.label

    def test_pop_cities_match_allocations(self, scenario):
        for deployment in scenario.world.deployments.values():
            for pop in deployment.pops:
                assert pop.allocation.city.key == pop.city.key


class TestTargetListConsistency:
    def test_quota_and_composition(self, scenario):
        for cc, targets in scenario.targets.items():
            assert len(targets.regional) == 50
            assert 5 <= len(targets.government) <= 50
            for url in targets.regional:
                assert not scenario.catalog.get(url).adult
                assert not scenario.catalog.get(url).banned
            for url in targets.government:
                assert scenario.catalog.get(url).is_government

    def test_no_duplicates_within_list(self, scenario):
        for targets in scenario.targets.values():
            sites = targets.all_sites
            assert len(sites) == len(set(sites))

    def test_gov_sites_match_country_tld(self, scenario):
        for cc, targets in scenario.targets.items():
            country = scenario.world.geo.country(cc)
            suffixes = tuple(t.lstrip(".") for t in country.gov_tlds)
            for url in targets.government:
                assert url.endswith(suffixes), (cc, url)


class TestDirectoryConsistency:
    def test_tracker_hosts_attributed(self, scenario):
        for spec in scenario.org_specs.values():
            if not spec.is_tracker:
                continue
            for host in spec.effective_hosts:
                entry = scenario.directory.org_for_host(host)
                assert entry is not None, host
                assert entry.name == spec.name or entry.name == "YouTube"

    def test_identifier_flags_known_trackers(self, scenario):
        for host in ("stats.g.doubleclick.net", "connect.facebook.net",
                     "sb.scorecardresearch.com", "cdn.jubnaadserve.com"):
            assert scenario.identifier.classify(host, "JO").is_tracker, host

    def test_identifier_spares_content(self, scenario):
        for host in ("cdnjs.cloudmesh-cdn.com", "upload.wikimedia.org",
                     "abs.twimg.com", "s.yimg.com"):
            assert not scenario.identifier.classify(host, "JO").is_tracker, host

    def test_site_domains_not_trackers(self, scenario):
        for cc in ("GB", "RW"):
            for url in scenario.targets[cc].all_sites[:30]:
                if registrable_domain(url) in ("google.com",):
                    continue
                verdict = scenario.identifier.classify(url, cc)
                assert not verdict.is_tracker or url.startswith("google."), url
