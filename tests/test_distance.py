"""Great-circle geometry and fibre physics."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.distance import (
    EARTH_RADIUS_KM,
    FIBER_KM_PER_MS,
    city_distance_km,
    haversine_km,
    interpolate,
    max_feasible_distance_km,
    min_rtt_ms,
)
from repro.netsim.geography import City

_lat = st.floats(min_value=-90, max_value=90, allow_nan=False)
_lon = st.floats(min_value=-180, max_value=180, allow_nan=False)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_km(10, 20, 10, 20) == 0.0

    def test_known_pair_london_paris(self):
        # London-Paris great circle is ~344 km.
        d = haversine_km(51.51, -0.13, 48.86, 2.35)
        assert 330 < d < 360

    def test_known_pair_antipodal(self):
        d = haversine_km(0, 0, 0, 180)
        assert abs(d - math.pi * EARTH_RADIUS_KM) < 1.0

    @given(_lat, _lon, _lat, _lon)
    def test_symmetry(self, lat1, lon1, lat2, lon2):
        assert haversine_km(lat1, lon1, lat2, lon2) == pytest.approx(
            haversine_km(lat2, lon2, lat1, lon1)
        )

    @given(_lat, _lon, _lat, _lon)
    def test_bounded_by_half_circumference(self, lat1, lon1, lat2, lon2):
        d = haversine_km(lat1, lon1, lat2, lon2)
        assert 0 <= d <= math.pi * EARTH_RADIUS_KM + 1e-6

    def test_city_distance_wrapper(self):
        a = City("A", "XX", 0, 0)
        b = City("B", "YY", 0, 90)
        assert city_distance_km(a, b) == pytest.approx(haversine_km(0, 0, 0, 90))


class TestFiberPhysics:
    def test_133_km_per_ms(self):
        assert FIBER_KM_PER_MS == 133.0

    def test_min_rtt_roundtrip_factor(self):
        # 133 km one-way takes 1 ms, so RTT over 133 km is 2 ms.
        assert min_rtt_ms(133.0) == pytest.approx(2.0)

    def test_min_rtt_zero(self):
        assert min_rtt_ms(0) == 0.0

    def test_min_rtt_negative_raises(self):
        with pytest.raises(ValueError):
            min_rtt_ms(-1)

    def test_max_feasible_inverse_of_min_rtt(self):
        for km in (10, 500, 12000):
            assert max_feasible_distance_km(min_rtt_ms(km)) == pytest.approx(km)

    def test_max_feasible_negative_raises(self):
        with pytest.raises(ValueError):
            max_feasible_distance_km(-0.1)

    @given(st.floats(min_value=0, max_value=40000, allow_nan=False))
    def test_min_rtt_monotone(self, km):
        assert min_rtt_ms(km) <= min_rtt_ms(km + 1)


class TestInterpolate:
    def test_endpoints(self):
        assert interpolate(10, 20, 30, 40, 0.0) == pytest.approx((10, 20))
        lat, lon = interpolate(10, 20, 30, 40, 1.0)
        assert (lat, lon) == pytest.approx((30, 40), abs=1e-6)

    def test_midpoint_on_equator(self):
        lat, lon = interpolate(0, 0, 0, 90, 0.5)
        assert lat == pytest.approx(0, abs=1e-6)
        assert lon == pytest.approx(45, abs=1e-6)

    def test_coincident_points(self):
        assert interpolate(5, 5, 5, 5, 0.7) == (5, 5)

    def test_fraction_out_of_range_raises(self):
        with pytest.raises(ValueError):
            interpolate(0, 0, 1, 1, 1.5)

    @given(_lat, _lon, _lat, _lon, st.floats(min_value=0, max_value=1, allow_nan=False))
    def test_point_between_endpoints(self, lat1, lon1, lat2, lon2, f):
        total = haversine_km(lat1, lon1, lat2, lon2)
        lat, lon = interpolate(lat1, lon1, lat2, lon2, f)
        to_start = haversine_km(lat1, lon1, lat, lon)
        # The interpolated point never sits farther along than the endpoint.
        assert to_start <= total + 1.0
