"""Multi-database disagreement and majority voting."""

import pytest

from repro.geodb.multidb import GeoDatabaseComparison, default_database_suite


@pytest.fixture(scope="module")
def suite_and_addresses(scenario):
    suite = default_database_suite(scenario.world)
    addresses = [str(a.address(1)) for a in list(scenario.world.ips)[:150]]
    return suite, addresses


# module-scoped fixtures cannot depend on session fixtures indirectly here;
# rebind scenario at module scope.
@pytest.fixture(scope="module")
def scenario():
    from repro import build_scenario

    return build_scenario()


class TestSuite:
    def test_five_databases(self, suite_and_addresses):
        suite, _ = suite_and_addresses
        assert len(suite) == 5
        assert "ipmap-like" in suite and "maxmind-like" in suite

    def test_databases_err_independently(self, suite_and_addresses):
        suite, addresses = suite_and_addresses
        verdicts = {
            name: [db.is_correct(a) for a in addresses]
            for name, db in suite.items()
        }
        patterns = {tuple(v) for v in verdicts.values()}
        assert len(patterns) == 5  # no two databases fail identically

    def test_ipmap_most_accurate(self, suite_and_addresses):
        suite, addresses = suite_and_addresses
        accuracy = {
            name: sum(1 for a in addresses if db.is_correct(a)) / len(addresses)
            for name, db in suite.items()
        }
        assert accuracy["ipmap-like"] == max(accuracy.values())


class TestComparison:
    def test_needs_two_databases(self, suite_and_addresses):
        suite, _ = suite_and_addresses
        with pytest.raises(ValueError):
            GeoDatabaseComparison({"one": suite["ipmap-like"]})

    def test_agreement_below_perfect(self, suite_and_addresses):
        suite, addresses = suite_and_addresses
        comparison = GeoDatabaseComparison(suite)
        mean = comparison.mean_agreement(addresses)
        # "Studies have shown they are not fully reliable": real databases
        # disagree, and so do ours.
        assert 0.6 < mean < 0.99

    def test_pairwise_rates_symmetrically_keyed(self, suite_and_addresses):
        suite, addresses = suite_and_addresses
        rates = GeoDatabaseComparison(suite).country_agreement(addresses)
        assert len(rates) == 10  # C(5, 2)
        assert all(0 <= r <= 1 for r in rates.values())

    def test_disagreeing_addresses_nonempty(self, suite_and_addresses):
        suite, addresses = suite_and_addresses
        disagreeing = GeoDatabaseComparison(suite).disagreeing_addresses(addresses)
        assert disagreeing
        assert set(disagreeing) <= set(addresses)

    def test_majority_usually_right_but_not_always(self, scenario, suite_and_addresses):
        suite, addresses = suite_and_addresses
        comparison = GeoDatabaseComparison(suite)
        right = wrong = 0
        for address in addresses:
            majority = comparison.majority_country(address)
            truth = scenario.world.ips.true_country(address)
            if majority is None or truth is None:
                continue
            if majority == truth:
                right += 1
            else:
                wrong += 1
        assert right > wrong  # voting helps...
        assert wrong > 0      # ...but correlated confusion still breaks it

    def test_majority_nonlocal_verdict(self, scenario, suite_and_addresses):
        suite, addresses = suite_and_addresses
        comparison = GeoDatabaseComparison(suite)
        verdict = comparison.majority_is_nonlocal(addresses[0], "TH")
        assert verdict in (True, False)
