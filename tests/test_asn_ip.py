"""AS registry and IPv4 address-space management."""

import ipaddress

import pytest

from repro.netsim.asn import ASRegistry, AutonomousSystem
from repro.netsim.geography import City
from repro.netsim.ip import IPSpace

CITY = City("Testville", "XX", 10.0, 20.0)
OTHER = City("Elsewhere", "YY", -5.0, 60.0)


class TestASRegistry:
    def test_register_assigns_sequential_asns(self):
        registry = ASRegistry()
        a = registry.register("A-NET", "OrgA", "US")
        b = registry.register("B-NET", "OrgB", "DE")
        assert b.asn == a.asn + 1

    def test_duplicate_asn_rejected(self):
        registry = ASRegistry()
        registry.add(AutonomousSystem(100, "X", "OrgX", "US"))
        with pytest.raises(ValueError):
            registry.add(AutonomousSystem(100, "Y", "OrgY", "US"))

    def test_lookup(self):
        registry = ASRegistry()
        asys = registry.register("A-NET", "OrgA", "US")
        assert registry.get(asys.asn).org == "OrgA"
        assert registry.has(asys.asn)
        assert not registry.has(asys.asn + 99)

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            ASRegistry().get(1)

    def test_by_org(self):
        registry = ASRegistry()
        registry.register("A1", "OrgA", "US")
        registry.register("A2", "OrgA", "DE")
        registry.register("B1", "OrgB", "US")
        assert len(registry.by_org("OrgA")) == 2
        assert registry.by_org("missing") == []

    def test_cloud_flag(self):
        registry = ASRegistry()
        asys = registry.register("CLOUD", "Cloudy", "US", is_cloud=True)
        assert registry.get(asys.asn).is_cloud

    def test_org_of(self):
        registry = ASRegistry()
        asys = registry.register("A", "OrgA", "US")
        assert registry.org_of(asys.asn) == "OrgA"
        assert registry.org_of(999999) is None

    def test_len_and_iter(self):
        registry = ASRegistry()
        registry.register("A", "OrgA", "US")
        registry.register("B", "OrgB", "US")
        assert len(registry) == 2
        assert {a.org for a in registry} == {"OrgA", "OrgB"}


class TestIPSpace:
    def test_allocates_global_slash24(self):
        space = IPSpace()
        allocation = space.allocate(65000, CITY)
        assert allocation.network.prefixlen == 24
        assert allocation.network.is_global

    def test_allocations_disjoint(self):
        space = IPSpace()
        nets = [space.allocate(1, CITY).network for _ in range(20)]
        for i, a in enumerate(nets):
            for b in nets[i + 1:]:
                assert not a.overlaps(b)

    def test_lookup_roundtrip(self):
        space = IPSpace()
        allocation = space.allocate(42, CITY, label="test/pop")
        address = allocation.address(7)
        found = space.lookup(address)
        assert found is allocation
        assert space.owner_asn(address) == 42
        assert space.true_city(address) is CITY
        assert space.true_country(address) == "XX"

    def test_lookup_unallocated_returns_none(self):
        space = IPSpace()
        assert space.lookup("8.8.8.8") is None
        assert space.true_country("8.8.8.8") is None

    def test_address_host_bounds(self):
        allocation = IPSpace().allocate(1, CITY)
        with pytest.raises(ValueError):
            allocation.address(0)
        with pytest.raises(ValueError):
            allocation.address(255)
        assert int(allocation.address(1)) == int(allocation.network.network_address) + 1

    def test_different_cities_tracked(self):
        space = IPSpace()
        a = space.allocate(1, CITY)
        b = space.allocate(1, OTHER)
        assert space.true_city(a.address(1)).key == CITY.key
        assert space.true_city(b.address(1)).key == OTHER.key

    def test_len_and_iter(self):
        space = IPSpace()
        space.allocate(1, CITY)
        space.allocate(2, OTHER)
        assert len(space) == 2
        assert {a.asn for a in space} == {1, 2}

    def test_addresses_parse_as_ipv4(self):
        allocation = IPSpace().allocate(1, CITY)
        parsed = ipaddress.IPv4Address(str(allocation.address(10)))
        assert parsed in allocation.network
