"""Submarine-cable registry and the §7 infrastructure analysis."""

import pytest

from repro.core.analysis.infrastructure import InfrastructureAnalysis
from repro.netsim.cables import CableMap, SubmarineCable, default_cable_map


class TestSubmarineCable:
    def test_needs_two_landings(self):
        with pytest.raises(ValueError):
            SubmarineCable("Lonely", ("KE",))

    def test_lands_in(self):
        cable = SubmarineCable("X", ("KE", "FR"))
        assert cable.lands_in("KE") and not cable.lands_in("US")


class TestCableMap:
    @pytest.fixture(scope="class")
    def cable_map(self):
        return default_cable_map()

    def test_kenya_has_six_cables(self, cable_map):
        # The paper cites six submarine cables landing in Kenya.
        assert cable_map.cable_count("KE") == 6

    def test_india_pakistan_share_imewe(self, cable_map):
        assert "IMEWE" in cable_map.shared_cables("IN", "PK")
        assert cable_map.share_cable("IN", "PK")

    def test_bharat_lanka_link(self, cable_map):
        assert "Bharat Lanka" in cable_map.shared_cables("IN", "LK")

    def test_no_cable_for_landlocked_pairs(self, cable_map):
        # Rwanda and Uganda are landlocked: no landings at all.
        assert cable_map.cable_count("RW") == 0
        assert cable_map.cable_count("UG") == 0
        assert not cable_map.share_cable("RW", "KE")

    def test_connectivity_ranking_order(self, cable_map):
        ranking = cable_map.connectivity_ranking(["KE", "QA", "FR"])
        assert ranking[0][0] == "FR"
        assert dict(ranking)["KE"] > dict(ranking)["QA"]

    def test_reachability_closure(self, cable_map):
        reachable = cable_map.reachable_over_cables("NZ")
        assert "AU" in reachable and "US" in reachable
        assert "JP" in reachable  # via the US trunks
        assert "RW" not in reachable  # landlocked

    def test_unknown_country_empty(self, cable_map):
        assert cable_map.cables_landing_in("XX") == []
        assert cable_map.cable_count("XX") == 0


class TestInfrastructureAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self, study_full):
        return study_full.infrastructure()

    def test_annotated_flows_complete(self, analysis, study_full):
        annotated = analysis.annotated_flows()
        assert len(annotated) == len(study_full.flows().edges())
        for flow in annotated:
            assert flow.distance_km > 0
            assert flow.shares_cable == bool(flow.shared_cables)

    def test_india_pakistan_silent_despite_cable(self, analysis):
        silent = analysis.cable_without_flow()
        assert any(src == "PK" and dst == "IN" for src, dst, _ in silent)

    def test_hosting_correlates_with_connectivity(self, analysis):
        rho = analysis.hosting_connectivity_correlation()
        assert rho is not None and rho > 0.2  # infrastructure attracts hosting

    def test_cable_alignment_substantial(self, analysis):
        share = analysis.cable_alignment_share()
        assert 0.2 < share < 1.0

    def test_mean_flow_distance_reasonable(self, analysis):
        km = analysis.mean_flow_distance_km()
        assert 1000 < km < 12000  # intercontinental but not antipodal
