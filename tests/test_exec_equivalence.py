"""Serial/parallel equivalence of ``run_study`` — the determinism proof.

The repo's headline guarantee is bit-exact determinism; the parallel
executor must therefore be *unobservable* in study artefacts.  These
tests run the same study through the serial, thread-pool, and
process-pool backends at several worker counts and assert that every
artefact — datasets, verdicts, funnel counters, joined analysis records,
and the derived summary — is exactly equal, including across repeated
runs.
"""

from __future__ import annotations

import pytest

from repro import run_study
from repro.core.analysis.summary import summarize_study
from repro.study import StudyConfig
from tests.conftest import SMALL_COUNTRIES


def assert_outcomes_identical(reference, other) -> None:
    """Every study artefact equal, field by field (timings excluded)."""
    assert sorted(reference.datasets) == sorted(other.datasets)
    assert [r.country_code for r in reference.results] == [
        r.country_code for r in other.results
    ]
    assert reference.source_trace_origins == other.source_trace_origins
    for cc in reference.datasets:
        assert reference.datasets[cc].to_json() == other.datasets[cc].to_json(), cc
        a, b = reference.geolocations[cc], other.geolocations[cc]
        assert a.funnel == b.funnel, cc
        assert a.host_to_address == b.host_to_address, cc
        assert a.verdicts == b.verdicts, cc
    assert reference.funnel() == other.funnel()
    for ref_result, other_result in zip(reference.results, other.results):
        assert ref_result.sites == other_result.sites, ref_result.country_code
        assert ref_result.tracker_verdicts == other_result.tracker_verdicts
    # One structural check over every downstream analysis (flows, hosting,
    # organizations, policy, prevalence, funnel) in a single object.
    assert summarize_study(reference).to_dict() == summarize_study(other).to_dict()


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("jobs", [1, 2, 8])
    def test_small_study_equal_for_all_backends_and_job_counts(
        self, scenario, study_small, backend, jobs
    ):
        parallel = run_study(
            scenario, countries=SMALL_COUNTRIES, jobs=jobs, backend=backend
        )
        assert parallel.metrics.backend == backend
        assert parallel.metrics.jobs == jobs
        assert_outcomes_identical(study_small, parallel)

    def test_repeated_parallel_runs_identical(self, scenario):
        first = run_study(scenario, countries=SMALL_COUNTRIES, jobs=2, backend="thread")
        second = run_study(scenario, countries=SMALL_COUNTRIES, jobs=2, backend="thread")
        assert_outcomes_identical(first, second)

    def test_config_carries_jobs_and_backend(self, scenario):
        config = StudyConfig(jobs=2, backend="thread")
        outcome = run_study(scenario, countries=["CA", "NZ"], config=config)
        assert outcome.metrics.backend == "thread"
        assert outcome.metrics.jobs == 2

    def test_explicit_args_override_config(self, scenario):
        config = StudyConfig(jobs=8, backend="process")
        outcome = run_study(
            scenario, countries=["CA"], config=config, jobs=1, backend="serial"
        )
        assert outcome.metrics.backend == "serial"
        assert outcome.metrics.jobs == 1


class TestFullScenarioAcceptance:
    """The acceptance criterion: jobs=4 on the default 23-country world."""

    def test_jobs4_process_pool_equals_serial(self, scenario, study_full):
        parallel = run_study(scenario, jobs=4)
        assert parallel.metrics.backend == "process"  # auto resolves to process
        assert parallel.metrics.jobs == 4
        assert_outcomes_identical(study_full, parallel)
        # The per-country work really ran (phase accounting is complete).
        assert set(parallel.metrics.country_seconds) == set(scenario.countries)
        assert parallel.metrics.aggregate_seconds > 0


class TestMetricsShape:
    def test_serial_metrics_account_every_phase(self, study_small):
        metrics = study_small.metrics
        assert metrics.backend == "serial"
        assert metrics.jobs == 1
        assert set(metrics.country_seconds) == set(SMALL_COUNTRIES)
        for phase in ("gamma", "source_traces", "geoloc", "join"):
            assert phase in metrics.phase_seconds
        assert metrics.wall_seconds > 0
        assert 0 < metrics.aggregate_seconds <= metrics.wall_seconds * 1.5
        assert metrics.to_dict()["backend"] == "serial"

    def test_metrics_stay_out_of_summary_and_exports(self, study_small):
        summary = summarize_study(study_small).to_dict()
        flattened = str(summary)
        assert "wall_seconds" not in flattened
        assert "backend" not in flattened
