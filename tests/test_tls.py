"""TLS endpoint simulation and the Gamma TLS probe."""

import pytest

from repro.core.gamma.probes import ProbeRunner
from repro.netsim.geography import default_registry
from repro.netsim.network import World
from repro.netsim.tls import TLSInspector

from tests.test_servers_dns import make_deployment

REG = default_registry()


@pytest.fixture()
def tls_world():
    world = World(geo=REG)
    big = make_deployment(["US", "FR", "SG"], org_name="BigCo",
                          domains=("bigco.com", "bigco-cdn.net", "bigco-ads.net"),
                          space=world.ips)
    small = make_deployment(["JO"], org_name="SmallAds", domains=("smallads.jo",),
                            space=world.ips)
    for deployment in (big, small):
        world.deployments[deployment.org.name] = deployment
        world.organizations.setdefault(deployment.org.name, deployment.org)
        for domain in deployment.org.domains:
            world.dns.register(domain, deployment)
    return world, big, small


class TestTLSInspector:
    def test_certificate_identifies_operator(self, tls_world):
        world, big, _ = tls_world
        inspector = TLSInspector(world)
        info = inspector.probe(str(big.pops[0].allocation.address(5)))
        assert info.subject_org == "BigCo"
        assert info.subject_cn == "*.bigco.com"
        assert "*.bigco-cdn.net" in info.san

    def test_sni_selects_certificate(self, tls_world):
        world, big, _ = tls_world
        inspector = TLSInspector(world)
        info = inspector.probe(str(big.pops[0].allocation.address(5)), sni="x.bigco-ads.net")
        assert info.subject_cn == "*.bigco-ads.net"

    def test_unknown_sni_falls_back(self, tls_world):
        world, big, _ = tls_world
        inspector = TLSInspector(world)
        info = inspector.probe(str(big.pops[0].allocation.address(5)), sni="other.example")
        assert info.subject_cn == "*.bigco.com"

    def test_big_operator_runs_modern_stack(self, tls_world):
        world, big, _ = tls_world
        inspector = TLSInspector(world)
        versions = {
            inspector.probe(str(big.pops[0].allocation.address(h))).version
            for h in range(1, 30)
        }
        assert versions <= {"TLS 1.3", "TLS 1.2"}

    def test_small_operator_may_run_legacy(self, tls_world):
        world, _, small = tls_world
        inspector = TLSInspector(world)
        versions = {
            inspector.probe(str(small.pops[0].allocation.address(h))).version
            for h in range(1, 40)
        }
        assert versions & {"TLS 1.1", "TLS 1.0"}

    def test_unserved_address_none(self, tls_world):
        world, _, _ = tls_world
        assert TLSInspector(world).probe("8.8.8.8") is None

    def test_deterministic(self, tls_world):
        world, big, _ = tls_world
        inspector = TLSInspector(world)
        address = str(big.pops[0].allocation.address(9))
        assert inspector.probe(address) == inspector.probe(address)

    def test_gamma_probe_runner_integration(self, tls_world):
        world, big, _ = tls_world
        runner = ProbeRunner(world, "linux")
        info = runner.tls(str(big.pops[0].allocation.address(1)))
        assert info is not None and info.subject_org == "BigCo"
        assert runner.tls("8.8.8.8") is None

    def test_cloud_hosted_pop_presents_tenant_cert(self, scenario):
        # An Amazon-adsystem PoP rides AWS address space but terminates
        # TLS with the tenant's certificate.
        inspector = TLSInspector(scenario.world)
        allocation = next(
            a for a in scenario.world.ips
            if a.label.startswith("Amazon Web Services/Amazon-")
        )
        info = inspector.probe(str(allocation.address(3)))
        assert info.subject_org == "Amazon"
