"""Traceroute output parsers: the OS-normalisation layer of Gamma."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gamma.parsers import (
    NormalizedHop,
    NormalizedTraceroute,
    parse_linux_traceroute,
    parse_traceroute_output,
    parse_windows_tracert,
)
from repro.netsim.geography import default_registry
from repro.netsim.ip import IPSpace
from repro.netsim.latency import LatencyModel
from repro.netsim.traceroute import (
    TracerouteBlocking,
    TracerouteEngine,
    render_linux,
    render_windows,
)

REG = default_registry()

LINUX_SAMPLE = """traceroute to 5.0.0.1 (5.0.0.1), 30 hops max, 60 byte packets
 1  192.168.1.1 (192.168.1.1)  1.123 ms  1.201 ms  1.304 ms
 2  62.10.20.30 (62.10.20.30)  8.412 ms  8.377 ms  8.598 ms
 3  * * *
 4  5.0.0.1 (5.0.0.1)  42.001 ms  41.876 ms  42.313 ms
"""

WINDOWS_SAMPLE = """
Tracing route to 5.0.0.1 over a maximum of 30 hops

   1     1 ms     1 ms     2 ms  192.168.1.1
   2     8 ms     9 ms     8 ms  62.10.20.30
   3     *        *        *     Request timed out.
   4    42 ms    41 ms    42 ms  5.0.0.1

Trace complete.
"""


class TestLinuxParser:
    def test_parses_target_and_hops(self):
        result = parse_linux_traceroute(LINUX_SAMPLE)
        assert result.target == "5.0.0.1"
        assert result.tool == "traceroute"
        assert len(result.hops) == 4

    def test_reached(self):
        assert parse_linux_traceroute(LINUX_SAMPLE).reached

    def test_star_hop(self):
        result = parse_linux_traceroute(LINUX_SAMPLE)
        assert result.hops[2].address is None
        assert result.hops[2].rtt_ms is None

    def test_rtt_median_of_probes(self):
        result = parse_linux_traceroute(LINUX_SAMPLE)
        assert result.hops[0].rtt_ms == pytest.approx(1.201)

    def test_first_last_hop_rtts(self):
        result = parse_linux_traceroute(LINUX_SAMPLE)
        assert result.first_hop_rtt == pytest.approx(1.201)
        assert result.last_hop_rtt == pytest.approx(42.001)

    def test_unreached_when_last_hop_not_target(self):
        truncated = "\n".join(LINUX_SAMPLE.splitlines()[:3]) + "\n"
        assert not parse_linux_traceroute(truncated).reached

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_linux_traceroute("hello world")


class TestWindowsParser:
    def test_parses_target_and_hops(self):
        result = parse_windows_tracert(WINDOWS_SAMPLE)
        assert result.target == "5.0.0.1"
        assert result.tool == "tracert"
        assert len(result.hops) == 4

    def test_reached_requires_trace_complete(self):
        assert parse_windows_tracert(WINDOWS_SAMPLE).reached
        without = WINDOWS_SAMPLE.replace("Trace complete.", "")
        assert not parse_windows_tracert(without).reached

    def test_timed_out_hop(self):
        result = parse_windows_tracert(WINDOWS_SAMPLE)
        assert result.hops[2].address is None

    def test_sub_millisecond_estimate(self):
        text = WINDOWS_SAMPLE.replace("   1     1 ms     1 ms     2 ms  192.168.1.1",
                                      "   1    <1 ms    <1 ms    <1 ms  192.168.1.1")
        result = parse_windows_tracert(text)
        assert result.hops[0].rtt_ms == pytest.approx(0.5)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_windows_tracert("nonsense")


class TestAutodetect:
    def test_detects_linux(self):
        assert parse_traceroute_output(LINUX_SAMPLE).tool == "traceroute"

    def test_detects_windows(self):
        assert parse_traceroute_output(WINDOWS_SAMPLE).tool == "tracert"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            parse_traceroute_output("PING 1.2.3.4")


class TestNormalizedStructures:
    def test_hop_dict_roundtrip(self):
        hop = NormalizedHop(hop=3, address="1.2.3.4", rtts_ms=(1.0, 2.0, 3.0))
        assert hop.to_dict() == {"hop": 3, "ip": "1.2.3.4", "rtt_ms": [1.0, 2.0, 3.0]}

    def test_trace_dict_roundtrip(self):
        original = parse_linux_traceroute(LINUX_SAMPLE)
        back = NormalizedTraceroute.from_dict(original.to_dict())
        assert back.target == original.target
        assert back.reached == original.reached
        assert [h.rtt_ms for h in back.hops] == [h.rtt_ms for h in original.hops]


class TestCrossOSEquivalence:
    """Both renderings of the same trace normalise to the same structure.

    This is the heart of Gamma's portability claim: hop count, hop
    reachability and RTTs (to rounding) agree regardless of which OS tool
    produced the text.
    """

    def _engine(self):
        space = IPSpace()
        allocation = space.allocate(1, REG.city("Frankfurt, DE"), label="X/fra1")
        engine = TracerouteEngine(LatencyModel(), space, TracerouteBlocking(unreachable_rate=0.0))
        return engine, str(allocation.address(1))

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from(["London, GB", "Bangkok, TH", "Kigali, RW", "Auckland, NZ"]),
           st.integers(min_value=0, max_value=5))
    def test_normalised_equivalence(self, city_key, key):
        engine, target = self._engine()
        trace = engine.trace(REG.city(city_key), target, f"k{key}")
        from_linux = parse_linux_traceroute(render_linux(trace))
        from_windows = parse_windows_tracert(render_windows(trace))
        assert from_linux.target == from_windows.target == target
        assert from_linux.reached == from_windows.reached
        assert len(from_linux.hops) == len(from_windows.hops)
        for linux_hop, windows_hop in zip(from_linux.hops, from_windows.hops):
            assert (linux_hop.address is None) == (windows_hop.address is None)
            if linux_hop.rtt_ms is not None and linux_hop.rtt_ms >= 1.0:
                # tracert prints integer milliseconds.
                assert abs(linux_hop.rtt_ms - windows_hop.rtt_ms) <= 1.0
