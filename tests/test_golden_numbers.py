"""Golden regression numbers for the default scenario.

The whole pipeline is deterministic, so the headline outputs of the
default seed can be pinned exactly.  If a change to the substrate,
calibration, or pipeline moves any of these, this test fails — which is
the point: calibration drift must be a conscious decision.  When a
change is intentional, regenerate the constants (the command is in each
assertion's comment) and update EXPERIMENTS.md to match.
"""

import pytest

# Regenerate with:
#   python - <<'PY'
#   from repro import build_scenario, run_study
#   out = run_study(build_scenario())
#   print({r.country_code: round(r.combined_pct, 2)
#          for r in out.prevalence().per_country()})
#   PY
GOLDEN_COMBINED_PCT = {
    "AE": 35.29, "AR": 58.44, "AU": 7.53, "AZ": 76.71, "CA": 0.0,
    "DZ": 40.0, "EG": 67.09, "GB": 39.18, "IN": 1.09, "JO": 56.76,
    "JP": 22.06, "LB": 30.0, "LK": 10.53, "NZ": 85.26, "PK": 63.51,
    "QA": 76.62, "RU": 9.62, "RW": 67.65, "SA": 72.34, "TH": 56.04,
    "TW": 5.81, "UG": 79.1, "US": 0.0,
}

GOLDEN_FUNNEL = {"total": 20408, "nonlocal": 13064, "latency": 7820, "rdns": 7631}

GOLDEN_TOP_SHARES = {"FR": 59.05, "DE": 44.6, "GB": 25.95, "KE": 20.34,
                     "SG": 15.01, "US": 14.87}

GOLDEN_TOP_HOSTING = {"DE": 269, "KE": 209, "FR": 135, "GB": 76, "US": 60}

GOLDEN_ORG_COUNT = 76
GOLDEN_FIRST_PARTY = (16, 713)  # (first-party sites, sites with non-local)


class TestGoldenNumbers:
    def test_combined_prevalence(self, study_full):
        measured = {
            r.country_code: round(r.combined_pct, 2)
            for r in study_full.prevalence().per_country()
        }
        assert measured == GOLDEN_COMBINED_PCT

    def test_funnel(self, study_full):
        funnel = study_full.funnel()
        assert {
            "total": funnel.total_hosts,
            "nonlocal": funnel.nonlocal_candidates,
            "latency": funnel.after_latency_constraints,
            "rdns": funnel.after_rdns,
        } == GOLDEN_FUNNEL

    def test_top_destination_shares(self, study_full):
        shares = study_full.flows().destination_shares()
        measured = {cc: round(shares[cc], 2) for cc in GOLDEN_TOP_SHARES}
        assert measured == GOLDEN_TOP_SHARES
        assert list(shares)[:4] == list(GOLDEN_TOP_SHARES)[:4]

    def test_top_hosting(self, study_full):
        hosting = study_full.hosting().domains_per_destination()
        assert dict(list(hosting.items())[:5]) == GOLDEN_TOP_HOSTING

    def test_organizations_and_first_party(self, study_full):
        assert len(study_full.organizations().observed_organizations()) == GOLDEN_ORG_COUNT
        first_party = study_full.first_party()
        assert (len(first_party.first_party_sites()),
                first_party.sites_with_nonlocal()) == GOLDEN_FIRST_PARTY
