"""Paper-shape assertions over the full 23-country study.

Each test pins one qualitative finding of the paper: who wins, by
roughly what factor, where the special cases fall.  Absolute numbers are
allowed to drift (our substrate is a simulator); the *shape* is not.
"""

import pytest

PAPER_TABLE1 = {
    "AZ": 74.39, "DZ": 49.39, "EG": 70.41, "RW": 62.30, "UG": 75.45,
    "AR": 61.48, "RU": 8.00, "LK": 9.43, "TH": 59.05, "AE": 33.50,
    "GB": 38.65, "AU": 7.06, "CA": 0.00, "IN": 1.06, "JP": 22.71,
    "JO": 54.37, "NZ": 83.50, "PK": 65.73, "QA": 73.19, "SA": 71.43,
    "TW": 7.63, "US": 0.00, "LB": 20.24,
}


class TestTable1Shape:
    def test_every_country_within_tolerance(self, study_full):
        rows = {r.country_code: r.combined_pct for r in study_full.prevalence().per_country()}
        for cc, paper in PAPER_TABLE1.items():
            assert abs(rows[cc] - paper) < 15, f"{cc}: {rows[cc]:.1f} vs paper {paper}"

    def test_exact_zero_countries(self, study_full):
        rows = {r.country_code: r.combined_pct for r in study_full.prevalence().per_country()}
        assert rows["CA"] == 0.0
        assert rows["US"] == 0.0

    def test_india_nearly_local(self, study_full):
        rows = {r.country_code: r.combined_pct for r in study_full.prevalence().per_country()}
        assert 0 < rows["IN"] < 4

    def test_ordering_of_extremes(self, study_full):
        rows = {r.country_code: r.combined_pct for r in study_full.prevalence().per_country()}
        for low in ("CA", "US", "IN", "AU", "TW", "RU", "LK"):
            for high in ("NZ", "AZ", "QA", "UG", "PK"):
                assert rows[low] < rows[high]

    def test_21_of_23_countries_have_foreign_trackers(self, study_full):
        countries = study_full.prevalence().countries_with_foreign_trackers()
        assert len(countries) == 21


class TestFig3Shape:
    def test_regional_mean_and_spread(self, study_full):
        summary = study_full.prevalence().regional_mean_and_stdev()
        assert 35 < summary["mean"] < 55  # paper 46.16
        assert 20 < summary["stdev"] < 45  # paper 33.77

    def test_reg_gov_correlation(self, study_full):
        r = study_full.prevalence().regional_government_correlation()
        assert r > 0.7  # paper 0.89

    def test_uganda_gov_exceeds_regional(self, study_full):
        row = next(r for r in study_full.prevalence().per_country() if r.country_code == "UG")
        assert row.government_pct > row.regional_pct  # a paper-noted exception


class TestFig5Shape:
    def test_france_top_destination(self, study_full):
        shares = study_full.flows().destination_shares()
        assert max(shares, key=shares.get) == "FR"
        assert shares["FR"] > 40  # paper 43

    def test_uk_germany_kenya_in_top5(self, study_full):
        top5 = list(study_full.flows().destination_shares())[:5]
        assert "DE" in top5 and "GB" in top5

    def test_kenya_prominent(self, study_full):
        shares = study_full.flows().destination_shares()
        assert shares.get("KE", 0) > 8  # paper 14

    def test_usa_receives_from_many_sources_but_few_sites(self, study_full):
        shares = study_full.flows().destination_shares()
        sources = study_full.flows().source_count_per_destination()
        assert sources["US"] >= 8  # paper: 15 source countries
        assert shares["US"] < shares["FR"] / 2.5  # paper: 5 % vs 43 %

    def test_australia_collapses_without_new_zealand(self, study_full):
        with_nz = study_full.flows().destination_shares()["AU"]
        without = study_full.flows().destination_shares(exclude_sources=["NZ"]).get("AU", 0)
        assert without < with_nz / 2  # paper: 23 % -> 11 %

    def test_malaysia_collapses_without_thailand(self, study_full):
        with_th = study_full.flows().destination_shares().get("MY", 0)
        without = study_full.flows().destination_shares(exclude_sources=["TH"]).get("MY", 0)
        assert with_th > 1
        assert without < 0.5  # paper: 7 % -> 0.16 %

    def test_pakistan_never_flows_to_india(self, study_full):
        assert study_full.flows().destinations_of("PK").get("IN", 0) == 0

    def test_thailand_flows_to_sea_hubs(self, study_full):
        destinations = study_full.flows().destinations_of("TH")
        assert destinations.get("MY", 0) > 0
        assert destinations.get("SG", 0) > 0
        assert destinations.get("JP", 0) > 0


class TestFig6Shape:
    def test_europe_is_the_hub(self, study_full):
        assert study_full.continents().central_hub() == "Europe"

    def test_africa_no_inward_flow(self, study_full):
        assert study_full.continents().inward_flow("Africa") == 0

    def test_north_america_no_outward_flow(self, study_full):
        assert study_full.continents().outward_flow("North America") == 0

    def test_oceania_flow_mostly_internal(self, study_full):
        assert study_full.continents().share_staying_within("Oceania") > 0.3

    def test_europe_receives_from_every_other_continent(self, study_full):
        sources = study_full.continents().inward_source_continents("Europe")
        assert set(sources) >= {"Africa", "Asia", "Oceania", "South America"}


class TestFig7Shape:
    def test_kenya_germany_top_hosting(self, study_full):
        counts = study_full.hosting().domains_per_destination()
        top3 = list(counts)[:3]
        assert "KE" in top3 and "DE" in top3  # paper: KE 210, DE 172

    def test_usa_hosts_few_domains(self, study_full):
        counts = study_full.hosting().domains_per_destination()
        assert counts["US"] < counts["KE"] / 2  # paper: 16 vs 210

    def test_kenya_fed_by_east_africa(self, study_full):
        breakdown = study_full.hosting().breakdown_by_source("KE")
        assert set(breakdown) <= {"RW", "UG", "EG", "DZ"}
        assert breakdown.get("RW", 0) > 0 and breakdown.get("UG", 0) > 0


class TestFig8Shape:
    def test_google_dominant(self, study_full):
        top = study_full.organizations().top_organizations(3)
        assert top[0][0] == "Google"
        assert top[0][1] > 2 * top[1][1] * 0.5  # clearly ahead

    def test_roughly_seventy_organizations(self, study_full):
        count = len(study_full.organizations().observed_organizations())
        assert 55 <= count <= 95  # paper ~70

    def test_ownership_concentrated_in_us(self, study_full):
        homes = study_full.organizations().home_country_distribution()
        assert 40 <= homes["US"] <= 65  # paper 50 %
        assert homes.get("GB", 0) >= 5  # paper 10 %

    def test_jordan_exclusive_trackers(self, study_full):
        exclusive = study_full.organizations().country_exclusive_organizations()
        jordan_only = set(exclusive.get("JO", []))
        assert {"Jubnaadserve", "OneTag", "Optad360"} <= jordan_only

    def test_cloud_hosting_attribution(self, study_full):
        hosted = study_full.organizations().cloud_hosted_trackers()
        aws_hosts = hosted.get("Amazon Web Services", [])
        gcp_hosts = hosted.get("Google Cloud", [])
        assert len(aws_hosts) > len(gcp_hosts)  # paper: 50 AWS vs 5 GCP
        assert len(gcp_hosts) >= 1


class TestFig2Shape:
    def test_load_success_rates(self, study_full):
        rates = {cc: ds.load_success_pct() for cc, ds in study_full.datasets.items()}
        assert rates["JP"] < 75  # paper 64
        assert rates["SA"] < 65  # paper 56
        for cc, rate in rates.items():
            if cc not in ("JP", "SA"):
                assert rate >= 80  # paper: >= 86

    def test_target_list_sizes(self, scenario):
        total = sum(len(t) for t in scenario.targets.values())
        assert 1900 <= total <= 2100  # paper 2005


class TestSec67Shape:
    def test_first_party_rare_and_google_led(self, study_full):
        analysis = study_full.first_party()
        first_party = analysis.first_party_sites()
        assert analysis.sites_with_nonlocal() > 400  # paper 575
        assert 5 <= len(first_party) <= 40  # paper 23
        breakdown = analysis.owner_breakdown()
        assert max(breakdown, key=breakdown.get) == "Google"
        assert breakdown["Google"] / len(first_party) > 0.33  # paper ~50 %


class TestTable1Policy:
    def test_no_positive_strictness_effect(self, study_full):
        # Paper: no obvious impact; weak *negative* trend.
        rho = study_full.policy().strictness_correlation()
        assert rho < 0.2

    def test_rows_cover_all_countries(self, study_full):
        assert len(study_full.policy().table_rows()) == 23
