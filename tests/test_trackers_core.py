"""Organisation directory, tracker identification, party classification."""

import pytest

from repro.core.trackers.filterlist import FilterList, FilterSet
from repro.core.trackers.identify import IdentificationMethod, TrackerIdentifier
from repro.core.trackers.orgs import OrganizationDirectory, OrgEntry
from repro.core.trackers.party import PartyClassifier, PartyKind


@pytest.fixture()
def directory():
    return OrganizationDirectory([
        OrgEntry("Google", "US", ("google.com", "googleapis.com", "doubleclick.net"),
                 is_tracker=True, category="advertising",
                 tracking_domains=("googleapis.com", "doubleclick.net")),
        OrgEntry("Yahoo", "US", ("yahoo.com", "yimg.com"), is_tracker=True,
                 tracking_domains=("analytics.yahoo.com",)),
        OrgEntry("ManualAds", "JO", ("manualads.example",), is_tracker=True),
        OrgEntry("Publisher", "TH", ("siamnews.co.th",)),
    ])


@pytest.fixture()
def identifier(directory):
    global_lists = FilterSet([
        FilterList.parse("easylist", "||doubleclick.net^\n"),
        FilterList.parse("easyprivacy", "||analytics.yahoo.com^\n"),
    ])
    regional = {"IN": FilterSet([FilterList.parse("regional-IN", "||admobi.in^\n")])}
    return TrackerIdentifier(global_lists, regional, directory)


class TestOrganizationDirectory:
    def test_org_for_host_by_registrable(self, directory):
        assert directory.org_for_host("stats.g.doubleclick.net").name == "Google"

    def test_org_for_host_unknown(self, directory):
        assert directory.org_for_host("mystery.example.org") is None

    def test_duplicate_org_rejected(self, directory):
        with pytest.raises(ValueError):
            directory.add(OrgEntry("Google", "US", ("other.com",)))

    def test_duplicate_domain_rejected(self, directory):
        with pytest.raises(ValueError):
            directory.add(OrgEntry("Rival", "US", ("google.com",)))

    def test_tracking_host_granularity(self, directory):
        # yimg.com belongs to Yahoo but is not a tracking domain.
        assert directory.is_tracking_host("analytics.yahoo.com")
        assert not directory.is_tracking_host("s.yimg.com")
        assert not directory.is_tracking_host("www.yahoo.com")

    def test_tracker_defaults_to_all_domains(self, directory):
        assert directory.is_tracking_host("cdn.manualads.example")

    def test_non_tracker_never_tracking(self, directory):
        assert not directory.is_tracking_host("www.siamnews.co.th")

    def test_trackers_listing(self, directory):
        assert {e.name for e in directory.trackers()} == {"Google", "Yahoo", "ManualAds"}


class TestTrackerIdentifier:
    def test_global_list_hit(self, identifier):
        verdict = identifier.classify("ad.doubleclick.net", "TH")
        assert verdict.is_tracker
        assert verdict.method == IdentificationMethod.GLOBAL_LIST
        assert verdict.list_name == "easylist"
        assert verdict.org_name == "Google"

    def test_regional_list_hit_only_in_country(self, identifier):
        assert identifier.classify("ads.admobi.in", "IN").method == IdentificationMethod.REGIONAL_LIST
        # Outside India the regional list is not consulted and the host is
        # unknown to the directory -> not a tracker.
        assert not identifier.classify("ads.admobi.in", "TH").is_tracker

    def test_manual_fallback(self, identifier):
        verdict = identifier.classify("px.manualads.example", "JO")
        assert verdict.is_tracker
        assert verdict.method == IdentificationMethod.MANUAL
        assert verdict.org_name == "ManualAds"

    def test_non_tracker(self, identifier):
        verdict = identifier.classify("www.siamnews.co.th", "TH")
        assert not verdict.is_tracker
        assert verdict.method is None

    def test_content_host_of_tracker_org_not_flagged(self, identifier):
        # s.yimg.com: Yahoo-owned, but not a tracking domain and not listed.
        assert not identifier.classify("s.yimg.com", "TH").is_tracker

    def test_verdict_domain_property(self, identifier):
        verdict = identifier.classify("ad.doubleclick.net", None)
        assert verdict.domain == "doubleclick.net"

    def test_classify_many(self, identifier):
        verdicts = identifier.classify_many(["ad.doubleclick.net", "s.yimg.com"], "TH")
        assert verdicts["ad.doubleclick.net"].is_tracker
        assert not verdicts["s.yimg.com"].is_tracker

    def test_regional_countries(self, identifier):
        assert identifier.regional_countries() == ["IN"]


class TestPartyClassifier:
    def test_first_party(self, directory):
        classifier = PartyClassifier(directory)
        verdict = classifier.classify("www.google.com", "fonts.googleapis.com")
        assert verdict.kind == PartyKind.FIRST
        assert classifier.is_first_party("www.google.com", "fonts.googleapis.com")

    def test_third_party(self, directory):
        classifier = PartyClassifier(directory)
        verdict = classifier.classify("www.siamnews.co.th", "ad.doubleclick.net")
        assert verdict.kind == PartyKind.THIRD
        assert verdict.site_org == "Publisher"
        assert verdict.tracker_org == "Google"

    def test_unknown_site_with_known_tracker_is_third(self, directory):
        classifier = PartyClassifier(directory)
        verdict = classifier.classify("randomblog.example", "ad.doubleclick.net")
        assert verdict.kind == PartyKind.THIRD
        assert verdict.site_org is None

    def test_unknown_tracker_is_unknown(self, directory):
        classifier = PartyClassifier(directory)
        verdict = classifier.classify("www.google.com", "mystery.example")
        assert verdict.kind == PartyKind.UNKNOWN
