"""Probe mesh: density bias, coverage gaps, fallbacks, measurements."""

import pytest

from repro.atlas.measurements import AtlasMeasurementService
from repro.atlas.probes import ProbeDensityModel, ProbeMesh
from repro.netsim.geography import default_registry
from repro.netsim.network import World

REG = default_registry()


@pytest.fixture(scope="module")
def mesh():
    return ProbeMesh(REG)


class TestDensityModel:
    def test_europe_denser_than_africa(self, mesh):
        assert len(mesh.probes_in("DE")) > len(mesh.probes_in("EG"))

    def test_default_gaps(self, mesh):
        for cc in ("QA", "JO", "RW", "UG"):
            assert not mesh.has_probes(cc)

    def test_probe_counts_by_tier(self):
        model = ProbeDensityModel()
        assert model.count_for("FR", "Europe") == 12
        assert model.count_for("JP", "Asia") == 6
        assert model.count_for("IN", "Asia") == 3
        assert model.count_for("EG", "Africa") == 1
        assert model.count_for("QA", "Asia") == 0

    def test_override_wins(self):
        model = ProbeDensityModel(overrides={"FR": 2})
        assert model.count_for("FR", "Europe") == 2

    def test_total_probes_positive(self, mesh):
        assert mesh.total_probes > 100

    def test_probe_ids_unique(self, mesh):
        ids = [p.probe_id for cc in REG.country_codes for p in mesh.probes_in(cc)]
        assert len(ids) == len(set(ids))


class TestSelection:
    def test_nearest_probe_in_country(self, mesh):
        probe = mesh.nearest_probe_to(REG.city("Marseille, FR"), "FR")
        assert probe.country_code == "FR"

    def test_nearest_probe_global(self, mesh):
        probe = mesh.nearest_probe_to(REG.city("Doha, QA"))
        assert probe is not None
        assert probe.country_code != "QA"

    def test_probe_for_country_local(self, mesh):
        probe, used = mesh.probe_for_country("FR")
        assert used == "FR"
        assert probe.country_code == "FR"

    def test_qatar_falls_back_to_neighbour(self, mesh):
        probe, used = mesh.probe_for_country("QA")
        assert used != "QA"
        # The paper used Saudi Arabia; our nearest mesh probe is in the
        # UAE or Saudi Arabia — either way a Gulf neighbour.
        assert used in ("SA", "AE")

    def test_jordan_falls_back_to_israel(self, mesh):
        probe, used = mesh.probe_for_country("JO")
        assert used == "IL"

    def test_no_probes_in_country_filter(self, mesh):
        assert mesh.nearest_probe_to(REG.city("Doha, QA"), "QA") is None


class TestMeasurementService:
    def test_traceroute_from_probe(self):
        world = World(geo=REG)
        allocation = world.ips.allocate(1, REG.city("Frankfurt, DE"), label="X/fra1")
        service = AtlasMeasurementService(world)
        probe = service.mesh.probes_in("DE")[0]
        result = service.traceroute(probe, str(allocation.address(1)))
        assert result.source_city.country_code == "DE"

    def test_probes_ignore_volunteer_blocking(self):
        from repro.netsim.traceroute import TracerouteBlocking

        world = World(
            geo=REG,
            traceroute_blocking=TracerouteBlocking(blocked_source_countries={"AU"}),
        )
        allocation = world.ips.allocate(1, REG.city("Frankfurt, DE"), label="X/fra1")
        service = AtlasMeasurementService(world)
        probe = service.mesh.probes_in("AU")[0]
        # Retry keys until the background unreachable rate lets one through.
        reached = any(
            service.traceroute(probe, str(allocation.address(1)), f"k{i}").reached
            for i in range(10)
        )
        assert reached

    def test_traceroute_from_country_fallback(self):
        world = World(geo=REG)
        allocation = world.ips.allocate(1, REG.city("Frankfurt, DE"), label="X/fra1")
        service = AtlasMeasurementService(world)
        result = service.traceroute_from_country("QA", str(allocation.address(1)))
        assert result is not None
        assert result.source_city.country_code in ("SA", "AE")

    def test_bulk_traceroute(self):
        world = World(geo=REG)
        targets = [
            str(world.ips.allocate(1, REG.city("Frankfurt, DE"), label=f"X/f{i}").address(1))
            for i in range(3)
        ]
        service = AtlasMeasurementService(world)
        probe = service.mesh.probes_in("FR")[0]
        results = service.bulk_traceroute(probe, targets)
        assert set(results) == set(targets)
