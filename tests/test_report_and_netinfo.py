"""Report renderers, the C2 gatherer, and source-trace selection."""

import pytest

from repro import build_source_traces
from repro.core.analysis.report import (
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_table1,
)
from repro.core.gamma.netinfo import NetworkInfoGatherer
from repro.netsim.geography import default_registry
from repro.netsim.network import World

from tests.test_servers_dns import make_deployment

REG = default_registry()


class TestRenderers:
    def test_fig3_contains_all_countries_and_summary(self, study_small):
        text = render_fig3(study_small.prevalence())
        for cc in study_small.datasets:
            assert f"\n{cc} " in text or text.startswith(f"{cc} ")
        assert "Pearson r=" in text

    def test_fig4_marks_empty_distributions(self, study_small):
        text = render_fig4(study_small.per_website())
        assert "CA" in text  # zero-tracker country renders with dashes
        assert "-" in text

    def test_fig5_lists_destinations(self, study_small):
        text = render_fig5(study_small.flows())
        assert "destination" in text
        assert "AU" in text  # NZ flows

    def test_fig6_names_hub(self, study_small):
        text = render_fig6(study_small.continents())
        assert "central hub:" in text

    def test_fig7_and_fig8(self, study_small):
        assert "hosting country" in render_fig7(study_small.hosting())
        fig8 = render_fig8(study_small.organizations())
        assert "Google" in fig8
        assert "organisations observed:" in fig8

    def test_table1_sorted_and_correlated(self, study_full):
        text = render_table1(study_full.policy())
        lines = text.splitlines()
        assert lines[3].startswith("AZ")  # strictest regime first
        assert "Spearman" in text


class TestNetworkInfoGatherer:
    @pytest.fixture()
    def world(self):
        from repro.netsim.asn import AutonomousSystem

        world = World(geo=REG)
        # make_deployment allocates under ASN 1000; register it so the
        # IPinfo-like service can annotate.
        world.asns.add(AutonomousSystem(1000, "ADORG-NET", "AdOrg", "US"))
        deployment = make_deployment(["FR"], org_name="AdOrg", domains=("adorg.net",),
                                     space=world.ips)
        world.deployments["AdOrg"] = deployment
        world.dns.register("adorg.net", deployment)
        return world

    def test_gather_resolves_and_annotates(self, world):
        from repro.geodb.ipinfo import IPInfoService

        gatherer = NetworkInfoGatherer(world, IPInfoService(world))
        result = gatherer.gather(["px.adorg.net", "missing.example"], REG.country("TH").capital)
        assert "px.adorg.net" in result.dns
        assert result.failures == {"missing.example": "nxdomain"}
        address = result.dns["px.adorg.net"]
        assert address in result.rdns
        assert result.metadata[address].org == "AdOrg"

    def test_gather_without_ipinfo_skips_metadata(self, world):
        gatherer = NetworkInfoGatherer(world)
        result = gatherer.gather(["px.adorg.net"], REG.country("TH").capital)
        assert result.metadata == {}

    def test_refused_recorded(self, world):
        from repro.netsim.servers import ServingPolicy

        deployment = world.deployments["AdOrg"]
        deployment.policy.restricted["FR"] = {"FR"}  # serve France only
        gatherer = NetworkInfoGatherer(world)
        result = gatherer.gather(["px.adorg.net"], REG.country("TH").capital)
        assert result.failures == {"px.adorg.net": "refused"}


class TestSourceTraceSelection:
    def test_volunteer_traces_preferred(self, scenario, study_small):
        volunteer = scenario.volunteers["NZ"]
        dataset = study_small.datasets["NZ"]
        traces = build_source_traces(scenario, volunteer, dataset)
        assert traces.origin == "volunteer"
        assert traces.city.key == volunteer.city.key
        assert traces.traces

    def test_optout_falls_back_to_atlas(self, scenario, study_small):
        volunteer = scenario.volunteers["EG"]
        dataset = study_small.datasets["EG"]
        traces = build_source_traces(scenario, volunteer, dataset)
        assert traces.origin.startswith("atlas:")
        # Every resolved address got a fallback trace.
        resolved = {a for m in dataset.websites.values() for a in m.dns.values()}
        assert set(traces.traces) == resolved

    def test_blocked_country_fallback_city(self, scenario, study_small):
        volunteer = scenario.volunteers["QA"]
        dataset = study_small.datasets["QA"]
        traces = build_source_traces(scenario, volunteer, dataset)
        assert traces.origin.startswith("atlas:")
        assert traces.city.country_code != "QA"  # the mesh gap forces a neighbour
