"""Sankey rendering and the recruitment/consent ledger."""

import pytest

from repro.core.analysis.sankey import Flow, flows_from_edges, render_sankey
from repro.recruitment import (
    ConsentRecord,
    Participant,
    RecruitmentChannel,
    build_recruitment_log,
)


class TestSankey:
    def _flows(self):
        return flows_from_edges([
            ("NZ", "AU", 120),
            ("PK", "FR", 60),
            ("PK", "DE", 40),
            ("RW", "KE", 55),
        ])

    def test_renders_nodes_and_ribbons(self):
        text = render_sankey(self._flows(), title="Flows")
        assert text.startswith("Flows")
        assert "SOURCES" in text and "DESTINATIONS" in text
        assert "NZ" in text and "AU" in text
        assert "==[ 120]==>" in text

    def test_sorted_by_volume(self):
        text = render_sankey(self._flows())
        lines = text.splitlines()
        pk_line = next(i for i, l in enumerate(lines) if l.lstrip().startswith("PK"))
        rw_line = next(i for i, l in enumerate(lines) if l.lstrip().startswith("RW"))
        assert pk_line < rw_line  # PK total 100 > RW 55

    def test_bars_proportional(self):
        text = render_sankey(self._flows(), width=20)
        for line in text.splitlines():
            if line.lstrip().startswith("NZ") and "#" in line:
                nz_bar = line.count("#")
            if line.lstrip().startswith("RW") and "#" in line:
                rw_bar = line.count("#")
        assert nz_bar > rw_bar

    def test_zero_weight_dropped(self):
        text = render_sankey([Flow("A", "B", 0)])
        assert "(no flows)" in text

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Flow("A", "B", -1)

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            render_sankey(self._flows(), width=2)

    def test_max_ribbons_cap(self):
        flows = [Flow(f"S{i}", "T", 10 + i) for i in range(30)]
        text = render_sankey(flows, max_ribbons=5)
        assert text.count("==>") == 5


class TestRecruitmentModels:
    def test_participant_validation(self):
        with pytest.raises(ValueError):
            Participant("P01", "carrier pigeon", ("TH",))
        with pytest.raises(ValueError):
            Participant("P01", RecruitmentChannel.SNOWBALL, ())

    def test_consent_active(self):
        assert ConsentRecord("P01").active
        assert not ConsentRecord("P01", withdrawn=True).active
        assert not ConsentRecord("P01", consented=False).active


class TestRecruitmentLog:
    def test_22_participants_cover_23_countries(self, scenario):
        log = build_recruitment_log(scenario.volunteers)
        assert len(log.active_participants) == 22  # the paper's count
        assert len(log.covered_countries) == 23
        multi = [p for p in log.active_participants if len(p.country_codes) > 1]
        assert len(multi) == 1 and set(multi[0].country_codes) == {"JO", "LB"}

    def test_consent_matches_volunteer_configuration(self, scenario):
        log = build_recruitment_log(scenario.volunteers)
        assert log.validate_against_volunteers(scenario.volunteers) == []

    def test_egypt_consent_excludes_probes(self, scenario):
        log = build_recruitment_log(scenario.volunteers)
        consent = log.consent_for_country("EG")
        assert "C3" in consent.opted_out_components
        assert consent.accommodations

    def test_validation_catches_missing_optout(self, scenario):
        log = build_recruitment_log(scenario.volunteers)
        pid = log.participant_for("EG").participant_id
        log.consents[pid] = ConsentRecord(pid)  # wipe the recorded opt-out
        problems = log.validate_against_volunteers(scenario.volunteers)
        assert any("EG" in p for p in problems)

    def test_withdrawal_removes_coverage(self, scenario):
        log = build_recruitment_log(scenario.volunteers)
        pid = log.participant_for("TH").participant_id
        log.consents[pid] = ConsentRecord(pid, withdrawn=True)
        assert "TH" not in log.covered_countries
        assert log.participant_for("TH") is None

    def test_channel_breakdown_covers_all_channels(self, scenario):
        log = build_recruitment_log(scenario.volunteers)
        breakdown = log.channel_breakdown()
        assert sum(breakdown.values()) == 22
        assert set(breakdown) <= set(RecruitmentChannel.ALL)
        assert breakdown.get(RecruitmentChannel.PERSONAL_NETWORK, 0) >= 5

    def test_deterministic(self, scenario):
        a = build_recruitment_log(scenario.volunteers)
        b = build_recruitment_log(scenario.volunteers)
        assert [p.channel for p in a.participants] == [p.channel for p in b.participants]
