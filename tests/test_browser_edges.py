"""Browser-engine edge cases: timeouts, render times, heavy pages."""

import pytest

from repro.browser.engine import BrowserConfig, BrowserEngine
from repro.netsim.geography import default_registry
from repro.netsim.network import World
from repro.web.catalog import SiteCatalog
from repro.web.website import CATEGORY_REGIONAL, Website

from tests.test_servers_dns import make_deployment

REG = default_registry()


@pytest.fixture()
def heavy_setup():
    world = World(geo=REG)
    # Hosted on the far side of the planet from the volunteer: render time
    # is dominated by dozens of sequential round trips.
    publisher = make_deployment(["NZ"], org_name="FarHost", domains=("farnews.co.nz",),
                                space=world.ips)
    world.deployments["FarHost"] = publisher
    world.dns.register("farnews.co.nz", publisher)
    world.dns.register("www.farnews.co.nz", publisher)
    site = Website(
        domain="www.farnews.co.nz", country_code="NZ", category=CATEGORY_REGIONAL,
        owner_org="Pub", complexity=3.0,
    )
    return world, SiteCatalog([site])


class TestRenderTiming:
    def test_render_time_recorded(self, heavy_setup):
        world, catalog = heavy_setup
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.0))
        record = engine.load("www.farnews.co.nz", REG.country("GB").capital)
        assert record.loaded
        assert record.render_time_s > 5  # UK -> NZ round trips are slow

    def test_hard_timeout_kills_pathological_loads(self, heavy_setup):
        world, catalog = heavy_setup
        engine = BrowserEngine(
            world, catalog,
            BrowserConfig(default_failure_rate=0.0, wait_time_s=1.0, hard_timeout_s=5.0),
        )
        record = engine.load("www.farnews.co.nz", REG.country("GB").capital)
        assert not record.loaded
        assert record.failure_reason == "hard_timeout"
        assert record.requests == []  # nothing recorded for a killed instance

    def test_nearby_vantage_faster_on_average(self, heavy_setup):
        # Per-visit render noise can dominate a single sample, so compare
        # averages across visits.
        world, catalog = heavy_setup
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.0))

        def mean_render(cc):
            times = [
                engine.load("www.farnews.co.nz", REG.country(cc).capital, f"v{i}").render_time_s
                for i in range(12)
            ]
            return sum(times) / len(times)

        assert mean_render("NZ") < mean_render("GB")

    def test_study_timeout_budget_suffices_normally(self, heavy_setup):
        """The paper's 180 s hard timeout should virtually never trigger
        for a normal page, even on a slow intercontinental path."""
        world, catalog = heavy_setup
        engine = BrowserEngine(world, catalog, BrowserConfig(default_failure_rate=0.0))
        for cc in ("GB", "US", "JP", "RW"):
            record = engine.load("www.farnews.co.nz", REG.country(cc).capital)
            assert record.loaded
            assert record.render_time_s < 180


class TestScenarioBrowserBehaviour:
    def test_hard_timeouts_are_rare_in_study(self, study_full):
        timeouts = sum(
            1
            for dataset in study_full.datasets.values()
            for measurement in dataset.websites.values()
            if measurement.failure_reason == "hard_timeout"
        )
        attempted = sum(d.attempted_count for d in study_full.datasets.values())
        assert timeouts / attempted < 0.02

    def test_failure_reasons_categorised(self, study_full):
        reasons = {
            measurement.failure_reason
            for dataset in study_full.datasets.values()
            for measurement in dataset.websites.values()
            if not measurement.loaded
        }
        assert reasons <= {"connection_failure", "hard_timeout", "dns_error"}
        assert "connection_failure" in reasons
