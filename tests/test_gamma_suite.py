"""Gamma suite end-to-end: one volunteer, checkpointing, accommodations."""

import pytest

from repro.browser.engine import BrowserConfig
from repro.core.gamma.checkpoint import Checkpoint
from repro.core.gamma.config import GammaConfig
from repro.core.gamma.probes import ProbeRunner
from repro.core.gamma.suite import GammaSuite
from repro.core.gamma.volunteer import Volunteer
from repro.core.targets.builder import TargetList
from repro.netsim.geography import default_registry
from repro.netsim.network import World
from repro.web.catalog import SiteCatalog
from repro.web.website import CATEGORY_GOVERNMENT, CATEGORY_REGIONAL, EmbeddedResource, Website

from tests.test_servers_dns import make_deployment

REG = default_registry()


@pytest.fixture()
def mini_setup():
    world = World(geo=REG)
    publisher = make_deployment(["TH"], org_name="ThaiHost", domains=("thaihost.net",),
                                space=world.ips)
    tracker = make_deployment(["FR"], org_name="AdOrg", domains=("adorg.net",), space=world.ips)
    google = make_deployment(["US"], org_name="Google",
                             domains=("googleapis.com", "google.com"), space=world.ips)
    for deployment in (publisher, tracker, google):
        world.deployments[deployment.org.name] = deployment
        for domain in deployment.org.domains:
            world.dns.register(domain, deployment)
    sites = []
    for i, category in [(0, CATEGORY_REGIONAL), (1, CATEGORY_REGIONAL), (2, CATEGORY_GOVERNMENT)]:
        domain = f"site{i}.co.th" if category == CATEGORY_REGIONAL else "health.go.th"
        world.dns.register(domain, publisher)
        sites.append(Website(
            domain=domain, country_code="TH", category=category, owner_org="Pub",
            embedded=[EmbeddedResource(host="px.adorg.net")],
        ))
    catalog = SiteCatalog(sites)
    targets = TargetList("TH", regional=["site0.co.th", "site1.co.th"],
                         government=["health.go.th"])
    volunteer = Volunteer(name="vol-TH", city=REG.country("TH").capital, ip="5.99.0.10")
    return world, catalog, targets, volunteer


def _suite(world, catalog, **config_overrides):
    return GammaSuite(
        world, catalog,
        GammaConfig.study_defaults(**config_overrides),
        browser_config=BrowserConfig(default_failure_rate=0.0),
    )


class TestGammaSuite:
    def test_full_run_records_everything(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        dataset = _suite(world, catalog).run(volunteer, targets)
        assert dataset.attempted_count == 3
        assert dataset.loaded_count == 3
        measurement = dataset.websites["site0.co.th"]
        assert "px.adorg.net" in measurement.requested_hosts
        assert measurement.dns["px.adorg.net"]
        assert measurement.traceroutes  # C3 ran
        assert measurement.category == CATEGORY_REGIONAL
        assert dataset.websites["health.go.th"].category == CATEGORY_GOVERNMENT

    def test_background_hosts_separated(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        dataset = _suite(world, catalog).run(volunteer, targets)
        measurement = dataset.websites["site0.co.th"]
        assert "update.googleapis.com" in measurement.background_hosts
        assert "update.googleapis.com" not in measurement.requested_hosts

    def test_rdns_recorded_for_resolved_ips(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        dataset = _suite(world, catalog).run(volunteer, targets)
        measurement = dataset.websites["site0.co.th"]
        for address in measurement.resolved_addresses:
            assert address in measurement.rdns  # value may be None (no PTR)

    def test_site_opt_out_respected(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        volunteer.opted_out_sites = {"site1.co.th"}
        dataset = _suite(world, catalog).run(volunteer, targets)
        assert "site1.co.th" not in dataset.websites
        assert dataset.attempted_count == 2

    def test_traceroute_opt_out(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        volunteer.traceroute_opt_out = True
        dataset = _suite(world, catalog).run(volunteer, targets)
        assert all(not m.traceroutes for m in dataset.websites.values())
        # C2 still ran.
        assert dataset.websites["site0.co.th"].dns

    def test_checkpoint_resume_skips_done(self, mini_setup, tmp_path):
        world, catalog, targets, volunteer = mini_setup
        checkpoint = Checkpoint(path=tmp_path / "ckpt.json")
        suite = _suite(world, catalog)
        # First run: only the first site, then "interrupt".
        partial_targets = TargetList("TH", regional=["site0.co.th"])
        suite.run(volunteer, partial_targets, checkpoint=checkpoint)
        assert checkpoint.is_done("site0.co.th")

        # Resume with the full list: already-done sites are not revisited.
        resumed = Checkpoint.load(tmp_path / "ckpt.json")
        visited = []
        dataset = suite.run(volunteer, targets, checkpoint=resumed,
                            progress=lambda url, m: visited.append(url))
        assert "site0.co.th" not in visited
        assert set(dataset.websites) == {"site0.co.th", "site1.co.th", "health.go.th"}

    def test_checkpoint_country_mismatch_raises(self, mini_setup, tmp_path):
        world, catalog, targets, volunteer = mini_setup
        checkpoint = Checkpoint(path=tmp_path / "ckpt.json")
        _suite(world, catalog).run(volunteer, targets, checkpoint=checkpoint)
        other = Volunteer(name="vol-JP", city=REG.country("JP").capital, ip="5.99.0.11")
        with pytest.raises(ValueError):
            _suite(world, catalog).run(other, targets, checkpoint=Checkpoint.load(tmp_path / "ckpt.json"))

    def test_browser_mismatch_rejected(self, mini_setup):
        world, catalog, _, _ = mini_setup
        with pytest.raises(ValueError):
            GammaSuite(world, catalog, GammaConfig.study_defaults(browser="firefox"),
                       browser_config=BrowserConfig(browser="chrome"))

    def test_windows_volunteer_uses_tracert(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        volunteer.os_name = "windows"
        dataset = _suite(world, catalog, os_name="windows").run(volunteer, targets)
        for measurement in dataset.websites.values():
            for trace in measurement.traceroutes.values():
                assert trace.tool == "tracert"

    def test_deterministic_runs(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        a = _suite(world, catalog).run(volunteer, targets)
        b = _suite(world, catalog).run(volunteer, targets)
        assert a.to_json() == b.to_json()


class TestProbeRunner:
    def test_ping(self, mini_setup):
        world, catalog, _, volunteer = mini_setup
        runner = ProbeRunner(world, "linux")
        target = next(iter(world.ips)).address(1)
        result = runner.ping(volunteer.city, str(target))
        assert result.sent == 4
        assert result.received > 0
        assert result.avg_rtt_ms > 0

    def test_ping_unknown_target(self, mini_setup):
        world, catalog, _, volunteer = mini_setup
        runner = ProbeRunner(world, "linux")
        assert runner.ping(volunteer.city, "8.8.8.8") is None


class TestCheckpoint:
    def test_save_without_path_raises(self):
        with pytest.raises(ValueError):
            Checkpoint().save()

    def test_load_missing_file_returns_fresh(self, tmp_path):
        checkpoint = Checkpoint.load(tmp_path / "absent.json")
        assert not checkpoint.completed
        assert checkpoint.partial_dataset() is None

    def test_mark_done_persists(self, tmp_path):
        checkpoint = Checkpoint(path=tmp_path / "c.json")
        checkpoint.mark_done("a.com")
        assert Checkpoint.load(tmp_path / "c.json").is_done("a.com")


class TestPageSaving:
    def test_save_pages_records_html_and_hardcoded_domains(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        dataset = _suite(world, catalog, save_pages=True).run(volunteer, targets)
        measurement = dataset.websites["site0.co.th"]
        assert measurement.page_html is not None
        assert "px.adorg.net" in measurement.page_html
        assert measurement.hardcoded_domains  # partner links, never requested
        for domain in measurement.hardcoded_domains:
            assert domain not in measurement.requested_hosts

    def test_hardcoded_domains_resolved_by_c2(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        dataset = _suite(world, catalog, save_pages=True).run(volunteer, targets)
        measurement = dataset.websites["site0.co.th"]
        # partner<N>.site0.co.th is under the publisher's registrable
        # domain, so GeoDNS resolves it; the external mirror does not.
        resolved = set(measurement.dns)
        assert any(d.startswith("partner") for d in resolved if d in measurement.hardcoded_domains)
        assert "mirror.archive-example.org" not in resolved

    def test_page_html_roundtrips_through_json(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        from repro.core.gamma.output import VolunteerDataset

        dataset = _suite(world, catalog, save_pages=True).run(volunteer, targets)
        back = VolunteerDataset.from_json(dataset.to_json())
        assert back.websites["site0.co.th"].page_html == dataset.websites["site0.co.th"].page_html

    def test_default_study_config_skips_pages(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        dataset = _suite(world, catalog).run(volunteer, targets)
        assert dataset.websites["site0.co.th"].page_html is None
        assert dataset.websites["site0.co.th"].hardcoded_domains == []


class TestParallelInstances:
    def test_single_instance_preserves_list_order(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        visited = []
        _suite(world, catalog).run(volunteer, targets,
                                   progress=lambda url, m: visited.append(url))
        assert visited == targets.all_sites

    def test_multiple_instances_interleave(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        visited = []
        _suite(world, catalog, instances=2).run(
            volunteer, targets, progress=lambda url, m: visited.append(url))
        # Stripes: [site0, health] and [site1]; interleaved order.
        assert visited == ["site0.co.th", "site1.co.th", "health.go.th"]
        assert set(visited) == set(targets.all_sites)

    def test_results_independent_of_instance_count(self, mini_setup):
        world, catalog, targets, volunteer = mini_setup
        serial = _suite(world, catalog).run(volunteer, targets)
        parallel = _suite(world, catalog, instances=3).run(volunteer, targets)
        assert serial.to_json() == parallel.to_json()
