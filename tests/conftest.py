"""Shared fixtures.

Scenario construction costs ~1 s and a full 23-country study ~10 s, so
both are session-scoped.  ``study_small`` covers a 5-country subset that
includes the interesting special cases: a tracker-local country (CA), a
foreign-heavy country (NZ), the Nairobi-edge countries (RW), a
traceroute-blocked country (QA, whose probe fallback crosses a border),
and the traceroute-opt-out volunteer (EG).
"""

from __future__ import annotations

import pytest

from repro import build_scenario, run_study
from repro.netsim.geography import default_registry
from repro.netsim.latency import LatencyModel

SMALL_COUNTRIES = ["CA", "NZ", "RW", "QA", "EG"]


@pytest.fixture(scope="session")
def registry():
    return default_registry()


@pytest.fixture(scope="session")
def latency_model():
    return LatencyModel()


@pytest.fixture(scope="session")
def scenario():
    return build_scenario()


@pytest.fixture(scope="session")
def study_small(scenario):
    return run_study(scenario, countries=SMALL_COUNTRIES)


@pytest.fixture(scope="session")
def study_full(scenario):
    return run_study(scenario)
