"""Latency model: physics compliance, determinism, penalties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.distance import city_distance_km, min_rtt_ms
from repro.netsim.geography import City, default_registry
from repro.netsim.latency import ACCESS_PENALTY_MS, LatencyModel

_REG = default_registry()
_ALL_CITIES = [city for country in _REG.countries for city in country.cities]
_city = st.sampled_from(_ALL_CITIES)


class TestLatencyModel:
    def test_inflation_symmetric(self, latency_model):
        a = _REG.city("Paris, FR")
        b = _REG.city("Tokyo, JP")
        assert latency_model.inflation(a, b) == latency_model.inflation(b, a)

    def test_inflation_within_range(self, latency_model):
        a = _REG.city("Paris, FR")
        b = _REG.city("Tokyo, JP")
        assert 1.25 <= latency_model.inflation(a, b) <= 1.85

    def test_bad_inflation_range_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel(inflation_range=(0.9, 1.2))
        with pytest.raises(ValueError):
            LatencyModel(inflation_range=(1.5, 1.2))

    def test_access_penalty_tiers(self, latency_model):
        us = _REG.city("New York, US")
        ug = _REG.city("Kampala, UG")
        assert latency_model.access_penalty(ug) > latency_model.access_penalty(us)

    def test_access_penalty_default_for_unknown(self, latency_model):
        city = City("Nowhere", "QQ", 0, 0)
        assert latency_model.access_penalty(city) == 6.0

    def test_rtt_deterministic_per_key(self, latency_model):
        a = _REG.city("London, GB")
        b = _REG.city("Nairobi, KE")
        assert latency_model.rtt_ms(a, b, "m1") == latency_model.rtt_ms(a, b, "m1")

    def test_rtt_varies_by_key(self, latency_model):
        a = _REG.city("London, GB")
        b = _REG.city("Nairobi, KE")
        samples = {latency_model.rtt_ms(a, b, f"m{i}") for i in range(10)}
        assert len(samples) > 1

    def test_typical_below_any_sample_plus_jitter(self, latency_model):
        a = _REG.city("London, GB")
        b = _REG.city("Nairobi, KE")
        typical = latency_model.typical_rtt_ms(a, b)
        sample = latency_model.rtt_ms(a, b, "k")
        assert typical <= sample <= typical + 2.5 + 1e-9

    def test_same_city_rtt_is_access_only(self, latency_model):
        a = _REG.city("Paris, FR")
        rtt = latency_model.typical_rtt_ms(a, a)
        assert rtt == pytest.approx(2 * latency_model.access_penalty(a))

    @settings(max_examples=60)
    @given(_city, _city)
    def test_never_violates_speed_of_light(self, a, b):
        model = LatencyModel()
        rtt = model.rtt_ms(a, b, "prop")
        assert rtt >= min_rtt_ms(city_distance_km(a, b))
        assert not model.sol_violates(a, b, rtt)

    @settings(max_examples=60)
    @given(_city, _city)
    def test_rtt_positive_and_bounded(self, a, b):
        model = LatencyModel()
        rtt = model.rtt_ms(a, b, "k")
        assert rtt > 0
        # Max plausible: half circumference at max inflation plus penalties.
        assert rtt < 2 * 20038 / 133 * 1.85 + 25

    def test_sol_violates_detects_impossible(self, latency_model):
        a = _REG.city("Paris, FR")
        b = _REG.city("Tokyo, JP")
        assert latency_model.sol_violates(a, b, 1.0)

    def test_access_penalty_table_sane(self):
        for cc, value in ACCESS_PENALTY_MS.items():
            assert 0 < value < 15, cc
