"""Oracle tests for direct traceroute normalisation.

The probe-layer fast path (:mod:`repro.core.gamma.normalize`) must be
*byte-identical* to the historical render → parse round trip for every
structured trace and both OS text formats — including unresponsive
``* * *`` hops, traces that never reach the destination, sub-millisecond
``<1 ms`` tracert cells, and the all-star traces a blocked source
produces.  The round trip itself stays in the tree as the oracle these
properties compare against (the same pattern ``FilterSet.match_naive``
serves for the indexed matcher).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.gamma.normalize import (
    normalize_direct,
    normalize_linux,
    normalize_windows,
)
from repro.core.gamma.osadapt import adapter_for
from repro.core.gamma.parsers import parse_traceroute_output
from repro.netsim.geography import default_registry
from repro.netsim.ip import IPSpace
from repro.netsim.latency import LatencyModel
from repro.netsim.traceroute import (
    TracerouteBlocking,
    TracerouteEngine,
    TracerouteHop,
    TracerouteResult,
    render_linux,
    render_windows,
)

REG = default_registry()
MODEL = LatencyModel()
ALL_CITIES = [city for country in REG.countries for city in country.cities]
_city = st.sampled_from(ALL_CITIES)

_octet = st.integers(min_value=0, max_value=255)
_dotted_quad = st.builds("{}.{}.{}.{}".format, _octet, _octet, _octet, _octet)
#: Sub-millisecond values force tracert's "<1 ms" cells; the probe-level
#: jitter (±0.4 ms) makes values near 1.0 straddle the threshold.
_rtt = st.floats(min_value=0.05, max_value=4000.0, allow_nan=False, allow_infinity=False)


@st.composite
def synthetic_results(draw):
    """Arbitrary structured traces, messier than the engine ever emits.

    ``reached`` is drawn independently of the hop list, so the oracle
    also pins down the parsers' *semantics*: Linux infers reachability
    from the final hop alone, tracert additionally requires the
    "Trace complete." trailer the renderer derives from the flag.
    """
    target = draw(_dotted_quad)
    count = draw(st.integers(min_value=0, max_value=12))
    hops = []
    for index in range(1, count + 1):
        kind = draw(st.sampled_from(["star", "transit", "target"]))
        if kind == "star":
            hops.append(TracerouteHop(index, None, None))
        else:
            address = target if kind == "target" else draw(_dotted_quad)
            hops.append(TracerouteHop(index, address, draw(_rtt)))
    return TracerouteResult(
        target=target,
        source_city=draw(_city),
        reached=draw(st.booleans()),
        hops=hops,
    )


def _engine_with_target(dest_city, unreachable_rate=0.0, blocked=frozenset()):
    space = IPSpace()
    allocation = space.allocate(9, dest_city, label="Org/x1")
    engine = TracerouteEngine(
        MODEL,
        space,
        TracerouteBlocking(
            blocked_source_countries=set(blocked), unreachable_rate=unreachable_rate
        ),
    )
    return engine, str(allocation.address(1))


def _assert_byte_identical(direct, roundtrip):
    assert direct == roundtrip
    # Equality on the dataclasses plus equality of the stored JSON bytes
    # — the form the dataset actually persists.
    assert json.dumps(direct.to_dict()) == json.dumps(roundtrip.to_dict())


class TestSyntheticOracle:
    @settings(max_examples=200, deadline=None)
    @given(synthetic_results())
    def test_linux_direct_equals_roundtrip(self, result):
        _assert_byte_identical(
            normalize_linux(result), parse_traceroute_output(render_linux(result))
        )

    @settings(max_examples=200, deadline=None)
    @given(synthetic_results())
    def test_windows_direct_equals_roundtrip(self, result):
        _assert_byte_identical(
            normalize_windows(result), parse_traceroute_output(render_windows(result))
        )


class TestEngineOracle:
    """The same equivalence over traces the engine actually produces."""

    @settings(max_examples=40, deadline=None)
    @given(_city, _city, st.integers(min_value=0, max_value=9),
           st.sampled_from(["linux", "windows", "darwin"]))
    def test_adapter_direct_equals_roundtrip(self, src, dst, key, os_name):
        # 30% unreachable: the sample mixes reached traces with failed
        # ones ending in the trailing all-star tail.
        engine, target = _engine_with_target(dst, unreachable_rate=0.3)
        adapter = adapter_for(os_name)
        direct = adapter.normalized_traceroute(engine, src, target, f"k{key}")
        roundtrip = parse_traceroute_output(
            adapter.raw_traceroute(engine, src, target, f"k{key}")
        )
        _assert_byte_identical(direct, roundtrip)

    def test_blocked_source_all_star_trace(self, registry):
        src = registry.city("Doha, QA")
        dst = registry.city("Auckland, NZ")
        engine, target = _engine_with_target(dst, blocked={"QA"})
        for os_name in ("linux", "windows"):
            adapter = adapter_for(os_name)
            direct = adapter.normalized_traceroute(engine, src, target, "blocked")
            roundtrip = parse_traceroute_output(
                adapter.raw_traceroute(engine, src, target, "blocked")
            )
            _assert_byte_identical(direct, roundtrip)
            assert not direct.reached
            assert all(hop.address is None for hop in direct.hops)


class TestNormalizeDirect:
    def test_dispatches_by_render_format(self, registry):
        src = registry.city("Toronto, CA")
        dst = registry.city("Paris, FR")
        engine, target = _engine_with_target(dst)
        result = engine.trace(src, target, "fmt")
        assert normalize_direct(result, "linux").tool == "traceroute"
        assert normalize_direct(result, "windows").tool == "tracert"

    def test_rejects_unknown_format(self, registry):
        src = registry.city("Toronto, CA")
        dst = registry.city("Paris, FR")
        engine, target = _engine_with_target(dst)
        result = engine.trace(src, target, "fmt")
        with pytest.raises(ValueError, match="unknown render format"):
            normalize_direct(result, "solaris")
