"""Seed robustness: the method's guarantees hold under different seeds.

The calibration is content-keyed (site embeddings derive from domain
names), but the geolocation-database error pattern and volunteer
opt-outs derive from the scenario seed.  The paper-shape results and the
precision guarantee must not depend on one lucky seed.
"""

import pytest

from repro import build_scenario, run_study
from repro.core.geoloc.validation import validate_against_truth

COUNTRIES = ["CA", "NZ", "RW", "PK", "LK"]


@pytest.fixture(scope="module", params=["alt-seed-1", "alt-seed-2"])
def alt_outcome(request):
    scenario = build_scenario(seed=request.param)
    return scenario, run_study(scenario, countries=COUNTRIES)


class TestSeedRobustness:
    def test_precision_holds(self, alt_outcome):
        scenario, outcome = alt_outcome
        counts = validate_against_truth(scenario.world, outcome.geolocations)
        assert counts.precision == 1.0

    def test_canada_stays_clean(self, alt_outcome):
        _scenario, outcome = alt_outcome
        rows = {r.country_code: r.combined_pct for r in outcome.prevalence().per_country()}
        assert rows["CA"] == 0.0

    def test_ordering_of_extremes_stable(self, alt_outcome):
        _scenario, outcome = alt_outcome
        rows = {r.country_code: r.combined_pct for r in outcome.prevalence().per_country()}
        assert rows["NZ"] > 60 and rows["RW"] > 40 and rows["PK"] > 40
        assert rows["LK"] < 25

    def test_pakistan_india_flow_at_most_marginal(self, alt_outcome):
        """Serving policy guarantees no PK client is ever *served* from
        India; under other seeds a foreign server can still be
        mis-geolocated *to* India (the paper's "residual inaccuracies"
        caveat), so the measured PK->IN flow must stay marginal rather
        than exactly zero."""
        scenario, outcome = alt_outcome
        flows = outcome.flows().destinations_of("PK")
        total = sum(flows.values())
        assert flows.get("IN", 0) <= max(1, 0.1 * total)
        # And any such flow really is a geolocation error, not a serve:
        for site in outcome.result_for("PK").sites:
            for tracker in site.trackers:
                if tracker.destination_country == "IN":
                    assert scenario.world.ips.true_country(tracker.address) != "IN"
