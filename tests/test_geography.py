"""Geographic registry: countries, cities, continents."""

import pytest

from repro.netsim.geography import (
    MEASUREMENT_COUNTRIES,
    City,
    Continent,
    Country,
    GeoRegistry,
    default_registry,
)


class TestDefaultRegistry:
    def test_contains_all_measurement_countries(self, registry):
        for code in MEASUREMENT_COUNTRIES:
            assert registry.has_country(code)

    def test_23_measurement_countries(self):
        assert len(MEASUREMENT_COUNTRIES) == 23

    def test_continent_split(self, registry):
        by_continent = {}
        for code in MEASUREMENT_COUNTRIES:
            by_continent.setdefault(registry.continent_of(code), []).append(code)
        # Paper section 3.4: 4 African, 2 European, 2 North American,
        # 2 Oceanian, 1 South American measurement countries.
        assert len(by_continent[Continent.AFRICA]) == 4
        assert len(by_continent[Continent.EUROPE]) == 2
        assert len(by_continent[Continent.NORTH_AMERICA]) == 2
        assert len(by_continent[Continent.OCEANIA]) == 2
        assert len(by_continent[Continent.SOUTH_AMERICA]) == 1

    def test_destination_countries_present(self, registry):
        for code in ("FR", "DE", "KE", "MY", "SG", "HK", "OM", "NL", "IL", "BG", "FI", "BR"):
            assert registry.has_country(code)

    def test_every_country_has_capital(self, registry):
        for country in registry.countries:
            assert isinstance(country.capital, City)

    def test_coordinates_in_range(self, registry):
        for country in registry.countries:
            for city in country.cities:
                assert -90 <= city.lat <= 90
                assert -180 <= city.lon <= 180

    def test_every_country_has_gov_tld(self, registry):
        for code in MEASUREMENT_COUNTRIES:
            assert registry.country(code).gov_tlds

    def test_argentina_has_two_gov_tlds(self, registry):
        assert set(registry.country("AR").gov_tlds) == {".gob.ar", ".gov.ar"}

    def test_unknown_country_raises(self, registry):
        with pytest.raises(KeyError):
            registry.country("XX")

    def test_city_lookup(self, registry):
        city = registry.city("Nairobi, KE")
        assert city.country_code == "KE"

    def test_find_city_by_name(self, registry):
        assert registry.find_city("Kigali").country_code == "RW"

    def test_find_ambiguous_requires_country(self, registry):
        # No ambiguous names in the default registry, but the constrained
        # lookup must still work.
        assert registry.find_city("Paris", "FR").name == "Paris"

    def test_shared_instance(self):
        assert default_registry() is default_registry()


class TestGeoRegistry:
    def test_duplicate_country_rejected(self):
        c = Country("ZZ", "Test", Continent.ASIA, (City("T", "ZZ", 0, 0),))
        registry = GeoRegistry([c])
        with pytest.raises(ValueError):
            registry.add(c)

    def test_cities_in(self, registry):
        cities = registry.cities_in("US")
        assert {c.name for c in cities} == {"New York", "Ashburn", "San Jose"}

    def test_city_key_format(self):
        assert City("Lagos", "NG", 6.5, 3.4).key == "Lagos, NG"
