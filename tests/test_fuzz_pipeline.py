"""Fuzzing the geolocation pipeline over randomly-generated mini-worlds.

Property under test: across arbitrary PoP placements, vantage points and
database error rates, a "verified non-local" verdict is NEVER issued for
a server whose ground-truth location is inside the measurement country —
the precision property the paper's method is built around.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atlas.measurements import AtlasMeasurementService
from repro.core.gamma.output import VolunteerDataset, WebsiteMeasurement
from repro.core.gamma.parsers import parse_linux_traceroute
from repro.core.geoloc.latency_stats import default_stats_chain
from repro.core.geoloc.pipeline import GeolocationPipeline, SourceTraces
from repro.geodb.errors import GeoErrorModel
from repro.geodb.ipmap import IPMapService
from repro.netsim.geography import MEASUREMENT_COUNTRIES, default_registry
from repro.netsim.network import World
from repro.netsim.servers import Deployment, Organization, PoP
from repro.netsim.traceroute import render_linux

REG = default_registry()
ALL_COUNTRIES = [c.code for c in REG.countries]

_world_spec = st.fixed_dictionaries({
    "vantage_cc": st.sampled_from(sorted(MEASUREMENT_COUNTRIES)),
    "pop_ccs": st.lists(st.sampled_from(ALL_COUNTRIES), min_size=1, max_size=5, unique=True),
    "wrong_country_rate": st.floats(min_value=0.0, max_value=0.6),
    "missing_rate": st.floats(min_value=0.0, max_value=0.2),
    "seed": st.integers(min_value=0, max_value=10_000),
})


def _build_world(spec):
    world = World(geo=REG)
    asys = world.asns.register("FUZZ-NET", "FuzzOrg", "US")
    pops = []
    for cc in spec["pop_ccs"]:
        city = REG.country(cc).capital
        allocation = world.ips.allocate(asys.asn, city, label=f"FuzzOrg/{cc.lower()}1")
        pops.append(PoP("FuzzOrg", f"{cc.lower()}1", city, allocation, asys.asn))
    org = Organization("FuzzOrg", "US", ("fuzzorg.net",), is_tracker=True)
    world.add_deployment(Deployment(org=org, pops=pops))
    return world


@settings(max_examples=40, deadline=None)
@given(_world_spec)
def test_verified_nonlocal_never_truly_local(spec):
    world = _build_world(spec)
    vantage = REG.country(spec["vantage_cc"]).capital

    hosts = [f"h{i}.fuzzorg.net" for i in range(4)]
    dns = {}
    for host in hosts:
        try:
            dns[host] = world.dns.resolve_address(host, vantage)
        except LookupError:
            continue
    dataset = VolunteerDataset(spec["vantage_cc"], vantage.key, "1.2.3.4", "linux", "chrome")
    measurement = WebsiteMeasurement(
        url="site.example", category="regional", loaded=True,
        requested_hosts=list(dns), dns=dict(dns),
        rdns={addr: world.rdns.lookup(addr) for addr in dns.values()},
    )
    dataset.add(measurement)

    traces = {}
    for address in dns.values():
        result = world.traceroute.trace(vantage, address, f"fuzz:{spec['seed']}")
        traces[address] = parse_linux_traceroute(render_linux(result))
    source = SourceTraces(city=vantage, traces=traces)

    pipeline = GeolocationPipeline(
        ipmap=IPMapService(world, GeoErrorModel(
            missing_rate=spec["missing_rate"],
            wrong_city_rate=0.05,
            wrong_country_rate=spec["wrong_country_rate"],
            seed=f"fuzz:{spec['seed']}",
        )),
        atlas=AtlasMeasurementService(world),
        stats=default_stats_chain(world.latency, REG),
        latency=world.latency,
    )
    geolocation = pipeline.classify_dataset(dataset, source)

    for verdict in geolocation.verdicts.values():
        truth = world.ips.true_country(verdict.address)
        if verdict.is_verified_nonlocal:
            assert truth != spec["vantage_cc"], (
                f"precision violated: {verdict.address} truly in {truth}, "
                f"claimed {verdict.claimed_country}, vantage {spec['vantage_cc']}"
            )
        # Funnel must stay internally consistent on every input.
        funnel = geolocation.funnel
        assert funnel.total_hosts == funnel.local + funnel.nonlocal_candidates + funnel.unlocated
        assert funnel.after_rdns == funnel.verified_nonlocal
