"""HAR 1.2 export/import and page-source synthesis/scraping."""

import json

import pytest

from repro.browser.har import NetworkRequest, PageLoadRecord, RequestStatus
from repro.browser.harformat import from_har, to_har, to_har_json
from repro.web.html import extract_domains_from_html, render_page_html
from repro.web.website import CATEGORY_REGIONAL, EmbeddedResource, ResourceKind, Website


@pytest.fixture()
def record():
    return PageLoadRecord(
        url="www.siamnews.co.th", country_code="TH", browser="chrome",
        loaded=True, render_time_s=4.2,
        requests=[
            NetworkRequest("www.siamnews.co.th", "document", RequestStatus.OK, "5.0.0.1"),
            NetworkRequest("px.adorg.net", "script", RequestStatus.OK, "5.0.1.1"),
            NetworkRequest("broken.example", "script", RequestStatus.DNS_ERROR),
            NetworkRequest("update.googleapis.com", "background", RequestStatus.OK,
                           "5.0.2.1", background=True),
        ],
    )


class TestHARExport:
    def test_valid_har_structure(self, record):
        har = to_har(record)
        assert har["log"]["version"] == "1.2"
        assert har["log"]["pages"][0]["id"] == "www.siamnews.co.th"
        assert len(har["log"]["entries"]) == 4

    def test_entries_carry_urls_and_ips(self, record):
        har = to_har(record)
        first = har["log"]["entries"][0]
        assert first["request"]["url"] == "https://www.siamnews.co.th/"
        assert first["serverIPAddress"] == "5.0.0.1"
        assert first["response"]["status"] == 200

    def test_failed_requests_have_zero_status(self, record):
        har = to_har(record)
        failed = har["log"]["entries"][2]
        assert failed["response"]["status"] == 0
        assert failed["response"]["statusText"] == "dns_error"

    def test_page_timings_from_render_time(self, record):
        har = to_har(record)
        assert har["log"]["pages"][0]["pageTimings"]["onLoad"] == pytest.approx(4200.0)

    def test_json_serialisable(self, record):
        payload = json.loads(to_har_json(record))
        assert payload["log"]["creator"]["name"] == "gamma-repro"

    def test_roundtrip(self, record):
        back = from_har(to_har(record))
        assert back.url == record.url
        assert back.country_code == "TH"
        assert back.render_time_s == pytest.approx(record.render_time_s)
        assert [(r.host, r.status, r.background) for r in back.requests] == [
            (r.host, r.status, r.background) for r in record.requests
        ]
        assert back.host_addresses() == record.host_addresses()

    def test_rejects_non_har(self):
        with pytest.raises(ValueError):
            from_har({"log": {"version": "1.1"}})
        with pytest.raises(ValueError):
            from_har({"log": {"version": "1.2", "pages": []}})

    def test_accepts_foreign_har_without_private_fields(self, record):
        har = to_har(record)
        for entry in har["log"]["entries"]:
            entry.pop("_status"), entry.pop("_kind"), entry.pop("_background")
        back = from_har(json.dumps(har))
        assert back.requests[0].status == RequestStatus.OK
        assert back.requests[2].status == RequestStatus.DNS_ERROR


class TestPageHTML:
    @pytest.fixture()
    def site(self):
        return Website(
            domain="www.siamnews.co.th", country_code="TH",
            category=CATEGORY_REGIONAL, owner_org="Siam Publishing",
            embedded=[
                EmbeddedResource(host="px.adorg.net", kind=ResourceKind.SCRIPT),
                EmbeddedResource(host="img.adorg.net", kind=ResourceKind.IMAGE),
                EmbeddedResource(host="au-only.adorg.net", countries=("AU",)),
            ],
        )

    def test_renders_fired_resources_as_tags(self, site):
        html = render_page_html(site, country_code="TH")
        assert '<script src="https://px.adorg.net/tag.js"></script>' in html
        assert '<img src="https://img.adorg.net/px.gif"' in html

    def test_geo_gated_resource_absent(self, site):
        th = render_page_html(site, country_code="TH")
        au = render_page_html(site, country_code="AU")
        assert "au-only.adorg.net" not in th
        assert "au-only.adorg.net" in au

    def test_contains_hardcoded_partner_links(self, site):
        html = render_page_html(site, country_code="TH")
        assert "mirror.archive-example.org" in html

    def test_deterministic(self, site):
        assert render_page_html(site, "v1", "TH") == render_page_html(site, "v1", "TH")

    def test_extraction_finds_requested_and_hardcoded(self, site):
        html = render_page_html(site, country_code="TH")
        domains = extract_domains_from_html(html)
        assert "px.adorg.net" in domains
        assert f"static.{site.domain}" in domains
        assert "mirror.archive-example.org" in domains  # hardcoded only

    def test_extraction_ignores_file_names(self):
        domains = extract_domains_from_html("<script src='app.min.js'></script>")
        assert "app.min.js" not in domains

    def test_extraction_handles_bare_hostnames(self):
        domains = extract_domains_from_html("<p>contact us at support.example.co.uk</p>")
        assert "support.example.co.uk" in domains
