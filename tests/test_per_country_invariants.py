"""Per-country invariants over the full study, parametrised."""

import pytest

from repro.netsim.geography import MEASUREMENT_COUNTRIES


@pytest.mark.parametrize("cc", sorted(MEASUREMENT_COUNTRIES))
class TestEveryCountry:
    def test_dataset_and_geolocation_present(self, study_full, cc):
        assert cc in study_full.datasets
        assert cc in study_full.geolocations
        assert study_full.result_for(cc).country_code == cc

    def test_loaded_sites_have_dns(self, study_full, cc):
        dataset = study_full.datasets[cc]
        for measurement in dataset.websites.values():
            if measurement.loaded:
                assert measurement.requested_hosts
                assert measurement.dns
            else:
                assert measurement.failure_reason

    def test_trackers_reference_resolved_hosts(self, study_full, cc):
        result = study_full.result_for(cc)
        dataset = study_full.datasets[cc]
        for site in result.sites:
            measurement = dataset.websites[site.url]
            for tracker in site.trackers:
                assert tracker.host in measurement.requested_hosts
                assert measurement.dns[tracker.host] == tracker.address
                assert tracker.destination_country != cc

    def test_funnel_consistent(self, study_full, cc):
        funnel = study_full.geolocations[cc].funnel
        assert funnel.total_hosts == (
            funnel.unlocated + funnel.local + funnel.nonlocal_candidates
        )
        assert funnel.after_rdns == funnel.verified_nonlocal >= 0

    def test_prevalence_in_range(self, study_full, cc):
        row = next(r for r in study_full.prevalence().per_country() if r.country_code == cc)
        for value in (row.regional_pct, row.government_pct, row.combined_pct):
            assert 0.0 <= value <= 100.0
        assert row.regional_count > 0 and row.government_count > 0
