"""Ranking providers, overlap, government discovery, target-list builder."""

import pytest

from repro.core.targets.builder import TargetList, TargetListBuilder
from repro.core.targets.government import TrancoLikeList, government_sites_for, matches_gov_tld
from repro.core.targets.rankings import (
    CatalogRankingProvider,
    CoverageError,
    RankedSite,
    mean_overlap,
    overlap_percentage,
)
from repro.netsim.geography import default_registry
from repro.web.catalog import SiteCatalog
from repro.web.website import CATEGORY_GOVERNMENT, CATEGORY_REGIONAL, Website

REG = default_registry()


def _site(domain, cc, category=CATEGORY_REGIONAL, popularity=0.0, **kwargs):
    return Website(domain=domain, country_code=cc, category=category,
                   owner_org="Pub", popularity=popularity, **kwargs)


@pytest.fixture()
def th_catalog():
    sites = [_site(f"site{i}.co.th", "TH", popularity=100.0 - i) for i in range(12)]
    sites += [
        _site("adult.co.th", "TH", popularity=99.5, adult=True),
        _site("banned.co.th", "TH", popularity=99.4, banned=True),
    ]
    sites += [_site(f"ministry{i}.go.th", "TH", CATEGORY_GOVERNMENT, popularity=10.0 - i)
              for i in range(6)]
    return SiteCatalog(sites)


class TestRankingProviders:
    def test_top_sites_ordered_by_popularity(self, th_catalog):
        provider = CatalogRankingProvider("sw", th_catalog, noise=0.0)
        top = provider.top_sites("TH", 3)
        assert [s.domain for s in top] == ["site0.co.th", "adult.co.th", "banned.co.th"]
        assert [s.rank for s in top] == [1, 2, 3]

    def test_missing_country_raises(self, th_catalog):
        provider = CatalogRankingProvider("sw", th_catalog, missing_countries={"TH"})
        assert not provider.covers("TH")
        with pytest.raises(CoverageError):
            provider.top_sites("TH")

    def test_unknown_country_raises(self, th_catalog):
        provider = CatalogRankingProvider("sw", th_catalog)
        with pytest.raises(CoverageError):
            provider.top_sites("ZZ")

    def test_noise_changes_order(self, th_catalog):
        clean = CatalogRankingProvider("a", th_catalog, noise=0.0)
        noisy = CatalogRankingProvider("b", th_catalog, noise=50.0)
        assert [s.domain for s in clean.top_sites("TH", 10)] != [
            s.domain for s in noisy.top_sites("TH", 10)
        ]

    def test_score_cap_flattens_giants(self, th_catalog):
        th_catalog.add(_site("giant.example", "TH", popularity=10000))
        # Uncapped, the giant's popularity puts it unconditionally first.
        uncapped = CatalogRankingProvider("d", th_catalog, noise=0.0)
        assert uncapped.top_sites("TH", 1)[0].domain == "giant.example"
        # Capped, the giant saturates to the same score as strong locals
        # and loses its guaranteed top spot (ties break by name).
        capped = CatalogRankingProvider("c", th_catalog, noise=0.0, score_cap=95.0)
        assert capped.top_sites("TH", 1)[0].domain != "giant.example"

    def test_score_cap_validation(self, th_catalog):
        with pytest.raises(ValueError):
            CatalogRankingProvider("x", th_catalog, score_cap=0.0)

    def test_negative_noise_rejected(self, th_catalog):
        with pytest.raises(ValueError):
            CatalogRankingProvider("x", th_catalog, noise=-1)


class TestOverlap:
    def test_full_overlap(self):
        a = [RankedSite("x.com", 1), RankedSite("y.com", 2)]
        assert overlap_percentage(a, list(reversed(a))) == 100.0

    def test_zero_overlap(self):
        a = [RankedSite("x.com", 1)]
        b = [RankedSite("y.com", 1)]
        assert overlap_percentage(a, b) == 0.0

    def test_empty_reference(self):
        assert overlap_percentage([], [RankedSite("x.com", 1)]) == 0.0

    def test_mean_overlap_restricted_to_shared_coverage(self, th_catalog):
        a = CatalogRankingProvider("a", th_catalog)
        b = CatalogRankingProvider("b", th_catalog, missing_countries={"TH"})
        assert mean_overlap(a, b, ["TH"]) is None
        assert mean_overlap(a, a, ["TH"]) == 100.0


class TestGovernmentDiscovery:
    def test_matches_gov_tld(self):
        th = REG.country("TH")
        assert matches_gov_tld("health.go.th", th)
        assert not matches_gov_tld("news.co.th", th)

    def test_argentina_multiple_tlds(self):
        ar = REG.country("AR")
        assert matches_gov_tld("x.gob.ar", ar)
        assert matches_gov_tld("y.gov.ar", ar)

    def test_tranco_filter(self, th_catalog):
        tranco = TrancoLikeList.from_catalog(th_catalog, coverage=1.0)
        gov = tranco.filtered_by_tlds([".go.th"])
        assert len(gov) == 6
        assert all(d.endswith(".go.th") for d in gov)

    def test_tranco_coverage_truncates(self, th_catalog):
        full = TrancoLikeList.from_catalog(th_catalog, coverage=1.0)
        partial = TrancoLikeList.from_catalog(th_catalog, coverage=0.5)
        assert len(partial) < len(full)

    def test_tranco_bad_coverage(self, th_catalog):
        with pytest.raises(ValueError):
            TrancoLikeList.from_catalog(th_catalog, coverage=0.0)

    def test_topup_path(self, th_catalog):
        # Low Tranco coverage drops government tail sites; the builder
        # tops up from the "search scrape" (catalogue query).
        tranco = TrancoLikeList.from_catalog(th_catalog, coverage=0.3)
        gov = government_sites_for(REG.country("TH"), tranco, th_catalog, quota=6)
        assert len(gov) == 6

    def test_quota_respected(self, th_catalog):
        tranco = TrancoLikeList.from_catalog(th_catalog)
        gov = government_sites_for(REG.country("TH"), tranco, th_catalog, quota=3)
        assert len(gov) == 3

    def test_bad_quota(self, th_catalog):
        tranco = TrancoLikeList.from_catalog(th_catalog)
        with pytest.raises(ValueError):
            government_sites_for(REG.country("TH"), tranco, th_catalog, quota=0)


class TestTargetListBuilder:
    def _builder(self, catalog, primary_missing=()):
        primary = CatalogRankingProvider("similarweb", catalog, missing_countries=primary_missing)
        secondary = CatalogRankingProvider("semrush", catalog, noise=5.0)
        tranco = TrancoLikeList.from_catalog(catalog)
        return TargetListBuilder(REG, catalog, primary, secondary, tranco,
                                 regional_quota=8, government_quota=4)

    def test_adult_and_banned_excluded(self, th_catalog):
        targets = self._builder(th_catalog).build("TH")
        assert "adult.co.th" not in targets.regional
        assert "banned.co.th" not in targets.regional
        assert len(targets.regional) == 8  # back-filled

    def test_provider_fallback(self, th_catalog):
        targets = self._builder(th_catalog, primary_missing={"TH"}).build("TH")
        assert targets.ranking_source == "semrush"

    def test_primary_used_when_covered(self, th_catalog):
        assert self._builder(th_catalog).build("TH").ranking_source == "similarweb"

    def test_no_provider_raises(self, th_catalog):
        primary = CatalogRankingProvider("a", th_catalog, missing_countries={"TH"})
        secondary = CatalogRankingProvider("b", th_catalog, missing_countries={"TH"})
        tranco = TrancoLikeList.from_catalog(th_catalog)
        builder = TargetListBuilder(REG, th_catalog, primary, secondary, tranco)
        with pytest.raises(CoverageError):
            builder.build("TH")

    def test_without_removes_opt_outs(self, th_catalog):
        targets = self._builder(th_catalog).build("TH")
        trimmed = targets.without(targets.regional[:2])
        assert len(trimmed) == len(targets) - 2
        assert trimmed.country_code == "TH"

    def test_common_sites_thresholds(self):
        targets = {
            "A": TargetList("A", regional=["shared.com", "a.com"]),
            "B": TargetList("B", regional=["shared.com", "b.com"]),
            "C": TargetList("C", regional=["shared.com", "b.com"]),
        }
        assert TargetListBuilder.common_sites(targets, 1.0) == ["shared.com"]
        assert TargetListBuilder.common_sites(targets, 2 / 3) == ["b.com", "shared.com"]

    def test_common_sites_bad_threshold(self):
        with pytest.raises(ValueError):
            TargetListBuilder.common_sites({"A": TargetList("A")}, 0.0)
