"""Longitudinal what-if: a data-localization law takes effect.

Usage::

    python examples/regulation_whatif.py [CC] [adoption]

The paper notes its Jordanian data was recorded the day before Jordan's
Data Protection Law became effective — a natural baseline for a
follow-up measurement.  This example simulates that follow-up: tracker
operators deploy in-country residency PoPs with a given adoption rate,
and the study is re-run to quantify the change a future crawl would see.
"""

import sys

from repro import LongitudinalStudy, build_scenario
from repro.core.analysis.report import render_table


def main() -> None:
    country = sys.argv[1] if len(sys.argv) > 1 else "JO"
    adoption = float(sys.argv[2]) if len(sys.argv) > 2 else 0.7

    scenario = build_scenario(seed="regulation-whatif")
    study = LongitudinalStudy(scenario)

    foreign = study.foreign_serving_orgs(country)
    print(f"{len(foreign)} tracker organisations currently serve {country} "
          f"from abroad, e.g. {foreign[:6]}")
    print(f"\nEnacting localization with {adoption:.0%} industry adoption...")

    report = study.measure_effect(country, adoption=adoption)
    print(f"{len(report.localized_orgs)} organisations deployed residency PoPs: "
          f"{report.localized_orgs[:8]}{'...' if len(report.localized_orgs) > 8 else ''}")

    print()
    print(render_table(
        ["measurement", "% sites with non-local trackers"],
        [
            ("baseline (paper's snapshot)", f"{report.before_pct:.1f}"),
            ("after the law takes effect", f"{report.after_pct:.1f}"),
            ("reduction", f"{report.reduction_points:.1f} points"),
        ],
        title=f"Longitudinal effect of data localization in {country}",
    ))
    print("\nAs the paper's discussion predicts, only operators willing to "
          "invest in in-country nodes move; the remaining flows stay "
          "cross-border regardless of the law.")


if __name__ == "__main__":
    main()
