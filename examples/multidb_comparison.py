"""Why constraints beat databases (the §4.1 motivation, hands-on).

Usage::

    python examples/multidb_comparison.py

Builds five geolocation databases with realistic (and partly correlated)
error profiles over the same world, shows how often they disagree, and
scores three "is this server foreign?" strategies against ground truth:
trusting one database, majority-voting five, and the paper's
multi-constraint pipeline.
"""

from repro import build_scenario, run_study
from repro.core.analysis.report import render_table
from repro.core.geoloc.validation import validate_against_truth
from repro.geodb.multidb import GeoDatabaseComparison, default_database_suite


def main() -> None:
    scenario = build_scenario()
    suite = default_database_suite(scenario.world)
    comparison = GeoDatabaseComparison(suite)
    addresses = [str(a.address(1)) for a in list(scenario.world.ips)[:300]]

    accuracy_rows = []
    for name, db in sorted(suite.items()):
        correct = sum(1 for a in addresses if db.is_correct(a))
        accuracy_rows.append((name, f"{correct / len(addresses):.1%}"))
    print(render_table(
        ["database", "country-level accuracy"], accuracy_rows,
        title=f"Five databases over {len(addresses)} served addresses",
    ))
    print(f"\nmean pairwise agreement: {comparison.mean_agreement(addresses):.1%}; "
          f"{len(comparison.disagreeing_addresses(addresses))} addresses disputed "
          "— 'studies have shown they are not fully reliable' (§4.1)\n")

    print("Running the study for five countries to score strategies...")
    outcome = run_study(scenario, countries=["CA", "NZ", "RW", "AZ", "GB"])

    raw_fp = vote_fp = 0
    raw_tp = vote_tp = 0
    for cc, geolocation in outcome.geolocations.items():
        for verdict in geolocation.verdicts.values():
            truth = scenario.world.ips.true_country(verdict.address)
            if truth is None:
                continue
            foreign = truth != cc
            claim = suite["ipmap-like"].locate(verdict.address)
            if claim is not None and claim.country_code != cc:
                raw_tp += foreign
                raw_fp += not foreign
            vote = comparison.majority_is_nonlocal(verdict.address, cc)
            if vote:
                vote_tp += foreign
                vote_fp += not foreign
    counts = validate_against_truth(scenario.world, outcome.geolocations)

    def precision(tp, fp):
        return f"{tp / (tp + fp):.4f}" if tp + fp else "n/a"

    print(render_table(
        ["strategy", "foreign-detection precision", "false positives"],
        [
            ("single database, raw", precision(raw_tp, raw_fp), raw_fp),
            ("5-database majority vote", precision(vote_tp, vote_fp), vote_fp),
            ("constraint pipeline (the paper)",
             f"{counts.precision:.4f}", counts.false_positive),
        ],
        title="Strategies for calling a server non-local",
    ))
    print("\nThe constraint pipeline pays for its traceroutes with zero "
          "false 'foreign' verdicts — the property the whole study rests on.")


if __name__ == "__main__":
    main()
