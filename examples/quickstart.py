"""Quickstart: run the study for a few countries and print headline results.

Usage::

    python examples/quickstart.py [CC [CC ...]]

Builds the calibrated world, runs Gamma from each listed country's
volunteer vantage point (default: New Zealand, Canada, Rwanda), applies
the multi-constraint geolocation pipeline, and prints the prevalence of
non-local trackers plus where they are hosted.
"""

import sys

from repro import build_scenario, run_study
from repro.core.analysis.report import render_table


def main() -> None:
    countries = sys.argv[1:] or ["NZ", "CA", "RW"]
    print(f"Building the 23-country scenario (studying {', '.join(countries)})...")
    scenario = build_scenario()
    outcome = run_study(scenario, countries=countries)

    rows = []
    for row in outcome.prevalence().per_country():
        rows.append((
            row.country_code,
            f"{row.regional_pct:.1f}",
            f"{row.government_pct:.1f}",
            f"{row.combined_pct:.1f}",
            outcome.source_trace_origins[row.country_code],
        ))
    print()
    print(render_table(
        ["country", "% T_reg non-local", "% T_gov non-local", "combined", "source traces"],
        rows,
        title="Prevalence of non-local trackers (cf. paper Figure 3 / Table 1)",
    ))

    print()
    flows = outcome.flows()
    shares = flows.destination_shares()
    print(render_table(
        ["destination", "% of tracked sites"],
        [(cc, f"{pct:.1f}") for cc, pct in list(shares.items())[:8]],
        title="Where the trackers are hosted (cf. paper Figure 5)",
    ))

    funnel = outcome.funnel()
    print(
        f"\nGeolocation funnel: {funnel.total_hosts} domain observations -> "
        f"{funnel.nonlocal_candidates} non-local -> "
        f"{funnel.after_latency_constraints} after latency constraints -> "
        f"{funnel.after_rdns} verified (cf. paper section 5)"
    )


if __name__ == "__main__":
    main()
