"""Compare tracker exposure across browsers (Gamma's C1 capability).

Usage::

    python examples/browser_comparison.py [CC]

Gamma "supports running measurements across major browsers, including
Chrome, Firefox and privacy-focused Brave" (section 3).  This example
loads one country's regional targets with all three and shows what each
browser exposes: Chrome adds webdriver background requests, Brave's
shields block list-matched trackers outright — echoing the paper's user
recommendation to adopt privacy-oriented browsers.
"""

import sys

from repro import build_scenario
from repro.browser.engine import BrowserConfig, BrowserEngine, BrowserKind
from repro.core.analysis.report import render_table
from repro.core.trackers.filterlist import FilterList


def main() -> None:
    country = sys.argv[1] if len(sys.argv) > 1 else "NZ"
    scenario = build_scenario()
    volunteer = scenario.volunteers[country]
    urls = scenario.targets[country].regional[:30]

    # Brave's shields block what EasyList-like rules match.
    blocklist = set()
    for rule in FilterList.parse("easylist", scenario.filter_list_texts["easylist"]).rules:
        if rule.domain:
            blocklist.add(rule.domain)

    rows = []
    per_browser_trackers = {}
    for browser in BrowserKind.ALL:
        engine = BrowserEngine(
            scenario.world, scenario.catalog,
            BrowserConfig(browser=browser, default_failure_rate=0.0,
                          blocklist=blocklist if browser == BrowserKind.BRAVE else set()),
        )
        tracker_requests = 0
        blocked = 0
        background = 0
        for url in urls:
            record = engine.load(url, volunteer.city)
            background += sum(1 for r in record.requests if r.background)
            blocked += sum(1 for r in record.requests if r.status == "blocked")
            for host in record.requested_hosts(include_background=False):
                if scenario.identifier.classify(host, country).is_tracker:
                    tracker_requests += 1
        per_browser_trackers[browser] = tracker_requests
        rows.append((browser, tracker_requests, blocked, background))

    print(render_table(
        ["browser", "tracker hosts loaded", "requests blocked", "webdriver noise"],
        rows,
        title=f"Tracker exposure across browsers ({len(urls)} {country} sites)",
    ))
    reduction = 1 - per_browser_trackers[BrowserKind.BRAVE] / max(
        1, per_browser_trackers[BrowserKind.CHROME]
    )
    print(f"\nBrave's shields removed {reduction:.0%} of tracker loads — the "
          "paper's recommendation for users in section 7.")


if __name__ == "__main__":
    main()
