"""Full 23-country reproduction: render every figure and table.

Usage::

    python examples/tracking_flow_atlas.py

Runs the complete study (about 10-15 seconds) and prints the text
renderings of Figures 3-8 and Table 1 — the whole evaluation section of
the paper in one sweep.
"""

from repro import build_scenario, run_study
from repro.core.analysis.sankey import flows_from_edges, render_sankey
from repro.core.analysis.report import (
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_table1,
)


def main() -> None:
    print("Building the world and running all 23 volunteers "
          "(this takes ~10 seconds)...\n")
    scenario = build_scenario()
    outcome = run_study(scenario)

    continent_flows = flows_from_edges([
        (src, dst, n) for (src, dst), n in outcome.continents().matrix().items()
    ])
    sections = [
        render_fig3(outcome.prevalence()),
        render_fig4(outcome.per_website()),
        render_fig5(outcome.flows()),
        render_fig6(outcome.continents()),
        render_sankey(continent_flows, title="Figure 6 (alluvial view): continental flows"),
        render_fig7(outcome.hosting()),
        render_fig8(outcome.organizations()),
        render_table1(outcome.policy()),
    ]
    print(("\n\n" + "=" * 72 + "\n\n").join(sections))

    funnel = outcome.funnel()
    first_party = outcome.first_party()
    print("\n\n" + "=" * 72)
    print("Section 5 funnel:",
          f"{funnel.total_hosts} observations -> {funnel.nonlocal_candidates} non-local ->",
          f"{funnel.after_latency_constraints} after latency -> {funnel.after_rdns} verified")
    print("Section 6.7:",
          f"{len(first_party.first_party_sites())} of {first_party.sites_with_nonlocal()}",
          "tracked sites embed first-party non-local trackers",
          f"({first_party.owner_breakdown()})")
    print("Atlas fallbacks:",
          {cc: origin for cc, origin in outcome.source_trace_origins.items()
           if origin != "volunteer"})


if __name__ == "__main__":
    main()
