"""Data-localization audit for one country, with constraint evidence.

Usage::

    python examples/audit_data_localization.py [CC]

The paper recommends that policymakers run technical audits with
granular detection of overseas data flows (section 7).  This example is
that audit: for one country it lists every verified non-local tracker,
the claimed hosting location, and the evidence trail each geolocation
constraint produced — then relates the findings to the country's
data-localization regime.
"""

import sys
from collections import Counter

from repro import build_scenario, run_study
from repro.core.analysis.report import render_table


def main() -> None:
    country = sys.argv[1] if len(sys.argv) > 1 else "PK"
    scenario = build_scenario()
    outcome = run_study(scenario, countries=[country])
    geolocation = outcome.geolocations[country]
    result = outcome.result_for(country)

    record = scenario.policy.get(country)
    print(f"=== Data-localization audit: "
          f"{scenario.world.geo.country(country).name} ===")
    status = "enacted" if record.enacted else "not yet in effect"
    note = f" — {record.note}" if record.note and record.note != status else ""
    print(f"Policy regime: {record.policy_type} ({status}){note}")
    print(f"Source traces: {outcome.source_trace_origins[country]}\n")

    # Funnel summary for the audited country.
    funnel = geolocation.funnel
    print(f"Domain observations: {funnel.total_hosts}  "
          f"local: {funnel.local}  non-local candidates: {funnel.nonlocal_candidates}")
    print(f"Discarded by constraint — source: {funnel.discarded_source}, "
          f"destination: {funnel.discarded_destination}, reverse-DNS: {funnel.discarded_rdns}")
    print(f"Verified non-local: {funnel.verified_nonlocal}\n")

    # Where does this country's data go, and through whom?
    destinations = Counter()
    organisations = Counter()
    for site in result.sites:
        for tracker in site.trackers:
            destinations[tracker.destination_country] += 1
            if tracker.org_name:
                organisations[tracker.org_name] += 1
    print(render_table(
        ["destination", "tracker observations"],
        destinations.most_common(8),
        title="Destination countries of verified cross-border tracker flows",
    ))
    print()
    print(render_table(
        ["organisation", "tracker observations"],
        organisations.most_common(8),
        title="Organisations receiving the data",
    ))

    # Evidence trail for a few verified servers.
    print("\nEvidence trail (first 3 verified non-local servers):")
    shown = 0
    for verdict in geolocation.verdicts.values():
        if not verdict.is_verified_nonlocal or shown >= 3:
            continue
        shown += 1
        print(f"\n  {verdict.address} -> claimed {verdict.claim.city_key}")
        print(f"    hosts: {', '.join(verdict.hosts[:4])}")
        for check in verdict.checks:
            detail = ""
            if check.observed_ms is not None:
                detail = f" (observed {check.observed_ms:.1f} ms"
                if check.expected_ms is not None:
                    detail += f", bound {check.expected_ms:.1f} ms"
                detail += ")"
            print(f"    [{check.constraint}] {check.status}: {check.reason}{detail}")

    sites_with = sum(1 for s in result.sites if s.has_nonlocal_tracker)
    print(f"\nBottom line: {sites_with}/{len(result.sites)} audited sites "
          f"({100 * sites_with / len(result.sites):.1f}%) transmit data to "
          f"trackers outside {country}.")


if __name__ == "__main__":
    main()
