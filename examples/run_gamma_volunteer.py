"""Run Gamma standalone, the way a study volunteer would.

Usage::

    python examples/run_gamma_volunteer.py [CC] [--resume]

Demonstrates the measurement suite itself (section 3 of the paper):
target-list delivery, the C1/C2/C3 components, checkpoint/resume after
an "interruption", OS-specific traceroute normalisation, and the JSON
dataset the volunteer would mail back.
"""

import json
import sys
import tempfile
from pathlib import Path

from repro import GammaConfig, GammaSuite, build_scenario
from repro.core.gamma.checkpoint import Checkpoint


def main() -> None:
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    country = args[0] if args else "TH"

    scenario = build_scenario()
    volunteer = scenario.volunteers[country]
    targets = scenario.targets[country].without(sorted(volunteer.opted_out_sites))
    print(f"Volunteer {volunteer.name} in {volunteer.city.key} "
          f"({volunteer.os_name}, IP {volunteer.ip})")
    print(f"Target list: {len(targets.regional)} regional + "
          f"{len(targets.government)} government sites")
    if volunteer.opted_out_sites:
        print(f"Volunteer opted out of {len(volunteer.opted_out_sites)} site(s)")
    if volunteer.traceroute_opt_out:
        print("Volunteer opted out of traceroute probes (C3 disabled)")

    suite = GammaSuite(
        scenario.world,
        scenario.catalog,
        GammaConfig.study_defaults(os_name=volunteer.os_name),
        browser_config=scenario.browser_config,
        ipinfo=scenario.ipinfo,
    )

    checkpoint_path = Path(tempfile.gettempdir()) / f"gamma-{country}.ckpt.json"
    checkpoint_path.unlink(missing_ok=True)
    checkpoint = Checkpoint.load(checkpoint_path)

    # First session: measure the first 10 sites, then simulate the
    # volunteer stopping for the day.
    first_batch = targets.without(targets.all_sites[10:])
    print("\n-- session 1 (interrupted after 10 sites) --")
    suite.run(volunteer, first_batch, checkpoint=checkpoint,
              progress=lambda url, m: print(f"  {url}: "
                                            f"{'ok' if m.loaded else m.failure_reason}, "
                                            f"{len(m.requested_hosts)} hosts, "
                                            f"{len(m.traceroutes)} traceroutes"))

    # Second session: Gamma resumes exactly where it stopped.
    print("\n-- session 2 (resumed) --")
    resumed = Checkpoint.load(checkpoint_path)
    revisited = []
    dataset = suite.run(volunteer, targets, checkpoint=resumed,
                        progress=lambda url, m: revisited.append(url))
    print(f"  resumed run visited {len(revisited)} remaining sites "
          f"(skipped {len(resumed.completed) - len(revisited)} already-done)")

    counts = dataset.traceroute_counts()
    print(f"\nDataset: {dataset.loaded_count}/{dataset.attempted_count} sites loaded "
          f"({dataset.load_success_pct():.0f}%), "
          f"{counts['attempted']} traceroutes ({counts['reached']} reached)")

    sample_url = next(u for u, m in dataset.websites.items() if m.traceroutes)
    sample = dataset.websites[sample_url]
    ip, trace = next(iter(sample.traceroutes.items()))
    print(f"\nNormalised traceroute record for {ip} "
          f"(produced by '{trace.tool}' on {volunteer.os_name}):")
    print(json.dumps(trace.to_dict(), indent=2)[:600], "...")

    out_path = Path(tempfile.gettempdir()) / f"gamma-{country}-dataset.json"
    out_path.write_text(dataset.to_json(indent=2))
    print(f"\nFull dataset written to {out_path} "
          f"({out_path.stat().st_size // 1024} KiB)")
    checkpoint_path.unlink(missing_ok=True)


if __name__ == "__main__":
    main()
