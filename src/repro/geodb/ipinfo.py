"""IPinfo-like metadata service: ASN, organisation, and network name.

Unlike city geolocation, AS-level attribution from registry data is
near-perfect in practice, so this service returns ground truth.  The
analysis stage uses it for the AS-level lookups of section 6.5 (which
trackers ride on AWS/Google Cloud infrastructure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.netsim.network import World

__all__ = ["IPMetadata", "IPInfoService"]


@dataclass(frozen=True)
class IPMetadata:
    """Registry-derived facts about one address."""

    address: str
    asn: int
    as_name: str
    org: str
    country_code: str
    is_cloud_hosted: bool


class IPInfoService:
    """ASN / organisation / network lookups over the served space."""

    def __init__(self, world: World):
        self._world = world

    def lookup(self, address: str) -> Optional[IPMetadata]:
        allocation = self._world.ips.lookup(address)
        if allocation is None:
            return None
        asn = allocation.asn
        if not self._world.asns.has(asn):
            return None
        asys = self._world.asns.get(asn)
        return IPMetadata(
            address=address,
            asn=asn,
            as_name=asys.name,
            org=asys.org,
            country_code=allocation.city.country_code,
            is_cloud_hosted=asys.is_cloud,
        )

    def asn_of(self, address: str) -> Optional[int]:
        meta = self.lookup(address)
        return meta.asn if meta else None

    def hosted_on_cloud(self, address: str) -> bool:
        meta = self.lookup(address)
        return bool(meta and meta.is_cloud_hosted)
