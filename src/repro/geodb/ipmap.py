"""RIPE-IPmap-like geolocation service.

Returns a city-level location claim for any address in the served space.
Claims are usually the ground truth but are corrupted per the configured
:class:`~repro.geodb.errors.GeoErrorModel` — the whole reason the paper's
pipeline layers latency and reverse-DNS constraints on top of the
database.  Wrong-country claims are biased toward *other deployment
cities of the same operator*, reproducing the confusion patterns the
paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geodb.errors import GeoErrorKind, GeoErrorModel
from repro.netsim.geography import City
from repro.netsim.network import World

__all__ = ["GeoClaim", "IPMapService"]


@dataclass(frozen=True)
class GeoClaim:
    """One database answer for one address."""

    address: str
    city: City
    source: str = "ipmap"

    @property
    def country_code(self) -> str:
        return self.city.country_code

    @property
    def city_key(self) -> str:
        return self.city.key


class IPMapService:
    """City-level IP geolocation with injected, deterministic error."""

    def __init__(self, world: World, error_model: Optional[GeoErrorModel] = None):
        self._world = world
        self._errors = error_model or GeoErrorModel()
        self._cache: Dict[str, Optional[GeoClaim]] = {}

    @property
    def error_model(self) -> GeoErrorModel:
        return self._errors

    def locate(self, address: str) -> Optional[GeoClaim]:
        """The database's location claim for *address* (``None`` = no data)."""
        if address not in self._cache:
            self._cache[address] = self._locate_uncached(address)
        return self._cache[address]

    def _locate_uncached(self, address: str) -> Optional[GeoClaim]:
        true_city = self._world.ips.true_city(address)
        if true_city is None:
            return None
        kind = self._errors.classify(address)
        if kind == GeoErrorKind.MISSING:
            return None
        if kind == GeoErrorKind.WRONG_CITY:
            wrong = self._errors.pick_wrong_city_same_country(address, true_city, self._world.geo)
            return GeoClaim(address, wrong or true_city)
        if kind == GeoErrorKind.WRONG_COUNTRY:
            wrong = self._errors.pick_wrong_city(
                address, true_city, self._world.geo, self._sibling_cities(address, true_city)
            )
            return GeoClaim(address, wrong)
        return GeoClaim(address, true_city)

    def _sibling_cities(self, address: str, true_city: City) -> List[City]:
        """Other PoP cities of the operator owning *address*."""
        allocation = self._world.ips.lookup(address)
        if allocation is None or not allocation.label:
            return []
        org_name = allocation.label.split("/", 1)[0]
        deployment = self._world.deployments.get(org_name)
        if deployment is None:
            return []
        return [pop.city for pop in deployment.pops]

    def is_correct(self, address: str) -> Optional[bool]:
        """Ground-truth check (test oracle): is the claim's country right?"""
        claim = self.locate(address)
        truth = self._world.ips.true_country(address)
        if claim is None or truth is None:
            return None
        return claim.country_code == truth
