"""Geolocation databases (IPmap-like, IPinfo-like) with seeded error."""

from repro.geodb.errors import GeoErrorKind, GeoErrorModel
from repro.geodb.ipinfo import IPInfoService, IPMetadata
from repro.geodb.ipmap import GeoClaim, IPMapService
from repro.geodb.multidb import GeoDatabaseComparison, default_database_suite

__all__ = [
    "GeoClaim",
    "GeoErrorKind",
    "GeoErrorModel",
    "IPInfoService",
    "IPMapService",
    "IPMetadata",
    "GeoDatabaseComparison",
    "default_database_suite",
]
