"""Geolocation-database error injection.

Geo databases err in characteristic ways: an address is mapped to another
city of the *same operator* (the database learned a stale or aggregated
footprint — the paper's Google-in-Fujairah-really-in-Amsterdam example),
to another city in the same country, or to nothing at all.  The error
model decides, deterministically per address, which fate applies, so the
multi-constraint pipeline's precision can be measured against ground
truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.determinism import stable_rng
from repro.netsim.geography import City, GeoRegistry

__all__ = ["GeoErrorModel", "GeoErrorKind"]


class GeoErrorKind:
    NONE = "none"
    MISSING = "missing"
    WRONG_CITY = "wrong_city"  # right country, wrong city
    WRONG_COUNTRY = "wrong_country"

    ALL = (NONE, MISSING, WRONG_CITY, WRONG_COUNTRY)


@dataclass
class GeoErrorModel:
    """Per-database error rates (fractions of all addresses)."""

    missing_rate: float = 0.03
    wrong_city_rate: float = 0.05
    wrong_country_rate: float = 0.09
    seed: str = "ipmap"

    def __post_init__(self) -> None:
        total = self.missing_rate + self.wrong_city_rate + self.wrong_country_rate
        if not 0.0 <= total <= 1.0:
            raise ValueError("error rates must be non-negative and sum to <= 1")

    def classify(self, address: str) -> str:
        """Which error (if any) this database makes for *address*."""
        draw = stable_rng(self.seed, "kind", address).random()
        if draw < self.missing_rate:
            return GeoErrorKind.MISSING
        draw -= self.missing_rate
        if draw < self.wrong_city_rate:
            return GeoErrorKind.WRONG_CITY
        draw -= self.wrong_city_rate
        if draw < self.wrong_country_rate:
            return GeoErrorKind.WRONG_COUNTRY
        return GeoErrorKind.NONE

    def pick_wrong_city(
        self,
        address: str,
        true_city: City,
        registry: GeoRegistry,
        sibling_cities: Optional[List[City]] = None,
    ) -> City:
        """Choose the erroneous location reported for *address*.

        Prefers *sibling_cities* (other deployment sites of the same
        operator) because that is how real databases get confused; falls
        back to an arbitrary other city in the registry.
        """
        rng = stable_rng(self.seed, "city", address)
        siblings = [c for c in (sibling_cities or []) if c.key != true_city.key]
        if siblings and rng.random() < 0.85:
            return rng.choice(sorted(siblings, key=lambda c: c.key))
        pool = [
            city
            for country in registry.countries
            for city in country.cities
            if city.key != true_city.key
        ]
        return rng.choice(sorted(pool, key=lambda c: c.key))

    def pick_wrong_city_same_country(
        self, address: str, true_city: City, registry: GeoRegistry
    ) -> Optional[City]:
        """A different city within the true country, if one exists."""
        candidates = [
            city
            for city in registry.cities_in(true_city.country_code)
            if city.key != true_city.key
        ]
        if not candidates:
            return None
        rng = stable_rng(self.seed, "samecountry", address)
        return rng.choice(sorted(candidates, key=lambda c: c.key))
