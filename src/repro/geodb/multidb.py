"""Multiple geolocation databases and their disagreement.

Section 4.1 motivates the constraint pipeline by noting that the usual
databases (MaxMind, NetAcuity, DB-IP, IPinfo, RIPE IPmap) "are not fully
reliable" and disagree with each other.  This module instantiates a
suite of databases with distinct, realistic error profiles, measures
their pairwise agreement, and implements the naive alternative the paper
implicitly rejects — majority voting — so benchmarks can show why
latency/rDNS constraints are worth the extra measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.geodb.errors import GeoErrorModel
from repro.geodb.ipmap import IPMapService
from repro.netsim.network import World

__all__ = ["default_database_suite", "GeoDatabaseComparison"]

#: Error profiles loosely ordered by the reliability literature the paper
#: cites: IPmap best, the commercial databases worse in different ways.
_PROFILES: Dict[str, GeoErrorModel] = {
    "ipmap-like": GeoErrorModel(missing_rate=0.03, wrong_city_rate=0.05, wrong_country_rate=0.09),
    "maxmind-like": GeoErrorModel(missing_rate=0.02, wrong_city_rate=0.12, wrong_country_rate=0.15),
    "netacuity-like": GeoErrorModel(missing_rate=0.04, wrong_city_rate=0.09, wrong_country_rate=0.12),
    "dbip-like": GeoErrorModel(missing_rate=0.10, wrong_city_rate=0.10, wrong_country_rate=0.17),
    "ipinfo-like": GeoErrorModel(missing_rate=0.03, wrong_city_rate=0.08, wrong_country_rate=0.13),
}


#: Databases that share upstream data sources (WHOIS scrapes, router
#: hostname corpora) err on the *same* addresses — the correlated
#: confusion that makes naive majority voting unsafe.
_SHARED_UPSTREAM = frozenset({"maxmind-like", "netacuity-like", "dbip-like"})


def default_database_suite(world: World, seed: str = "multidb") -> Dict[str, IPMapService]:
    """Five databases over the same world.

    The three commercial-style databases share an error seed (correlated
    mistakes, different error rates); the IPmap-like and IPinfo-like
    services err independently.
    """
    suite: Dict[str, IPMapService] = {}
    for name, profile in _PROFILES.items():
        error_seed = f"{seed}:commercial" if name in _SHARED_UPSTREAM else f"{seed}:{name}"
        model = GeoErrorModel(
            missing_rate=profile.missing_rate,
            wrong_city_rate=profile.wrong_city_rate,
            wrong_country_rate=profile.wrong_country_rate,
            seed=error_seed,
        )
        suite[name] = IPMapService(world, model)
    return suite


@dataclass(frozen=True)
class _Vote:
    country: Optional[str]
    city_key: Optional[str]


class GeoDatabaseComparison:
    """Cross-database agreement and majority voting."""

    def __init__(self, databases: Dict[str, IPMapService]):
        if len(databases) < 2:
            raise ValueError("comparison needs at least two databases")
        self._databases = dict(databases)

    @property
    def names(self) -> List[str]:
        return sorted(self._databases)

    def _vote(self, name: str, address: str) -> _Vote:
        claim = self._databases[name].locate(address)
        if claim is None:
            return _Vote(None, None)
        return _Vote(claim.country_code, claim.city_key)

    def country_agreement(self, addresses: Iterable[str]) -> Dict[Tuple[str, str], float]:
        """Pairwise country-level agreement rate over *addresses*.

        Pairs where either database has no record are skipped, mirroring
        how comparison studies handle coverage differences.
        """
        names = self.names
        hits: Dict[Tuple[str, str], int] = {}
        totals: Dict[Tuple[str, str], int] = {}
        for address in addresses:
            votes = {name: self._vote(name, address) for name in names}
            for i, a in enumerate(names):
                for b in names[i + 1:]:
                    if votes[a].country is None or votes[b].country is None:
                        continue
                    key = (a, b)
                    totals[key] = totals.get(key, 0) + 1
                    if votes[a].country == votes[b].country:
                        hits[key] = hits.get(key, 0) + 1
        return {
            key: hits.get(key, 0) / total
            for key, total in totals.items()
            if total > 0
        }

    def mean_agreement(self, addresses: Iterable[str]) -> Optional[float]:
        rates = list(self.country_agreement(addresses).values())
        if not rates:
            return None
        return sum(rates) / len(rates)

    def majority_country(self, address: str) -> Optional[str]:
        """Country claimed by the most databases (ties -> alphabetical)."""
        counts: Dict[str, int] = {}
        for name in self.names:
            vote = self._vote(name, address)
            if vote.country is not None:
                counts[vote.country] = counts.get(vote.country, 0) + 1
        if not counts:
            return None
        return min(counts, key=lambda cc: (-counts[cc], cc))

    def majority_is_nonlocal(self, address: str, measurement_country: str) -> Optional[bool]:
        """The constraint-free strategy: trust the database majority."""
        majority = self.majority_country(address)
        if majority is None:
            return None
        return majority != measurement_country

    def disagreeing_addresses(self, addresses: Iterable[str]) -> List[str]:
        """Addresses on which the databases do not all name one country."""
        result = []
        for address in addresses:
            countries = {
                vote.country
                for vote in (self._vote(name, address) for name in self.names)
                if vote.country is not None
            }
            if len(countries) > 1:
                result.append(address)
        return result
