"""Visit-to-visit variability measurement (the paper's recommendation).

Section 7 (limitations): "each website was visited once; ... We recommend
that future studies perform multiple runs to mitigate the effects of
such variability."  This module implements that recommendation: visit
each target several times, compare the tracker sets each visit surfaced,
and quantify stability (Jaccard similarity) plus the coverage gained by
unioning multiple visits over using a single one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.browser.engine import BrowserEngine
from repro.core.analysis.stats import mean
from repro.core.trackers.identify import TrackerIdentifier
from repro.worldgen.builder import Scenario

__all__ = ["SiteStability", "VisitVariabilityStudy"]


@dataclass(frozen=True)
class SiteStability:
    """Multi-visit tracker observations for one site from one country."""

    url: str
    country_code: str
    visits: int
    #: Tracker hosts per *successful* visit; failed loads are excluded
    #: (connectivity noise is not tracker variability).
    per_visit_hosts: Tuple[Tuple[str, ...], ...]
    failed_visits: int = 0

    @property
    def union_hosts(self) -> Set[str]:
        return {host for visit in self.per_visit_hosts for host in visit}

    @property
    def intersection_hosts(self) -> Set[str]:
        if not self.per_visit_hosts:
            return set()
        sets = [set(v) for v in self.per_visit_hosts]
        result = sets[0]
        for s in sets[1:]:
            result &= s
        return result

    @property
    def jaccard(self) -> Optional[float]:
        """Similarity of the visit tracker sets (1.0 = perfectly stable)."""
        union = self.union_hosts
        if not union:
            return None
        return len(self.intersection_hosts) / len(union)

    @property
    def single_visit_coverage(self) -> Optional[float]:
        """Average share of the union a single visit observes."""
        union = self.union_hosts
        if not union:
            return None
        return mean([len(set(v)) / len(union) for v in self.per_visit_hosts])


class VisitVariabilityStudy:
    """Run N visits per site and quantify what one visit misses."""

    def __init__(self, scenario: Scenario, identifier: Optional[TrackerIdentifier] = None):
        self._scenario = scenario
        self._identifier = identifier or scenario.identifier
        self._engine = BrowserEngine(
            scenario.world, scenario.catalog, scenario.browser_config
        )

    def measure_site(self, url: str, country_code: str, visits: int = 3) -> SiteStability:
        if visits < 1:
            raise ValueError("need at least one visit")
        volunteer = self._scenario.volunteers[country_code]
        per_visit: List[Tuple[str, ...]] = []
        failed = 0
        for i in range(visits):
            record = self._engine.load(url, volunteer.city, visit_key=f"visit-{i + 1}")
            if not record.loaded:
                failed += 1
                continue
            trackers = tuple(sorted(
                host
                for host in record.requested_hosts(include_background=False)
                if self._identifier.classify(host, country_code).is_tracker
            ))
            per_visit.append(trackers)
        return SiteStability(
            url=url, country_code=country_code, visits=visits,
            per_visit_hosts=tuple(per_visit), failed_visits=failed,
        )

    def measure_country(
        self,
        country_code: str,
        visits: int = 3,
        limit: Optional[int] = None,
    ) -> List[SiteStability]:
        targets = self._scenario.targets[country_code].all_sites
        if limit is not None:
            targets = targets[:limit]
        return [self.measure_site(url, country_code, visits) for url in targets]

    def country_summary(
        self, country_code: str, visits: int = 3, limit: Optional[int] = None
    ) -> Dict[str, float]:
        """Aggregate stability for one country.

        Returns mean Jaccard, mean single-visit coverage, and the share of
        tracker hosts a one-visit crawl (the paper's setup) would miss.
        """
        stabilities = self.measure_country(country_code, visits, limit)
        jaccards = [s.jaccard for s in stabilities if s.jaccard is not None]
        coverages = [s.single_visit_coverage for s in stabilities
                     if s.single_visit_coverage is not None]
        if not jaccards:
            return {"mean_jaccard": 1.0, "mean_single_visit_coverage": 1.0, "missed_share": 0.0}
        coverage = mean(coverages)
        return {
            "mean_jaccard": mean(jaccards),
            "mean_single_visit_coverage": coverage,
            "missed_share": 1.0 - coverage,
        }
