"""Reproduction of *Where in the World Are My Trackers?* (IMC 2025).

Public API:

* :func:`repro.build_scenario` — construct the calibrated synthetic
  Internet + web + measurement services for the 23-country study.
* :func:`repro.run_study` — execute the full methodology (Gamma runs,
  Atlas fallbacks, multi-constraint geolocation, tracker identification)
  and return a :class:`repro.StudyOutcome` exposing every figure/table
  analysis.
* :class:`repro.GammaSuite` / :class:`repro.GammaConfig` — the
  measurement tool itself, usable standalone.
* :class:`repro.GeolocationPipeline` — the multi-constraint server
  geolocation framework.
"""

from repro.core.gamma import GammaConfig, GammaSuite, Volunteer, VolunteerDataset
from repro.core.geoloc import GeolocationPipeline, PipelineConfig, SourceTraces
from repro.core.trackers import TrackerIdentifier
from repro.artifacts import export_study, load_datasets
from repro.exec import (
    CountryExecutionError,
    CountryFailure,
    ExecMetrics,
    FaultInjector,
    StudyCheckpoint,
    StudyExecutor,
    create_executor,
)
from repro.longitudinal import ComplianceReport, LongitudinalStudy
from repro.obs import RunJournal, Tracer, strip_timings
from repro.recruitment import RecruitmentLog, build_recruitment_log
from repro.stability import SiteStability, VisitVariabilityStudy
from repro.study import StudyConfig, StudyOutcome, build_source_traces, run_study
from repro.worldgen import Scenario, build_scenario

__version__ = "1.0.0"

__all__ = [
    "CountryExecutionError",
    "CountryFailure",
    "ExecMetrics",
    "FaultInjector",
    "StudyCheckpoint",
    "GammaConfig",
    "GammaSuite",
    "GeolocationPipeline",
    "PipelineConfig",
    "RecruitmentLog",
    "ComplianceReport",
    "LongitudinalStudy",
    "RunJournal",
    "Scenario",
    "SiteStability",
    "SourceTraces",
    "StudyConfig",
    "StudyExecutor",
    "StudyOutcome",
    "TrackerIdentifier",
    "Tracer",
    "Volunteer",
    "VolunteerDataset",
    "VisitVariabilityStudy",
    "build_scenario",
    "build_recruitment_log",
    "create_executor",
    "build_source_traces",
    "export_study",
    "load_datasets",
    "run_study",
    "strip_timings",
    "__version__",
]
