"""The paper's primary contribution: Gamma, geolocation, trackers, analysis."""
