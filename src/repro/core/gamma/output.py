"""Gamma's on-disk data model.

One :class:`VolunteerDataset` is what a volunteer mails back after a run:
per-website request records, forward/reverse DNS, normalised traceroutes,
plus the minimal volunteer context the analysis needs (city, network).
``anonymize`` implements the ethics-section commitment to strip volunteer
IPs from the dataset once analysis completes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.gamma.parsers import NormalizedTraceroute
from repro.core.slotstate import install_slot_state

__all__ = ["WebsiteMeasurement", "VolunteerDataset", "anonymize"]

ANONYMIZED_IP = "0.0.0.0"


@dataclass(slots=True)
class WebsiteMeasurement:
    """Everything recorded for one target website."""

    url: str
    category: str  # "regional" or "government"
    loaded: bool
    requested_hosts: List[str] = field(default_factory=list)
    background_hosts: List[str] = field(default_factory=list)
    dns: Dict[str, str] = field(default_factory=dict)  # host -> IP
    rdns: Dict[str, Optional[str]] = field(default_factory=dict)  # IP -> PTR
    traceroutes: Dict[str, NormalizedTraceroute] = field(default_factory=dict)  # IP -> trace
    failure_reason: Optional[str] = None
    #: Saved page source (only when the run enables page saving).
    page_html: Optional[str] = None
    #: Domains found hardcoded in the page markup but never requested.
    hardcoded_domains: List[str] = field(default_factory=list)

    @property
    def resolved_addresses(self) -> List[str]:
        """Unique resolved IPs in first-seen order."""
        seen: Dict[str, None] = {}
        for host in self.requested_hosts:
            address = self.dns.get(host)
            if address is not None:
                seen.setdefault(address, None)
        return list(seen)

    def to_dict(self) -> dict:
        return {
            "url": self.url,
            "category": self.category,
            "loaded": self.loaded,
            "failure_reason": self.failure_reason,
            "requested_hosts": list(self.requested_hosts),
            "background_hosts": list(self.background_hosts),
            "dns": dict(self.dns),
            "rdns": dict(self.rdns),
            "traceroutes": {ip: tr.to_dict() for ip, tr in self.traceroutes.items()},
            "page_html": self.page_html,
            "hardcoded_domains": list(self.hardcoded_domains),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "WebsiteMeasurement":
        return cls(
            url=payload["url"],
            category=payload["category"],
            loaded=payload["loaded"],
            failure_reason=payload.get("failure_reason"),
            requested_hosts=list(payload.get("requested_hosts", [])),
            background_hosts=list(payload.get("background_hosts", [])),
            dns=dict(payload.get("dns", {})),
            rdns=dict(payload.get("rdns", {})),
            traceroutes={
                ip: NormalizedTraceroute.from_dict(tr)
                for ip, tr in payload.get("traceroutes", {}).items()
            },
            page_html=payload.get("page_html"),
            hardcoded_domains=list(payload.get("hardcoded_domains", [])),
        )


# Pickle state stays the historical field-ordered dict so pre-slots
# checkpoints load and fresh pickle bytes are unchanged.
install_slot_state(
    WebsiteMeasurement,
    ("url", "category", "loaded", "requested_hosts", "background_hosts",
     "dns", "rdns", "traceroutes", "failure_reason", "page_html",
     "hardcoded_domains"),
)


@dataclass
class VolunteerDataset:
    """One volunteer's complete recorded run."""

    country_code: str
    city_key: str
    volunteer_ip: str
    os_name: str
    browser: str
    websites: Dict[str, WebsiteMeasurement] = field(default_factory=dict)

    def add(self, measurement: WebsiteMeasurement) -> None:
        self.websites[measurement.url] = measurement

    @property
    def loaded_count(self) -> int:
        return sum(1 for m in self.websites.values() if m.loaded)

    @property
    def attempted_count(self) -> int:
        return len(self.websites)

    def load_success_pct(self) -> float:
        if not self.websites:
            return 0.0
        return 100.0 * self.loaded_count / self.attempted_count

    def traceroute_counts(self) -> Dict[str, int]:
        """``{"attempted": n, "reached": m}`` across all websites."""
        attempted = reached = 0
        for measurement in self.websites.values():
            for trace in measurement.traceroutes.values():
                attempted += 1
                if trace.reached:
                    reached += 1
        return {"attempted": attempted, "reached": reached}

    @property
    def traceroutes_all_failed(self) -> bool:
        """True when probes were launched but none ever reached a target.

        This is the condition that forced the paper to fall back to RIPE
        Atlas for Australia, India, Qatar and Jordan.
        """
        counts = self.traceroute_counts()
        return counts["attempted"] > 0 and counts["reached"] == 0

    def all_requested_hosts(self) -> List[str]:
        hosts: Dict[str, None] = {}
        for measurement in self.websites.values():
            for host in measurement.requested_hosts:
                hosts.setdefault(host, None)
        return list(hosts)

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(
            {
                "country": self.country_code,
                "city": self.city_key,
                "volunteer_ip": self.volunteer_ip,
                "os": self.os_name,
                "browser": self.browser,
                "websites": {url: m.to_dict() for url, m in self.websites.items()},
            },
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "VolunteerDataset":
        payload = json.loads(text)
        dataset = cls(
            country_code=payload["country"],
            city_key=payload["city"],
            volunteer_ip=payload["volunteer_ip"],
            os_name=payload["os"],
            browser=payload["browser"],
        )
        for url, entry in payload.get("websites", {}).items():
            dataset.websites[url] = WebsiteMeasurement.from_dict(entry)
        return dataset


def anonymize(dataset: VolunteerDataset) -> VolunteerDataset:
    """Strip the volunteer's IP (done after analysis, per section 3.5)."""
    dataset.volunteer_ip = ANONYMIZED_IP
    return dataset
