"""Gamma configuration: browsers, timing, components, volunteer accommodations.

Gamma is "lightweight and highly configurable" (section 3): users pick a
browser, the number of simultaneous instances, render wait and hard
timeout; volunteers may opt out of individual websites or of whole
measurement components (one Egyptian volunteer opted out of traceroutes).
The study configuration in section 3.1 is captured by
:meth:`GammaConfig.study_defaults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Set

from repro.browser.engine import BrowserKind

__all__ = ["GammaComponents", "GammaConfig"]


class GammaComponents:
    """The three functional components of the suite."""

    BROWSER = "C1"  # browser-level interaction
    NETINFO = "C2"  # DNS / reverse DNS / metadata annotation
    PROBES = "C3"  # active measurement probes (traceroute, ping, TLS)

    ALL = frozenset({BROWSER, NETINFO, PROBES})


@dataclass
class GammaConfig:
    """Everything a volunteer's Gamma run is parameterised by."""

    browser: str = BrowserKind.CHROME
    instances: int = 1  # simultaneous browser instances (study: single-thread)
    wait_time_s: float = 20.0  # full-render wait
    hard_timeout_s: float = 180.0  # kill non-responsive instances
    components: FrozenSet[str] = GammaComponents.ALL
    #: Sites this volunteer chose not to visit.
    opted_out_sites: Set[str] = field(default_factory=set)
    #: Operating system of the volunteer machine ("linux"/"windows"/"darwin").
    os_name: str = "linux"
    #: Probes per traceroute hop (traceroute/tracert default).
    probes_per_hop: int = 3
    #: Save full page sources and scrape them for hardcoded domains
    #: (section 3: C1 saves webpages; C2 resolves hardcoded domains too).
    save_pages: bool = False
    #: Normalise traceroutes through the historical render-text → parse
    #: round trip instead of the byte-identical direct fast path.  Off by
    #: default; CI keeps the parser path continuously exercised with it.
    exercise_parsers: bool = False
    #: Memoise the first trace per (volunteer, address) across sites —
    #: duplicates are thrown away downstream anyway (only the first
    #: observation per address feeds the geolocation pipeline).
    memo_traces: bool = True

    def __post_init__(self) -> None:
        if self.browser not in BrowserKind.ALL:
            raise ValueError(f"unsupported browser {self.browser!r}")
        if self.instances < 1:
            raise ValueError("instances must be >= 1")
        if self.wait_time_s <= 0 or self.hard_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        if self.hard_timeout_s < self.wait_time_s:
            raise ValueError("hard timeout must not be shorter than the render wait")
        unknown = set(self.components) - GammaComponents.ALL
        if unknown:
            raise ValueError(f"unknown components: {sorted(unknown)}")
        if GammaComponents.BROWSER not in self.components:
            raise ValueError("C1 (browser interaction) is required; C2/C3 build on it")
        if self.os_name not in ("linux", "windows", "darwin"):
            raise ValueError(f"unsupported OS {self.os_name!r}")
        if self.probes_per_hop < 1:
            raise ValueError("probes_per_hop must be >= 1")

    @classmethod
    def study_defaults(cls, os_name: str = "linux", **overrides) -> "GammaConfig":
        """The tuned configuration of section 3.1."""
        params = dict(
            browser=BrowserKind.CHROME,
            instances=1,
            wait_time_s=20.0,
            hard_timeout_s=180.0,
            os_name=os_name,
        )
        params.update(overrides)
        return cls(**params)

    @property
    def traceroutes_enabled(self) -> bool:
        return GammaComponents.PROBES in self.components

    @property
    def netinfo_enabled(self) -> bool:
        return GammaComponents.NETINFO in self.components

    def without_traceroutes(self) -> "GammaConfig":
        """Accommodate a volunteer opting out of active probes."""
        return GammaConfig(
            browser=self.browser,
            instances=self.instances,
            wait_time_s=self.wait_time_s,
            hard_timeout_s=self.hard_timeout_s,
            components=frozenset(self.components - {GammaComponents.PROBES}),
            opted_out_sites=set(self.opted_out_sites),
            os_name=self.os_name,
            probes_per_hop=self.probes_per_hop,
            save_pages=self.save_pages,
            exercise_parsers=self.exercise_parsers,
            memo_traces=self.memo_traces,
        )
