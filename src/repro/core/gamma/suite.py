"""The Gamma suite orchestrator.

For each target website (minus the volunteer's opt-outs) the suite runs
C1 -> C2 -> C3 in sequence — each component building on the previous, as
in section 3.1 — checkpointing after every site so interrupted runs
resume where they stopped.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional

from repro.browser.engine import BrowserConfig, BrowserEngine
from repro.core.gamma.checkpoint import Checkpoint
from repro.core.gamma.config import GammaConfig
from repro.core.gamma.netinfo import NetworkInfoGatherer
from repro.core.gamma.output import VolunteerDataset, WebsiteMeasurement
from repro.core.gamma.probes import ProbeRunner
from repro.core.gamma.volunteer import Volunteer
from repro.core.targets.builder import TargetList
from repro.geodb.ipinfo import IPInfoService
from repro.netsim.network import World
from repro.web.catalog import SiteCatalog
from repro.web.html import extract_domains_from_html, render_page_html
from repro.web.website import CATEGORY_GOVERNMENT, CATEGORY_REGIONAL

__all__ = ["GammaSuite"]

ProgressCallback = Callable[[str, WebsiteMeasurement], None]


class GammaSuite:
    """One volunteer's end-to-end measurement run."""

    def __init__(
        self,
        world: World,
        catalog: SiteCatalog,
        config: Optional[GammaConfig] = None,
        browser_config: Optional[BrowserConfig] = None,
        ipinfo: Optional[IPInfoService] = None,
    ):
        self._world = world
        self._catalog = catalog
        self._config = config or GammaConfig.study_defaults()
        browser_config = browser_config or BrowserConfig()
        if browser_config.browser != self._config.browser:
            raise ValueError(
                f"browser mismatch: Gamma configured for {self._config.browser}, "
                f"engine for {browser_config.browser}"
            )
        if browser_config.hard_timeout_s != self._config.hard_timeout_s:
            # Align on a private copy: the caller's config may be shared by
            # concurrently-running suites (one per country under repro.exec).
            browser_config = dataclasses.replace(
                browser_config, hard_timeout_s=self._config.hard_timeout_s
            )
        self._browser = BrowserEngine(world, catalog, browser_config)
        self._netinfo = NetworkInfoGatherer(world, ipinfo)

    @property
    def config(self) -> GammaConfig:
        return self._config

    def run(
        self,
        volunteer: Volunteer,
        targets: TargetList,
        checkpoint: Optional[Checkpoint] = None,
        progress: Optional[ProgressCallback] = None,
        visit_key: str = "visit-1",
        tracer=None,
    ) -> VolunteerDataset:
        """Execute the full run and return the volunteer's dataset.

        With a :class:`repro.obs.Tracer`, each site gets its own span
        plus ``site_visit``/``site_skip``/``site_traceroutes`` events,
        so per-site wall time and load failures are auditable from the
        run journal.
        """
        config = self._effective_config(volunteer)
        dataset = self._resume_or_start(volunteer, checkpoint)
        prober = (
            ProbeRunner(self._world, config.os_name, exercise_parsers=config.exercise_parsers)
            if config.traceroutes_enabled
            else None
        )

        categories: Dict[str, str] = {}
        for url in targets.regional:
            categories[url] = CATEGORY_REGIONAL
        for url in targets.government:
            categories[url] = CATEGORY_GOVERNMENT

        for url in self._visit_order(targets.all_sites, config.instances):
            if volunteer.opted_out(url):
                if tracer is not None:
                    tracer.event("site_skip", url=url, reason="opted_out")
                continue
            if checkpoint is not None and checkpoint.is_done(url):
                if tracer is not None:
                    tracer.event("site_skip", url=url, reason="checkpointed")
                continue
            if tracer is None:
                measurement = self._measure_site(
                    url, categories[url], volunteer, config, prober, visit_key
                )
            else:
                with tracer.span("site", url):
                    measurement = self._measure_site(
                        url, categories[url], volunteer, config, prober, visit_key
                    )
                    self._emit_site_events(tracer, measurement)
            dataset.add(measurement)
            if checkpoint is not None:
                checkpoint.mark_done(url, dataset)
            if progress is not None:
                progress(url, measurement)
        return dataset

    @staticmethod
    def _emit_site_events(tracer, measurement: WebsiteMeasurement) -> None:
        tracer.event(
            "site_visit",
            url=measurement.url,
            category=measurement.category,
            loaded=measurement.loaded,
            failure_reason=measurement.failure_reason or None,
            requested_hosts=len(measurement.requested_hosts),
            background_hosts=len(measurement.background_hosts),
            hardcoded_domains=len(measurement.hardcoded_domains),
        )
        if measurement.traceroutes:
            tracer.event(
                "site_traceroutes",
                url=measurement.url,
                attempted=len(measurement.traceroutes),
                reached=sum(
                    1 for trace in measurement.traceroutes.values() if trace.reached
                ),
            )

    # -- internals -----------------------------------------------------------
    @staticmethod
    def _visit_order(urls, instances: int):
        """Deterministic visit order for N simultaneous browser instances.

        With one instance (the study configuration) sites are visited in
        list order.  With N instances, each instance works one stripe of
        the list and the recorded order interleaves their progress —
        the observable effect of Gamma's concurrency on the dataset.
        """
        if instances <= 1:
            return list(urls)
        stripes = [list(urls[i::instances]) for i in range(instances)]
        order = []
        for step in range(max((len(s) for s in stripes), default=0)):
            for stripe in stripes:
                if step < len(stripe):
                    order.append(stripe[step])
        return order

    def _effective_config(self, volunteer: Volunteer) -> GammaConfig:
        config = self._config
        if volunteer.traceroute_opt_out and config.traceroutes_enabled:
            config = config.without_traceroutes()
        return config

    def _resume_or_start(
        self, volunteer: Volunteer, checkpoint: Optional[Checkpoint]
    ) -> VolunteerDataset:
        if checkpoint is not None:
            partial = checkpoint.partial_dataset()
            if partial is not None:
                if partial.country_code != volunteer.country_code:
                    raise ValueError(
                        "checkpoint belongs to a different country: "
                        f"{partial.country_code} vs {volunteer.country_code}"
                    )
                return partial
        return VolunteerDataset(
            country_code=volunteer.country_code,
            city_key=volunteer.city.key,
            volunteer_ip=volunteer.ip,
            os_name=volunteer.os_name,
            browser=self._config.browser,
        )

    def _measure_site(
        self,
        url: str,
        category: str,
        volunteer: Volunteer,
        config: GammaConfig,
        prober: Optional[ProbeRunner],
        visit_key: str,
    ) -> WebsiteMeasurement:
        record = self._browser.load(url, volunteer.city, visit_key)
        measurement = WebsiteMeasurement(
            url=url,
            category=category,
            loaded=record.loaded,
            failure_reason=record.failure_reason,
        )
        if not record.loaded:
            return measurement

        measurement.requested_hosts = record.requested_hosts(include_background=False)
        measurement.background_hosts = [
            r.host for r in record.successful_requests() if r.background
        ]
        if config.save_pages and self._catalog.has(url):
            site = self._catalog.get(url)
            measurement.page_html = render_page_html(site, visit_key, volunteer.country_code)
            mentioned = extract_domains_from_html(measurement.page_html)
            measurement.hardcoded_domains = sorted(
                mentioned - set(measurement.requested_hosts)
            )
        if config.netinfo_enabled:
            hosts = list(measurement.requested_hosts) + measurement.hardcoded_domains
            info = self._netinfo.gather(hosts, volunteer.city)
            measurement.dns = info.dns
            measurement.rdns = info.rdns
        else:
            measurement.dns = record.host_addresses(include_background=False)

        if prober is not None:
            addresses = measurement.resolved_addresses
            measurement.traceroutes = prober.traceroute_many(
                volunteer.city, addresses, key_prefix=f"{volunteer.name}:{url}",
                memo=config.memo_traces,
            )
        return measurement
