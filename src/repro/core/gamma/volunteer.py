"""Volunteer description: who runs Gamma, from where, with what consent."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.netsim.geography import City

__all__ = ["Volunteer"]


@dataclass
class Volunteer:
    """One participant's vantage point and accommodations."""

    name: str  # pseudonymous label, e.g. "vol-TH-01"
    city: City
    ip: str  # the one identifying datum Gamma logs (later anonymised)
    os_name: str = "linux"
    #: Websites this volunteer declined to visit.
    opted_out_sites: Set[str] = field(default_factory=set)
    #: True when the volunteer declined active probes entirely (the
    #: Egyptian volunteer in the paper).
    traceroute_opt_out: bool = False

    @property
    def country_code(self) -> str:
        return self.city.country_code

    def opted_out(self, url: str) -> bool:
        return url in self.opted_out_sites
