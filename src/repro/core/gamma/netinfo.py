"""Component C2: network information gathering.

Enriches the hosts captured during browser interaction with forward DNS
(from the volunteer's own vantage — essential, since GeoDNS answers are
location-dependent), reverse DNS for every resolved address, and
optional ASN/organisation annotation via an IPinfo-like service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.geodb.ipinfo import IPInfoService, IPMetadata
from repro.netsim.dns import NXDomain
from repro.netsim.geography import City
from repro.netsim.network import World
from repro.netsim.resolver import GeoDNSMemo

__all__ = ["NetInfoResult", "NetworkInfoGatherer"]


@dataclass
class NetInfoResult:
    """C2 output for one website's host set."""

    dns: Dict[str, str]  # host -> address (hosts that resolved)
    failures: Dict[str, str]  # host -> reason
    rdns: Dict[str, Optional[str]]  # address -> PTR hostname (or None)
    metadata: Dict[str, IPMetadata]  # address -> annotation


class NetworkInfoGatherer:
    """Resolves, reverse-resolves, and annotates captured hosts."""

    def __init__(self, world: World, ipinfo: Optional[IPInfoService] = None):
        self._world = world
        self._ipinfo = ipinfo
        # Per-gatherer memo: within one volunteer run every site re-resolves
        # the same tracker hosts from the same vantage city.
        self._dns_memo = GeoDNSMemo(world.dns)

    def gather(self, hosts: Iterable[str], vantage_city: City) -> NetInfoResult:
        dns: Dict[str, str] = {}
        failures: Dict[str, str] = {}
        for host in hosts:
            try:
                dns[host] = self._dns_memo.resolve_address(host, vantage_city)
            except NXDomain:
                failures[host] = "nxdomain"
            except LookupError:
                failures[host] = "refused"

        rdns: Dict[str, Optional[str]] = {}
        metadata: Dict[str, IPMetadata] = {}
        for address in dict.fromkeys(dns.values()):
            rdns[address] = self._world.rdns.lookup(address)
            if self._ipinfo is not None:
                annotation = self._ipinfo.lookup(address)
                if annotation is not None:
                    metadata[address] = annotation
        return NetInfoResult(dns=dns, failures=failures, rdns=rdns, metadata=metadata)
