"""Direct traceroute normalisation — the probe-layer fast path.

:class:`~repro.core.gamma.probes.ProbeRunner` historically produced its
:class:`NormalizedTraceroute` records by rendering each structured
:class:`~repro.netsim.traceroute.TracerouteResult` into OS-native text
(``traceroute`` / ``tracert``) and feeding that through the format
parsers.  The round trip exercises the portability layer the paper
describes, but it dominates study wall time: the render + regex-parse
pair costs an order of magnitude more than the trace synthesis itself.

The functions here construct the identical ``NormalizedTraceroute``
straight from the structured result, faithfully reproducing each
format's *lossy quantisation*:

* Linux ``traceroute`` prints per-probe RTTs as ``%.3f ms`` — the
  normalised samples are those 3-decimal values.
* Windows ``tracert`` prints integer milliseconds and ``<1 ms`` cells —
  normalised as ``float(int(round(v)))`` and the parser's ``0.5`` ms
  estimate respectively.
* Unresponsive hops (``* * *`` / ``Request timed out.``) normalise to
  an address-less hop; unreached traces keep their trailing all-star
  tail and never mark ``reached``.

The render → parse round trip survives as the correctness oracle:
``normalize_direct(result, fmt) ==
parse_traceroute_output(render_<fmt>(result))`` byte for byte, locked
down by the property tests in ``tests/test_gamma_normalize.py`` and
kept continuously exercised end-to-end via
``GammaConfig.exercise_parsers`` (mirroring ``FilterSet.match_naive``).
"""

from __future__ import annotations

import re
from typing import List

from repro.core.gamma.parsers import NormalizedHop, NormalizedTraceroute
from repro.netsim.traceroute import TracerouteResult, probe_rtts

__all__ = ["normalize_linux", "normalize_windows", "normalize_direct"]

#: Same dotted-quad extraction the parsers apply to each hop line.  The
#: RTT cells can never contain four dot-separated octet groups, so
#: searching the address field alone is equivalent to searching the line.
_ADDR_RE = re.compile(r"(\d{1,3}(?:\.\d{1,3}){3})")

#: Addresses repeat heavily within a study (the gateway on every trace,
#: each target once per hop list), so the extraction memoises.  Bounded
#: by wholesale reset, like the hash-prefix memo.
_ADDR_MEMO: dict = {}
_ADDR_MEMO_LIMIT = 65536

#: Distinguishes "memo miss" from a memoised ``None`` (unparseable text).
_MISS = object()


def _parsed_address(address: str):
    match = _ADDR_RE.search(address)
    parsed = match.group(1) if match else None
    if len(_ADDR_MEMO) >= _ADDR_MEMO_LIMIT:
        _ADDR_MEMO.clear()
    _ADDR_MEMO[address] = parsed
    return parsed


def normalize_linux(result: TracerouteResult) -> NormalizedTraceroute:
    """What ``parse_linux_traceroute(render_linux(result))`` returns."""
    hops: List[NormalizedHop] = []
    append = hops.append
    make_hop = NormalizedHop
    memo_get = _ADDR_MEMO.get
    for hop in result.hops:
        address = hop.address
        if address is None:
            append(make_hop(hop.index, None))
            continue
        parsed = memo_get(address, _MISS)
        if parsed is _MISS:
            parsed = _parsed_address(address)
        samples = hop.probes if hop.probes is not None else probe_rtts(hop)
        # round(v, 3) is the float the parser reads back from the
        # renderer's "%.3f" cell: both round half-even at the third
        # decimal digit (the oracle properties cover the equivalence).
        if len(samples) == 3:  # always, from the engine; unrolled for speed
            first, second, third = samples
            rtts = (round(first, 3), round(second, 3), round(third, 3))
        else:
            rtts = tuple(round(value, 3) for value in samples)
        append(make_hop(hop.index, parsed, rtts))
    reached = bool(hops) and hops[-1].address == result.target
    return NormalizedTraceroute(
        target=result.target, reached=reached, hops=hops, tool="traceroute"
    )


def normalize_windows(result: TracerouteResult) -> NormalizedTraceroute:
    """What ``parse_windows_tracert(render_windows(result))`` returns."""
    hops: List[NormalizedHop] = []
    append = hops.append
    make_hop = NormalizedHop
    memo_get = _ADDR_MEMO.get
    for hop in result.hops:
        address = hop.address
        if address is None:
            append(make_hop(hop.index, None))
            continue
        parsed = memo_get(address, _MISS)
        if parsed is _MISS:
            parsed = _parsed_address(address)
        samples = hop.probes if hop.probes is not None else probe_rtts(hop)
        # tracert prints "<1 ms" below a millisecond (parsed back as the
        # 0.5 ms estimate) and integer milliseconds otherwise.
        if len(samples) == 3:  # always, from the engine; unrolled for speed
            first, second, third = samples
            rtts = (
                0.5 if first < 1.0 else float(round(first)),
                0.5 if second < 1.0 else float(round(second)),
                0.5 if third < 1.0 else float(round(third)),
            )
        else:
            rtts = tuple(
                0.5 if value < 1.0 else float(round(value)) for value in samples
            )
        append(make_hop(hop.index, parsed, rtts))
    reached = result.reached and bool(hops) and hops[-1].address == result.target
    return NormalizedTraceroute(
        target=result.target, reached=reached, hops=hops, tool="tracert"
    )


_NORMALIZERS = {"linux": normalize_linux, "windows": normalize_windows}


def normalize_direct(result: TracerouteResult, render_format: str) -> NormalizedTraceroute:
    """Normalise *result* as the given OS text format would quantise it."""
    try:
        normalizer = _NORMALIZERS[render_format]
    except KeyError:
        raise ValueError(f"unknown render format {render_format!r}") from None
    return normalizer(result)
