"""Gamma: the portable browser + IP-level measurement suite (section 3)."""

from repro.core.gamma.checkpoint import Checkpoint
from repro.core.gamma.config import GammaComponents, GammaConfig
from repro.core.gamma.netinfo import NetInfoResult, NetworkInfoGatherer
from repro.core.gamma.osadapt import (
    DarwinAdapter,
    LinuxAdapter,
    OSAdapter,
    PingResult,
    WindowsAdapter,
    adapter_for,
)
from repro.core.gamma.output import (
    ANONYMIZED_IP,
    VolunteerDataset,
    WebsiteMeasurement,
    anonymize,
)
from repro.core.gamma.parsers import (
    NormalizedHop,
    NormalizedTraceroute,
    parse_linux_traceroute,
    parse_traceroute_output,
    parse_windows_tracert,
)
from repro.core.gamma.probes import ProbeRunner
from repro.core.gamma.suite import GammaSuite
from repro.core.gamma.volunteer import Volunteer

__all__ = [
    "ANONYMIZED_IP",
    "Checkpoint",
    "DarwinAdapter",
    "GammaComponents",
    "GammaConfig",
    "GammaSuite",
    "LinuxAdapter",
    "NetInfoResult",
    "NetworkInfoGatherer",
    "NormalizedHop",
    "NormalizedTraceroute",
    "OSAdapter",
    "PingResult",
    "ProbeRunner",
    "Volunteer",
    "VolunteerDataset",
    "WebsiteMeasurement",
    "WindowsAdapter",
    "adapter_for",
    "anonymize",
    "parse_linux_traceroute",
    "parse_traceroute_output",
    "parse_windows_tracert",
]
