"""Resume support.

Volunteers were asked to finish in one sitting but could run Gamma in
chunks: "Gamma is designed to resume from where it was last stopped"
(section 3.3).  A checkpoint is a small JSON file listing completed URLs
plus the partial dataset, written after every site.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Set

from repro.core.gamma.output import VolunteerDataset

__all__ = ["Checkpoint"]


@dataclass
class Checkpoint:
    """Tracks which target URLs a run has already completed."""

    path: Optional[Path] = None
    completed: Set[str] = field(default_factory=set)
    dataset_json: Optional[str] = None

    def is_done(self, url: str) -> bool:
        return url in self.completed

    def mark_done(self, url: str, dataset: Optional[VolunteerDataset] = None) -> None:
        self.completed.add(url)
        if dataset is not None:
            self.dataset_json = dataset.to_json()
        if self.path is not None:
            self.save()

    def partial_dataset(self) -> Optional[VolunteerDataset]:
        if self.dataset_json is None:
            return None
        return VolunteerDataset.from_json(self.dataset_json)

    def save(self) -> None:
        if self.path is None:
            raise ValueError("checkpoint has no path")
        payload = {"completed": sorted(self.completed), "dataset": self.dataset_json}
        # Write atomically so an interrupted run never truncates the file.
        directory = self.path.parent
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(directory), prefix=".ckpt-")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, str(self.path))
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    @classmethod
    def load(cls, path: Path) -> "Checkpoint":
        """Load an existing checkpoint, or start fresh if none exists."""
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        with open(path) as handle:
            payload = json.load(handle)
        return cls(
            path=path,
            completed=set(payload.get("completed", [])),
            dataset_json=payload.get("dataset"),
        )
