"""Resume support.

Volunteers were asked to finish in one sitting but could run Gamma in
chunks: "Gamma is designed to resume from where it was last stopped"
(section 3.3).  A checkpoint is a small JSON file listing completed URLs
plus the partial dataset, written after every site.

Robustness contract (docs/robustness.md): a checkpoint file that cannot
be parsed — truncated by a crash predating the atomic writer, or
schema-drifted by an older version — is quarantined (renamed to
``<name>.corrupt``) and the run starts fresh, instead of raising
``json.JSONDecodeError``/``TypeError`` at the caller.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Set

from repro.core.gamma.output import VolunteerDataset

__all__ = ["Checkpoint"]


@dataclass
class Checkpoint:
    """Tracks which target URLs a run has already completed.

    ``mark_done`` holds a live reference to the dataset and only
    :meth:`save` serialises it — once per save, from that reference —
    so an in-memory checkpoint (``path=None``) never pays the
    O(sites²) cost of re-serialising the whole dataset per site that
    the old per-call ``dataset_json`` caching incurred.
    """

    path: Optional[Path] = None
    completed: Set[str] = field(default_factory=set)
    #: Dataset JSON as loaded from disk (resume source); refreshed by save().
    dataset_json: Optional[str] = None
    #: Live dataset reference, serialised once per save().
    dataset: Optional[VolunteerDataset] = field(default=None, repr=False)

    def is_done(self, url: str) -> bool:
        return url in self.completed

    def mark_done(self, url: str, dataset: Optional[VolunteerDataset] = None) -> None:
        self.completed.add(url)
        if dataset is not None:
            self.dataset = dataset
        if self.path is not None:
            self.save()

    def partial_dataset(self) -> Optional[VolunteerDataset]:
        if self.dataset is not None:
            # Round trip for copy semantics: the resumed run must not
            # alias a dataset the previous caller may still mutate.
            return VolunteerDataset.from_json(self.dataset.to_json())
        if self.dataset_json is None:
            return None
        return VolunteerDataset.from_json(self.dataset_json)

    def save(self) -> None:
        if self.path is None:
            raise ValueError("checkpoint has no path")
        if self.dataset is not None:
            self.dataset_json = self.dataset.to_json()
        payload = {"completed": sorted(self.completed), "dataset": self.dataset_json}
        # Write atomically so an interrupted run never truncates the file.
        directory = self.path.parent
        directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=str(directory), prefix=".ckpt-")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, str(self.path))
        except BaseException:
            if os.path.exists(tmp_name):
                os.unlink(tmp_name)
            raise

    @staticmethod
    def _parse_payload(payload: object) -> "tuple[Set[str], Optional[str]]":
        """Validate the on-disk schema; raise ValueError on any drift."""
        if not isinstance(payload, dict):
            raise ValueError("checkpoint payload is not an object")
        completed = payload.get("completed", [])
        if not isinstance(completed, list) or not all(
            isinstance(url, str) for url in completed
        ):
            raise ValueError("checkpoint 'completed' is not a list of URLs")
        dataset_json = payload.get("dataset")
        if dataset_json is not None:
            if not isinstance(dataset_json, str):
                raise ValueError("checkpoint 'dataset' is not a JSON string")
            if not isinstance(json.loads(dataset_json), dict):
                raise ValueError("checkpoint 'dataset' does not hold an object")
        return set(completed), dataset_json

    @classmethod
    def load(cls, path: Path) -> "Checkpoint":
        """Load an existing checkpoint, or start fresh if none exists.

        A corrupt or schema-drifted file is quarantined as
        ``<name>.corrupt`` and an empty checkpoint (which will overwrite
        the original path on the next save) is returned.
        """
        path = Path(path)
        if not path.exists():
            return cls(path=path)
        try:
            with open(path) as handle:
                payload = json.load(handle)
            completed, dataset_json = cls._parse_payload(payload)
        except (ValueError, UnicodeDecodeError):
            # json.JSONDecodeError is a ValueError: both parse failures
            # and schema drift land here.
            os.replace(str(path), str(path.with_name(path.name + ".corrupt")))
            return cls(path=path)
        return cls(path=path, completed=completed, dataset_json=dataset_json)
