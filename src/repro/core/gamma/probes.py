"""Component C3: active measurement probes.

Launches traceroutes (and pings) through the OS adapter so the stored
record is the normalised JSON schema regardless of platform.  Two fast
paths keep C3 — the scaling bottleneck of a study — off the profile:

* **Direct normalisation** (default): the adapter constructs the
  :class:`NormalizedTraceroute` straight from the structured trace via
  :mod:`repro.core.gamma.normalize`, reproducing its platform's lossy
  text quantisation exactly.  The historical *render text → parse text*
  round trip — which exercises the normalisation layer the paper
  describes — survives behind ``exercise_parsers=True``
  (:attr:`repro.core.gamma.config.GammaConfig.exercise_parsers`) as the
  correctness oracle, and CI keeps it continuously exercised.
* **Per-country trace memo**: within one run the same third-party
  address is embedded by many sites, and downstream consumers
  (:func:`repro.study.build_source_traces`) only ever keep the *first*
  trace per address.  ``traceroute_many(..., memo=True)`` memoises that
  first observation in the registered ``gamma.traces`` cache and reuses
  it for subsequent sites instead of recomputing a trace that would be
  thrown away.  Entries are namespaced per runner, so concurrent
  per-country workers (and distinct scenarios) never share state.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Optional

from repro.core.gamma.osadapt import OSAdapter, PingResult, adapter_for
from repro.core.gamma.parsers import NormalizedTraceroute, parse_traceroute_output
from repro.exec.cache import ReadThroughCache, register_cache
from repro.netsim.geography import City
from repro.netsim.network import World
from repro.netsim.tls import TLSEndpointInfo, TLSInspector

__all__ = ["ProbeRunner", "TRACE_CACHE_NAME"]

#: Registry name of the memoised first-observation trace cache.
TRACE_CACHE_NAME = "gamma.traces"

#: One process-wide cache; keys carry a per-runner namespace token, so
#: hit/miss counters accumulate on a single registered cache (surfacing
#: in ``ExecMetrics``/``--cache-stats``) while runners stay isolated.
_TRACE_CACHE = register_cache(ReadThroughCache(TRACE_CACHE_NAME, maxsize=131072))
_RUNNER_TOKENS = itertools.count()


class ProbeRunner:
    """Runs OS-native probes from a vantage city."""

    def __init__(self, world: World, os_name: str = "linux", exercise_parsers: bool = False):
        self._world = world
        self._adapter: OSAdapter = adapter_for(os_name)
        self._tls = TLSInspector(world)
        self._exercise_parsers = exercise_parsers
        self._memo_namespace = next(_RUNNER_TOKENS)

    @property
    def adapter(self) -> OSAdapter:
        return self._adapter

    @property
    def exercise_parsers(self) -> bool:
        return self._exercise_parsers

    def traceroute(self, source_city: City, target_ip: str, key: str = "") -> NormalizedTraceroute:
        """One traceroute, via the platform tool, normalised."""
        if self._exercise_parsers:
            raw = self._adapter.raw_traceroute(self._world.traceroute, source_city, target_ip, key)
            return parse_traceroute_output(raw)
        return self._adapter.normalized_traceroute(
            self._world.traceroute, source_city, target_ip, key
        )

    def traceroute_many(
        self,
        source_city: City,
        target_ips: Iterable[str],
        key_prefix: str = "",
        memo: bool = False,
    ) -> Dict[str, NormalizedTraceroute]:
        """Traceroutes for *target_ips*, optionally memoised per address.

        With ``memo=True``, the first trace this runner launched toward
        an address is replayed for every later request (across calls —
        i.e. across sites), matching the first-observation-wins rule the
        geolocation pipeline applies anyway.  ``key_prefix`` still names
        the *launching* measurement, so the first observation is
        byte-identical to the unmemoised run's.
        """
        results: Dict[str, NormalizedTraceroute] = {}
        for i, target_ip in enumerate(target_ips):
            if memo:
                results[target_ip] = _TRACE_CACHE.get(
                    (self._memo_namespace, source_city.key, target_ip),
                    lambda ip=target_ip, key=f"{key_prefix}:{i}": self.traceroute(
                        source_city, ip, key
                    ),
                )
            else:
                results[target_ip] = self.traceroute(source_city, target_ip, f"{key_prefix}:{i}")
        return results

    def ping(
        self, source_city: City, target_ip: str, count: int = 4
    ) -> Optional[PingResult]:
        """ICMP echo probe; ``None`` for addresses outside the served space."""
        target_city = self._world.ips.true_city(target_ip)
        if target_city is None:
            return None
        return self._adapter.ping(self._world.latency, source_city, target_city, target_ip, count)

    def tls(self, target_ip: str, sni: Optional[str] = None) -> Optional[TLSEndpointInfo]:
        """testssl.sh-style TLS parameter probe (section 3, component C3)."""
        return self._tls.probe(target_ip, sni)
