"""Component C3: active measurement probes.

Launches traceroutes (and pings) through the OS adapter, then feeds the
raw tool output through the format parsers so the stored record is the
normalised JSON schema regardless of platform.  The round trip through
*rendered text -> parser* is deliberate: it exercises the exact
normalisation layer the paper describes instead of short-circuiting to
structured data.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.core.gamma.osadapt import OSAdapter, PingResult, adapter_for
from repro.core.gamma.parsers import NormalizedTraceroute, parse_traceroute_output
from repro.netsim.geography import City
from repro.netsim.network import World
from repro.netsim.tls import TLSEndpointInfo, TLSInspector

__all__ = ["ProbeRunner"]


class ProbeRunner:
    """Runs OS-native probes from a vantage city."""

    def __init__(self, world: World, os_name: str = "linux"):
        self._world = world
        self._adapter: OSAdapter = adapter_for(os_name)
        self._tls = TLSInspector(world)

    @property
    def adapter(self) -> OSAdapter:
        return self._adapter

    def traceroute(self, source_city: City, target_ip: str, key: str = "") -> NormalizedTraceroute:
        """One traceroute, via the platform tool, normalised."""
        raw = self._adapter.raw_traceroute(self._world.traceroute, source_city, target_ip, key)
        return parse_traceroute_output(raw)

    def traceroute_many(
        self,
        source_city: City,
        target_ips: Iterable[str],
        key_prefix: str = "",
    ) -> Dict[str, NormalizedTraceroute]:
        results: Dict[str, NormalizedTraceroute] = {}
        for i, target_ip in enumerate(target_ips):
            results[target_ip] = self.traceroute(source_city, target_ip, f"{key_prefix}:{i}")
        return results

    def ping(
        self, source_city: City, target_ip: str, count: int = 4
    ) -> Optional[PingResult]:
        """ICMP echo probe; ``None`` for addresses outside the served space."""
        target_city = self._world.ips.true_city(target_ip)
        if target_city is None:
            return None
        return self._adapter.ping(self._world.latency, source_city, target_city, target_ip, count)

    def tls(self, target_ip: str, sni: Optional[str] = None) -> Optional[TLSEndpointInfo]:
        """testssl.sh-style TLS parameter probe (section 3, component C3)."""
        return self._tls.probe(target_ip, sni)
