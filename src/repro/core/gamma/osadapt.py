"""OS abstraction layer.

Scapy-style raw-socket probing is unavailable on Windows (and root-gated
elsewhere), so Gamma shells out to OS-native tools and normalises their
output.  Each adapter knows which command its platform provides and how
to obtain its raw text; the simulation substitutes packet emission but
the *textual interface* — the part Gamma's portability layer actually
handles — is produced and parsed verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.gamma.normalize import normalize_direct
from repro.core.gamma.parsers import NormalizedTraceroute
from repro.determinism import stable_rng
from repro.netsim.geography import City
from repro.netsim.latency import LatencyModel
from repro.netsim.traceroute import TracerouteEngine, render_linux, render_windows

__all__ = ["PingResult", "OSAdapter", "LinuxAdapter", "WindowsAdapter", "DarwinAdapter", "adapter_for"]


@dataclass(frozen=True)
class PingResult:
    """ICMP echo summary."""

    target: str
    sent: int
    received: int
    rtts_ms: tuple

    @property
    def loss_pct(self) -> float:
        if self.sent == 0:
            return 100.0
        return 100.0 * (self.sent - self.received) / self.sent

    @property
    def avg_rtt_ms(self) -> float:
        if not self.rtts_ms:
            raise ValueError("no RTT samples")
        return sum(self.rtts_ms) / len(self.rtts_ms)


class OSAdapter:
    """Platform-specific measurement command access."""

    name = "abstract"
    traceroute_command = "traceroute"
    #: Which text format :meth:`raw_traceroute` produces — and therefore
    #: which quantisation the direct normaliser must reproduce.
    render_format = "linux"

    def raw_traceroute(self, engine: TracerouteEngine, source: City, target_ip: str, key: str) -> str:
        raise NotImplementedError

    def normalized_traceroute(
        self, engine: TracerouteEngine, source: City, target_ip: str, key: str
    ) -> NormalizedTraceroute:
        """One normalised trace without the render → parse round trip.

        Byte-identical to ``parse_traceroute_output(self.raw_traceroute(...))``
        — the equivalence the oracle tests in
        ``tests/test_gamma_normalize.py`` lock down per platform format.
        """
        return normalize_direct(engine.trace(source, target_ip, key), self.render_format)

    def ping(
        self,
        latency: LatencyModel,
        source: City,
        target_city: City,
        target_ip: str,
        count: int = 4,
    ) -> PingResult:
        """Platform-independent ping synthesis."""
        rng = stable_rng("ping", source.key, target_ip)
        rtts: List[float] = []
        received = 0
        for i in range(count):
            if rng.random() < 0.02:  # occasional loss
                continue
            received += 1
            rtts.append(round(latency.rtt_ms(source, target_city, f"ping:{target_ip}:{i}"), 3))
        return PingResult(target=target_ip, sent=count, received=received, rtts_ms=tuple(rtts))


class LinuxAdapter(OSAdapter):
    name = "linux"
    traceroute_command = "traceroute"

    def raw_traceroute(self, engine: TracerouteEngine, source: City, target_ip: str, key: str) -> str:
        return render_linux(engine.trace(source, target_ip, key))


class WindowsAdapter(OSAdapter):
    name = "windows"
    traceroute_command = "tracert"
    render_format = "windows"

    def raw_traceroute(self, engine: TracerouteEngine, source: City, target_ip: str, key: str) -> str:
        return render_windows(engine.trace(source, target_ip, key))


class DarwinAdapter(OSAdapter):
    name = "darwin"
    traceroute_command = "traceroute"

    def raw_traceroute(self, engine: TracerouteEngine, source: City, target_ip: str, key: str) -> str:
        return render_linux(engine.trace(source, target_ip, key))


_ADAPTERS = {cls.name: cls for cls in (LinuxAdapter, WindowsAdapter, DarwinAdapter)}


def adapter_for(os_name: str) -> OSAdapter:
    """The adapter for a platform name; raises on unsupported platforms."""
    try:
        return _ADAPTERS[os_name]()
    except KeyError:
        raise ValueError(f"unsupported OS {os_name!r}") from None
