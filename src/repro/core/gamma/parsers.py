"""Parsers for OS-native traceroute output.

Section 3 of the paper: Gamma shells out to ``traceroute`` on Linux and
``tracert`` on Windows, then normalises both into "an identical structure
JSON file with hop and RTT information".  These parsers implement that
normalisation: each accepts the raw text of its tool and produces the
same :class:`NormalizedTraceroute` structure.
"""

from __future__ import annotations

import re
import statistics
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.slotstate import install_slot_state

__all__ = [
    "NormalizedHop",
    "NormalizedTraceroute",
    "parse_linux_traceroute",
    "parse_windows_tracert",
    "parse_traceroute_output",
]


@dataclass(frozen=True, slots=True)
class NormalizedHop:
    """One hop in the normalised schema."""

    hop: int
    address: Optional[str]  # None when all probes timed out
    rtts_ms: tuple = ()  # individual probe RTTs

    @property
    def rtt_ms(self) -> Optional[float]:
        """Canonical per-hop RTT: the median of the probe samples."""
        samples = self.rtts_ms
        if not samples:
            return None
        # Hand-rolled medians for the only sizes the tools emit (one to
        # three probes) — bit-identical to statistics.median, an order
        # of magnitude cheaper on the geolocation hot path.
        if len(samples) == 1:
            return float(samples[0])
        if len(samples) == 3:
            a, b, c = samples
            return float(max(min(a, b), min(max(a, b), c)))
        return float(statistics.median(samples))

    def to_dict(self) -> dict:
        return {"hop": self.hop, "ip": self.address, "rtt_ms": list(self.rtts_ms)}


@dataclass(slots=True)
class NormalizedTraceroute:
    """The OS-independent traceroute record Gamma stores."""

    target: str
    reached: bool
    hops: List[NormalizedHop] = field(default_factory=list)
    tool: str = ""  # "traceroute" or "tracert" (provenance only)

    @property
    def first_hop_rtt(self) -> Optional[float]:
        for hop in self.hops:
            if hop.address is not None and hop.rtts_ms:
                return hop.rtt_ms
        return None

    @property
    def last_hop_rtt(self) -> Optional[float]:
        for hop in reversed(self.hops):
            if hop.address is not None and hop.rtts_ms:
                return hop.rtt_ms
        return None

    def to_dict(self) -> dict:
        return {
            "target": self.target,
            "reached": self.reached,
            "tool": self.tool,
            "hops": [hop.to_dict() for hop in self.hops],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NormalizedTraceroute":
        return cls(
            target=payload["target"],
            reached=payload["reached"],
            tool=payload.get("tool", ""),
            hops=[
                NormalizedHop(
                    hop=entry["hop"],
                    address=entry.get("ip"),
                    rtts_ms=tuple(entry.get("rtt_ms", [])),
                )
                for entry in payload.get("hops", [])
            ],
        )


# Pickle state stays the historical field-ordered dict so pre-slots
# checkpoints load and fresh pickle bytes are unchanged.
install_slot_state(NormalizedHop, ("hop", "address", "rtts_ms"))
install_slot_state(NormalizedTraceroute, ("target", "reached", "hops", "tool"))


_LINUX_HEADER_RE = re.compile(r"^traceroute to (\S+) \((\S+)\)")
_LINUX_HOP_RE = re.compile(r"^\s*(\d+)\s+(.*)$")
_LINUX_RTT_RE = re.compile(r"([\d.]+)\s*ms")
_LINUX_ADDR_RE = re.compile(r"(\d{1,3}(?:\.\d{1,3}){3})")

_WIN_HEADER_RE = re.compile(r"^Tracing route to (\S+)")
_WIN_HOP_RE = re.compile(r"^\s*(\d+)\s+(.*)$")
_WIN_RTT_RE = re.compile(r"(?:<\s*(\d+)|(\d+))\s*ms")


def parse_linux_traceroute(text: str) -> NormalizedTraceroute:
    """Parse GNU ``traceroute`` output into the normalised schema."""
    target = ""
    hops: List[NormalizedHop] = []
    for line in text.splitlines():
        header = _LINUX_HEADER_RE.match(line)
        if header:
            target = header.group(2)
            continue
        hop_match = _LINUX_HOP_RE.match(line)
        if not hop_match:
            continue
        index = int(hop_match.group(1))
        rest = hop_match.group(2)
        if rest.replace("*", "").strip() == "":
            hops.append(NormalizedHop(hop=index, address=None))
            continue
        address_match = _LINUX_ADDR_RE.search(rest)
        rtts = tuple(float(v) for v in _LINUX_RTT_RE.findall(rest))
        hops.append(
            NormalizedHop(
                hop=index,
                address=address_match.group(1) if address_match else None,
                rtts_ms=rtts,
            )
        )
    if not target:
        raise ValueError("not traceroute output: missing header line")
    reached = bool(hops) and hops[-1].address == target
    return NormalizedTraceroute(target=target, reached=reached, hops=hops, tool="traceroute")


def parse_windows_tracert(text: str) -> NormalizedTraceroute:
    """Parse Windows ``tracert`` output into the normalised schema."""
    target = ""
    hops: List[NormalizedHop] = []
    complete = False
    for line in text.splitlines():
        header = _WIN_HEADER_RE.match(line.strip())
        if header:
            target = header.group(1)
            continue
        if line.strip() == "Trace complete.":
            complete = True
            continue
        hop_match = _WIN_HOP_RE.match(line)
        if not hop_match:
            continue
        index = int(hop_match.group(1))
        rest = hop_match.group(2)
        if "Request timed out" in rest:
            hops.append(NormalizedHop(hop=index, address=None))
            continue
        rtts: List[float] = []
        for lt_value, value in _WIN_RTT_RE.findall(rest):
            if lt_value:
                rtts.append(float(lt_value) / 2.0)  # "<1 ms" -> 0.5 ms estimate
            else:
                rtts.append(float(value))
        address_match = _LINUX_ADDR_RE.search(rest)
        hops.append(
            NormalizedHop(
                hop=index,
                address=address_match.group(1) if address_match else None,
                rtts_ms=tuple(rtts),
            )
        )
    if not target:
        raise ValueError("not tracert output: missing header line")
    reached = complete and bool(hops) and hops[-1].address == target
    return NormalizedTraceroute(target=target, reached=reached, hops=hops, tool="tracert")


def parse_traceroute_output(text: str) -> NormalizedTraceroute:
    """Auto-detect the tool from the output and parse accordingly."""
    stripped = text.lstrip()
    if stripped.startswith("traceroute to"):
        return parse_linux_traceroute(text)
    if stripped.startswith("Tracing route to"):
        return parse_windows_tracert(text)
    raise ValueError("unrecognised traceroute output format")
