"""Pickle-state shims for ``__slots__``-backed measurement records.

Moving a hot dataclass to ``slots=True`` changes its default pickle
protocol from NEWOBJ + ``__dict__`` state to a ``(None, slots_dict)``
2-tuple — which would both break old ``.run.pkl``/``.run.col``
checkpoints (written before the slots rollout) and change the pickle
bytes of fresh runs (the transport suite asserts
``pickle.dumps(decoded) == pickle.dumps(run)``).

:func:`install_slot_state` restores the historical wire format: a
field-ordered plain dict as ``__getstate__`` (byte-identical to the
pre-slots pickles) and a ``__setstate__`` that accepts both that dict
(old and new checkpoints alike) and the slotted 2-tuple (defensive, in
case a foreign pickler produced one).  Frozen dataclasses are handled
via ``object.__setattr__``.
"""

from __future__ import annotations

from typing import Optional, Sequence

__all__ = ["install_slot_state"]


def install_slot_state(cls, fields: Sequence[str],
                       optional: Sequence[str] = ()) -> None:
    """Give *cls* dict-shaped pickle state despite ``__slots__``.

    *fields* is the exact attribute order of the historical
    ``__dict__`` (dataclass field order).  Names in *optional* are
    omitted from the state when unset and tolerated when absent on
    restore — used for memo slots that old checkpoints never carried.
    """
    field_names = tuple(fields)
    optional_names = frozenset(optional)
    sentinel = object()

    def __getstate__(self):
        state = {}
        for name in field_names:
            value = getattr(self, name, sentinel)
            if value is sentinel:
                if name in optional_names:
                    continue
                raise AttributeError(name)
            state[name] = value
        return state

    def __setstate__(self, state):
        if isinstance(state, tuple):  # (dict_state, slots_state) pair
            merged = dict(state[0] or {})
            merged.update(state[1] or {})
            state = merged
        setter = object.__setattr__
        for name, value in state.items():
            setter(self, name, value)

    cls.__getstate__ = __getstate__
    cls.__setstate__ = __setstate__
