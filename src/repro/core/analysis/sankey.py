"""Text-mode alluvial (Sankey) diagrams.

Figures 5, 6 and 8 of the paper are alluvial diagrams: sources on the
left, destinations (countries, continents, or organisations) on the
right, ribbon thickness proportional to website count.  This renderer
produces the terminal equivalent: per-node bars scaled to flow volume
and the heaviest individual ribbons listed underneath.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["Flow", "render_sankey"]


@dataclass(frozen=True)
class Flow:
    """One ribbon: source -> target with a weight."""

    source: str
    target: str
    weight: int

    def __post_init__(self) -> None:
        if self.weight < 0:
            raise ValueError("flow weight must be non-negative")


def _bar(value: int, peak: int, width: int) -> str:
    if peak <= 0:
        return ""
    filled = max(1 if value > 0 else 0, round(width * value / peak))
    return "#" * filled


def render_sankey(
    flows: Sequence[Flow],
    title: str = "",
    width: int = 28,
    max_ribbons: int = 12,
) -> str:
    """Render *flows* as a two-column text alluvial diagram."""
    if width < 4:
        raise ValueError("width must be at least 4")
    flows = [f for f in flows if f.weight > 0]
    sources: Dict[str, int] = {}
    targets: Dict[str, int] = {}
    for flow in flows:
        sources[flow.source] = sources.get(flow.source, 0) + flow.weight
        targets[flow.target] = targets.get(flow.target, 0) + flow.weight

    lines: List[str] = []
    if title:
        lines.append(title)
    if not flows:
        lines.append("(no flows)")
        return "\n".join(lines)

    peak = max(list(sources.values()) + list(targets.values()))
    name_width = max(
        [len(n) for n in sources] + [len(n) for n in targets] + [6]
    )

    lines.append("")
    lines.append("SOURCES" + " " * (name_width + 8) + "DESTINATIONS")
    left = sorted(sources.items(), key=lambda kv: (-kv[1], kv[0]))
    right = sorted(targets.items(), key=lambda kv: (-kv[1], kv[0]))
    for i in range(max(len(left), len(right))):
        if i < len(left):
            name, value = left[i]
            left_cell = f"{name:<{name_width}} {value:>5} {_bar(value, peak, width):<{width}}"
        else:
            left_cell = " " * (name_width + 7 + width)
        if i < len(right):
            name, value = right[i]
            right_cell = f"{_bar(value, peak, width):>{width}} {value:>5} {name}"
        else:
            right_cell = ""
        lines.append(f"{left_cell} | {right_cell}".rstrip())

    lines.append("")
    lines.append(f"heaviest ribbons (top {max_ribbons}):")
    heaviest = sorted(flows, key=lambda f: (-f.weight, f.source, f.target))[:max_ribbons]
    ribbon_peak = heaviest[0].weight
    for flow in heaviest:
        lines.append(
            f"  {flow.source:>{name_width}} ==[{flow.weight:>4}]==> {flow.target:<{name_width}} "
            f"{_bar(flow.weight, ribbon_peak, width // 2)}"
        )
    return "\n".join(lines)


def flows_from_edges(edges: Sequence[Tuple[str, str, int]]) -> List[Flow]:
    """Convenience: build flows from ``(source, target, weight)`` tuples."""
    return [Flow(source=s, target=t, weight=w) for s, t, w in edges]
