"""Plain-text rendering of every figure and table.

The benchmark harness prints these renderings so a run regenerates the
same rows/series the paper reports.  Rendering is deliberately simple
fixed-width text: easy to diff, easy to eyeball against the paper.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.analysis.continents import ContinentFlowAnalysis
from repro.core.analysis.flows import FlowAnalysis
from repro.core.analysis.hosting import HostingAnalysis
from repro.core.analysis.organizations import OrganizationAnalysis
from repro.core.analysis.perwebsite import PerWebsiteAnalysis
from repro.core.analysis.policy import PolicyAnalysis
from repro.core.analysis.prevalence import PrevalenceAnalysis

__all__ = [
    "render_table",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "render_table1",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Fixed-width table rendering."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_fig3(analysis: PrevalenceAnalysis) -> str:
    rows = [
        (r.country_code, f"{r.regional_pct:.1f}", f"{r.government_pct:.1f}", f"{r.combined_pct:.1f}")
        for r in analysis.per_country()
    ]
    summary_reg = analysis.regional_mean_and_stdev()
    summary_gov = analysis.government_mean_and_stdev()
    body = render_table(
        ["country", "T_reg %", "T_gov %", "combined %"],
        rows,
        title="Figure 3: % of websites with non-local trackers",
    )
    return (
        body
        + f"\nregional mean={summary_reg['mean']:.2f}% sigma={summary_reg['stdev']:.2f}%"
        + f"\ngovernment mean={summary_gov['mean']:.2f}% sigma={summary_gov['stdev']:.2f}%"
        + f"\nreg/gov Pearson r={analysis.regional_government_correlation():.2f}"
    )


def render_fig4(analysis: PerWebsiteAnalysis, category: Optional[str] = None) -> str:
    rows = []
    for dist in analysis.all_distributions(category):
        if dist.box is None:
            rows.append((dist.country_code, 0, "-", "-", "-", "-", "-"))
            continue
        box = dist.box
        rows.append(
            (
                dist.country_code,
                dist.sites_with_trackers,
                f"{box.q1:.1f}",
                f"{box.median:.1f}",
                f"{box.q3:.1f}",
                f"{box.mean:.1f}±{box.stdev:.1f}",
                len(box.outliers),
            )
        )
    label = category or "all"
    return render_table(
        ["country", "sites", "q1", "median", "q3", "mean±sd", "outliers"],
        rows,
        title=f"Figure 4: non-local tracker domains per website ({label})",
    )


def render_fig5(analysis: FlowAnalysis, top: int = 12) -> str:
    shares = analysis.destination_shares()
    source_counts = analysis.source_count_per_destination()
    rows = [
        (dest, f"{share:.1f}", source_counts.get(dest, 0))
        for dest, share in list(shares.items())[:top]
    ]
    return render_table(
        ["destination", "% of sites w/ non-local", "source countries"],
        rows,
        title="Figure 5: destination countries of non-local tracking flows",
    )


def render_fig6(analysis: ContinentFlowAnalysis) -> str:
    matrix = analysis.matrix()
    rows = [
        (src, dst, count)
        for (src, dst), count in sorted(matrix.items(), key=lambda kv: (-kv[1], kv[0]))
    ]
    hub = analysis.central_hub()
    return (
        render_table(
            ["source continent", "destination continent", "websites"],
            rows,
            title="Figure 6: continental tracking flows",
        )
        + f"\ncentral hub: {hub}"
    )


def render_fig7(analysis: HostingAnalysis, top: int = 12) -> str:
    rows = list(analysis.domains_per_destination().items())[:top]
    return render_table(
        ["hosting country", "non-local tracking domains"],
        rows,
        title="Figure 7: hosting-country distribution of non-local tracking domains",
    )


def render_fig8(analysis: OrganizationAnalysis, top: int = 12) -> str:
    rows = analysis.top_organizations(top)
    dist = analysis.home_country_distribution()
    body = render_table(
        ["organisation", "site embeddings"],
        rows,
        title="Figure 8: organisations operating non-local trackers",
    )
    ownership = ", ".join(f"{cc}={pct:.0f}%" for cc, pct in list(dist.items())[:5])
    return body + f"\norganisations observed: {len(analysis.observed_organizations())}\nhome countries: {ownership}"


def render_table1(analysis: PolicyAnalysis) -> str:
    rows = [
        (r.country_code, r.policy_type, "Yes" if r.enacted else "No", f"{r.nonlocal_pct:.2f}")
        for r in analysis.table_rows()
    ]
    body = render_table(
        ["country", "type", "enacted", "non-local %"],
        rows,
        title="Table 1: data localization policy vs non-local tracker rate",
    )
    return body + f"\nstrictness-vs-rate Spearman rho={analysis.strictness_correlation():.2f}"
