"""One-object study summary: every headline number, JSON-ready.

Collects the metrics the paper's abstract and evaluation headline into a
single serialisable structure — used by the artifact manifest, the CLI,
and downstream comparisons (e.g. longitudinal before/after diffs).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

__all__ = ["StudySummary", "summarize_study"]


@dataclass
class StudySummary:
    """Headline metrics of one study run."""

    countries: List[str] = field(default_factory=list)
    countries_with_foreign_trackers: int = 0
    regional_mean_pct: float = 0.0
    regional_stdev_pct: float = 0.0
    government_mean_pct: float = 0.0
    government_stdev_pct: float = 0.0
    reg_gov_pearson: float = 0.0
    combined_pct_by_country: Dict[str, float] = field(default_factory=dict)
    top_destinations: Dict[str, float] = field(default_factory=dict)
    central_hub_continent: Optional[str] = None
    top_hosting_countries: Dict[str, int] = field(default_factory=dict)
    organizations_observed: int = 0
    org_home_distribution: Dict[str, float] = field(default_factory=dict)
    sites_with_nonlocal: int = 0
    first_party_sites: int = 0
    funnel: Dict[str, int] = field(default_factory=dict)
    policy_strictness_spearman: float = 0.0
    source_trace_origins: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> dict:
        return asdict(self)

    def headline(self) -> str:
        """The abstract, regenerated."""
        share = 100.0 * self.countries_with_foreign_trackers / max(1, len(self.countries))
        top = next(iter(self.top_destinations), "?")
        return (
            f"Websites in {share:.0f}% of examined countries "
            f"({self.countries_with_foreign_trackers}/{len(self.countries)}) embed "
            f"trackers hosted in foreign nations; on average {self.regional_mean_pct:.1f}% "
            f"of regional websites (sigma {self.regional_stdev_pct:.1f}) and "
            f"{self.government_mean_pct:.1f}% of government websites transmit data "
            f"abroad. {top} is the single most common destination and "
            f"{self.central_hub_continent} the central hub for tracking aggregation; "
            f"{self.org_home_distribution.get('US', 0):.0f}% of observed tracking "
            f"organisations are US-based."
        )


def summarize_study(outcome) -> StudySummary:
    """Build a :class:`StudySummary` from a :class:`~repro.study.StudyOutcome`."""
    prevalence = outcome.prevalence()
    regional = prevalence.regional_mean_and_stdev()
    government = prevalence.government_mean_and_stdev()
    flows = outcome.flows()
    organizations = outcome.organizations()
    first_party = outcome.first_party()
    funnel = outcome.funnel()
    return StudySummary(
        countries=sorted(outcome.datasets),
        countries_with_foreign_trackers=len(prevalence.countries_with_foreign_trackers()),
        regional_mean_pct=round(regional["mean"], 2),
        regional_stdev_pct=round(regional["stdev"], 2),
        government_mean_pct=round(government["mean"], 2),
        government_stdev_pct=round(government["stdev"], 2),
        reg_gov_pearson=round(prevalence.regional_government_correlation(), 3),
        combined_pct_by_country={
            cc: round(pct, 2) for cc, pct in prevalence.combined_pct_by_country().items()
        },
        top_destinations={
            cc: round(share, 1)
            for cc, share in list(flows.destination_shares().items())[:8]
        },
        central_hub_continent=outcome.continents().central_hub(),
        top_hosting_countries=dict(list(outcome.hosting().domains_per_destination().items())[:8]),
        organizations_observed=len(organizations.observed_organizations()),
        org_home_distribution={
            cc: round(pct, 1)
            for cc, pct in organizations.home_country_distribution().items()
        },
        sites_with_nonlocal=first_party.sites_with_nonlocal(),
        first_party_sites=len(first_party.first_party_sites()),
        funnel={
            "total_hosts": funnel.total_hosts,
            "nonlocal_candidates": funnel.nonlocal_candidates,
            "after_latency_constraints": funnel.after_latency_constraints,
            "after_rdns": funnel.after_rdns,
        },
        policy_strictness_spearman=round(outcome.policy().strictness_correlation(), 3),
        source_trace_origins=dict(outcome.source_trace_origins),
    )
