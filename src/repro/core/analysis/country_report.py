"""Per-country markdown report.

Generates the full picture for one measurement country — the document a
regulator or site operator would actually read: prevalence, where the
data goes, who receives it, what stays local, the policy context, and
the measurement provenance (trace origin, funnel, constraint evidence).
Exposed as ``gamma report CC``.
"""

from __future__ import annotations

from collections import Counter
from typing import List

__all__ = ["render_country_report"]


def _section(title: str) -> List[str]:
    return ["", f"## {title}", ""]


def render_country_report(outcome, country_code: str) -> str:
    """Markdown report for *country_code* from a study outcome."""
    scenario = outcome.scenario
    result = outcome.result_for(country_code)
    dataset = outcome.datasets[country_code]
    geolocation = outcome.geolocations[country_code]
    country = scenario.world.geo.country(country_code)
    policy = scenario.policy.get(country_code) if scenario.policy.has(country_code) else None

    lines: List[str] = [
        f"# Tracker data-flow report: {country.name} ({country_code})",
        "",
        f"Measured from {dataset.city_key} on a {dataset.os_name} machine "
        f"({dataset.browser}); source traceroutes: "
        f"{outcome.source_trace_origins.get(country_code, 'unknown')}.",
    ]

    # -- headline -------------------------------------------------------------
    tracked = [s for s in result.sites if s.has_nonlocal_tracker]
    lines += _section("Headline")
    lines.append(
        f"* {len(tracked)} of {len(result.sites)} analysed sites "
        f"({100 * len(tracked) / max(1, len(result.sites)):.1f} %) transmit data to "
        "trackers hosted outside the country."
    )
    regional = result.regional_sites
    government = result.government_sites
    if regional:
        pct = 100 * sum(1 for s in regional if s.has_nonlocal_tracker) / len(regional)
        lines.append(f"* Regional websites: {pct:.1f} % affected ({len(regional)} sites).")
    if government:
        pct = 100 * sum(1 for s in government if s.has_nonlocal_tracker) / len(government)
        lines.append(f"* Government websites: {pct:.1f} % affected ({len(government)} sites).")
    lines.append(
        f"* Page loads: {dataset.loaded_count}/{dataset.attempted_count} targets "
        f"({dataset.load_success_pct():.0f} %)."
    )

    # -- destinations ----------------------------------------------------------
    destinations = Counter()
    organisations = Counter()
    for site in result.sites:
        for tracker in site.trackers:
            destinations[tracker.destination_country] += 1
            if tracker.org_name:
                organisations[tracker.org_name] += 1
    lines += _section("Where the data goes")
    if destinations:
        for dest, count in destinations.most_common(8):
            name = scenario.world.geo.country(dest).name
            lines.append(f"* {name} ({dest}): {count} tracker observations")
    else:
        lines.append("* No verified cross-border tracker flows.")

    lines += _section("Who receives it")
    if organisations:
        for org, count in organisations.most_common(8):
            home = scenario.directory.get(org).home_country if scenario.directory.has(org) else "?"
            lines.append(f"* {org} (headquartered {home}): {count} observations")
    else:
        lines.append("* No organisations identified.")

    # -- worst sites -----------------------------------------------------------
    if tracked:
        lines += _section("Most exposed sites")
        worst = sorted(tracked, key=lambda s: -s.tracker_count)[:5]
        for site in worst:
            lines.append(
                f"* `{site.url}` ({site.category}): {site.tracker_count} non-local "
                f"tracking domains -> {', '.join(site.destination_countries())}"
            )

    # -- local trackers ----------------------------------------------------------
    local = outcome.local_trackers()
    local_pct = local.prevalence_pct(country_code)
    lines += _section("Domestic tracking")
    lines.append(f"* {local_pct:.1f} % of sites embed trackers served from inside the country.")
    foreign_share = local.foreign_owned_share(country_code)
    if foreign_share is not None:
        lines.append(
            f"* {foreign_share:.0%} of those in-country tracker hosts are operated by "
            "foreign-headquartered companies."
        )

    # -- policy ------------------------------------------------------------------
    if policy is not None:
        lines += _section("Policy context")
        lines.append(
            f"* Data-localization regime: **{policy.policy_type}** "
            f"({'enacted' if policy.enacted else 'not yet in effect'})"
            + (f" — {policy.note}" if policy.note else "")
        )
        lines.append(
            "* Note: observed cross-border flows do not by themselves establish "
            "violations; legal bases (consent, contracts, adequacy) are out of scope."
        )

    # -- provenance ---------------------------------------------------------------
    funnel = geolocation.funnel
    lines += _section("Measurement provenance")
    lines.append(
        f"* Geolocation funnel: {funnel.total_hosts} domain observations, "
        f"{funnel.nonlocal_candidates} non-local candidates, "
        f"{funnel.discarded_source}/{funnel.discarded_destination}/{funnel.discarded_rdns} "
        "discarded by the source/destination/reverse-DNS constraints, "
        f"{funnel.verified_nonlocal} verified."
    )
    counts = dataset.traceroute_counts()
    lines.append(
        f"* Traceroutes launched by the volunteer: {counts['attempted']} "
        f"({counts['reached']} reached their target)."
    )
    statuses = Counter(v.status for v in geolocation.verdicts.values())
    lines.append(
        "* Server verdicts: "
        + ", ".join(f"{status}={count}" for status, count in sorted(statuses.items()))
        + "."
    )
    return "\n".join(lines) + "\n"
