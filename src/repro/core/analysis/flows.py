"""Figure 5: non-local tracking flows from source to destination countries.

Flow weight = number of websites in the source country with at least one
verified non-local tracker hosted in the destination country.  The
analysis also reproduces the paper's derived observations: destination
shares among websites-with-non-local-trackers (France 43 %...), how many
distinct sources feed each destination, and the single-source
sensitivity test (e.g. Australia's share collapsing without New Zealand).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis.records import CountryStudyResult

try:  # pragma: no cover - exercised via the objects-engine fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["FlowEdge", "FlowAnalysis"]


@dataclass(frozen=True, slots=True)
class FlowEdge:
    """One source->destination edge of the flow diagram."""

    source: str
    destination: str
    website_count: int


class FlowAnalysis:
    """Country-to-country flow computations.

    With a :class:`~repro.core.analysis.frames.StudyFrame` the flow
    queries become group-bys over the frame's unique (site, destination)
    pair table; without one they walk the object graph.  Both paths
    return identical values in identical order — the frame path
    reproduces the object path's dict-insertion tie-breaks exactly.
    """

    def __init__(
        self, results: Sequence[CountryStudyResult], frame=None
    ):
        self._frame = frame if _np is not None else None
        # Listing a lazy result sequence would force materialisation;
        # only snapshot when the objects are the compute path.
        self._results = results if self._frame is not None else list(results)

    # -- core matrices -------------------------------------------------------
    def edges(self, category: Optional[str] = None) -> List[FlowEdge]:
        frame = self._frame
        if frame is not None:
            sites, ranks, ranked = frame.dest_pairs()
            if category is not None:
                keep = frame.site_mask(category)[sites]
                sites, ranks = sites[keep], ranks[keep]
            width = len(ranked) or 1
            keys = frame.site_country[sites] * width + ranks
            unique, counts = _np.unique(keys, return_counts=True)
            entries = [
                ((frame.countries[key // width], ranked[key % width]), n)
                for key, n in zip(unique.tolist(), counts.tolist())
            ]
            entries.sort(key=lambda kv: (-kv[1], kv[0]))
            return [
                FlowEdge(source=s, destination=d, website_count=n)
                for (s, d), n in entries
            ]
        weights: Dict[Tuple[str, str], int] = {}
        for result in self._results:
            for site in result.sites_in(category):
                for destination in site.destination_countries():
                    key = (result.country_code, destination)
                    weights[key] = weights.get(key, 0) + 1
        return [
            FlowEdge(source=s, destination=d, website_count=n)
            for (s, d), n in sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    def sites_with_nonlocal(self, category: Optional[str] = None) -> int:
        """Denominator: websites (all countries) with >= 1 non-local tracker."""
        frame = self._frame
        if frame is not None:
            return int(_np.count_nonzero(
                frame.site_mask(category) & frame.has_tracker()
            ))
        return sum(
            1
            for result in self._results
            for site in result.sites_in(category)
            if site.has_nonlocal_tracker
        )

    # -- destination views ---------------------------------------------------
    def destination_shares(
        self, category: Optional[str] = None, exclude_sources: Sequence[str] = ()
    ) -> Dict[str, float]:
        """Per destination: % of websites-with-non-local using it (>= 1 tracker)."""
        frame = self._frame
        if frame is not None:
            site_ok = frame.site_mask(category, exclude_sources)
            total = int(_np.count_nonzero(site_ok & frame.has_tracker()))
            if total == 0:
                return {}
            sites, ranks, ranked = frame.dest_pairs()
            ranks = ranks[site_ok[sites]]
            unique, first, counts = _np.unique(
                ranks, return_index=True, return_counts=True
            )
            # First-occurrence order reproduces the object path's
            # dict-insertion order; the -count sort is stable over it.
            entries = [
                (ranked[int(unique[i])], int(counts[i]))
                for i in _np.argsort(first, kind="stable").tolist()
            ]
            entries.sort(key=lambda kv: -kv[1])
            return {dest: 100.0 * n / total for dest, n in entries}
        skip = set(exclude_sources)
        total = sum(
            1
            for result in self._results
            if result.country_code not in skip
            for site in result.sites_in(category)
            if site.has_nonlocal_tracker
        )
        if total == 0:
            return {}
        counts: Dict[str, int] = {}
        for result in self._results:
            if result.country_code in skip:
                continue
            for site in result.sites_in(category):
                for destination in site.destination_countries():
                    counts[destination] = counts.get(destination, 0) + 1
        return {dest: 100.0 * n / total for dest, n in sorted(counts.items(), key=lambda kv: -kv[1])}

    def source_count_per_destination(self, category: Optional[str] = None) -> Dict[str, int]:
        """How many distinct source countries feed each destination."""
        sources: Dict[str, set] = {}
        for edge in self.edges(category):
            sources.setdefault(edge.destination, set()).add(edge.source)
        return {dest: len(srcs) for dest, srcs in sorted(sources.items(), key=lambda kv: -len(kv[1]))}

    def single_source_effect(self, destination: str, category: Optional[str] = None) -> Dict[str, float]:
        """Destination share with each source excluded in turn.

        Reveals single-source-driven destinations (NZ->Australia,
        Thailand->Malaysia): the share collapses when that source is
        removed.
        """
        effects: Dict[str, float] = {}
        if self._frame is not None:
            source_codes = list(self._frame.countries)
        else:
            source_codes = [result.country_code for result in self._results]
        for country_code in source_codes:
            shares = self.destination_shares(category, exclude_sources=[country_code])
            effects[country_code] = shares.get(destination, 0.0)
        return effects

    def dominant_source(self, destination: str) -> Optional[str]:
        """Source contributing the most websites to *destination*."""
        best: Optional[FlowEdge] = None
        for edge in self.edges():
            if edge.destination != destination:
                continue
            if best is None or edge.website_count > best.website_count:
                best = edge
        return best.source if best else None

    def destinations_of(self, source: str) -> Dict[str, int]:
        """Destination -> website count for one source country."""
        return {
            edge.destination: edge.website_count
            for edge in self.edges()
            if edge.source == source
        }
