"""Analyses reproducing every figure and table of the paper."""

from repro.core.analysis.continents import ContinentFlowAnalysis
from repro.core.analysis.country_report import render_country_report
from repro.core.analysis.crosscountry import CrossCountryAnalysis, SiteCountryView
from repro.core.analysis.firstparty import FirstPartyAnalysis, FirstPartySite
from repro.core.analysis.flows import FlowAnalysis, FlowEdge
from repro.core.analysis.hosting import HostingAnalysis
from repro.core.analysis.infrastructure import FlowInfrastructure, InfrastructureAnalysis
from repro.core.analysis.localtrackers import LocalTrackerAnalysis, LocalTrackerRecord
from repro.core.analysis.organizations import OrganizationAnalysis
from repro.core.analysis.perwebsite import CountryDistribution, PerWebsiteAnalysis
from repro.core.analysis.policy import PolicyAnalysis, PolicyRow
from repro.core.analysis.prevalence import CountryPrevalence, PrevalenceAnalysis
from repro.core.analysis.sankey import Flow, flows_from_edges, render_sankey
from repro.core.analysis.records import (
    CountryStudyResult,
    NonLocalTracker,
    SiteTrackerRecord,
    build_country_result,
)
from repro.core.analysis.report import (
    render_fig3,
    render_fig4,
    render_fig5,
    render_fig6,
    render_fig7,
    render_fig8,
    render_table,
    render_table1,
)
from repro.core.analysis.summary import StudySummary, summarize_study
from repro.core.analysis.svgfig import svg_flow_diagram, svg_grouped_bars
from repro.core.analysis.tabular import (
    flows_csv,
    flows_geojson,
    hosting_csv,
    per_website_csv,
    prevalence_csv,
)
from repro.core.analysis.stats import (
    BoxplotStats,
    boxplot_stats,
    mean,
    pearson,
    quantile,
    skewness,
    spearman,
    stdev,
)

__all__ = [
    "BoxplotStats",
    "ContinentFlowAnalysis",
    "CountryDistribution",
    "CountryPrevalence",
    "CountryStudyResult",
    "CrossCountryAnalysis",
    "FirstPartyAnalysis",
    "FirstPartySite",
    "FlowAnalysis",
    "Flow",
    "FlowEdge",
    "FlowInfrastructure",
    "HostingAnalysis",
    "InfrastructureAnalysis",
    "LocalTrackerAnalysis",
    "LocalTrackerRecord",
    "NonLocalTracker",
    "OrganizationAnalysis",
    "PerWebsiteAnalysis",
    "PolicyAnalysis",
    "PolicyRow",
    "PrevalenceAnalysis",
    "SiteCountryView",
    "SiteTrackerRecord",
    "StudySummary",
    "boxplot_stats",
    "build_country_result",
    "mean",
    "pearson",
    "per_website_csv",
    "prevalence_csv",
    "quantile",
    "render_country_report",
    "render_fig3",
    "render_fig4",
    "render_fig5",
    "render_fig6",
    "render_fig7",
    "render_fig8",
    "flows_csv",
    "flows_from_edges",
    "flows_geojson",
    "hosting_csv",
    "render_sankey",
    "render_table",
    "render_table1",
    "skewness",
    "spearman",
    "stdev",
    "summarize_study",
    "svg_flow_diagram",
    "svg_grouped_bars",
]
