"""Cross-country behaviour of the same website (paper section 8).

The paper closes by noting that one site can ship different trackers to
different countries — yahoo.com embeds only Yahoo/Google trackers for
Indian and British visitors but adds Demdex, Bluekai and Taboola for
Australian, Qatari and Emirati ones.  This analysis compares what one
domain's page actually requested from each measurement country and
attributes the differences to organisations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.gamma.output import VolunteerDataset
from repro.core.trackers.identify import TrackerIdentifier
from repro.core.trackers.orgs import OrganizationDirectory

try:  # pragma: no cover - exercised via the objects-engine fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["SiteCountryView", "CrossCountryAnalysis"]


@dataclass(frozen=True, slots=True)
class SiteCountryView:
    """One site's observable behaviour from one country."""

    url: str
    country_code: str
    tracker_hosts: Tuple[str, ...]
    tracker_orgs: Tuple[str, ...]


class CrossCountryAnalysis:
    """Same-site comparison across measurement countries.

    With a :class:`~repro.core.analysis.frames.StudyFrame` the per-site
    lookups run against the frame's dataset relation (site keys, loaded
    flags, requested-host columns) — no ``VolunteerDataset``
    materialisation; classification still batches through the
    identifier's memoised verdict cache either way.
    """

    def __init__(
        self,
        datasets: Dict[str, VolunteerDataset],
        identifier: TrackerIdentifier,
        directory: Optional[OrganizationDirectory] = None,
        frame=None,
    ):
        self._datasets = datasets
        self._identifier = identifier
        self._directory = directory or identifier.directory
        self._frame = frame if _np is not None else None

    def _measuring_rows(self, url: str) -> List[Tuple[str, int]]:
        """(country, dataset-relation row) pairs that loaded *url*."""
        frame = self._frame
        _country, _key, loaded, _start, _hosts = frame.dataset_relation()
        return [
            (frame.countries[country_index], row)
            for country_index, row in frame.sites_for_key(url)
            if loaded[row]
        ]

    def countries_measuring(self, url: str) -> List[str]:
        """Countries whose volunteers loaded *url* successfully."""
        if self._frame is not None:
            return sorted(cc for cc, _row in self._measuring_rows(url))
        return sorted(
            cc
            for cc, dataset in self._datasets.items()
            if url in dataset.websites and dataset.websites[url].loaded
        )

    def view(self, url: str, country_code: str) -> Optional[SiteCountryView]:
        frame = self._frame
        if frame is not None:
            row = next(
                (r for cc, r in self._measuring_rows(url) if cc == country_code),
                None,
            )
            if row is None:
                return None
            requested = [
                frame.strings[code]
                for code in _np.unique(frame.requested_host_codes(row)).tolist()
            ]
        else:
            dataset = self._datasets.get(country_code)
            if dataset is None or url not in dataset.websites:
                return None
            measurement = dataset.websites[url]
            if not measurement.loaded:
                return None
            requested = list(measurement.requested_hosts)
        hosts: List[str] = []
        orgs: Set[str] = set()
        # Batch through the identifier's memoised verdict cache: the same
        # hosts recur across the site's per-country views, so only the
        # first view pays for classification.
        verdicts = self._identifier.classify_many(requested, country_code)
        for host, verdict in verdicts.items():
            if not verdict.is_tracker:
                continue
            hosts.append(host)
            org = verdict.org_name
            if org is None and self._directory is not None:
                entry = self._directory.org_for_host(host)
                org = entry.name if entry else None
            if org:
                orgs.add(org)
        return SiteCountryView(
            url=url,
            country_code=country_code,
            tracker_hosts=tuple(sorted(hosts)),
            tracker_orgs=tuple(sorted(orgs)),
        )

    def views(self, url: str) -> List[SiteCountryView]:
        result = []
        for cc in self.countries_measuring(url):
            view = self.view(url, cc)
            if view is not None:
                result.append(view)
        return result

    def org_differences(self, url: str) -> Dict[str, List[str]]:
        """Organisations that only appear for *some* countries.

        Returns ``{org: [countries observing it]}`` for every org not seen
        from every measuring country — the regional-adaptation signal.
        """
        views = self.views(url)
        if not views:
            return {}
        seen_by: Dict[str, List[str]] = {}
        for view in views:
            for org in view.tracker_orgs:
                seen_by.setdefault(org, []).append(view.country_code)
        total = len(views)
        return {
            org: countries
            for org, countries in sorted(seen_by.items())
            if len(countries) < total
        }

    def is_uniform(self, url: str) -> bool:
        """Does the site embed the same tracker orgs everywhere it charts?"""
        return not self.org_differences(url)

    def most_adapted_sites(self, candidates: Sequence[str], top: int = 5) -> List[Tuple[str, int]]:
        """Rank sites by how many orgs vary across countries."""
        scored = [
            (url, len(self.org_differences(url)))
            for url in candidates
            if len(self.countries_measuring(url)) >= 2
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:top]
