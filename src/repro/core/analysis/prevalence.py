"""Figure 3 / Table 1 column: prevalence of non-local trackers.

Per country: the percentage of regional and of government websites that
embed at least one verified non-local tracker, plus the combined rate
(Table 1's "Non-Local" column) and the cross-country regional/government
Pearson correlation the paper reports as 0.89.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.analysis.records import CountryStudyResult, SiteTrackerRecord
from repro.core.analysis.stats import mean, pearson, stdev

__all__ = ["CountryPrevalence", "PrevalenceAnalysis"]


def _pct_with_trackers(sites: Sequence[SiteTrackerRecord]) -> float:
    if not sites:
        return 0.0
    return 100.0 * sum(1 for s in sites if s.has_nonlocal_tracker) / len(sites)


@dataclass(frozen=True)
class CountryPrevalence:
    """One country's Figure-3 bar pair plus the combined Table-1 rate."""

    country_code: str
    regional_pct: float
    government_pct: float
    combined_pct: float
    regional_count: int
    government_count: int


class PrevalenceAnalysis:
    """Computes prevalence rows across all study countries."""

    def __init__(self, results: Sequence[CountryStudyResult]):
        self._results = list(results)

    def per_country(self) -> List[CountryPrevalence]:
        rows: List[CountryPrevalence] = []
        for result in self._results:
            regional = result.regional_sites
            government = result.government_sites
            rows.append(
                CountryPrevalence(
                    country_code=result.country_code,
                    regional_pct=_pct_with_trackers(regional),
                    government_pct=_pct_with_trackers(government),
                    combined_pct=_pct_with_trackers(result.sites),
                    regional_count=len(regional),
                    government_count=len(government),
                )
            )
        return rows

    def combined_pct_by_country(self) -> Dict[str, float]:
        return {row.country_code: row.combined_pct for row in self.per_country()}

    def regional_mean_and_stdev(self) -> Dict[str, float]:
        """The paper's headline: mean 46.16 %, sigma 33.77 % for regional sites."""
        values = [row.regional_pct for row in self.per_country()]
        return {"mean": mean(values), "stdev": stdev(values)}

    def government_mean_and_stdev(self) -> Dict[str, float]:
        values = [row.government_pct for row in self.per_country()]
        return {"mean": mean(values), "stdev": stdev(values)}

    def regional_government_correlation(self) -> float:
        """Pearson r between regional and government rates (paper: 0.89)."""
        rows = self.per_country()
        return pearson([r.regional_pct for r in rows], [r.government_pct for r in rows])

    def countries_with_foreign_trackers(self) -> List[str]:
        """Countries where any site embeds a non-local tracker (paper: 21/23)."""
        return [
            row.country_code for row in self.per_country() if row.combined_pct > 0.0
        ]
