"""Figure 3 / Table 1 column: prevalence of non-local trackers.

Per country: the percentage of regional and of government websites that
embed at least one verified non-local tracker, plus the combined rate
(Table 1's "Non-Local" column) and the cross-country regional/government
Pearson correlation the paper reports as 0.89.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.analysis.records import CountryStudyResult, SiteTrackerRecord
from repro.core.analysis.stats import mean, pearson, stdev
from repro.web.website import CATEGORY_GOVERNMENT, CATEGORY_REGIONAL

try:  # pragma: no cover - exercised via the objects-engine fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["CountryPrevalence", "PrevalenceAnalysis"]


def _pct_with_trackers(sites: Sequence[SiteTrackerRecord]) -> float:
    if not sites:
        return 0.0
    return 100.0 * sum(1 for s in sites if s.has_nonlocal_tracker) / len(sites)


def _pct(hits: int, count: int) -> float:
    if not count:
        return 0.0
    return 100.0 * hits / count


@dataclass(frozen=True, slots=True)
class CountryPrevalence:
    """One country's Figure-3 bar pair plus the combined Table-1 rate."""

    country_code: str
    regional_pct: float
    government_pct: float
    combined_pct: float
    regional_count: int
    government_count: int


class PrevalenceAnalysis:
    """Computes prevalence rows across all study countries.

    With a :class:`~repro.core.analysis.frames.StudyFrame` the rows come
    from masked reductions over per-country column slices (memoised —
    every derived statistic reuses them); without one they walk the
    object graph per call, as they always have.
    """

    def __init__(self, results: Sequence[CountryStudyResult], frame=None):
        self._frame = frame if _np is not None else None
        self._rows = None
        self._results = results if self._frame is not None else list(results)

    def _frame_rows(self) -> List[CountryPrevalence]:
        if self._rows is not None:
            return self._rows
        frame = self._frame
        regional = frame.site_category == frame.code(CATEGORY_REGIONAL)
        government = frame.site_category == frame.code(CATEGORY_GOVERNMENT)
        tracked = frame.has_tracker()
        starts = frame.country_site_start
        rows: List[CountryPrevalence] = []
        for index, country_code in enumerate(frame.countries):
            lo, hi = int(starts[index]), int(starts[index + 1])
            reg, gov = regional[lo:hi], government[lo:hi]
            hit = tracked[lo:hi]
            n_reg = int(_np.count_nonzero(reg))
            n_gov = int(_np.count_nonzero(gov))
            rows.append(
                CountryPrevalence(
                    country_code=country_code,
                    regional_pct=_pct(int(_np.count_nonzero(reg & hit)), n_reg),
                    government_pct=_pct(int(_np.count_nonzero(gov & hit)), n_gov),
                    combined_pct=_pct(int(_np.count_nonzero(hit)), hi - lo),
                    regional_count=n_reg,
                    government_count=n_gov,
                )
            )
        self._rows = rows
        return rows

    def per_country(self) -> List[CountryPrevalence]:
        if self._frame is not None:
            return self._frame_rows()
        rows: List[CountryPrevalence] = []
        for result in self._results:
            regional = result.regional_sites
            government = result.government_sites
            rows.append(
                CountryPrevalence(
                    country_code=result.country_code,
                    regional_pct=_pct_with_trackers(regional),
                    government_pct=_pct_with_trackers(government),
                    combined_pct=_pct_with_trackers(result.sites),
                    regional_count=len(regional),
                    government_count=len(government),
                )
            )
        return rows

    def combined_pct_by_country(self) -> Dict[str, float]:
        return {row.country_code: row.combined_pct for row in self.per_country()}

    def regional_mean_and_stdev(self) -> Dict[str, float]:
        """The paper's headline: mean 46.16 %, sigma 33.77 % for regional sites."""
        values = [row.regional_pct for row in self.per_country()]
        return {"mean": mean(values), "stdev": stdev(values)}

    def government_mean_and_stdev(self) -> Dict[str, float]:
        values = [row.government_pct for row in self.per_country()]
        return {"mean": mean(values), "stdev": stdev(values)}

    def regional_government_correlation(self) -> float:
        """Pearson r between regional and government rates (paper: 0.89)."""
        rows = self.per_country()
        return pearson([r.regional_pct for r in rows], [r.government_pct for r in rows])

    def countries_with_foreign_trackers(self) -> List[str]:
        """Countries where any site embeds a non-local tracker (paper: 21/23)."""
        return [
            row.country_code for row in self.per_country() if row.combined_pct > 0.0
        ]
