"""Pure-stdlib SVG renderings of the paper's figure styles.

No plotting library is required offline, so the two figure styles the
paper uses — grouped bar charts (Figure 3) and alluvial flow diagrams
(Figures 5/6/8) — are generated as standalone SVG documents.  The
artifact exporter drops them in the bundle next to the text renderings;
they open in any browser.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple
from xml.sax.saxutils import escape

from repro.core.analysis.sankey import Flow

__all__ = ["svg_grouped_bars", "svg_flow_diagram"]

_FONT = "font-family='system-ui, sans-serif'"


def _document(width: int, height: int, body: List[str], title: str) -> str:
    parts = [
        f"<svg xmlns='http://www.w3.org/2000/svg' width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>",
        f"<rect width='{width}' height='{height}' fill='white'/>",
        f"<text x='16' y='26' font-size='16' font-weight='bold' {_FONT}>{escape(title)}</text>",
        *body,
        "</svg>",
    ]
    return "\n".join(parts) + "\n"


def svg_grouped_bars(
    rows: Sequence[Tuple[str, float, float]],
    title: str,
    series_labels: Tuple[str, str] = ("regional", "government"),
    max_value: float = 100.0,
) -> str:
    """Figure-3-style horizontal grouped bars: ``(label, a, b)`` rows."""
    if not rows:
        raise ValueError("no rows to draw")
    bar_height, group_gap, top = 10, 10, 56
    chart_left, chart_width = 80, 520
    height = top + len(rows) * (2 * bar_height + group_gap) + 30
    width = chart_left + chart_width + 80
    body: List[str] = [
        # legend
        f"<rect x='{chart_left}' y='34' width='12' height='10' fill='#2b6cb0'/>",
        f"<text x='{chart_left + 18}' y='43' font-size='11' {_FONT}>{escape(series_labels[0])}</text>",
        f"<rect x='{chart_left + 120}' y='34' width='12' height='10' fill='#c05621'/>",
        f"<text x='{chart_left + 138}' y='43' font-size='11' {_FONT}>{escape(series_labels[1])}</text>",
    ]
    y = top
    for label, a, b in rows:
        a_width = max(0.0, min(a, max_value)) / max_value * chart_width
        b_width = max(0.0, min(b, max_value)) / max_value * chart_width
        body.append(
            f"<text x='{chart_left - 8}' y='{y + bar_height + 2}' font-size='11' "
            f"text-anchor='end' {_FONT}>{escape(str(label))}</text>"
        )
        body.append(f"<rect x='{chart_left}' y='{y}' width='{a_width:.1f}' "
                    f"height='{bar_height}' fill='#2b6cb0'/>")
        body.append(f"<text x='{chart_left + a_width + 4:.1f}' y='{y + bar_height - 1}' "
                    f"font-size='9' {_FONT}>{a:.0f}</text>")
        y += bar_height + 2
        body.append(f"<rect x='{chart_left}' y='{y}' width='{b_width:.1f}' "
                    f"height='{bar_height}' fill='#c05621'/>")
        body.append(f"<text x='{chart_left + b_width + 4:.1f}' y='{y + bar_height - 1}' "
                    f"font-size='9' {_FONT}>{b:.0f}</text>")
        y += bar_height + group_gap
    return _document(width, height, body, title)


def svg_flow_diagram(flows: Sequence[Flow], title: str, max_nodes: int = 14) -> str:
    """Alluvial diagram: source nodes left, destination nodes right,
    ribbon thickness proportional to weight (Figures 5/6/8 style)."""
    flows = [f for f in flows if f.weight > 0]
    if not flows:
        raise ValueError("no flows to draw")
    sources: dict = {}
    targets: dict = {}
    for flow in flows:
        sources[flow.source] = sources.get(flow.source, 0) + flow.weight
        targets[flow.target] = targets.get(flow.target, 0) + flow.weight
    left = sorted(sources.items(), key=lambda kv: (-kv[1], kv[0]))[:max_nodes]
    right = sorted(targets.items(), key=lambda kv: (-kv[1], kv[0]))[:max_nodes]
    kept_left = {name for name, _ in left}
    kept_right = {name for name, _ in right}
    drawable = [f for f in flows if f.source in kept_left and f.target in kept_right]

    height_per_unit = 360.0 / max(sum(v for _n, v in left), sum(v for _n, v in right))
    gap, top = 8, 56
    left_x, right_x, node_width, width = 140, 560, 14, 760

    def layout(nodes):
        positions = {}
        y = top
        for name, value in nodes:
            h = max(3.0, value * height_per_unit)
            positions[name] = (y, h)
            y += h + gap
        return positions, y

    left_pos, left_bottom = layout(left)
    right_pos, right_bottom = layout(right)
    height = int(max(left_bottom, right_bottom)) + 24

    body: List[str] = []
    # Ribbons first (under the nodes).  Each node hands out vertical slots
    # in sorted order so ribbons don't overlap at their anchors.
    left_cursor = {name: left_pos[name][0] for name in left_pos}
    right_cursor = {name: right_pos[name][0] for name in right_pos}
    for flow in sorted(drawable, key=lambda f: (-f.weight, f.source, f.target)):
        thickness = max(1.5, flow.weight * height_per_unit)
        y0 = left_cursor[flow.source] + thickness / 2
        y1 = right_cursor[flow.target] + thickness / 2
        left_cursor[flow.source] += thickness
        right_cursor[flow.target] += thickness
        x0, x1 = left_x + node_width, right_x
        mid = (x0 + x1) / 2
        body.append(
            f"<path d='M {x0} {y0:.1f} C {mid} {y0:.1f}, {mid} {y1:.1f}, {x1} {y1:.1f}' "
            f"fill='none' stroke='#4a5568' stroke-opacity='0.35' "
            f"stroke-width='{thickness:.1f}'/>"
        )
    # Nodes and labels.
    for name, value in left:
        y, h = left_pos[name]
        body.append(f"<rect x='{left_x}' y='{y:.1f}' width='{node_width}' height='{h:.1f}' "
                    "fill='#2b6cb0'/>")
        body.append(f"<text x='{left_x - 6}' y='{y + h / 2 + 4:.1f}' font-size='11' "
                    f"text-anchor='end' {_FONT}>{escape(name)} ({value})</text>")
    for name, value in right:
        y, h = right_pos[name]
        body.append(f"<rect x='{right_x}' y='{y:.1f}' width='{node_width}' height='{h:.1f}' "
                    "fill='#c05621'/>")
        body.append(f"<text x='{right_x + node_width + 6}' y='{y + h / 2 + 4:.1f}' "
                    f"font-size='11' {_FONT}>{escape(name)} ({value})</text>")
    return _document(width, height, body, title)
