"""Figure 6: non-local tracking flows aggregated by continent.

Reproduces the paper's continent-level observations: Europe as the sole
large inward hub, Africa receiving no inward flow from other continents,
Oceania's flow staying within Oceania (NZ -> AU), and South America's
flow staying within the continent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.analysis.flows import FlowAnalysis
from repro.core.analysis.records import CountryStudyResult
from repro.netsim.geography import GeoRegistry

__all__ = ["ContinentFlowAnalysis"]


class ContinentFlowAnalysis:
    """Continent-to-continent aggregation of the Figure-5 flow edges."""

    def __init__(self, results: Sequence[CountryStudyResult], registry: GeoRegistry, frame=None):
        self._flows = FlowAnalysis(results, frame=frame)
        self._registry = registry

    def matrix(self, category: Optional[str] = None) -> Dict[Tuple[str, str], int]:
        """``(source continent, destination continent) -> website count``."""
        aggregated: Dict[Tuple[str, str], int] = {}
        for edge in self._flows.edges(category):
            key = (
                self._registry.continent_of(edge.source),
                self._registry.continent_of(edge.destination),
            )
            aggregated[key] = aggregated.get(key, 0) + edge.website_count
        return aggregated

    def inward_flow(self, continent: str) -> int:
        """Websites on *other* continents using trackers hosted in *continent*."""
        return sum(
            count
            for (src, dst), count in self.matrix().items()
            if dst == continent and src != continent
        )

    def outward_flow(self, continent: str) -> int:
        return sum(
            count
            for (src, dst), count in self.matrix().items()
            if src == continent and dst != continent
        )

    def intra_flow(self, continent: str) -> int:
        return self.matrix().get((continent, continent), 0)

    def inward_source_continents(self, continent: str) -> List[str]:
        """Which other continents send flow into *continent*."""
        return sorted(
            {src for (src, dst), n in self.matrix().items() if dst == continent and src != continent and n > 0}
        )

    def central_hub(self) -> Optional[str]:
        """The continent with the largest inward flow (paper: Europe)."""
        continents = {dst for (_src, dst) in self.matrix()}
        if not continents:
            return None
        return max(sorted(continents), key=self.inward_flow)

    def share_staying_within(self, continent: str) -> float:
        """Fraction of a continent's outgoing flow that stays on-continent."""
        intra = self.intra_flow(continent)
        total = intra + self.outward_flow(continent)
        if total == 0:
            return 0.0
        return intra / total
