"""Statistics helpers used across the analyses.

Self-contained implementations (no external dependencies) of the handful
of statistics the paper reports: Pearson and Spearman correlation,
quartiles with linear interpolation, Tukey box-plot summaries, and a
skewness estimate for the distribution-shape remarks of section 6.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

__all__ = [
    "mean",
    "stdev",
    "pearson",
    "spearman",
    "quantile",
    "BoxplotStats",
    "boxplot_stats",
    "skewness",
]


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    if not values:
        raise ValueError("stdev of empty sequence")
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def pearson(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient."""
    if len(xs) != len(ys):
        raise ValueError("sequences must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points")
    mx, my = mean(xs), mean(ys)
    cov = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sx = math.sqrt(sum((x - mx) ** 2 for x in xs))
    sy = math.sqrt(sum((y - my) ** 2 for y in ys))
    if sx == 0 or sy == 0:
        raise ValueError("correlation undefined for constant sequences")
    return cov / (sx * sy)


def _ranks(values: Sequence[float]) -> List[float]:
    """Fractional ranks (ties get the average rank)."""
    indexed = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(indexed):
        j = i
        while j + 1 < len(indexed) and values[indexed[j + 1]] == values[indexed[i]]:
            j += 1
        avg_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[indexed[k]] = avg_rank
        i = j + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson over fractional ranks)."""
    return pearson(_ranks(xs), _ranks(ys))


def quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile, ``q`` in [0, 1]."""
    if not values:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError("q must be in [0, 1]")
    ordered = sorted(values)
    position = q * (len(ordered) - 1)
    low = int(math.floor(position))
    high = int(math.ceil(position))
    if low == high:
        return float(ordered[low])
    weight = position - low
    return ordered[low] * (1 - weight) + ordered[high] * weight


@dataclass(frozen=True)
class BoxplotStats:
    """Tukey box-plot summary of one distribution."""

    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    mean: float
    stdev: float
    whisker_low: float
    whisker_high: float
    outliers: Tuple[float, ...]

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1


def boxplot_stats(values: Sequence[float]) -> BoxplotStats:
    """Five-number summary with 1.5-IQR whiskers and outliers."""
    if not values:
        raise ValueError("boxplot of empty sequence")
    q1 = quantile(values, 0.25)
    q3 = quantile(values, 0.75)
    iqr = q3 - q1
    low_fence = q1 - 1.5 * iqr
    high_fence = q3 + 1.5 * iqr
    inliers = [v for v in values if low_fence <= v <= high_fence]
    outliers = tuple(sorted(v for v in values if v < low_fence or v > high_fence))
    whisker_low = min(inliers) if inliers else q1
    whisker_high = max(inliers) if inliers else q3
    return BoxplotStats(
        count=len(values),
        minimum=min(values),
        q1=q1,
        median=quantile(values, 0.5),
        q3=q3,
        maximum=max(values),
        mean=mean(values),
        stdev=stdev(values),
        whisker_low=whisker_low,
        whisker_high=whisker_high,
        outliers=outliers,
    )


def skewness(values: Sequence[float]) -> Optional[float]:
    """Fisher-Pearson moment skewness; ``None`` for degenerate input."""
    if len(values) < 3:
        return None
    sigma = stdev(values)
    if sigma == 0:
        return None
    mu = mean(values)
    return sum(((v - mu) / sigma) ** 3 for v in values) / len(values)
