"""CSV/GeoJSON export of the analyses.

The paper's artefact release includes data others can re-plot.  These
writers produce the per-figure data series as CSV (for spreadsheets and
plotting scripts) and the flow edges as GeoJSON LineStrings (drop them on
any web map to get the Figure-5 flow picture geographically).
"""

from __future__ import annotations

import csv
import io
import json
from typing import List, Sequence

from repro.netsim.geography import GeoRegistry

__all__ = [
    "prevalence_csv",
    "flows_csv",
    "hosting_csv",
    "per_website_csv",
    "flows_geojson",
]


def _write_csv(header: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


def prevalence_csv(prevalence) -> str:
    """Figure 3 / Table 1 data: one row per country."""
    rows = [
        (r.country_code, f"{r.regional_pct:.2f}", f"{r.government_pct:.2f}",
         f"{r.combined_pct:.2f}", r.regional_count, r.government_count)
        for r in prevalence.per_country()
    ]
    return _write_csv(
        ["country", "regional_pct", "government_pct", "combined_pct",
         "regional_sites", "government_sites"],
        rows,
    )


def flows_csv(flows) -> str:
    """Figure 5 data: one row per source->destination edge."""
    rows = [
        (edge.source, edge.destination, edge.website_count)
        for edge in flows.edges()
    ]
    return _write_csv(["source", "destination", "website_count"], rows)


def hosting_csv(hosting) -> str:
    """Figure 7 data: one row per hosting country."""
    rows = list(hosting.domains_per_destination().items())
    return _write_csv(["hosting_country", "nonlocal_tracking_domains"], rows)


def per_website_csv(per_website, countries: Sequence[str]) -> str:
    """Figure 4 raw data: one row per (country, site-count) pair."""
    rows: List[Sequence[object]] = []
    for cc in countries:
        for count in per_website.counts_for(cc):
            rows.append((cc, count))
    return _write_csv(["country", "nonlocal_tracker_domains"], rows)


def flows_geojson(flows, registry: GeoRegistry, min_weight: int = 1) -> str:
    """Figure 5 as GeoJSON: one LineString per edge, weight as property."""
    features: List[dict] = []
    for edge in flows.edges():
        if edge.website_count < min_weight:
            continue
        src = registry.country(edge.source).capital
        dst = registry.country(edge.destination).capital
        features.append({
            "type": "Feature",
            "geometry": {
                "type": "LineString",
                "coordinates": [[src.lon, src.lat], [dst.lon, dst.lat]],
            },
            "properties": {
                "source": edge.source,
                "destination": edge.destination,
                "website_count": edge.website_count,
            },
        })
    return json.dumps(
        {"type": "FeatureCollection", "features": features},
        indent=2,
        sort_keys=True,
    )
