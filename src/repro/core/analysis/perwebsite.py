"""Figures 4 and 9: distribution of non-local tracker domains per website.

Per-site counts of distinct non-local tracking domains (full hostnames,
per the paper's definition in section 6.2), summarised as box plots per
country/category (Figure 4) and as frequency histograms (Figure 9).
Counts are computed over sites that embed at least one non-local tracker
— the population whose spread the paper's boxes describe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.analysis.records import CountryStudyResult
from repro.core.analysis.stats import BoxplotStats, boxplot_stats, skewness

try:  # pragma: no cover - exercised via the objects-engine fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["CountryDistribution", "PerWebsiteAnalysis"]


@dataclass(frozen=True, slots=True)
class CountryDistribution:
    """Distribution summary for one country/category."""

    country_code: str
    category: Optional[str]  # None = combined
    counts: tuple  # per-site tracker counts (sites with >= 1)
    box: Optional[BoxplotStats]
    skew: Optional[float]

    @property
    def sites_with_trackers(self) -> int:
        return len(self.counts)


class PerWebsiteAnalysis:
    """Per-site tracker-count distributions across countries.

    With a :class:`~repro.core.analysis.frames.StudyFrame` the per-site
    distinct-host counts come from the frame's memoised unique
    (site, host) pair table instead of per-record set builds.
    """

    def __init__(self, results: Sequence[CountryStudyResult], frame=None):
        self._frame = frame if _np is not None else None
        self._results = results if self._frame is not None else list(results)

    def counts_for(self, country_code: str, category: Optional[str] = None) -> List[int]:
        frame = self._frame
        if frame is not None:
            mask = frame.site_country == frame.country_index(country_code)
            if category is not None:
                mask &= frame.site_category == frame.code(category)
            mask &= frame.has_tracker()
            return frame.tracker_host_counts()[mask].tolist()
        result = self._find(country_code)
        return [
            site.tracker_count
            for site in result.sites_in(category)
            if site.has_nonlocal_tracker
        ]

    def distribution(self, country_code: str, category: Optional[str] = None) -> CountryDistribution:
        counts = self.counts_for(country_code, category)
        values = [float(c) for c in counts]
        return CountryDistribution(
            country_code=country_code,
            category=category,
            counts=tuple(counts),
            box=boxplot_stats(values) if values else None,
            skew=skewness(values),
        )

    def all_distributions(self, category: Optional[str] = None) -> List[CountryDistribution]:
        if self._frame is not None:
            return [
                self.distribution(country_code, category)
                for country_code in self._frame.countries
            ]
        return [self.distribution(r.country_code, category) for r in self._results]

    def histogram(self, country_code: str, max_count: Optional[int] = None) -> Dict[int, int]:
        """Figure 9: frequency of per-site tracker counts for one country."""
        counts = self.counts_for(country_code)
        histogram: Dict[int, int] = {}
        for count in counts:
            if max_count is not None and count > max_count:
                count = max_count
            histogram[count] = histogram.get(count, 0) + 1
        return dict(sorted(histogram.items()))

    def outlier_sites(self, country_code: str) -> List[str]:
        """Sites whose tracker count is a Tukey outlier for their country."""
        distribution = self.distribution(country_code)
        if distribution.box is None or not distribution.box.outliers:
            return []
        outlier_values = set(distribution.box.outliers)
        frame = self._frame
        if frame is not None:
            mask = frame.site_country == frame.country_index(country_code)
            mask &= frame.has_tracker()
            counts = frame.tracker_host_counts()
            return sorted(
                frame.strings[int(frame.site_url[site])]
                for site in _np.flatnonzero(mask).tolist()
                if float(counts[site]) in outlier_values
            )
        result = self._find(country_code)
        return sorted(
            site.url
            for site in result.sites
            if site.has_nonlocal_tracker and float(site.tracker_count) in outlier_values
        )

    def _find(self, country_code: str) -> CountryStudyResult:
        for result in self._results:
            if result.country_code == country_code:
                return result
        raise KeyError(f"no study result for {country_code}")
