"""Section 6.7: first-party vs third-party non-local trackers.

Among all websites with verified non-local trackers, how many embed a
tracker owned by the *same organisation as the site itself* (first-party
cross-border flow)?  The paper found 23 of 575 such sites, about half of
them Google properties under country-code TLDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.analysis.records import CountryStudyResult
from repro.core.trackers.party import PartyClassifier, PartyKind

__all__ = ["FirstPartySite", "FirstPartyAnalysis"]


@dataclass(frozen=True)
class FirstPartySite:
    """A site embedding at least one first-party non-local tracker."""

    url: str
    country_code: str
    owner_org: str
    first_party_hosts: tuple


class FirstPartyAnalysis:
    """First/third-party breakdown over the study results."""

    def __init__(self, results: Sequence[CountryStudyResult], classifier: PartyClassifier):
        self._results = list(results)
        self._classifier = classifier

    def sites_with_nonlocal(self) -> int:
        """Paper: 575 websites with non-local trackers across all sources."""
        return sum(
            1
            for result in self._results
            for site in result.sites
            if site.has_nonlocal_tracker
        )

    def first_party_sites(self) -> List[FirstPartySite]:
        """Sites embedding first-party non-local trackers (paper: 23)."""
        found: List[FirstPartySite] = []
        for result in self._results:
            for site in result.sites:
                if not site.has_nonlocal_tracker:
                    continue
                first_party_hosts = tuple(
                    sorted(
                        tracker.host
                        for tracker in site.trackers
                        if self._classifier.classify(site.url, tracker.host).kind == PartyKind.FIRST
                    )
                )
                if not first_party_hosts:
                    continue
                owner = self._classifier.classify(site.url, first_party_hosts[0]).site_org or ""
                found.append(
                    FirstPartySite(
                        url=site.url,
                        country_code=result.country_code,
                        owner_org=owner,
                        first_party_hosts=first_party_hosts,
                    )
                )
        return found

    def owner_breakdown(self) -> Dict[str, int]:
        """First-party sites per owning organisation (paper: ~50 % Google)."""
        counts: Dict[str, int] = {}
        for site in self.first_party_sites():
            counts[site.owner_org] = counts.get(site.owner_org, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def first_party_share(self) -> float:
        """Fraction of websites-with-non-local that have first-party flows."""
        total = self.sites_with_nonlocal()
        if total == 0:
            return 0.0
        return len(self.first_party_sites()) / total
