"""Section 6.7: first-party vs third-party non-local trackers.

Among all websites with verified non-local trackers, how many embed a
tracker owned by the *same organisation as the site itself* (first-party
cross-border flow)?  The paper found 23 of 575 such sites, about half of
them Google properties under country-code TLDs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.analysis.records import CountryStudyResult
from repro.core.trackers.party import PartyClassifier, PartyKind

try:  # pragma: no cover - exercised via the objects-engine fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["FirstPartySite", "FirstPartyAnalysis"]


@dataclass(frozen=True, slots=True)
class FirstPartySite:
    """A site embedding at least one first-party non-local tracker."""

    url: str
    country_code: str
    owner_org: str
    first_party_hosts: tuple


class FirstPartyAnalysis:
    """First/third-party breakdown over the study results.

    With a :class:`~repro.core.analysis.frames.StudyFrame` the walk runs
    over tracker-row columns with a per-(site, host) classification
    memo; without one it walks the object graph.  Per-site rows keep
    within-site host repeats in both paths, exactly as the records do.
    """

    def __init__(self, results: Sequence[CountryStudyResult], classifier: PartyClassifier, frame=None):
        self._frame = frame if _np is not None else None
        self._results = results if self._frame is not None else list(results)
        self._classifier = classifier

    def sites_with_nonlocal(self) -> int:
        """Paper: 575 websites with non-local trackers across all sources."""
        if self._frame is not None:
            return int(_np.count_nonzero(self._frame.has_tracker()))
        return sum(
            1
            for result in self._results
            for site in result.sites
            if site.has_nonlocal_tracker
        )

    def first_party_sites(self) -> List[FirstPartySite]:
        """Sites embedding first-party non-local trackers (paper: 23)."""
        found: List[FirstPartySite] = []
        frame = self._frame
        if frame is not None:
            strings = frame.strings
            classify = self._classifier.classify
            starts = frame.tracker_start
            kind_memo: dict = {}
            for site in _np.flatnonzero(frame.has_tracker()).tolist():
                url_code = int(frame.site_url[site])
                url = strings[url_code]
                hosts: List[str] = []
                lo, hi = int(starts[site]), int(starts[site + 1])
                for code in frame.trk_host[lo:hi].tolist():
                    key = (url_code, code)
                    kind = kind_memo.get(key)
                    if kind is None:
                        kind = classify(url, strings[code]).kind
                        kind_memo[key] = kind
                    if kind == PartyKind.FIRST:
                        hosts.append(strings[code])
                if not hosts:
                    continue
                first_party_hosts = tuple(sorted(hosts))
                owner = classify(url, first_party_hosts[0]).site_org or ""
                found.append(
                    FirstPartySite(
                        url=url,
                        country_code=frame.countries[
                            int(frame.site_country[site])
                        ],
                        owner_org=owner,
                        first_party_hosts=first_party_hosts,
                    )
                )
            return found
        for result in self._results:
            for site in result.sites:
                if not site.has_nonlocal_tracker:
                    continue
                first_party_hosts = tuple(
                    sorted(
                        tracker.host
                        for tracker in site.trackers
                        if self._classifier.classify(site.url, tracker.host).kind == PartyKind.FIRST
                    )
                )
                if not first_party_hosts:
                    continue
                owner = self._classifier.classify(site.url, first_party_hosts[0]).site_org or ""
                found.append(
                    FirstPartySite(
                        url=site.url,
                        country_code=result.country_code,
                        owner_org=owner,
                        first_party_hosts=first_party_hosts,
                    )
                )
        return found

    def owner_breakdown(self) -> Dict[str, int]:
        """First-party sites per owning organisation (paper: ~50 % Google)."""
        counts: Dict[str, int] = {}
        for site in self.first_party_sites():
            counts[site.owner_org] = counts.get(site.owner_org, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def first_party_share(self) -> float:
        """Fraction of websites-with-non-local that have first-party flows."""
        total = self.sites_with_nonlocal()
        if total == 0:
            return 0.0
        return len(self.first_party_sites()) / total
