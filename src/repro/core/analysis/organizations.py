"""Figure 8 / section 6.5: which organisations operate non-local trackers.

Flows from source countries to tracker-operating organisations, the
ownership geography of those organisations (paper: ~70 companies, 50 %
US-based, 10 % UK), country-exclusive trackers (e.g. Jordan-only ad
networks), and the AS-level cloud-hosting attribution (trackers riding
AWS/Google-Cloud infrastructure, including the Nairobi edge case).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.analysis.records import CountryStudyResult
from repro.core.trackers.orgs import OrganizationDirectory
from repro.geodb.ipinfo import IPInfoService

__all__ = ["OrganizationAnalysis"]


class OrganizationAnalysis:
    """Organisation-level views over the study results."""

    def __init__(
        self,
        results: Sequence[CountryStudyResult],
        directory: OrganizationDirectory,
        ipinfo: Optional[IPInfoService] = None,
    ):
        self._results = list(results)
        self._directory = directory
        self._ipinfo = ipinfo

    def flow_edges(self) -> List[Tuple[str, str, int]]:
        """``(source country, organisation, website count)`` edges."""
        weights: Dict[Tuple[str, str], int] = {}
        for result in self._results:
            for site in result.sites:
                for org in site.organizations():
                    key = (result.country_code, org)
                    weights[key] = weights.get(key, 0) + 1
        return [
            (source, org, count)
            for (source, org), count in sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    def observed_organizations(self) -> List[str]:
        """All organisations operating at least one observed non-local tracker."""
        orgs: Set[str] = set()
        for result in self._results:
            for site in result.sites:
                orgs.update(site.organizations())
        return sorted(orgs)

    def top_organizations(self, n: int = 10) -> List[Tuple[str, int]]:
        """Organisations by number of (site, org) embeddings."""
        counts: Dict[str, int] = {}
        for _source, org, count in self.flow_edges():
            counts[org] = counts.get(org, 0) + count
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def home_country_distribution(self) -> Dict[str, float]:
        """Share of observed organisations headquartered in each country."""
        observed = self.observed_organizations()
        if not observed:
            return {}
        counts: Dict[str, int] = {}
        for org_name in observed:
            home = self._directory.get(org_name).home_country
            counts[home] = counts.get(home, 0) + 1
        return {
            country: 100.0 * n / len(observed)
            for country, n in sorted(counts.items(), key=lambda kv: -kv[1])
        }

    def country_exclusive_organizations(self) -> Dict[str, List[str]]:
        """Organisations observed from exactly one source country."""
        sources: Dict[str, Set[str]] = {}
        for source, org, _count in self.flow_edges():
            sources.setdefault(org, set()).add(source)
        exclusive: Dict[str, List[str]] = {}
        for org, source_set in sources.items():
            if len(source_set) == 1:
                country = next(iter(source_set))
                exclusive.setdefault(country, []).append(org)
        return {country: sorted(orgs) for country, orgs in sorted(exclusive.items())}

    def cloud_hosted_trackers(self) -> Dict[str, List[str]]:
        """Cloud provider org -> tracker hosts served from its address space.

        Requires an IPinfo-like service; reproduces the paper's AS-level
        lookup finding trackers hosted on AWS/Google Cloud.
        """
        if self._ipinfo is None:
            raise ValueError("cloud attribution needs an IPInfoService")
        hosted: Dict[str, Set[str]] = {}
        for result in self._results:
            for site in result.sites:
                for tracker in site.trackers:
                    meta = self._ipinfo.lookup(tracker.address)
                    if meta is not None and meta.is_cloud_hosted:
                        hosted.setdefault(meta.org, set()).add(tracker.host)
        return {org: sorted(hosts) for org, hosts in sorted(hosted.items())}

    def cloud_hosted_in_country(self, country_code: str) -> List[str]:
        """Tracker hosts cloud-hosted at addresses located in *country_code*.

        The paper's Nairobi observation: trackers from SoundCloud, Spot.im
        etc. on Amazon-owned addresses in Kenya.
        """
        if self._ipinfo is None:
            raise ValueError("cloud attribution needs an IPInfoService")
        hosts: Set[str] = set()
        for result in self._results:
            for site in result.sites:
                for tracker in site.trackers:
                    if tracker.destination_country != country_code:
                        continue
                    meta = self._ipinfo.lookup(tracker.address)
                    if meta is not None and meta.is_cloud_hosted:
                        hosts.add(tracker.host)
        return sorted(hosts)
