"""Figure 8 / section 6.5: which organisations operate non-local trackers.

Flows from source countries to tracker-operating organisations, the
ownership geography of those organisations (paper: ~70 companies, 50 %
US-based, 10 % UK), country-exclusive trackers (e.g. Jordan-only ad
networks), and the AS-level cloud-hosting attribution (trackers riding
AWS/Google-Cloud infrastructure, including the Nairobi edge case).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.analysis.records import CountryStudyResult
from repro.core.trackers.orgs import OrganizationDirectory
from repro.geodb.ipinfo import IPInfoService

try:  # pragma: no cover - exercised via the objects-engine fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["OrganizationAnalysis"]


class OrganizationAnalysis:
    """Organisation-level views over the study results.

    With a :class:`~repro.core.analysis.frames.StudyFrame` the flow and
    observation queries group over the frame's unique (site, org) pair
    table; the directory/ipinfo attributions stay Python loops over the
    (much smaller) deduplicated vocabularies.
    """

    def __init__(
        self,
        results: Sequence[CountryStudyResult],
        directory: OrganizationDirectory,
        ipinfo: Optional[IPInfoService] = None,
        frame=None,
    ):
        self._frame = frame if _np is not None else None
        self._results = results if self._frame is not None else list(results)
        self._directory = directory
        self._ipinfo = ipinfo

    def flow_edges(self) -> List[Tuple[str, str, int]]:
        """``(source country, organisation, website count)`` edges."""
        frame = self._frame
        if frame is not None:
            sites, ranks, ranked = frame.org_pairs()
            width = len(ranked) or 1
            keys = frame.site_country[sites] * width + ranks
            unique, counts = _np.unique(keys, return_counts=True)
            entries = [
                ((frame.countries[key // width], ranked[key % width]), n)
                for key, n in zip(unique.tolist(), counts.tolist())
            ]
            entries.sort(key=lambda kv: (-kv[1], kv[0]))
            return [(source, org, count) for (source, org), count in entries]
        weights: Dict[Tuple[str, str], int] = {}
        for result in self._results:
            for site in result.sites:
                for org in site.organizations():
                    key = (result.country_code, org)
                    weights[key] = weights.get(key, 0) + 1
        return [
            (source, org, count)
            for (source, org), count in sorted(weights.items(), key=lambda kv: (-kv[1], kv[0]))
        ]

    def observed_organizations(self) -> List[str]:
        """All organisations operating at least one observed non-local tracker."""
        frame = self._frame
        if frame is not None:
            _sites, _ranks, ranked = frame.org_pairs()
            return list(ranked)  # already sorted, already deduplicated
        orgs: Set[str] = set()
        for result in self._results:
            for site in result.sites:
                orgs.update(site.organizations())
        return sorted(orgs)

    def top_organizations(self, n: int = 10) -> List[Tuple[str, int]]:
        """Organisations by number of (site, org) embeddings."""
        counts: Dict[str, int] = {}
        for _source, org, count in self.flow_edges():
            counts[org] = counts.get(org, 0) + count
        ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:n]

    def home_country_distribution(self) -> Dict[str, float]:
        """Share of observed organisations headquartered in each country."""
        observed = self.observed_organizations()
        if not observed:
            return {}
        counts: Dict[str, int] = {}
        for org_name in observed:
            home = self._directory.get(org_name).home_country
            counts[home] = counts.get(home, 0) + 1
        return {
            country: 100.0 * n / len(observed)
            for country, n in sorted(counts.items(), key=lambda kv: -kv[1])
        }

    def country_exclusive_organizations(self) -> Dict[str, List[str]]:
        """Organisations observed from exactly one source country."""
        sources: Dict[str, Set[str]] = {}
        for source, org, _count in self.flow_edges():
            sources.setdefault(org, set()).add(source)
        exclusive: Dict[str, List[str]] = {}
        for org, source_set in sources.items():
            if len(source_set) == 1:
                country = next(iter(source_set))
                exclusive.setdefault(country, []).append(org)
        return {country: sorted(orgs) for country, orgs in sorted(exclusive.items())}

    def cloud_hosted_trackers(self) -> Dict[str, List[str]]:
        """Cloud provider org -> tracker hosts served from its address space.

        Requires an IPinfo-like service; reproduces the paper's AS-level
        lookup finding trackers hosted on AWS/Google Cloud.
        """
        if self._ipinfo is None:
            raise ValueError("cloud attribution needs an IPInfoService")
        hosted: Dict[str, Set[str]] = {}
        for host, address in self._host_address_pairs():
            meta = self._ipinfo.lookup(address)
            if meta is not None and meta.is_cloud_hosted:
                hosted.setdefault(meta.org, set()).add(host)
        return {org: sorted(hosts) for org, hosts in sorted(hosted.items())}

    def _host_address_pairs(self, destination: Optional[str] = None):
        """Distinct (host, address) tracker pairs, one ipinfo probe each."""
        frame = self._frame
        if frame is not None:
            hosts, addresses = frame.trk_host, frame.trk_address
            if destination is not None:
                keep = frame.trk_dest_country == frame.code(destination)
                hosts, addresses = hosts[keep], addresses[keep]
            width = len(frame.strings)
            for key in _np.unique(hosts * width + addresses).tolist():
                yield frame.strings[key // width], frame.strings[key % width]
            return
        seen: Set[Tuple[str, str]] = set()
        for result in self._results:
            for site in result.sites:
                for tracker in site.trackers:
                    if destination is not None and \
                            tracker.destination_country != destination:
                        continue
                    pair = (tracker.host, tracker.address)
                    if pair not in seen:
                        seen.add(pair)
                        yield pair

    def cloud_hosted_in_country(self, country_code: str) -> List[str]:
        """Tracker hosts cloud-hosted at addresses located in *country_code*.

        The paper's Nairobi observation: trackers from SoundCloud, Spot.im
        etc. on Amazon-owned addresses in Kenya.
        """
        if self._ipinfo is None:
            raise ValueError("cloud attribution needs an IPInfoService")
        hosts: Set[str] = set()
        for host, address in self._host_address_pairs(destination=country_code):
            meta = self._ipinfo.lookup(address)
            if meta is not None and meta.is_cloud_hosted:
                hosts.add(host)
        return sorted(hosts)
