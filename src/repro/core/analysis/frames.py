"""Columnar study-result store: the frame-backed analysis engine.

PRs 6-7 made geolocation math and the pool-boundary transport columnar,
but every analysis pass still re-walked the per-site object graph
(``CountryStudyResult`` -> ``SiteTrackerRecord`` -> ``NonLocalTracker``)
in Python loops.  This module closes that last mile (ROADMAP item 5):

* :class:`CountryFrame` — one country's joined (site, category, tracker
  host, address, destination country/city, org) relation as numpy code
  columns over a local interned string table.  Three construction paths
  share the schema: sliced straight out of a columnar transport payload
  (:func:`repro.exec.transport.decode_run_frame` — no object-graph
  detour), attached by the worker's columnar join
  (``build_country_result``'s code streams), or walked once from an
  existing object graph (the in-process / resumed-checkpoint path).
* :class:`StudyFrame` — the coordinator's study-wide concatenation:
  per-frame string tables remapped into one global pool, per-site
  country indices, and memoised ``np.unique`` group-by tables that the
  vectorised analysis layer (flows, prevalence, hosting, organizations,
  per-website, first-party, cross-country) reduces over.

The object graph stays available as the byte-identical oracle:
``StudyConfig.analysis_engine = "objects" | "columnar"`` (``gamma study
--analysis-engine``) selects, :func:`resolve_analysis_engine` silently
falls back to "objects" without numpy, and under the columnar engine
``StudyOutcome`` materialises the legacy per-country objects lazily on
first attribute access — so every accessor the frame does not serve
still answers, just through a deferred decode.

Ordering is part of the contract, not just values: every vectorised
query reproduces the object implementation's exact iteration and
tie-break order (dict insertion order included), which is what keeps
summaries and exports byte-identical across engines
(``tests/test_analysis_columnar.py`` locks this down differentially).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except Exception:  # pragma: no cover - numpy is in the standard toolchain
    _np = None

HAVE_NUMPY = _np is not None

__all__ = [
    "ANALYSIS_ENGINES",
    "HAVE_NUMPY",
    "CountryFrame",
    "StudyFrame",
    "resolve_analysis_engine",
]

#: Selectable analysis engines, oracle spelled out: "objects" walks the
#: per-site record graph (the historical path), "columnar" reduces over
#: the frame store.
ANALYSIS_ENGINES = ("objects", "columnar")


def resolve_analysis_engine(name: str) -> str:
    """The analysis engine that will actually run (numpy gates "columnar")."""
    if name not in ANALYSIS_ENGINES:
        raise ValueError(
            f"unknown analysis engine {name!r}; expected one of {ANALYSIS_ENGINES}"
        )
    if name == "columnar" and not HAVE_NUMPY:
        return "objects"  # silent fallback, same contract as resolve_transport
    return name


def _tracker_confidence(result, rows: int):
    """Per-tracker-row verdict confidence for *result*'s tracker rows.

    Each row's address is looked up in the result's geolocation verdicts;
    unscored rows map to NaN.  None when the study ran without
    ``PipelineConfig.confidence`` (no verdict carries a score).
    """
    geolocation = getattr(result, "geolocation", None)
    if geolocation is None:
        return None
    by_address = {
        verdict.address: verdict.confidence
        for verdict in geolocation.verdicts.values()
        if verdict.confidence is not None
    }
    if not by_address:
        return None
    nan = float("nan")
    return _np.fromiter(
        (by_address.get(tracker.address, nan)
         for site in result.sites for tracker in site.trackers),
        dtype=_np.float64, count=rows,
    )


class CountryFrame:
    """One country's result + dataset relations as code columns.

    String codes index ``strings`` (slot 0 reserved for ``None``, the
    same convention as the transport codec).  The *result relation*
    (``site_*``/``trk_*``) always exists; the *dataset relation*
    (``dsite_*``/``dhost``) — site keys and requested hosts, needed only
    by the cross-country analysis — is built eagerly when sliced from a
    transport payload and lazily from a retained dataset object
    otherwise.
    """

    __slots__ = (
        "country_code", "strings",
        "site_url", "site_category", "tracker_start",
        "trk_host", "trk_address", "trk_dest_country", "trk_dest_city",
        "trk_org", "trk_confidence",
        "dsite_key", "dsite_url", "dsite_loaded", "host_start", "dhost",
        "_dataset",
    )

    def __init__(
        self, country_code, strings,
        site_url, site_category, tracker_start,
        trk_host, trk_address, trk_dest_country, trk_dest_city, trk_org,
        dsite_key=None, dsite_url=None, dsite_loaded=None,
        host_start=None, dhost=None, dataset=None, trk_confidence=None,
    ):
        self.country_code = country_code
        self.strings = strings
        self.site_url = site_url
        self.site_category = site_category
        self.tracker_start = tracker_start
        self.trk_host = trk_host
        self.trk_address = trk_address
        self.trk_dest_country = trk_dest_country
        self.trk_dest_city = trk_dest_city
        self.trk_org = trk_org
        #: Per-tracker-row confidence of the geolocation verdict behind
        #: the row's address (float64, NaN where unscored); None when the
        #: study ran without ``PipelineConfig.confidence``.
        self.trk_confidence = trk_confidence
        self.dsite_key = dsite_key
        self.dsite_url = dsite_url
        self.dsite_loaded = dsite_loaded
        self.host_start = host_start
        self.dhost = dhost
        self._dataset = dataset

    # -- construction --------------------------------------------------------
    @classmethod
    def from_join(cls, result, hosts, codes, bounds, is_tracker,
                  dest_country, dest_city, org_names):
        """Reuse ``_join_columnar``'s code streams — the worker-side path.

        The join already interned every foreground host into first-sight
        codes; this seeds the frame's string table with those hosts so
        per-tracker rows are plain gathers, and only urls/categories/
        addresses intern fresh.
        """
        strings: List[Optional[str]] = [None]
        index: Dict[str, int] = {}

        def sid(value):
            if value is None:
                return 0
            got = index.get(value)
            if got is None:
                got = len(strings)
                index[value] = got
                strings.append(value)
            return got

        host_sids = _np.fromiter(
            (sid(host) for host in hosts), dtype=_np.int64, count=len(hosts)
        )
        dest_sids = _np.fromiter(
            (sid(value) if value else 0 for value in dest_country),
            dtype=_np.int64, count=len(dest_country),
        )
        city_sids = _np.fromiter(
            (sid(value) if value else 0 for value in dest_city),
            dtype=_np.int64, count=len(dest_city),
        )
        org_sids = _np.fromiter(
            (sid(value) for value in org_names),
            dtype=_np.int64, count=len(org_names),
        )

        site_url = _np.fromiter(
            (sid(site.url) for site in result.sites),
            dtype=_np.int64, count=len(result.sites),
        )
        site_category = _np.fromiter(
            (sid(site.category) for site in result.sites),
            dtype=_np.int64, count=len(result.sites),
        )
        # Tracker rows: the occurrence mask over the per-site code stream
        # is exactly the rows the join materialised as NonLocalTrackers.
        code_stream = _np.asarray(codes, dtype=_np.int64)
        mask = is_tracker[code_stream] if len(hosts) else _np.zeros(0, dtype=bool)
        row_codes = code_stream[mask]
        per_site = _np.diff(_np.asarray(bounds, dtype=_np.int64))
        counts = _np.zeros(len(per_site), dtype=_np.int64)
        if len(code_stream):
            site_of_row = _np.repeat(_np.arange(len(per_site)), per_site)
            counts = _np.bincount(site_of_row[mask], minlength=len(per_site))
        tracker_start = _np.zeros(len(per_site) + 1, dtype=_np.int64)
        _np.cumsum(counts, out=tracker_start[1:])
        # Addresses come from each measurement's dns map, row by row —
        # the one per-row Python pass the join pays anyway.
        trk_address = _np.fromiter(
            (sid(tracker.address) for site in result.sites
             for tracker in site.trackers),
            dtype=_np.int64, count=int(tracker_start[-1]),
        )
        return cls(
            result.country_code, strings,
            site_url, site_category, tracker_start,
            host_sids[row_codes] if len(row_codes) else _np.zeros(0, _np.int64),
            trk_address,
            dest_sids[row_codes] if len(row_codes) else _np.zeros(0, _np.int64),
            city_sids[row_codes] if len(row_codes) else _np.zeros(0, _np.int64),
            org_sids[row_codes] if len(row_codes) else _np.zeros(0, _np.int64),
            dataset=result.dataset,
            trk_confidence=_tracker_confidence(result, int(tracker_start[-1])),
        )

    @classmethod
    def from_result(cls, result, dataset=None):
        """One Python walk over an existing object graph (oracle path)."""
        strings: List[Optional[str]] = [None]
        index: Dict[str, int] = {}

        def sid(value):
            if value is None:
                return 0
            got = index.get(value)
            if got is None:
                got = len(strings)
                index[value] = got
                strings.append(value)
            return got

        site_url: List[int] = []
        site_category: List[int] = []
        tracker_start: List[int] = [0]
        trk_host: List[int] = []
        trk_address: List[int] = []
        trk_dest_country: List[int] = []
        trk_dest_city: List[int] = []
        trk_org: List[int] = []
        for site in result.sites:
            site_url.append(sid(site.url))
            site_category.append(sid(site.category))
            for tracker in site.trackers:
                trk_host.append(sid(tracker.host))
                trk_address.append(sid(tracker.address))
                trk_dest_country.append(sid(tracker.destination_country))
                trk_dest_city.append(sid(tracker.destination_city_key))
                trk_org.append(sid(tracker.org_name))
            tracker_start.append(len(trk_host))
        as_col = lambda values: _np.asarray(values, dtype=_np.int64)
        return cls(
            result.country_code, strings,
            as_col(site_url), as_col(site_category), as_col(tracker_start),
            as_col(trk_host), as_col(trk_address), as_col(trk_dest_country),
            as_col(trk_dest_city), as_col(trk_org),
            dataset=dataset if dataset is not None else result.dataset,
            trk_confidence=_tracker_confidence(result, len(trk_host)),
        )

    def ensure_dataset_relation(self) -> None:
        """Build the dataset relation from the retained dataset object."""
        if self.dsite_key is not None:
            return
        dataset = self._dataset
        if dataset is None:
            raise ValueError(
                f"{self.country_code}: frame has neither a dataset relation "
                "nor a dataset object to build one from"
            )
        strings = self.strings
        index = {value: i for i, value in enumerate(strings) if i}

        def sid(value):
            if value is None:
                return 0
            got = index.get(value)
            if got is None:
                got = len(strings)
                index[value] = got
                strings.append(value)
            return got

        keys: List[int] = []
        urls: List[int] = []
        loaded: List[int] = []
        host_start: List[int] = [0]
        dhost: List[int] = []
        for key, measurement in dataset.websites.items():
            keys.append(sid(key))
            urls.append(sid(measurement.url))
            loaded.append(1 if measurement.loaded else 0)
            dhost.extend(sid(host) for host in measurement.requested_hosts)
            host_start.append(len(dhost))
        as_col = lambda values: _np.asarray(values, dtype=_np.int64)
        self.dsite_key = as_col(keys)
        self.dsite_url = as_col(urls)
        self.dsite_loaded = as_col(loaded)
        self.host_start = as_col(host_start)
        self.dhost = as_col(dhost)


class StudyFrame:
    """Study-wide concatenation of per-country frames.

    All code columns index one global interned string pool.  Derived
    group-by tables — unique (site, destination) pairs, (site, org)
    pairs, (country, host, destination) triples, per-site distinct-host
    counts — are memoised on first use: they are what the vectorised
    analyses reduce over, and several analyses share them.
    """

    __slots__ = (
        "strings", "countries",
        "site_country", "country_site_start", "site_url", "site_category",
        "tracker_start", "trk_site",
        "trk_host", "trk_address", "trk_dest_country", "trk_dest_city",
        "trk_org", "trk_confidence",
        "_sid_index", "_frames", "_remaps",
        "_has_tracker", "_dest_pairs", "_org_pairs", "_host_counts",
        "_host_triples",
        "_dsite_country", "_dsite_key", "_dsite_url", "_dsite_loaded",
        "_dhost_start", "_dhost", "_key_index",
    )

    def __init__(self):
        self.strings: List[Optional[str]] = [None]
        self._sid_index: Dict[str, int] = {}
        self.countries: List[str] = []
        self._frames: List[CountryFrame] = []
        self._remaps: List[object] = []
        self._has_tracker = None
        self._dest_pairs = None
        self._org_pairs = None
        self._host_counts = None
        self._host_triples = None
        self._dsite_country = None
        self._key_index = None

    # -- assembly ------------------------------------------------------------
    @classmethod
    def assemble(cls, frames: Sequence[CountryFrame]) -> "StudyFrame":
        self = cls()
        strings = self.strings
        index = self._sid_index
        site_url_parts = []
        site_cat_parts = []
        site_country_parts = []
        start_parts = []
        trk_parts = {name: [] for name in (
            "trk_host", "trk_address", "trk_dest_country", "trk_dest_city",
            "trk_org",
        )}
        conf_parts = []
        any_confidence = False
        trk_site_parts = []
        site_base = 0
        tracker_base = 0
        for country_index, frame in enumerate(frames):
            self.countries.append(frame.country_code)
            self._frames.append(frame)
            remap = _np.empty(len(frame.strings), dtype=_np.int64)
            remap[0] = 0
            for local, value in enumerate(frame.strings):
                if local == 0:
                    continue
                got = index.get(value)
                if got is None:
                    got = len(strings)
                    index[value] = got
                    strings.append(value)
                remap[local] = got
            self._remaps.append(remap)
            site_url_parts.append(remap[frame.site_url])
            site_cat_parts.append(remap[frame.site_category])
            n_sites = len(frame.site_url)
            site_country_parts.append(
                _np.full(n_sites, country_index, dtype=_np.int64)
            )
            start_parts.append(frame.tracker_start[1:] + tracker_base)
            counts = _np.diff(frame.tracker_start)
            trk_site_parts.append(
                _np.repeat(_np.arange(n_sites, dtype=_np.int64), counts)
                + site_base
            )
            for name in trk_parts:
                trk_parts[name].append(remap[getattr(frame, name)])
            n_rows = int(frame.tracker_start[-1])
            if frame.trk_confidence is not None:
                any_confidence = True
                conf_parts.append(frame.trk_confidence)
            else:
                conf_parts.append(_np.full(n_rows, _np.nan))
            site_base += n_sites
            tracker_base += n_rows

        def cat(parts, empty_len=0):
            if not parts:
                return _np.zeros(empty_len, dtype=_np.int64)
            return _np.concatenate(parts)

        self.site_url = cat(site_url_parts)
        self.site_category = cat(site_cat_parts)
        self.site_country = cat(site_country_parts)
        self.tracker_start = _np.concatenate(
            [_np.zeros(1, dtype=_np.int64)] + start_parts
        ) if start_parts else _np.zeros(1, dtype=_np.int64)
        self.trk_site = cat(trk_site_parts)
        for name, parts in trk_parts.items():
            setattr(self, name, cat(parts))
        self.trk_confidence = (
            _np.concatenate(conf_parts) if any_confidence else None
        )
        counts_per_country = _np.asarray(
            [len(frame.site_url) for frame in frames], dtype=_np.int64
        )
        self.country_site_start = _np.zeros(len(frames) + 1, dtype=_np.int64)
        _np.cumsum(counts_per_country, out=self.country_site_start[1:])
        return self

    # -- lookups -------------------------------------------------------------
    def code(self, value: Optional[str]) -> int:
        """Global string code for *value*; -1 when never observed."""
        if value is None:
            return 0
        return self._sid_index.get(value, -1)

    def string(self, code: int) -> Optional[str]:
        return self.strings[code]

    @property
    def n_sites(self) -> int:
        return len(self.site_url)

    def country_index(self, country_code: str) -> int:
        try:
            return self.countries.index(country_code)
        except ValueError:
            raise KeyError(f"no study result for {country_code}") from None

    def site_mask(
        self, category: Optional[str] = None,
        exclude_countries: Sequence[str] = (),
    ):
        """Boolean site filter matching ``sites_in`` + source skipping."""
        mask = _np.ones(self.n_sites, dtype=bool)
        if category is not None:
            mask &= self.site_category == self.code(category)
        for country_code in exclude_countries:
            try:
                mask &= self.site_country != self.country_index(country_code)
            except KeyError:
                continue
        return mask

    # -- memoised group-by tables --------------------------------------------
    def has_tracker(self):
        """Per site: does it carry at least one non-local tracker row?"""
        if self._has_tracker is None:
            self._has_tracker = _np.diff(self.tracker_start) > 0
        return self._has_tracker

    def _ranked(self, codes):
        """Alphabetical rank table for the string codes in *codes*.

        Returns ``(rank_of_code, ranked_strings)`` where ``rank_of_code``
        maps a global string code to its alphabetical rank among the
        distinct values present (undefined elsewhere).  Alphabetical
        ranks are what reproduce the object paths' ``sorted(...)``
        iteration orders without touching strings per row.
        """
        present = _np.unique(codes)
        ranked_strings = sorted(self.strings[code] for code in present.tolist())
        rank_of_code = _np.zeros(len(self.strings), dtype=_np.int64)
        for rank, value in enumerate(ranked_strings):
            rank_of_code[self._sid_index[value]] = rank
        return rank_of_code, ranked_strings

    def dest_pairs(self):
        """Unique (site, destination) pairs, ordered by (site, dest rank).

        One pair per site/destination combination — exactly the rows
        ``site.destination_countries()`` (a sorted set) yields per site,
        in the same order the object loops visit them.
        """
        if self._dest_pairs is None:
            rank_of_code, ranked = self._ranked(self.trk_dest_country)
            width = len(ranked) or 1
            keys = self.trk_site * width + rank_of_code[self.trk_dest_country]
            unique = _np.unique(keys)
            self._dest_pairs = (unique // width, unique % width, ranked)
        return self._dest_pairs

    def org_pairs(self):
        """Unique (site, org) pairs (org present), by (site, org rank)."""
        if self._org_pairs is None:
            present = self.trk_org != 0
            orgs = self.trk_org[present]
            sites = self.trk_site[present]
            rank_of_code, ranked = self._ranked(orgs)
            width = len(ranked) or 1
            unique = _np.unique(sites * width + rank_of_code[orgs])
            self._org_pairs = (unique // width, unique % width, ranked)
        return self._org_pairs

    def tracker_host_counts(self):
        """Per site: distinct tracker hostnames (``site.tracker_count``)."""
        if self._host_counts is None:
            width = len(self.strings)
            pairs = _np.unique(self.trk_site * width + self.trk_host)
            self._host_counts = _np.bincount(
                pairs // width, minlength=self.n_sites
            )
        return self._host_counts

    def confidence_by_country(self):
        """Per country: (scored tracker rows, mean row confidence).

        The confidence-weighted flow view behind ``gamma confidence``:
        every non-local tracker row weighted by the verdict confidence
        of the address it resolved to.  None when the study carried no
        confidence column; per-country mean is None when no row scored.
        """
        if self.trk_confidence is None:
            return None
        country_of_row = self.site_country[self.trk_site]
        have = ~_np.isnan(self.trk_confidence)
        out = {}
        for index, code in enumerate(self.countries):
            mask = have & (country_of_row == index)
            count = int(mask.sum())
            mean = (
                float(self.trk_confidence[mask].sum() / count) if count else None
            )
            out[code] = (count, mean)
        return out

    def host_triples(self):
        """Unique (country, host, destination) triples across all rows."""
        if self._host_triples is None:
            width = len(self.strings)
            keys = (
                self.site_country[self.trk_site] * width + self.trk_host
            ) * width + self.trk_dest_country
            unique = _np.unique(keys)
            self._host_triples = (
                unique // (width * width),
                (unique // width) % width,
                unique % width,
            )
        return self._host_triples

    # -- dataset relation (cross-country analysis) ---------------------------
    def _extend_remap(self, frame_index: int):
        """Re-sync a frame's remap after its lazy dataset-relation build."""
        frame = self._frames[frame_index]
        remap = self._remaps[frame_index]
        if len(remap) == len(frame.strings):
            return remap
        grown = _np.empty(len(frame.strings), dtype=_np.int64)
        grown[:len(remap)] = remap
        strings = self.strings
        index = self._sid_index
        for local in range(len(remap), len(frame.strings)):
            value = frame.strings[local]
            got = index.get(value)
            if got is None:
                got = len(strings)
                index[value] = got
                strings.append(value)
            grown[local] = got
        self._remaps[frame_index] = grown
        return grown

    def dataset_relation(self):
        """Global (country, site key, url, loaded, requested hosts) relation."""
        if self._dsite_country is None:
            country_parts = []
            key_parts = []
            url_parts = []
            loaded_parts = []
            start_parts = []
            host_parts = []
            host_base = 0
            for frame_index, frame in enumerate(self._frames):
                frame.ensure_dataset_relation()
                remap = self._extend_remap(frame_index)
                key_parts.append(remap[frame.dsite_key])
                url_parts.append(remap[frame.dsite_url])
                loaded_parts.append(frame.dsite_loaded)
                country_parts.append(_np.full(
                    len(frame.dsite_key), frame_index, dtype=_np.int64
                ))
                start_parts.append(frame.host_start[1:] + host_base)
                host_parts.append(remap[frame.dhost])
                host_base += int(frame.host_start[-1])

            def cat(parts):
                if not parts:
                    return _np.zeros(0, dtype=_np.int64)
                return _np.concatenate(parts)

            self._dsite_country = cat(country_parts)
            self._dsite_key = cat(key_parts)
            self._dsite_url = cat(url_parts)
            self._dsite_loaded = cat(loaded_parts)
            self._dhost_start = _np.concatenate(
                [_np.zeros(1, dtype=_np.int64)] + start_parts
            ) if start_parts else _np.zeros(1, dtype=_np.int64)
            self._dhost = cat(host_parts)
        return (
            self._dsite_country, self._dsite_key, self._dsite_loaded,
            self._dhost_start, self._dhost,
        )

    def sites_for_key(self, url: str) -> List[Tuple[int, int]]:
        """``(country index, dataset-site row)`` pairs for one site key."""
        if self._key_index is None:
            country, key, _loaded, _start, _hosts = self.dataset_relation()
            by_key: Dict[int, List[Tuple[int, int]]] = {}
            order = _np.argsort(key, kind="stable")
            for row in order.tolist():
                by_key.setdefault(int(key[row]), []).append(
                    (int(country[row]), row)
                )
            self._key_index = by_key
        code = self.code(url)
        if code < 0:
            return []
        return self._key_index.get(code, [])

    def requested_host_codes(self, row: int):
        """Requested-host codes of one dataset-site row (duplicates kept)."""
        _country, _key, _loaded, start, hosts = self.dataset_relation()
        return hosts[int(start[row]):int(start[row + 1])]
