"""Table 1 / section 7: data-localization policy vs non-local tracker rates.

Joins the policy registry with the measured combined non-local rates,
renders Table 1's rows in strictness order, and tests the paper's
conclusion: no obvious impact of policy strictness on non-local rates —
in fact a weak *negative* trend (more permissive countries show fewer
non-local trackers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.analysis.prevalence import PrevalenceAnalysis
from repro.core.analysis.records import CountryStudyResult
from repro.core.analysis.stats import mean, spearman
from repro.policy.registry import PolicyRegistry

__all__ = ["PolicyRow", "PolicyAnalysis"]


@dataclass(frozen=True, slots=True)
class PolicyRow:
    """One Table-1 row."""

    country_code: str
    policy_type: str
    enacted: bool
    nonlocal_pct: float
    strictness_rank: int


class PolicyAnalysis:
    """Policy-vs-measurement correlation."""

    def __init__(self, results: Sequence[CountryStudyResult], registry: PolicyRegistry, frame=None):
        self._prevalence = PrevalenceAnalysis(results, frame=frame)
        self._registry = registry

    def table_rows(self) -> List[PolicyRow]:
        """Rows in the paper's order: decreasing strictness, then country."""
        rates = self._prevalence.combined_pct_by_country()
        rows: List[PolicyRow] = []
        for record in self._registry.by_strictness():
            if record.country_code not in rates:
                continue
            rows.append(
                PolicyRow(
                    country_code=record.country_code,
                    policy_type=record.policy_type,
                    enacted=record.enacted,
                    nonlocal_pct=rates[record.country_code],
                    strictness_rank=record.strictness_rank,
                )
            )
        return rows

    def mean_rate_by_policy_type(self) -> Dict[str, float]:
        grouped: Dict[str, List[float]] = {}
        for row in self.table_rows():
            grouped.setdefault(row.policy_type, []).append(row.nonlocal_pct)
        return {ptype: mean(values) for ptype, values in grouped.items()}

    def strictness_correlation(self) -> float:
        """Spearman rank correlation of strictness-rank vs non-local rate.

        Strictness rank increases with *permissiveness* (0 = strictest),
        so the paper's "weak negative trend — more permissive countries
        have fewer non-local trackers" appears as a negative coefficient.
        """
        rows = self.table_rows()
        return spearman(
            [float(r.strictness_rank) for r in rows],
            [r.nonlocal_pct for r in rows],
        )

    def enacted_only_correlation(self) -> float:
        """The same correlation restricted to enacted regimes."""
        rows = [r for r in self.table_rows() if r.enacted]
        return spearman(
            [float(r.strictness_rank) for r in rows],
            [r.nonlocal_pct for r in rows],
        )
