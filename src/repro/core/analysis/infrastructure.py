"""Infrastructure analysis: cables, geography, and tracking flows (§7).

The paper's discussion argues that tracking destinations follow physical
infrastructure — Kenya's cable connectivity makes it the East African
hub — except where policy or politics intervene (India/Pakistan share
IMEWE yet exchange nothing).  This module checks those arguments against
the measured flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.analysis.flows import FlowAnalysis
from repro.core.analysis.hosting import HostingAnalysis
from repro.core.analysis.records import CountryStudyResult
from repro.core.analysis.stats import mean, spearman
from repro.netsim.cables import CableMap, default_cable_map
from repro.netsim.distance import city_distance_km
from repro.netsim.geography import GeoRegistry

__all__ = ["FlowInfrastructure", "InfrastructureAnalysis"]


@dataclass(frozen=True)
class FlowInfrastructure:
    """One flow edge annotated with its physical substrate."""

    source: str
    destination: str
    website_count: int
    distance_km: float
    shares_cable: bool
    shared_cables: Tuple[str, ...]


class InfrastructureAnalysis:
    """Joins flow/hosting analyses with the cable map."""

    def __init__(
        self,
        results: Sequence[CountryStudyResult],
        registry: GeoRegistry,
        cable_map: Optional[CableMap] = None,
    ):
        self._flows = FlowAnalysis(results)
        self._hosting = HostingAnalysis(results)
        self._registry = registry
        self._cables = cable_map or default_cable_map()

    @property
    def cable_map(self) -> CableMap:
        return self._cables

    def annotated_flows(self) -> List[FlowInfrastructure]:
        annotated = []
        for edge in self._flows.edges():
            src = self._registry.country(edge.source).capital
            dst = self._registry.country(edge.destination).capital
            annotated.append(FlowInfrastructure(
                source=edge.source,
                destination=edge.destination,
                website_count=edge.website_count,
                distance_km=city_distance_km(src, dst),
                shares_cable=self._cables.share_cable(edge.source, edge.destination),
                shared_cables=tuple(self._cables.shared_cables(edge.source, edge.destination)),
            ))
        return annotated

    def cable_alignment_share(self) -> float:
        """Share of flow volume between cable-connected country pairs."""
        annotated = self.annotated_flows()
        total = sum(f.website_count for f in annotated)
        if total == 0:
            return 0.0
        aligned = sum(f.website_count for f in annotated if f.shares_cable)
        return aligned / total

    def hosting_vs_connectivity(self) -> List[Tuple[str, int, int]]:
        """Per destination: hosted tracking domains vs cable landings."""
        hosting = self._hosting.domains_per_destination()
        return [
            (cc, count, self._cables.cable_count(cc))
            for cc, count in hosting.items()
        ]

    def hosting_connectivity_correlation(self) -> Optional[float]:
        """Spearman rank correlation of hosting role vs cable landings.

        Positive in the paper's story: the countries that host regional
        tracking (Kenya, Malaysia, France, Germany-via-land) are the
        well-connected ones.
        """
        rows = self.hosting_vs_connectivity()
        if len(rows) < 3:
            return None
        return spearman(
            [float(count) for _cc, count, _cables in rows],
            [float(cables) for _cc, _count, cables in rows],
        )

    def cable_without_flow(self) -> List[Tuple[str, str, Tuple[str, ...]]]:
        """Measurement-country pairs that share a cable yet exchange no
        tracking traffic — the India/Pakistan pattern (§7)."""
        flowing = {(f.source, f.destination) for f in self.annotated_flows()}
        sources = sorted({f.source for f in self.annotated_flows()})
        silent: List[Tuple[str, str, Tuple[str, ...]]] = []
        for source in sources:
            for cable in self._cables.cables_landing_in(source):
                for other in cable.landings:
                    if other == source or (source, other) in flowing:
                        continue
                    shared = tuple(self._cables.shared_cables(source, other))
                    silent.append((source, other, shared))
        # Deduplicate, keep deterministic order.
        unique = sorted(set(silent))
        return unique

    def mean_flow_distance_km(self) -> Optional[float]:
        annotated = self.annotated_flows()
        if not annotated:
            return None
        weighted = []
        for flow in annotated:
            weighted.extend([flow.distance_km] * flow.website_count)
        return mean(weighted)
