"""Local-tracker analysis (paper section 8, future work).

The paper focuses on *non-local* trackers but records everything needed
to study domestic ones; it explicitly lists "analyzing local trackers"
as supported follow-up work.  This module implements it: trackers whose
servers the pipeline located *inside* the measurement country — both
domestic companies (Yandex-Metrica-like) and foreign companies serving
from in-country caches (Google in India).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.analysis.stats import mean
from repro.core.gamma.output import VolunteerDataset
from repro.core.geoloc.pipeline import DatasetGeolocation, ServerStatus
from repro.core.trackers.identify import TrackerIdentifier
from repro.core.trackers.orgs import OrganizationDirectory

__all__ = ["LocalTrackerRecord", "LocalTrackerAnalysis"]


@dataclass(frozen=True)
class LocalTrackerRecord:
    """One in-country tracker observation."""

    host: str
    country_code: str  # where the server (and the measurement) is
    org_name: Optional[str]
    org_home: Optional[str]  # operator headquarters country

    @property
    def domestically_owned(self) -> Optional[bool]:
        """Is the operator headquartered where the server sits?"""
        if self.org_home is None:
            return None
        return self.org_home == self.country_code


class LocalTrackerAnalysis:
    """Prevalence and ownership of in-country trackers."""

    def __init__(
        self,
        datasets: Dict[str, VolunteerDataset],
        geolocations: Dict[str, DatasetGeolocation],
        identifier: TrackerIdentifier,
        directory: Optional[OrganizationDirectory] = None,
    ):
        self._datasets = datasets
        self._geolocations = geolocations
        self._identifier = identifier
        self._directory = directory or identifier.directory

    def local_tracker_hosts(self, country_code: str) -> List[str]:
        """Unique tracker hosts located inside *country_code*."""
        dataset = self._datasets[country_code]
        geolocation = self._geolocations[country_code]
        hosts: List[str] = []
        for host in dataset.all_requested_hosts():
            verdict = geolocation.verdict_for_host(host)
            if verdict is None or verdict.status != ServerStatus.LOCAL:
                continue
            # Memoised engine-level verdicts: the same hosts were already
            # classified during the study join, so these are cache hits.
            if self._identifier.is_tracker(host, country_code):
                hosts.append(host)
        return hosts

    def prevalence_pct(self, country_code: str) -> float:
        """% of loaded sites embedding at least one local tracker."""
        dataset = self._datasets[country_code]
        geolocation = self._geolocations[country_code]
        loaded = [m for m in dataset.websites.values() if m.loaded]
        if not loaded:
            return 0.0
        hits = 0
        for measurement in loaded:
            background = set(measurement.background_hosts)
            for host in measurement.requested_hosts:
                if host in background:
                    continue
                verdict = geolocation.verdict_for_host(host)
                if verdict is None or verdict.status != ServerStatus.LOCAL:
                    continue
                if self._identifier.is_tracker(host, country_code):
                    hits += 1
                    break
        return 100.0 * hits / len(loaded)

    def per_country(self) -> Dict[str, float]:
        return {
            cc: self.prevalence_pct(cc)
            for cc in sorted(set(self._datasets) & set(self._geolocations))
        }

    def ownership(self, country_code: str) -> Dict[str, int]:
        """Local tracker hosts per operating organisation."""
        counts: Dict[str, int] = {}
        for host in self.local_tracker_hosts(country_code):
            entry = self._directory.org_for_host(host) if self._directory else None
            name = entry.name if entry else "(unknown)"
            counts[name] = counts.get(name, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def foreign_owned_share(self, country_code: str) -> Optional[float]:
        """Share of local tracker hosts run by *foreign-headquartered* orgs.

        Captures the paper's sovereignty point from the other side: even
        "local" servers are mostly operated by Global-North companies
        (Google's Indian caches are still Google's).
        """
        hosts = self.local_tracker_hosts(country_code)
        homes: List[bool] = []
        for host in hosts:
            entry = self._directory.org_for_host(host) if self._directory else None
            if entry is None:
                continue
            homes.append(entry.home_country != country_code)
        if not homes:
            return None
        return mean([1.0 if foreign else 0.0 for foreign in homes])

    def records(self, country_code: str) -> List[LocalTrackerRecord]:
        result: List[LocalTrackerRecord] = []
        for host in self.local_tracker_hosts(country_code):
            entry = self._directory.org_for_host(host) if self._directory else None
            result.append(LocalTrackerRecord(
                host=host,
                country_code=country_code,
                org_name=entry.name if entry else None,
                org_home=entry.home_country if entry else None,
            ))
        return result
