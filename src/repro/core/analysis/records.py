"""Joined per-site analysis records.

The analysis stage consumes one :class:`SiteTrackerRecord` per loaded
target website: which of its requested hosts are verified non-local
trackers, where each is hosted, and which organisation operates it.
``build_country_result`` performs the join between Gamma's dataset, the
geolocation verdicts, and tracker identification — including stripping
the webdriver's own background requests (section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.gamma.output import VolunteerDataset
from repro.core.geoloc.pipeline import DatasetGeolocation
from repro.core.trackers.identify import TrackerIdentifier, TrackerVerdict
from repro.core.trackers.orgs import OrganizationDirectory
from repro.web.website import CATEGORY_GOVERNMENT, CATEGORY_REGIONAL

__all__ = ["NonLocalTracker", "SiteTrackerRecord", "CountryStudyResult", "build_country_result"]


@dataclass(frozen=True)
class NonLocalTracker:
    """One verified non-local tracking host observed on one site."""

    host: str
    address: str
    destination_country: str
    destination_city_key: str
    org_name: Optional[str] = None


@dataclass
class SiteTrackerRecord:
    """Analysis view of one loaded website."""

    url: str
    country_code: str
    category: str
    trackers: List[NonLocalTracker] = field(default_factory=list)

    @property
    def has_nonlocal_tracker(self) -> bool:
        return bool(self.trackers)

    @property
    def tracker_count(self) -> int:
        """Number of distinct non-local tracking domains (full hostnames)."""
        return len({t.host for t in self.trackers})

    def destination_countries(self) -> List[str]:
        return sorted({t.destination_country for t in self.trackers})

    def organizations(self) -> List[str]:
        return sorted({t.org_name for t in self.trackers if t.org_name})


@dataclass
class CountryStudyResult:
    """Everything the per-figure analyses need for one country."""

    country_code: str
    dataset: VolunteerDataset
    geolocation: DatasetGeolocation
    tracker_verdicts: Dict[str, TrackerVerdict] = field(default_factory=dict)
    sites: List[SiteTrackerRecord] = field(default_factory=list)

    def sites_in(self, category: Optional[str] = None) -> List[SiteTrackerRecord]:
        if category is None:
            return list(self.sites)
        return [s for s in self.sites if s.category == category]

    @property
    def regional_sites(self) -> List[SiteTrackerRecord]:
        return self.sites_in(CATEGORY_REGIONAL)

    @property
    def government_sites(self) -> List[SiteTrackerRecord]:
        return self.sites_in(CATEGORY_GOVERNMENT)

    def nonlocal_tracker_hosts(self) -> List[str]:
        hosts: Dict[str, None] = {}
        for site in self.sites:
            for tracker in site.trackers:
                hosts.setdefault(tracker.host, None)
        return list(hosts)


def build_country_result(
    dataset: VolunteerDataset,
    geolocation: DatasetGeolocation,
    identifier: TrackerIdentifier,
    directory: Optional[OrganizationDirectory] = None,
    tracer=None,
) -> CountryStudyResult:
    """Join dataset + geolocation + identification into analysis records.

    With a :class:`repro.obs.Tracer`, one ``tracker_match`` event is
    emitted per unique flagged host for this country (the first
    classification; repeats across sites reuse the local verdict map).
    """
    directory = directory or identifier.directory
    result = CountryStudyResult(
        country_code=dataset.country_code, dataset=dataset, geolocation=geolocation
    )
    verdicts: Dict[str, TrackerVerdict] = {}

    for measurement in dataset.websites.values():
        if not measurement.loaded:
            continue
        site = SiteTrackerRecord(
            url=measurement.url,
            country_code=dataset.country_code,
            category=measurement.category,
        )
        background = set(measurement.background_hosts)
        for host in measurement.requested_hosts:
            if host in background:
                continue  # webdriver noise, stripped before analysis
            server = geolocation.verdict_for_host(host)
            if server is None or not server.is_verified_nonlocal:
                continue
            # classify() memoises engine-wide, so repeated hosts — within
            # this country and across countries sharing no regional list —
            # are classified once and counted as cache hits.  Attribution
            # events fire only on the country's first sight of a host.
            verdict = identifier.classify(
                host, dataset.country_code,
                tracer=tracer if host not in verdicts else None,
            )
            verdicts[host] = verdict
            if not verdict.is_tracker:
                continue
            org_name = verdict.org_name
            if org_name is None and directory is not None:
                entry = directory.org_for_host(host)
                org_name = entry.name if entry else None
            assert server.claim is not None  # verified non-local implies a claim
            site.trackers.append(
                NonLocalTracker(
                    host=host,
                    address=measurement.dns[host],
                    destination_country=server.claim.country_code,
                    destination_city_key=server.claim.city_key,
                    org_name=org_name,
                )
            )
        result.sites.append(site)

    result.tracker_verdicts = verdicts
    return result
