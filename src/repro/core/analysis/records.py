"""Joined per-site analysis records.

The analysis stage consumes one :class:`SiteTrackerRecord` per loaded
target website: which of its requested hosts are verified non-local
trackers, where each is hosted, and which organisation operates it.
``build_country_result`` performs the join between Gamma's dataset, the
geolocation verdicts, and tracker identification — including stripping
the webdriver's own background requests (section 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.gamma.output import VolunteerDataset
from repro.core.geoloc.pipeline import DatasetGeolocation
from repro.core.slotstate import install_slot_state
from repro.core.trackers.identify import TrackerIdentifier, TrackerVerdict
from repro.core.trackers.orgs import OrganizationDirectory
from repro.web.website import CATEGORY_GOVERNMENT, CATEGORY_REGIONAL

try:  # pragma: no cover - exercised via the scalar fallback test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["NonLocalTracker", "SiteTrackerRecord", "CountryStudyResult", "build_country_result"]


@dataclass(frozen=True, slots=True)
class NonLocalTracker:
    """One verified non-local tracking host observed on one site."""

    host: str
    address: str
    destination_country: str
    destination_city_key: str
    org_name: Optional[str] = None


@dataclass(slots=True)
class SiteTrackerRecord:
    """Analysis view of one loaded website.

    Derived aggregates (distinct host count, sorted destination and
    organisation sets) are memoised once the tracker list stops growing;
    the memo is keyed on ``len(trackers)``, so the builder path — which
    only ever appends — invalidates it naturally, and it is excluded
    from pickle state and equality.
    """

    url: str
    country_code: str
    category: str
    trackers: List[NonLocalTracker] = field(default_factory=list)
    _derived: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _derive(self) -> tuple:
        derived = getattr(self, "_derived", None)
        n = len(self.trackers)
        if derived is None or derived[0] != n:
            derived = (
                n,
                len({t.host for t in self.trackers}),
                sorted({t.destination_country for t in self.trackers}),
                sorted({t.org_name for t in self.trackers if t.org_name}),
            )
            self._derived = derived
        return derived

    @property
    def has_nonlocal_tracker(self) -> bool:
        return bool(self.trackers)

    @property
    def tracker_count(self) -> int:
        """Number of distinct non-local tracking domains (full hostnames)."""
        return self._derive()[1]

    def destination_countries(self) -> List[str]:
        return self._derive()[2]

    def organizations(self) -> List[str]:
        return self._derive()[3]


install_slot_state(
    NonLocalTracker,
    ("host", "address", "destination_country", "destination_city_key",
     "org_name"),
)
install_slot_state(
    SiteTrackerRecord,
    ("url", "country_code", "category", "trackers"),
)


@dataclass
class CountryStudyResult:
    """Everything the per-figure analyses need for one country."""

    country_code: str
    dataset: VolunteerDataset
    geolocation: DatasetGeolocation
    tracker_verdicts: Dict[str, TrackerVerdict] = field(default_factory=dict)
    sites: List[SiteTrackerRecord] = field(default_factory=list)

    # Transient columnar twin attached by the worker join; never
    # pickled, so checkpoints and transport bytes are frame-agnostic.
    _frame = None

    def __getstate__(self):
        state = self.__dict__
        if "_frame" not in state:
            return state
        return {k: v for k, v in state.items() if k != "_frame"}

    def sites_in(self, category: Optional[str] = None) -> List[SiteTrackerRecord]:
        if category is None:
            return list(self.sites)
        return [s for s in self.sites if s.category == category]

    @property
    def regional_sites(self) -> List[SiteTrackerRecord]:
        return self.sites_in(CATEGORY_REGIONAL)

    @property
    def government_sites(self) -> List[SiteTrackerRecord]:
        return self.sites_in(CATEGORY_GOVERNMENT)

    def nonlocal_tracker_hosts(self) -> List[str]:
        hosts: Dict[str, None] = {}
        for site in self.sites:
            for tracker in site.trackers:
                hosts.setdefault(tracker.host, None)
        return list(hosts)


def build_country_result(
    dataset: VolunteerDataset,
    geolocation: DatasetGeolocation,
    identifier: TrackerIdentifier,
    directory: Optional[OrganizationDirectory] = None,
    tracer=None,
    engine: str = "scalar",
    metrics=None,
) -> CountryStudyResult:
    """Join dataset + geolocation + identification into analysis records.

    With a :class:`repro.obs.Tracer`, one ``tracker_match`` event is
    emitted per unique flagged host for this country (the first
    classification; repeats across sites reuse the local verdict map).

    ``engine="columnar"`` interns hosts into integer codes, performs one
    verdict lookup and one classification per *unique* host, and
    materialises per-site tracker rows from numpy occurrence masks.
    The output contract is identical to the scalar loop: same verdict
    insertion order (first sight of each verified-nonlocal host), same
    per-site tracker rows including within-site repeats, and the same
    ``tracker_match`` journal events.  Falls back to the scalar join
    when numpy is unavailable.
    """
    directory = directory or identifier.directory
    if engine == "columnar" and _np is not None:
        return _join_columnar(
            dataset, geolocation, identifier, directory, tracer, metrics
        )
    result = CountryStudyResult(
        country_code=dataset.country_code, dataset=dataset, geolocation=geolocation
    )
    verdicts: Dict[str, TrackerVerdict] = {}

    for measurement in dataset.websites.values():
        if not measurement.loaded:
            continue
        site = SiteTrackerRecord(
            url=measurement.url,
            country_code=dataset.country_code,
            category=measurement.category,
        )
        background = set(measurement.background_hosts)
        for host in measurement.requested_hosts:
            if host in background:
                continue  # webdriver noise, stripped before analysis
            server = geolocation.verdict_for_host(host)
            if server is None or not server.is_verified_nonlocal:
                continue
            # classify() memoises engine-wide, so repeated hosts — within
            # this country and across countries sharing no regional list —
            # are classified once and counted as cache hits.  Attribution
            # events fire only on the country's first sight of a host.
            verdict = identifier.classify(
                host, dataset.country_code,
                tracer=tracer if host not in verdicts else None,
                metrics=metrics,
            )
            verdicts[host] = verdict
            if not verdict.is_tracker:
                continue
            org_name = verdict.org_name
            if org_name is None and directory is not None:
                entry = directory.org_for_host(host)
                org_name = entry.name if entry else None
            assert server.claim is not None  # verified non-local implies a claim
            site.trackers.append(
                NonLocalTracker(
                    host=host,
                    address=measurement.dns[host],
                    destination_country=server.claim.country_code,
                    destination_city_key=server.claim.city_key,
                    org_name=org_name,
                )
            )
        result.sites.append(site)

    result.tracker_verdicts = verdicts
    return result


def _attach_frame(result, hosts, codes, bounds, is_tracker,
                  dest_country, dest_city, org_names) -> None:
    """Batch the join output into its columnar twin.

    The worker hands this frame straight to the frame-backed analysis
    layer; the object graph stays the oracle and the coordinator can
    always rebuild a frame from it (``CountryFrame.from_result``).
    """
    from repro.core.analysis.frames import CountryFrame

    result._frame = CountryFrame.from_join(
        result, hosts, codes, bounds, is_tracker,
        dest_country, dest_city, org_names,
    )


def _join_columnar(
    dataset: VolunteerDataset,
    geolocation: DatasetGeolocation,
    identifier: TrackerIdentifier,
    directory: Optional[OrganizationDirectory],
    tracer,
    metrics=None,
) -> CountryStudyResult:
    """Vectorised join: per-unique-host classification + masked gather."""
    country_code = dataset.country_code
    result = CountryStudyResult(
        country_code=country_code, dataset=dataset, geolocation=geolocation
    )

    # Flatten every loaded site's foreground hosts into one integer code
    # stream; ``host_index`` assigns codes in first-sight order, which is
    # exactly the scalar loop's verdict-dict insertion order.
    loaded = []
    host_index: Dict[str, int] = {}
    codes: List[int] = []
    bounds: List[int] = [0]
    for measurement in dataset.websites.values():
        if not measurement.loaded:
            continue
        loaded.append(measurement)
        background = set(measurement.background_hosts)
        for host in measurement.requested_hosts:
            if host not in background:
                codes.append(host_index.setdefault(host, len(host_index)))
        bounds.append(len(codes))

    hosts = list(host_index)
    count = len(hosts)
    is_tracker = _np.zeros(count, dtype=bool)
    dest_country: List[str] = [""] * count
    dest_city: List[str] = [""] * count
    org_names: List[Optional[str]] = [None] * count
    verdicts: Dict[str, TrackerVerdict] = {}
    for code, host in enumerate(hosts):
        server = geolocation.verdict_for_host(host)
        if server is None or not server.is_verified_nonlocal:
            continue
        # First-sight attribution events match the scalar loop because
        # unique codes were assigned in first-sight order above.
        verdict = identifier.classify(host, country_code, tracer=tracer, metrics=metrics)
        verdicts[host] = verdict
        if not verdict.is_tracker:
            continue
        org_name = verdict.org_name
        if org_name is None and directory is not None:
            entry = directory.org_for_host(host)
            org_name = entry.name if entry else None
        assert server.claim is not None  # verified non-local implies a claim
        is_tracker[code] = True
        dest_country[code] = server.claim.country_code
        dest_city[code] = server.claim.city_key
        org_names[code] = org_name

    code_stream = _np.asarray(codes, dtype=_np.int64)
    occurrence_mask = (
        is_tracker[code_stream] if count else _np.zeros(0, dtype=bool)
    )
    for site_index, measurement in enumerate(loaded):
        site = SiteTrackerRecord(
            url=measurement.url,
            country_code=country_code,
            category=measurement.category,
        )
        start, end = bounds[site_index], bounds[site_index + 1]
        for offset in _np.flatnonzero(occurrence_mask[start:end]).tolist():
            code = codes[start + offset]
            host = hosts[code]
            site.trackers.append(
                NonLocalTracker(
                    host=host,
                    address=measurement.dns[host],
                    destination_country=dest_country[code],
                    destination_city_key=dest_city[code],
                    org_name=org_names[code],
                )
            )
        result.sites.append(site)

    result.tracker_verdicts = verdicts
    _attach_frame(
        result, hosts, codes, bounds, is_tracker,
        dest_country, dest_city, org_names,
    )
    return result
