"""Figure 7 / section 6.6: non-local tracking domains by hosting country.

Counts distinct (measurement country, tracking hostname) observations per
destination country: the same domain observed from two source countries
counts twice (Figure 7 stacks the distribution "by measurement country"),
but repeated observations within one country count once.  This is the
metric under which Kenya can host more distinct tracked domains than
France even though France serves far more websites.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.analysis.records import CountryStudyResult

try:  # pragma: no cover - exercised via the objects-engine fallback
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = ["HostingAnalysis"]


class HostingAnalysis:
    """Destination-country hosting statistics.

    With a :class:`~repro.core.analysis.frames.StudyFrame` the counting
    reduces over the frame's memoised unique (country, host,
    destination) triple table; without one it walks the object graph.
    ``unique_domains_per_destination`` tie order is set-iteration
    dependent on the object path; the frame path uses the deterministic
    (-count, destination) order — values are identical either way.
    """

    def __init__(self, results: Sequence[CountryStudyResult], frame=None):
        self._frame = frame if _np is not None else None
        self._results = results if self._frame is not None else list(results)

    def domain_observations(self) -> Set[Tuple[str, str, str]]:
        """All distinct ``(source country, host, destination country)`` triples."""
        frame = self._frame
        if frame is not None:
            countries, hosts, dests = frame.host_triples()
            return {
                (frame.countries[c], frame.strings[h], frame.strings[d])
                for c, h, d in zip(
                    countries.tolist(), hosts.tolist(), dests.tolist()
                )
            }
        observations: Set[Tuple[str, str, str]] = set()
        for result in self._results:
            for site in result.sites:
                for tracker in site.trackers:
                    observations.add(
                        (result.country_code, tracker.host, tracker.destination_country)
                    )
        return observations

    def domains_per_destination(self) -> Dict[str, int]:
        """Figure 7 totals: distinct (source, host) pairs per destination."""
        frame = self._frame
        if frame is not None:
            _countries, _hosts, dests = frame.host_triples()
            unique, counts = _np.unique(dests, return_counts=True)
            entries = [
                (frame.strings[code], n)
                for code, n in zip(unique.tolist(), counts.tolist())
            ]
            return dict(sorted(entries, key=lambda kv: (-kv[1], kv[0])))
        counts: Dict[str, int] = {}
        for _source, _host, destination in self.domain_observations():
            counts[destination] = counts.get(destination, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def breakdown_by_source(self, destination: str) -> Dict[str, int]:
        """For one destination: distinct hosted domains per source country."""
        frame = self._frame
        if frame is not None:
            countries, _hosts, dests = frame.host_triples()
            unique, counts = _np.unique(
                countries[dests == frame.code(destination)], return_counts=True
            )
            entries = [
                (frame.countries[index], n)
                for index, n in zip(unique.tolist(), counts.tolist())
            ]
            return dict(sorted(entries, key=lambda kv: (-kv[1], kv[0])))
        counts: Dict[str, int] = {}
        for source, _host, dest in self.domain_observations():
            if dest == destination:
                counts[source] = counts.get(source, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])))

    def unique_domains_per_destination(self) -> Dict[str, int]:
        """Alternative metric: globally-unique hostnames per destination."""
        frame = self._frame
        if frame is not None:
            _countries, hosts, dests = frame.host_triples()
            width = len(frame.strings)
            pairs = _np.unique(dests * width + hosts)
            unique, counts = _np.unique(pairs // width, return_counts=True)
            entries = [
                (frame.strings[code], n)
                for code, n in zip(unique.tolist(), counts.tolist())
            ]
            return dict(sorted(entries, key=lambda kv: (-kv[1], kv[0])))
        hosts: Dict[str, Set[str]] = {}
        for _source, host, destination in self.domain_observations():
            hosts.setdefault(destination, set()).add(host)
        return {
            dest: len(host_set)
            for dest, host_set in sorted(hosts.items(), key=lambda kv: -len(kv[1]))
        }

    def top_destinations(self, n: int = 5) -> List[Tuple[str, int]]:
        return list(self.domains_per_destination().items())[:n]

    def destinations_hosting_exactly(self, count: int) -> List[str]:
        """Destinations hosting exactly *count* domains (paper: Belgium,
        Ghana, Turkey each hosted one)."""
        return sorted(
            dest for dest, n in self.domains_per_destination().items() if n == count
        )

    def global_south_destinations(self, registry, exclude_continents: Optional[Sequence[str]] = None) -> Dict[str, int]:
        """Hosting counts restricted to non-Europe/North-America destinations."""
        skip = set(exclude_continents or ("Europe", "North America"))
        return {
            dest: count
            for dest, count in self.domains_per_destination().items()
            if registry.continent_of(dest) not in skip
        }
