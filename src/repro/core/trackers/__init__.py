"""Tracker identification: filter lists, org directory, party classification."""

from repro.core.trackers.filterindex import FilterListIndex, FilterSetIndex
from repro.core.trackers.filterlist import (
    FilterList,
    FilterMatch,
    FilterRule,
    FilterSet,
    RuleKind,
    parse_filter_text,
)
from repro.core.trackers.identify import (
    IdentificationMethod,
    TrackerIdentifier,
    TrackerVerdict,
)
from repro.core.trackers.orgs import OrganizationDirectory, OrgEntry
from repro.core.trackers.party import PartyClassifier, PartyKind, PartyVerdict

__all__ = [
    "FilterList",
    "FilterListIndex",
    "FilterMatch",
    "FilterRule",
    "FilterSet",
    "FilterSetIndex",
    "IdentificationMethod",
    "OrgEntry",
    "OrganizationDirectory",
    "PartyClassifier",
    "PartyKind",
    "PartyVerdict",
    "RuleKind",
    "TrackerIdentifier",
    "TrackerVerdict",
    "parse_filter_text",
]
