"""Indexed ABP host matching: suffix maps plus compiled fragment gates.

The naive matcher in :mod:`repro.core.trackers.filterlist` scans every
rule of every list per lookup — O(lists × rules) with a full exception
rescan, which dominates per-country study work at EasyList scale
(tens of thousands of rules).  This module replaces the scan with an
index that answers the same question in O(host labels):

* **Suffix index** — ``||domain^`` block and exception rules live in a
  hash map keyed by their (normalised) domain.  A lookup walks the
  host's label suffixes (``a.b.c.com`` → ``a.b.c.com``, ``b.c.com``,
  ``c.com``, ``com``) and probes the map once per suffix, which is
  exactly the ``is_subdomain`` relation the naive scan evaluates per
  rule.
* **Fragment gate** — substring rules whose pattern is a bare domain
  fragment are folded into one compiled alternation regex per rule
  group.  Most hosts fail the gate in a single C-level scan; only on a
  gate hit does an ordered scan of the (typically few) fragment rules
  run to recover the first-matching rule.
* **List-global exception index** — exception rules from *all* lists are
  pooled into one suffix set + fragment gate checked first, mirroring
  the ad-blocker semantics of :meth:`FilterSet.match_naive`.

Equivalence with the naive scan is the load-bearing property: verdicts
must be byte-identical, including *which* rule object is attributed
(the first matching rule in list order, then rule order).  The suffix
map therefore stores the earliest rule position per domain, and the
fragment scan stops at the first fragment hit or once positions pass
the best domain hit.  ``tests/test_filterindex.py`` locks this down
against generated rule sets.

The index is immutable after :meth:`FilterSetIndex.build`, deterministic
in the list contents (fragments are sorted before the alternation is
compiled), and picklable — compiled patterns, rules and maps all
round-trip, so a lazily-built index travels to process-pool workers
with the scenario.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Pattern, Sequence, Set, Tuple

from repro.core.trackers.filterlist import (
    FilterList,
    FilterMatch,
    FilterRule,
    RuleKind,
    host_fragment,
)
from repro.domains import validate_hostname

__all__ = ["FilterListIndex", "FilterSetIndex", "host_suffixes"]


def host_suffixes(host: str) -> List[str]:
    """All label suffixes of *host*, longest first (host itself included)."""
    labels = host.split(".")
    return [".".join(labels[i:]) for i in range(len(labels))]


def _compile_gate(fragments: Sequence[str]) -> Optional[Pattern[str]]:
    """One alternation matching any of *fragments* (sorted: determinism)."""
    unique = sorted(set(fragments))
    if not unique:
        return None
    return re.compile("|".join(re.escape(fragment) for fragment in unique))


class FilterListIndex:
    """Blocking-rule index for one list (exceptions are set-global)."""

    __slots__ = ("name", "_domains", "_fragment_rules", "_fragment_gate")

    def __init__(
        self,
        name: str,
        domains: Dict[str, Tuple[int, FilterRule]],
        fragment_rules: List[Tuple[int, str, FilterRule]],
    ):
        self.name = name
        self._domains = domains
        self._fragment_rules = fragment_rules
        self._fragment_gate = _compile_gate([f for _, f, _ in fragment_rules])

    @classmethod
    def build(cls, filter_list: FilterList) -> "FilterListIndex":
        domains: Dict[str, Tuple[int, FilterRule]] = {}
        fragment_rules: List[Tuple[int, str, FilterRule]] = []
        for position, rule in enumerate(filter_list.rules):
            if rule.kind == RuleKind.DOMAIN_BLOCK:
                assert rule.domain is not None
                domain = validate_hostname(rule.domain)
                if domain not in domains:  # earliest rule wins attribution
                    domains[domain] = (position, rule)
            elif rule.kind == RuleKind.SUBSTRING:
                fragment = host_fragment(rule)
                if fragment is not None:
                    fragment_rules.append((position, fragment, rule))
        return cls(filter_list.name, domains, fragment_rules)

    @property
    def rule_count(self) -> int:
        return len(self._domains) + len(self._fragment_rules)

    def first_block(self, host: str, suffixes: Sequence[str]) -> Optional[FilterRule]:
        """The earliest-positioned blocking rule matching *host*, if any."""
        best: Optional[Tuple[int, FilterRule]] = None
        for suffix in suffixes:
            hit = self._domains.get(suffix)
            if hit is not None and (best is None or hit[0] < best[0]):
                best = hit
        if self._fragment_gate is not None and self._fragment_gate.search(host):
            for position, fragment, rule in self._fragment_rules:
                if best is not None and position >= best[0]:
                    break  # the domain hit already precedes every remaining rule
                if fragment in host:
                    best = (position, rule)
                    break
        return best[1] if best is not None else None

    # -- pickling: the gate regex recompiles from the rule fragments ---------
    def __getstate__(self) -> dict:
        return {
            "name": self.name,
            "domains": self._domains,
            "fragment_rules": self._fragment_rules,
        }

    def __setstate__(self, state: dict) -> None:
        self.name = state["name"]
        self._domains = state["domains"]
        self._fragment_rules = state["fragment_rules"]
        self._fragment_gate = _compile_gate([f for _, f, _ in self._fragment_rules])


class FilterSetIndex:
    """The full indexed matching engine for an ordered set of lists."""

    __slots__ = ("_list_indexes", "_exception_domains", "_exception_gate")

    def __init__(
        self,
        list_indexes: List[FilterListIndex],
        exception_domains: Set[str],
        exception_fragments: List[str],
    ):
        self._list_indexes = list_indexes
        self._exception_domains = exception_domains
        self._exception_gate = _compile_gate(exception_fragments)

    @classmethod
    def build(cls, lists: Sequence[FilterList]) -> "FilterSetIndex":
        exception_domains: Set[str] = set()
        exception_fragments: List[str] = []
        list_indexes: List[FilterListIndex] = []
        for filter_list in lists:
            for rule in filter_list.rules:
                if rule.kind == RuleKind.DOMAIN_EXCEPTION:
                    assert rule.domain is not None
                    exception_domains.add(validate_hostname(rule.domain))
                elif rule.kind == RuleKind.SUBSTRING_EXCEPTION:
                    fragment = host_fragment(rule)
                    if fragment is not None:
                        exception_fragments.append(fragment)
            list_indexes.append(FilterListIndex.build(filter_list))
        return cls(list_indexes, exception_domains, exception_fragments)

    def is_excepted(self, host: str, suffixes: Optional[Sequence[str]] = None) -> bool:
        """Does any list carry an exception covering *host*?"""
        if suffixes is None:
            suffixes = host_suffixes(host)
        if any(suffix in self._exception_domains for suffix in suffixes):
            return True
        return self._exception_gate is not None and bool(self._exception_gate.search(host))

    def match(self, host: str) -> Optional[FilterMatch]:
        """Byte-identical to ``FilterSet.match_naive`` in O(labels)."""
        host = validate_hostname(host)
        suffixes = host_suffixes(host)
        if self.is_excepted(host, suffixes):
            return None
        for list_index in self._list_indexes:
            rule = list_index.first_block(host, suffixes)
            if rule is not None:
                return FilterMatch(list_name=list_index.name, rule=rule)
        return None

    def stats(self) -> dict:
        """Index shape, for docs/benchmarks (not a study artefact)."""
        return {
            "lists": len(self._list_indexes),
            "indexed_rules": sum(li.rule_count for li in self._list_indexes),
            "exception_domains": len(self._exception_domains),
            "has_exception_gate": self._exception_gate is not None,
        }

    # -- pickling ------------------------------------------------------------
    def __getstate__(self) -> dict:
        pattern = self._exception_gate.pattern if self._exception_gate else None
        return {
            "list_indexes": self._list_indexes,
            "exception_domains": self._exception_domains,
            "exception_gate_pattern": pattern,
        }

    def __setstate__(self, state: dict) -> None:
        self._list_indexes = state["list_indexes"]
        self._exception_domains = state["exception_domains"]
        pattern = state["exception_gate_pattern"]
        self._exception_gate = re.compile(pattern) if pattern is not None else None
