"""Tracker identification: filter lists first, manual inspection second.

Mirrors section 4.2 of the paper:

1. match the host against EasyList/EasyPrivacy-style global lists,
2. then against regional ad/tracker lists for the measurement country,
3. finally fall back to "manual inspection" — a lookup in the
   WhoTracksMe-like organisation directory, which catches regional
   trackers the lists miss (the paper labelled 64 domains this way).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.trackers.filterlist import FilterSet
from repro.core.trackers.orgs import OrganizationDirectory
from repro.domains import registrable_domain, validate_hostname

__all__ = ["IdentificationMethod", "TrackerVerdict", "TrackerIdentifier"]


class IdentificationMethod:
    GLOBAL_LIST = "global_list"
    REGIONAL_LIST = "regional_list"
    MANUAL = "manual"


@dataclass(frozen=True)
class TrackerVerdict:
    """Outcome of classifying one host."""

    host: str
    is_tracker: bool
    method: Optional[str] = None
    list_name: Optional[str] = None
    org_name: Optional[str] = None

    @property
    def domain(self) -> str:
        """The registrable domain the verdict is attributed to."""
        return registrable_domain(self.host) or self.host


class TrackerIdentifier:
    """Layered tracker classification."""

    def __init__(
        self,
        global_lists: FilterSet,
        regional_lists: Optional[Dict[str, FilterSet]] = None,
        directory: Optional[OrganizationDirectory] = None,
    ):
        self._global = global_lists
        self._regional = dict(regional_lists or {})
        self._directory = directory

    @property
    def directory(self) -> Optional[OrganizationDirectory]:
        return self._directory

    def regional_countries(self) -> List[str]:
        return sorted(self._regional)

    def classify(self, host: str, country_code: Optional[str] = None) -> TrackerVerdict:
        """Classify one requested host observed in *country_code*."""
        host = validate_hostname(host)

        match = self._global.match(host)
        if match is not None:
            return self._verdict(host, IdentificationMethod.GLOBAL_LIST, match.list_name)

        if country_code is not None:
            regional = self._regional.get(country_code)
            if regional is not None:
                match = regional.match(host)
                if match is not None:
                    return self._verdict(host, IdentificationMethod.REGIONAL_LIST, match.list_name)

        if self._directory is not None:
            entry = self._directory.org_for_host(host)
            if entry is not None and entry.is_tracking_host(host):
                return TrackerVerdict(
                    host=host,
                    is_tracker=True,
                    method=IdentificationMethod.MANUAL,
                    org_name=entry.name,
                )
        return TrackerVerdict(host=host, is_tracker=False)

    def _verdict(self, host: str, method: str, list_name: str) -> TrackerVerdict:
        org_name = None
        if self._directory is not None:
            entry = self._directory.org_for_host(host)
            if entry is not None:
                org_name = entry.name
        return TrackerVerdict(
            host=host, is_tracker=True, method=method, list_name=list_name, org_name=org_name
        )

    def classify_many(
        self, hosts: List[str], country_code: Optional[str] = None
    ) -> Dict[str, TrackerVerdict]:
        return {host: self.classify(host, country_code) for host in hosts}
