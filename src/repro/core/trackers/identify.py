"""Tracker identification: filter lists first, manual inspection second.

Mirrors section 4.2 of the paper:

1. match the host against EasyList/EasyPrivacy-style global lists,
2. then against regional ad/tracker lists for the measurement country,
3. finally fall back to "manual inspection" — a lookup in the
   WhoTracksMe-like organisation directory, which catches regional
   trackers the lists miss (the paper labelled 64 domains this way).

Classification is memoised: the ~100 sites per country repeat the same
third-party hosts heavily, so :meth:`TrackerIdentifier.classify` keeps a
read-through verdict cache (``trackers.verdicts`` in the
:mod:`repro.exec.cache` registry).  Verdicts are keyed per country only
where a regional list exists — for every other country the verdict is
country-independent, so one cache entry serves them all.  Memoisation
never changes a verdict, only how often it is recomputed; the
uncached path stays reachable as :meth:`classify_uncached` and the
equivalence is locked down in ``tests/test_trackers_core.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.trackers.filterlist import FilterSet
from repro.core.trackers.orgs import OrganizationDirectory
from repro.domains import registrable_domain, validate_hostname
from repro.exec.cache import CacheInfo, ReadThroughCache, register_cache

__all__ = ["IdentificationMethod", "TrackerVerdict", "TrackerIdentifier"]

#: Registry name of the memoised verdict cache.
VERDICT_CACHE_NAME = "trackers.verdicts"


class IdentificationMethod:
    GLOBAL_LIST = "global_list"
    REGIONAL_LIST = "regional_list"
    MANUAL = "manual"


@dataclass(frozen=True)
class TrackerVerdict:
    """Outcome of classifying one host."""

    host: str
    is_tracker: bool
    method: Optional[str] = None
    list_name: Optional[str] = None
    org_name: Optional[str] = None

    @property
    def domain(self) -> str:
        """The registrable domain the verdict is attributed to."""
        return registrable_domain(self.host) or self.host


class TrackerIdentifier:
    """Layered tracker classification with a memoised verdict cache."""

    def __init__(
        self,
        global_lists: FilterSet,
        regional_lists: Optional[Dict[str, FilterSet]] = None,
        directory: Optional[OrganizationDirectory] = None,
        verdict_cache_size: Optional[int] = 65536,
    ):
        self._global = global_lists
        self._regional = dict(regional_lists or {})
        self._directory = directory
        self._cache = register_cache(
            ReadThroughCache(VERDICT_CACHE_NAME, maxsize=verdict_cache_size)
        )

    @property
    def directory(self) -> Optional[OrganizationDirectory]:
        return self._directory

    @property
    def verdict_cache(self) -> ReadThroughCache:
        return self._cache

    def cache_info(self) -> CacheInfo:
        """Hit/miss snapshot of the verdict cache."""
        return self._cache.info()

    def regional_countries(self) -> List[str]:
        return sorted(self._regional)

    def classify(
        self,
        host: str,
        country_code: Optional[str] = None,
        tracer=None,
        metrics=None,
    ) -> TrackerVerdict:
        """Classify one requested host observed in *country_code* (memoised).

        With a :class:`repro.obs.Tracer`, a ``tracker_match`` event
        attributes each positive verdict to the list (or manual
        directory entry) that flagged it.  The verdict — and hence the
        event — is identical whether it came from the cache or a fresh
        classification, so journals stay backend-independent.

        With a :class:`repro.obs.MetricsRegistry`, lookups are counted
        by outcome (``memoised`` vs ``fresh``) and fresh classifications
        count one filter-index consultation.  Both series are
        **runtime** class: how many lookups the memo absorbs depends on
        cache state and scheduling, and the join engine controls how
        often repeats reach this method at all — only the verdicts
        themselves are deterministic.
        """
        host = validate_hostname(host)
        # Regional lists are the only country-dependent layer, so countries
        # without one share a single country-independent cache entry.
        key_country = country_code if country_code in self._regional else None
        if metrics is None:
            verdict = self._cache.get(
                (host, key_country), lambda: self.classify_uncached(host, country_code)
            )
        else:
            computed = []

            def _compute() -> TrackerVerdict:
                computed.append(True)
                metrics.counter(
                    "tracker_index_lookups_total",
                    help="filter-index consultations (uncached classifications)",
                    runtime=True,
                ).inc()
                return self.classify_uncached(host, country_code)

            verdict = self._cache.get((host, key_country), _compute)
            metrics.counter(
                "tracker_verdict_lookups_total",
                {"outcome": "fresh" if computed else "memoised"},
                help="verdict-cache lookups by outcome",
                runtime=True,
            ).inc()
        if tracer is not None and verdict.is_tracker:
            tracer.event(
                "tracker_match",
                host=host,
                method=verdict.method,
                list=verdict.list_name,
                org=verdict.org_name,
            )
        return verdict

    def classify_uncached(
        self, host: str, country_code: Optional[str] = None
    ) -> TrackerVerdict:
        """The uncached reference path (also the cache's compute function)."""
        host = validate_hostname(host)

        match = self._global.match(host)
        if match is not None:
            return self._verdict(host, IdentificationMethod.GLOBAL_LIST, match.list_name)

        if country_code is not None:
            regional = self._regional.get(country_code)
            if regional is not None:
                match = regional.match(host)
                if match is not None:
                    return self._verdict(host, IdentificationMethod.REGIONAL_LIST, match.list_name)

        if self._directory is not None:
            entry = self._directory.org_for_host(host)
            if entry is not None and entry.is_tracking_host(host):
                return TrackerVerdict(
                    host=host,
                    is_tracker=True,
                    method=IdentificationMethod.MANUAL,
                    org_name=entry.name,
                )
        return TrackerVerdict(host=host, is_tracker=False)

    def is_tracker(self, host: str, country_code: Optional[str] = None) -> bool:
        """Convenience: the memoised verdict's boolean."""
        return self.classify(host, country_code).is_tracker

    def org_name_for(self, host: str, verdict: Optional[TrackerVerdict] = None) -> Optional[str]:
        """Directory attribution for *host*, preferring the verdict's org."""
        if verdict is not None and verdict.org_name is not None:
            return verdict.org_name
        if self._directory is None:
            return None
        entry = self._directory.org_for_host(host)
        return entry.name if entry is not None else None

    def _verdict(self, host: str, method: str, list_name: str) -> TrackerVerdict:
        org_name = None
        if self._directory is not None:
            entry = self._directory.org_for_host(host)
            if entry is not None:
                org_name = entry.name
        return TrackerVerdict(
            host=host, is_tracker=True, method=method, list_name=list_name, org_name=org_name
        )

    def classify_many(
        self, hosts: List[str], country_code: Optional[str] = None
    ) -> Dict[str, TrackerVerdict]:
        return {host: self.classify(host, country_code) for host in hosts}
