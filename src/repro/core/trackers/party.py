"""First-party vs third-party tracker classification (section 6.7).

A tracker is *first-party* on a site when the same organisation owns
both the site and the tracking domain (the paper follows CAIDA's
AS-to-organisation convention); otherwise it is third-party.  Ownership
comes from the organisation directory, so ``google.com.eg`` embedding
``googleapis.com`` is first-party while ``a-newspaper.eg`` embedding the
same host is third-party.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.trackers.orgs import OrganizationDirectory

__all__ = ["PartyKind", "PartyClassifier", "PartyVerdict"]


class PartyKind:
    FIRST = "first-party"
    THIRD = "third-party"
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class PartyVerdict:
    site_host: str
    tracker_host: str
    kind: str
    site_org: Optional[str] = None
    tracker_org: Optional[str] = None


class PartyClassifier:
    """Organisation-identity-based party classification."""

    def __init__(self, directory: OrganizationDirectory):
        self._directory = directory

    def classify(self, site_host: str, tracker_host: str) -> PartyVerdict:
        site_entry = self._directory.org_for_host(site_host)
        tracker_entry = self._directory.org_for_host(tracker_host)
        if site_entry is None or tracker_entry is None:
            kind = PartyKind.UNKNOWN if tracker_entry is None else PartyKind.THIRD
            return PartyVerdict(
                site_host=site_host,
                tracker_host=tracker_host,
                kind=kind,
                site_org=site_entry.name if site_entry else None,
                tracker_org=tracker_entry.name if tracker_entry else None,
            )
        kind = PartyKind.FIRST if site_entry.name == tracker_entry.name else PartyKind.THIRD
        return PartyVerdict(
            site_host=site_host,
            tracker_host=tracker_host,
            kind=kind,
            site_org=site_entry.name,
            tracker_org=tracker_entry.name,
        )

    def is_first_party(self, site_host: str, tracker_host: str) -> bool:
        return self.classify(site_host, tracker_host).kind == PartyKind.FIRST
