"""Organisation directory: who owns which tracking domain.

This is the reproduction's WhoTracksMe analogue — the public knowledge
base the paper consulted manually to attribute tracking domains to
companies and to label domains the filter lists missed.  It is built
from published (world-model) data, *not* from simulation ground truth at
query time, so the identification stage exercises the same lookup the
authors performed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.domains import is_subdomain, registrable_domain, validate_hostname

__all__ = ["OrgEntry", "OrganizationDirectory"]


@dataclass(frozen=True)
class OrgEntry:
    """Directory entry for one organisation."""

    name: str
    home_country: str
    domains: tuple  # registrable domains it owns
    is_tracker: bool = False
    category: str = ""  # "advertising", "analytics", "social", "cdn", ...
    #: Domains (registrable or full hostnames) that actually track; an
    #: org's content CDN hosts are deliberately NOT in here.  Empty for
    #: tracker orgs means "all owned domains track".
    tracking_domains: tuple = ()

    def is_tracking_host(self, host: str) -> bool:
        """Does *host* fall under one of this org's tracking domains?"""
        if not self.is_tracker:
            return False
        domains = self.tracking_domains or self.domains
        return any(is_subdomain(host, d) for d in domains)


class OrganizationDirectory:
    """Registrable-domain -> organisation lookups."""

    def __init__(self, entries: Iterable[OrgEntry] = ()):
        self._by_name: Dict[str, OrgEntry] = {}
        self._by_domain: Dict[str, OrgEntry] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: OrgEntry) -> None:
        if entry.name in self._by_name:
            raise ValueError(f"duplicate organisation {entry.name!r}")
        self._by_name[entry.name] = entry
        for domain in entry.domains:
            domain = validate_hostname(domain)
            if domain in self._by_domain:
                raise ValueError(
                    f"domain {domain} claimed by both {self._by_domain[domain].name} and {entry.name}"
                )
            self._by_domain[domain] = entry

    def org_for_host(self, host: str) -> Optional[OrgEntry]:
        """Owner of *host*, matched at the registrable-domain level."""
        host = validate_hostname(host)
        if host in self._by_domain:
            return self._by_domain[host]
        base = registrable_domain(host)
        if base is not None and base in self._by_domain:
            return self._by_domain[base]
        return None

    def get(self, name: str) -> OrgEntry:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown organisation {name!r}") from None

    def has(self, name: str) -> bool:
        return name in self._by_name

    def trackers(self) -> List[OrgEntry]:
        return [e for e in self._by_name.values() if e.is_tracker]

    def is_tracking_host(self, host: str) -> bool:
        entry = self.org_for_host(host)
        return bool(entry and entry.is_tracking_host(host))

    def __len__(self) -> int:
        return len(self._by_name)

    def __iter__(self):
        return iter(self._by_name.values())
