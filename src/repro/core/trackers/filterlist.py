"""Adblock-Plus-syntax filter-list parsing and host matching.

Implements the subset of ABP syntax the paper's identification stage
relies on (EasyList / EasyPrivacy and regional lists are ABP-format):

* comments (``!``) and section headers (``[Adblock Plus 2.0]``),
* domain-anchored network rules ``||example.com^`` with options
  (``$third-party``, ``$script``, ...),
* exception rules ``@@||example.com^`` and ``@@<pattern>``,
* plain substring rules (parsed; matched against hostnames only when the
  pattern is a bare domain fragment),
* element-hiding rules (``##``, ``#@#``) — parsed and retained but never
  matched against hosts, since they target page DOM, not requests.

Matching is host-based because Gamma records request hostnames; an
exception rule suppresses any blocking match from the same list set.

``FilterSet.match`` runs on the indexed engine in
:mod:`repro.core.trackers.filterindex` (a reversed-label suffix index
plus a compiled fragment matcher, O(host labels) per lookup).  The
original linear scan survives as :meth:`FilterSet.match_naive` and is
kept byte-identical to the index by the equivalence suite in
``tests/test_filterindex.py``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple

from repro.domains import is_subdomain, validate_hostname

__all__ = ["RuleKind", "FilterRule", "FilterList", "FilterMatch", "FilterSet", "parse_filter_text"]


class RuleKind:
    DOMAIN_BLOCK = "domain_block"  # ||example.com^
    DOMAIN_EXCEPTION = "domain_exception"  # @@||example.com^
    SUBSTRING = "substring"  # /ads/banner.
    SUBSTRING_EXCEPTION = "substring_exception"  # @@/ads/banner. or @@||bad host^
    ELEMENT_HIDING = "element_hiding"  # ##.ad-box
    COMMENT = "comment"
    HEADER = "header"


@dataclass(frozen=True)
class FilterRule:
    """One parsed line of a filter list."""

    raw: str
    kind: str
    domain: Optional[str] = None  # for domain rules
    pattern: Optional[str] = None  # for substring rules
    options: Tuple[str, ...] = ()

    @property
    def is_network_rule(self) -> bool:
        return self.kind in (
            RuleKind.DOMAIN_BLOCK,
            RuleKind.DOMAIN_EXCEPTION,
            RuleKind.SUBSTRING,
            RuleKind.SUBSTRING_EXCEPTION,
        )

    @property
    def is_exception(self) -> bool:
        return self.kind in (RuleKind.DOMAIN_EXCEPTION, RuleKind.SUBSTRING_EXCEPTION)

    def matches_host(self, host: str) -> bool:
        """Does this rule apply to a request to *host*?"""
        if self.kind in (RuleKind.DOMAIN_BLOCK, RuleKind.DOMAIN_EXCEPTION):
            assert self.domain is not None
            return is_subdomain(host, self.domain)
        if self.kind in (RuleKind.SUBSTRING, RuleKind.SUBSTRING_EXCEPTION):
            fragment = host_fragment(self)
            if fragment is not None:
                return fragment in host
        return False


_DOMAIN_RE = re.compile(r"^[a-z0-9.-]+$")


def _looks_like_domain_fragment(text: str) -> bool:
    return bool(text) and "." in text and bool(_DOMAIN_RE.match(text))


def host_fragment(rule: FilterRule) -> Optional[str]:
    """The hostname substring a SUBSTRING(_EXCEPTION) rule matches, if any.

    Substring rules target URLs; for host-level matching we only honour
    patterns that look like a bare domain fragment.  Returns ``None`` for
    path patterns, which never match hosts.
    """
    if not rule.pattern:
        return None
    fragment = rule.pattern.strip("*")
    if _looks_like_domain_fragment(fragment):
        return fragment
    return None


def _parse_line(line: str) -> Optional[FilterRule]:
    stripped = line.strip()
    if not stripped:
        return None
    if stripped.startswith("!"):
        return FilterRule(raw=line, kind=RuleKind.COMMENT)
    if stripped.startswith("[") and stripped.endswith("]"):
        return FilterRule(raw=line, kind=RuleKind.HEADER)
    if "##" in stripped or "#@#" in stripped or "#?#" in stripped:
        return FilterRule(raw=line, kind=RuleKind.ELEMENT_HIDING)

    exception = stripped.startswith("@@")
    body = stripped[2:] if exception else stripped
    options: Tuple[str, ...] = ()
    if "$" in body:
        body, _, option_text = body.partition("$")
        options = tuple(opt.strip() for opt in option_text.split(",") if opt.strip())

    substring_kind = RuleKind.SUBSTRING_EXCEPTION if exception else RuleKind.SUBSTRING
    if body.startswith("||"):
        anchor = body[2:].rstrip("^/").strip()
        # ``||example.com/ads^`` anchors a *URL* path, not a hostname: the
        # hostname part ends at the first ``/`` (or interior ``^``
        # separator).  Such rules fall back to substring rules and, as
        # patterns carrying a path, never match bare hosts.
        if "/" in anchor or "^" in anchor:
            return FilterRule(raw=line, kind=substring_kind, pattern=body, options=options)
        try:
            domain = validate_hostname(anchor)
        except ValueError:
            return FilterRule(raw=line, kind=substring_kind, pattern=body, options=options)
        kind = RuleKind.DOMAIN_EXCEPTION if exception else RuleKind.DOMAIN_BLOCK
        return FilterRule(raw=line, kind=kind, domain=domain, options=options)
    return FilterRule(raw=line, kind=substring_kind, pattern=body.strip(), options=options)


def parse_filter_text(text: str) -> List[FilterRule]:
    """Parse a full list body, skipping blanks."""
    rules: List[FilterRule] = []
    for line in text.splitlines():
        rule = _parse_line(line)
        if rule is not None:
            rules.append(rule)
    return rules


@dataclass
class FilterList:
    """A named filter list (EasyList, EasyPrivacy, a regional list...)."""

    name: str
    rules: List[FilterRule] = field(default_factory=list)

    @classmethod
    def parse(cls, name: str, text: str) -> "FilterList":
        return cls(name=name, rules=parse_filter_text(text))

    @property
    def network_rules(self) -> List[FilterRule]:
        return [r for r in self.rules if r.is_network_rule]

    def block_match(self, host: str) -> Optional[FilterRule]:
        """First blocking rule matching *host*, unless an exception covers it."""
        host = validate_hostname(host)
        blocking: Optional[FilterRule] = None
        for rule in self.rules:
            if rule.is_exception:
                if rule.matches_host(host):
                    return None
            elif blocking is None and rule.matches_host(host):
                blocking = rule
        return blocking


@dataclass(frozen=True)
class FilterMatch:
    """Which list and rule flagged a host."""

    list_name: str
    rule: FilterRule


class FilterSet:
    """An ordered collection of filter lists queried together."""

    def __init__(self, lists: Iterable[FilterList] = ()):
        self._lists: List[FilterList] = list(lists)
        self._index = None  # built lazily, dropped on mutation

    def add(self, filter_list: FilterList) -> None:
        self._lists.append(filter_list)
        self._index = None

    @property
    def lists(self) -> List[FilterList]:
        return list(self._lists)

    @property
    def list_names(self) -> List[str]:
        return [fl.name for fl in self._lists]

    @property
    def index(self):
        """The indexed matching engine, built on first use.

        The build is deterministic in the list contents, so lazily
        building in one process and shipping the built index to another
        (or rebuilding there) yields identical verdicts.  Call
        :meth:`invalidate_index` after mutating a member list in place.
        """
        if self._index is None:
            from repro.core.trackers.filterindex import FilterSetIndex

            self._index = FilterSetIndex.build(self._lists)
        return self._index

    def invalidate_index(self) -> None:
        self._index = None

    def match(self, host: str) -> Optional[FilterMatch]:
        """First list (in order) that blocks *host*.

        Exceptions are list-global: an exception in *any* list suppresses
        blocking matches from every list, mirroring ad-blocker semantics.
        Runs on the suffix/fragment index; byte-identical to
        :meth:`match_naive`.
        """
        return self.index.match(host)

    def match_naive(self, host: str) -> Optional[FilterMatch]:
        """Reference linear scan — the oracle the index is tested against."""
        host = validate_hostname(host)
        for filter_list in self._lists:
            for rule in filter_list.rules:
                if rule.is_exception and rule.matches_host(host):
                    return None
        for filter_list in self._lists:
            rule = filter_list.block_match(host)
            if rule is not None:
                return FilterMatch(list_name=filter_list.name, rule=rule)
        return None

    def __len__(self) -> int:
        return len(self._lists)
