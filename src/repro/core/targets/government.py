"""Government-website discovery: Tranco filtering plus search top-up.

Section 3.2: government sites are drawn from a Tranco-style global list
filtered on government TLDs (respecting countries with multiple, e.g.
Argentina's ``gob.ar``/``gov.ar``); where fewer than the quota exist the
paper scraped search results — here, a direct catalogue query standing in
for "Google search for the government TLD".
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.domains import validate_hostname
from repro.netsim.geography import Country
from repro.web.catalog import SiteCatalog
from repro.web.website import CATEGORY_GOVERNMENT

__all__ = ["TrancoLikeList", "government_sites_for", "matches_gov_tld"]


class TrancoLikeList:
    """A global popularity-ordered domain list (Tranco analogue)."""

    def __init__(self, domains: Sequence[str]):
        self._domains: List[str] = [validate_hostname(d) for d in domains]

    @classmethod
    def from_catalog(cls, catalog: SiteCatalog, coverage: float = 1.0) -> "TrancoLikeList":
        """Build from the catalogue, ordered by true popularity.

        *coverage* < 1 truncates the tail, modelling the reality that a
        global top list misses small government portals — which is what
        triggers the search-scrape top-up path.
        """
        if not 0.0 < coverage <= 1.0:
            raise ValueError("coverage must be in (0, 1]")
        ordered = sorted(catalog, key=lambda s: (-s.popularity, s.domain))
        keep = max(1, int(len(ordered) * coverage))
        return cls([site.domain for site in ordered[:keep]])

    def domains(self) -> List[str]:
        return list(self._domains)

    def filtered_by_tlds(self, tlds: Iterable[str]) -> List[str]:
        suffixes = tuple(t.lower().lstrip(".") for t in tlds)
        return [d for d in self._domains if any(_ends_with_tld(d, s) for s in suffixes)]

    def __len__(self) -> int:
        return len(self._domains)


def _ends_with_tld(domain: str, suffix: str) -> bool:
    return domain == suffix or domain.endswith("." + suffix)


def matches_gov_tld(domain: str, country: Country) -> bool:
    """Does *domain* sit under any of the country's government TLDs?"""
    domain = validate_hostname(domain)
    return any(_ends_with_tld(domain, tld.lstrip(".")) for tld in country.gov_tlds)


def government_sites_for(
    country: Country,
    tranco: TrancoLikeList,
    catalog: SiteCatalog,
    quota: int = 50,
) -> List[str]:
    """The country's government target list, Tranco-first with top-up."""
    if quota <= 0:
        raise ValueError("quota must be positive")
    from_tranco = [
        d for d in tranco.filtered_by_tlds(country.gov_tlds) if catalog.has(d)
    ][:quota]
    if len(from_tranco) >= quota:
        return from_tranco
    chosen = set(from_tranco)
    # "Scraped Google search results for government TLDs": query the known
    # government sites of the country directly, most popular first.
    extras = sorted(
        (s for s in catalog.in_country(country.code, CATEGORY_GOVERNMENT) if s.domain not in chosen),
        key=lambda s: (-s.popularity, s.domain),
    )
    for site in extras:
        if len(from_tranco) >= quota:
            break
        from_tranco.append(site.domain)
    return from_tranco
