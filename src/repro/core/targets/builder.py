"""Target-list construction (T_web = T_reg + T_gov) per section 3.2."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.core.targets.government import TrancoLikeList, government_sites_for
from repro.core.targets.rankings import CoverageError, RankingProvider
from repro.netsim.geography import GeoRegistry
from repro.web.catalog import SiteCatalog

__all__ = ["TargetList", "TargetListBuilder"]


@dataclass
class TargetList:
    """One country's T_web, split by category."""

    country_code: str
    regional: List[str] = field(default_factory=list)
    government: List[str] = field(default_factory=list)
    ranking_source: str = ""  # which provider supplied the regional list

    @property
    def all_sites(self) -> List[str]:
        return self.regional + self.government

    def __len__(self) -> int:
        return len(self.regional) + len(self.government)

    def without(self, opted_out: Sequence[str]) -> "TargetList":
        """A copy with volunteer-opted-out sites removed."""
        skip = set(opted_out)
        return TargetList(
            country_code=self.country_code,
            regional=[d for d in self.regional if d not in skip],
            government=[d for d in self.government if d not in skip],
            ranking_source=self.ranking_source,
        )


class TargetListBuilder:
    """Builds per-country target lists using the paper's selection rules.

    Regional: top-50 from the primary provider (similarweb-like),
    falling back to the secondary (semrush-like) where uncovered; adult
    and in-country-banned sites are removed and replaced by the next
    ranked entries.  Government: Tranco filter + search top-up.
    """

    def __init__(
        self,
        registry: GeoRegistry,
        catalog: SiteCatalog,
        primary: RankingProvider,
        secondary: RankingProvider,
        tranco: TrancoLikeList,
        regional_quota: int = 50,
        government_quota: int = 50,
    ):
        self._registry = registry
        self._catalog = catalog
        self._primary = primary
        self._secondary = secondary
        self._tranco = tranco
        self._regional_quota = regional_quota
        self._government_quota = government_quota

    def build(self, country_code: str) -> TargetList:
        country = self._registry.country(country_code)
        regional, source = self._regional_sites(country_code)
        government = government_sites_for(
            country, self._tranco, self._catalog, self._government_quota
        )
        return TargetList(
            country_code=country_code,
            regional=regional,
            government=government,
            ranking_source=source,
        )

    def build_all(self, country_codes: Sequence[str]) -> Dict[str, TargetList]:
        return {code: self.build(code) for code in country_codes}

    def _regional_sites(self, country_code: str) -> Tuple[List[str], str]:
        provider, source = self._pick_provider(country_code)
        # Over-fetch so removed adult/banned entries can be back-filled.
        ranked = provider.top_sites(country_code, self._regional_quota * 2)
        selected: List[str] = []
        for entry in ranked:
            if len(selected) >= self._regional_quota:
                break
            if not self._catalog.has(entry.domain):
                continue
            site = self._catalog.get(entry.domain)
            if site.adult or site.banned:
                continue
            selected.append(entry.domain)
        return selected, source

    def _pick_provider(self, country_code: str) -> Tuple[RankingProvider, str]:
        if self._primary.covers(country_code):
            return self._primary, self._primary.name
        if self._secondary.covers(country_code):
            return self._secondary, self._secondary.name
        raise CoverageError(f"no ranking provider covers {country_code}")

    @staticmethod
    def common_sites(targets: Dict[str, TargetList], threshold: float = 1.0) -> List[str]:
        """Domains present in at least *threshold* (fraction) of the lists.

        ``threshold=1.0`` reproduces the paper's observation that only
        google.com and wikipedia.org were common to all countries;
        ``2/3`` reproduces the seven near-universal platforms.
        """
        if not targets:
            return []
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        counts: Dict[str, int] = {}
        for target in targets.values():
            for domain in dict.fromkeys(target.all_sites):
                counts[domain] = counts.get(domain, 0) + 1
        needed = threshold * len(targets)
        return sorted(d for d, n in counts.items() if n >= needed)
