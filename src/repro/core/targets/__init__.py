"""Target-website selection: rankings, government discovery, T_web builder."""

from repro.core.targets.builder import TargetList, TargetListBuilder
from repro.core.targets.government import (
    TrancoLikeList,
    government_sites_for,
    matches_gov_tld,
)
from repro.core.targets.rankings import (
    CatalogRankingProvider,
    CoverageError,
    RankedSite,
    RankingProvider,
    mean_overlap,
    overlap_percentage,
)

__all__ = [
    "CatalogRankingProvider",
    "CoverageError",
    "RankedSite",
    "RankingProvider",
    "TargetList",
    "TargetListBuilder",
    "TrancoLikeList",
    "government_sites_for",
    "matches_gov_tld",
    "mean_overlap",
    "overlap_percentage",
]
