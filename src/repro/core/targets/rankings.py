"""Website-ranking providers and the overlap evaluation of section 3.2.

Three providers are modelled on similarweb, semrush and ahrefs: each
ranks a country's regional websites by popularity, but with
provider-specific perturbation and coverage.  The paper quantified
provider agreement as top-50 overlap over 58 countries (semrush ~65 %,
ahrefs ~48 % against similarweb) and used semrush wherever similarweb
lacked a regional list; the builder reproduces exactly that fallback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from repro.determinism import stable_rng
from repro.web.catalog import SiteCatalog
from repro.web.website import CATEGORY_REGIONAL, Website

__all__ = [
    "CoverageError",
    "RankedSite",
    "RankingProvider",
    "CatalogRankingProvider",
    "overlap_percentage",
    "mean_overlap",
]


class CoverageError(LookupError):
    """Raised when a provider has no regional list for a country."""


@dataclass(frozen=True)
class RankedSite:
    domain: str
    rank: int  # 1-based


class RankingProvider:
    """Interface: ordered top sites for a country."""

    name: str = "abstract"

    def top_sites(self, country_code: str, n: int = 50) -> List[RankedSite]:
        raise NotImplementedError

    def covers(self, country_code: str) -> bool:
        raise NotImplementedError


class CatalogRankingProvider(RankingProvider):
    """A provider that ranks the catalogue's sites with its own noise.

    *noise* controls how far the provider's view diverges from true
    popularity: 0.0 reproduces the catalogue order exactly; larger values
    shuffle more aggressively (lower top-N overlap with other providers).
    *missing_countries* models coverage gaps.
    """

    def __init__(
        self,
        name: str,
        catalog: SiteCatalog,
        noise: float = 0.0,
        missing_countries: Iterable[str] = (),
        score_cap: Optional[float] = None,
    ):
        if noise < 0:
            raise ValueError("noise must be non-negative")
        if score_cap is not None and score_cap <= 0:
            raise ValueError("score_cap must be positive")
        self.name = name
        self._catalog = catalog
        self._noise = noise
        self._missing: Set[str] = set(missing_countries)
        #: Some providers estimate popularity from signals (backlinks,
        #: panel data) that saturate for the biggest global platforms;
        #: capping the score models that saturation.
        self._score_cap = score_cap

    def covers(self, country_code: str) -> bool:
        return country_code not in self._missing and bool(
            self._catalog.market(country_code, CATEGORY_REGIONAL)
        )

    def top_sites(self, country_code: str, n: int = 50) -> List[RankedSite]:
        if country_code in self._missing:
            raise CoverageError(f"{self.name} has no regional ranking for {country_code}")
        sites = self._catalog.market(country_code, CATEGORY_REGIONAL)
        if not sites:
            raise CoverageError(f"no regional sites known for {country_code}")
        scored = [(self._score(site), site.domain) for site in sites]
        scored.sort(key=lambda item: (-item[0], item[1]))
        return [RankedSite(domain=domain, rank=i + 1) for i, (_, domain) in enumerate(scored[:n])]

    def _score(self, site: Website) -> float:
        jitter = stable_rng("ranking", self.name, site.domain).gauss(0.0, self._noise)
        popularity = site.popularity
        if self._score_cap is not None:
            popularity = min(popularity, self._score_cap)
        return popularity + jitter


def overlap_percentage(a: Sequence[RankedSite], b: Sequence[RankedSite]) -> float:
    """Percentage of *a*'s domains also present in *b* (order-insensitive)."""
    if not a:
        return 0.0
    domains_b = {site.domain for site in b}
    hits = sum(1 for site in a if site.domain in domains_b)
    return 100.0 * hits / len(a)


def mean_overlap(
    reference: RankingProvider,
    other: RankingProvider,
    countries: Iterable[str],
    n: int = 50,
) -> Optional[float]:
    """Average top-*n* overlap across countries both providers cover.

    Returns ``None`` when no country is covered by both, mirroring the
    paper's restriction to the 58 countries with complete lists.
    """
    overlaps: List[float] = []
    for country in countries:
        if not (reference.covers(country) and other.covers(country)):
            continue
        overlaps.append(overlap_percentage(reference.top_sites(country, n), other.top_sites(country, n)))
    if not overlaps:
        return None
    return sum(overlaps) / len(overlaps)
