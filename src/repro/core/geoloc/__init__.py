"""Multi-constraint server geolocation (section 4.1)."""

from repro.core.geoloc.columnar import HAVE_NUMPY, ColumnarGeolocationEngine
from repro.core.geoloc.constraints import (
    ConstraintResult,
    ConstraintStatus,
    DestinationConstraint,
    ReverseDNSConstraint,
    SourceConstraint,
    adjusted_latency_ms,
    round_evidence_ms,
    source_latency_floor_ms,
)
from repro.core.geoloc.latency_stats import (
    LatencyStatsProvider,
    StatsChain,
    SyntheticStatsProvider,
    VERIZON_HUB_CITIES,
    default_stats_chain,
)
from repro.core.geoloc.validation import (
    ValidationCounts,
    misclassified_servers,
    validate_against_truth,
)
from repro.core.geoloc.pipeline import (
    GEOLOC_ENGINES,
    DatasetGeolocation,
    FunnelCounters,
    GeolocationPipeline,
    PipelineConfig,
    ServerStatus,
    ServerVerdict,
    SourceTraces,
)

__all__ = [
    "GEOLOC_ENGINES",
    "HAVE_NUMPY",
    "ColumnarGeolocationEngine",
    "ConstraintResult",
    "ConstraintStatus",
    "DatasetGeolocation",
    "DestinationConstraint",
    "FunnelCounters",
    "GeolocationPipeline",
    "LatencyStatsProvider",
    "PipelineConfig",
    "ReverseDNSConstraint",
    "ServerStatus",
    "ServerVerdict",
    "SourceConstraint",
    "SourceTraces",
    "StatsChain",
    "ValidationCounts",
    "SyntheticStatsProvider",
    "VERIZON_HUB_CITIES",
    "adjusted_latency_ms",
    "default_stats_chain",
    "misclassified_servers",
    "round_evidence_ms",
    "source_latency_floor_ms",
    "validate_against_truth",
]
