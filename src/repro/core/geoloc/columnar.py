"""Batch columnar evaluation of the geolocation constraints.

The scalar pipeline walks one address at a time: a distance-cache
lookup, a published-statistics RNG draw, a probe-mesh scan, and three
:class:`ConstraintResult` branches *per server*.  At study scale the
per-country candidate set is large while the set of *claimed cities* is
tiny, so almost all of that per-address work recomputes the same
values.  This engine restructures the loop around that observation:

1. **Gather** — one pass over the candidate addresses pulls the
   per-server evidence (source/destination trace reachability,
   first/last hop RTTs, claimed-city index) into flat numpy arrays.
2. **Anchor** — distances, SOL floors, published-statistics floors,
   probe assignments and strict-bound ceilings are computed once per
   *unique claimed city* using exactly the scalar helpers
   (:func:`city_distance_km`, ``published_rtt_ms``,
   :func:`source_latency_floor_ms`), then broadcast to the candidate
   axis by index.  Re-using the scalar functions for every anchored
   value means each float the two engines compare or report is the same
   object-for-object IEEE-754 computation — there is no vectorised
   trigonometry whose last ulp could drift from ``math``.
3. **Evaluate** — SOL bounds, the 80 % rule, reachability and the
   strict destination bound become elementwise array comparisons; the
   sequential gating of the constraint battery (a source failure stops
   the destination check; both stop reverse DNS) becomes mask algebra.
4. **Materialise** — verdicts are built in the scalar engine's address
   order with evidence values converted back to built-in floats
   (``ndarray.tolist`` round-trips float64 exactly), so verdict
   dataclasses, funnel counters and pickled bytes are identical to the
   scalar oracle's.

Numpy is gated: when it is unavailable the pipeline silently resolves
``engine="columnar"`` to the scalar oracle (the outputs are identical
by contract, so the fallback is unobservable in study artefacts).
"""

from __future__ import annotations

import statistics
from typing import Dict, List, Optional

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy is baked into CI images
    np = None
    HAVE_NUMPY = False

from repro.core.geoloc.confidence import (
    CONF_BASE,
    CONF_CEIL,
    CONF_CONSISTENCY_SIGN,
    CONF_CONSISTENCY_WEIGHT,
    CONF_FLOOR,
    CONF_MARGIN_WEIGHT,
    CONF_RDNS_BONUS,
    ConfidenceAnchors,
    ConfidenceInputs,
    gather_inputs,
)
from repro.core.geoloc.constraints import (
    ConstraintResult,
    ConstraintStatus,
    DestinationConstraint,
    ReverseDNSConstraint,
    source_latency_floor_ms,
)
from repro.core.gamma.parsers import NormalizedTraceroute
from repro.core.geoloc.verdicts import FunnelCounters, ServerStatus, ServerVerdict
from repro.netsim.distance import city_distance_km, min_rtt_ms
from repro.netsim.geography import City

__all__ = ["HAVE_NUMPY", "ColumnarGeolocationEngine", "combine_batch"]

#: Source-constraint outcome codes, ordered so ``code <= _SRC_RULE80``
#: means FAIL.  The order mirrors the scalar decision ladder exactly.
_SRC_NO_TRACE = 0
_SRC_UNREACHED = 1
_SRC_NO_HOPS = 2
_SRC_SOL = 3
_SRC_RULE80 = 4
_SRC_PASS_NO_STATS = 5
_SRC_PASS = 6

#: Destination-constraint outcome codes; ``code <= _DST_STRICT`` is FAIL.
_DST_NO_TRACE = 0
_DST_UNREACHED = 1
_DST_NO_HOPS = 2
_DST_SOL = 3
_DST_STRICT = 4
_DST_PASS = 5

_NAN = float("nan")

_new_result = object.__new__


def _result(constraint, status, reason, observed_ms=None, expected_ms=None):
    """A :class:`ConstraintResult` built by direct ``__dict__`` fill.

    The frozen dataclass ``__init__`` routes every field through
    ``object.__setattr__``; at thousands of results per batch that is a
    measurable share of the engine.  Filling the instance dict in field
    order yields a byte-identical object (same type, same ``__dict__``
    insertion order, so equality and pickled bytes match the scalar
    engine's constructor output exactly — the differential suite asserts
    both).
    """
    result = _new_result(ConstraintResult)
    d = result.__dict__
    d["constraint"] = constraint
    d["status"] = status
    d["reason"] = reason
    d["observed_ms"] = observed_ms
    d["expected_ms"] = expected_ms
    return result


def combine_batch(gathered: List[ConfidenceInputs]) -> "np.ndarray":
    """Vectorised :func:`repro.core.geoloc.confidence.combine_score`.

    The scoring formula over a whole gathered batch as masked array
    algebra.  Every operation is elementwise IEEE-754 arithmetic in the
    scalar reference's exact operation order, so each lane is
    bit-identical to ``combine_score`` on the same inputs — the
    differential suite asserts it.
    """
    kind = np.array([g.kind for g in gathered], dtype=np.intp)
    r_src = np.array(
        [_NAN if g.margin_src is None else g.margin_src for g in gathered])
    r_dst = np.array(
        [_NAN if g.margin_dst is None else g.margin_dst for g in gathered])
    cons = np.array(
        [_NAN if g.consistency is None else g.consistency for g in gathered])
    rdns = np.array([g.rdns_hint for g in gathered], dtype=bool)

    # margin_score: clamp-at-zero then r / (r + 1); NaN propagates
    # through both, flagging "no margin evidence" lanes.
    s_src = np.maximum(r_src, 0.0)
    s_src = s_src / (s_src + 1.0)
    s_dst = np.maximum(r_dst, 0.0)
    s_dst = s_dst / (s_dst + 1.0)
    have_src = ~np.isnan(s_src)
    have_dst = ~np.isnan(s_dst)
    count = have_src.astype(np.int64) + have_dst.astype(np.int64)
    total = np.where(have_src, s_src, 0.0) + np.where(have_dst, s_dst, 0.0)
    margin = np.where(count > 0, total / np.maximum(count, 1), 0.5)
    consistency = np.where(np.isnan(cons), 0.5, cons)

    base = np.array(CONF_BASE)[kind]
    margin_weight = np.array(CONF_MARGIN_WEIGHT)[kind]
    sign = np.array(CONF_CONSISTENCY_SIGN)[kind]
    cons_weight = np.array(CONF_CONSISTENCY_WEIGHT)[kind]
    conf = base + margin_weight * (margin - 0.5)
    conf = conf + cons_weight * sign * (consistency - 0.5)
    conf = conf + np.where(rdns, CONF_RDNS_BONUS, 0.0)
    return np.minimum(np.maximum(conf, CONF_FLOOR), CONF_CEIL)


def _gather_trace(trace) -> float:
    """``adjusted_latency_ms`` inlined for the gather loop (NaN = None)."""
    last = trace.last_hop_rtt
    if last is None:
        return float("nan")
    first = trace.first_hop_rtt
    if first is not None and first < last:
        return last - first
    return last


class ColumnarGeolocationEngine:
    """Vectorised twin of the scalar constraint battery.

    Holds only configuration and service references (like the scalar
    pipeline), so instances pickle across the process-pool boundary and
    per-worker engines classify identically to a shared one.
    """

    name = "columnar"

    def __init__(self, ipmap, atlas, stats, latency, config):
        if not HAVE_NUMPY:  # pragma: no cover - guarded by the pipeline
            raise RuntimeError("the columnar engine requires numpy")
        self._ipmap = ipmap
        self._atlas = atlas
        self._stats = stats
        self._config = config
        self._threshold = config.conservative_threshold
        # Reused for ``plausible_rtt_bound_ms`` (strict mode) so the
        # ceiling formula has exactly one implementation.
        self._destination = DestinationConstraint(
            latency,
            config.max_inflation,
            config.destination_slack_ms,
            strict_bound=config.strict_destination_bound,
        )
        self._rdns = ReverseDNSConstraint()
        # Per-claimed-city anchor memos, living for the engine's lifetime
        # (services and config are fixed at construction, so every anchor
        # is a pure function of its key).  A study classifies each city
        # once per country; repeated batches — benchmarks, re-runs over
        # the same engine — skip the probe scans and statistics draws
        # entirely.
        self._source_anchors: Dict[tuple, tuple] = {}
        self._dest_anchors: Dict[str, tuple] = {}
        self._confidence_anchors: Optional[ConfidenceAnchors] = None

    # -- public API ----------------------------------------------------------
    def classify_batch(
        self,
        addresses: Dict[str, List[str]],
        measurement_country: str,
        source_traces,
        rdns_records: Dict[str, Optional[str]],
        funnel: FunnelCounters,
    ) -> Dict[str, ServerVerdict]:
        """Verdicts for every address, in the input (scalar) order.

        Mutates *funnel* only through ``destination_traceroutes`` — the
        logical launch counter the scalar engine increments per
        candidate — leaving all stage accounting to the shared caller.
        """
        addr_list = list(addresses)
        locate = self._ipmap.locate
        claims = [locate(address) for address in addr_list]
        slots: List[Optional[ServerVerdict]] = [None] * len(addr_list)
        candidates: List[int] = []
        append = candidates.append
        UNLOCATED = ServerStatus.UNLOCATED
        LOCAL = ServerStatus.LOCAL
        for i, (address, claim) in enumerate(zip(addr_list, claims)):
            if claim is None:
                slots[i] = ServerVerdict(address, addresses[address], UNLOCATED)
            elif claim.country_code == measurement_country:
                slots[i] = ServerVerdict(address, addresses[address], LOCAL, claim)
            else:
                append(i)
        if candidates:
            self._classify_candidates(
                addr_list, addresses, claims, candidates, slots,
                source_traces, rdns_records, funnel,
            )
        return {addr_list[i]: slots[i] for i in range(len(addr_list))}

    def score_batch(self, verdicts, source_traces) -> Dict[str, ConfidenceInputs]:
        """Vectorised confidence scoring over one verdict batch.

        The gather step is the engine-shared
        :func:`repro.core.geoloc.confidence.gather_inputs` (margins,
        consistency votes and anchored SOL floors are scalar helper
        computations either way — the PR 6 anchor pattern); the scoring
        *formula* then runs once over the whole batch as masked array
        algebra.  Every operation is elementwise IEEE-754 arithmetic in
        the scalar reference's exact operation order, so the scores are
        bit-identical to :func:`combine_score` — the differential suite
        asserts it.  Mutates only ``verdict.confidence``; returns the
        gathered inputs per address for journal emission.
        """
        anchors = self._confidence_anchors
        if anchors is None:
            anchors = self._confidence_anchors = ConfidenceAnchors(self._atlas)
        source_city = source_traces.city
        rows = list(verdicts.items())
        inputs_map = {
            address: gather_inputs(verdict, source_city, anchors)
            for address, verdict in rows
        }
        if not rows:
            return inputs_map

        conf = combine_batch(list(inputs_map.values()))
        for (address, verdict), value in zip(rows, conf.tolist()):
            verdict.confidence = value
        return inputs_map

    # -- the batch body ------------------------------------------------------
    def _classify_candidates(
        self, addr_list, addresses, claims, candidates, slots,
        source_traces, rdns_records, funnel,
    ) -> None:
        config = self._config
        n = len(candidates)

        # Candidate axis -> unique-claimed-city axis.
        cities: List[City] = []
        city_slot: Dict[str, int] = {}
        city_idx = np.empty(n, dtype=np.intp)
        for j, i in enumerate(candidates):
            city = claims[i].city
            k = city_slot.get(city.key)
            if k is None:
                k = city_slot[city.key] = len(cities)
                cities.append(city)
            city_idx[j] = k

        # -- source constraint (volunteer side) ------------------------------
        if config.enable_source:
            src_code, src_observed, src_sol, src_floor = self._source_phase(
                addr_list, candidates, cities, city_idx, source_traces
            )
            src_fail = src_code <= _SRC_RULE80
        else:
            src_code = src_observed = src_sol = src_floor = None
            src_fail = np.zeros(n, dtype=bool)

        # -- destination constraint (probe side) -----------------------------
        eligible = ~src_fail
        if config.enable_destination:
            dst_code, dst_observed, dst_sol, dst_bound = self._destination_phase(
                addr_list, candidates, cities, city_idx, eligible, funnel
            )
            dst_fail = eligible & (dst_code <= _DST_STRICT)
        else:
            dst_code = dst_observed = dst_sol = dst_bound = None
            dst_fail = np.zeros(n, dtype=bool)

        # -- materialise, in scalar address order ----------------------------
        # tolist() converts float64 -> built-in float exactly, keeping
        # verdict dataclasses (and their pickled bytes) engine-invariant.
        # One fused pass builds constraint results and verdicts; reason
        # strings are created exactly as the scalar engine creates them
        # (fresh f-strings per result, shared literals) so even the
        # object-identity graph pickle memoises is the same shape.
        scode, sobs, _ssol, sfloor = self._lists(
            src_code, src_observed, src_sol, src_floor)
        dcode, dobs, dsol, dbound = self._lists(
            dst_code, dst_observed, dst_sol, dst_bound)
        enable_source = config.enable_source
        enable_destination = config.enable_destination
        enable_rdns = config.enable_rdns
        rdns_check = self._rdns.check
        rdns_get = rdns_records.get
        threshold = self._threshold
        FAIL = ConstraintStatus.FAIL
        PASS = ConstraintStatus.PASS
        SKIP = ConstraintStatus.SKIP
        DISCARDED = ServerStatus.DISCARDED
        VERIFIED = ServerStatus.NONLOCAL_VERIFIED

        for j, i in enumerate(candidates):
            address = addr_list[i]
            hosts = addresses[address]
            claim = claims[i]
            checks: List[ConstraintResult] = []
            if enable_source:
                code = scode[j]
                if code == _SRC_PASS:
                    checks.append(_result(
                        "source", PASS, "consistent", sobs[j], sfloor[j]))
                elif code == _SRC_PASS_NO_STATS:
                    checks.append(_result(
                        "source", PASS, "SOL ok; no published statistics for pair",
                        sobs[j]))
                else:
                    if code == _SRC_NO_TRACE:
                        checks.append(_result(
                            "source", FAIL, "no source traceroute"))
                    elif code == _SRC_UNREACHED:
                        checks.append(_result(
                            "source", FAIL, "traceroute did not reach destination"))
                    elif code == _SRC_NO_HOPS:
                        checks.append(_result(
                            "source", FAIL, "no responding hops"))
                    elif code == _SRC_SOL:
                        checks.append(_result(
                            "source", FAIL,
                            "speed-of-light violation for claimed location",
                            sobs[j], _ssol[j]))
                    else:  # _SRC_RULE80
                        checks.append(_result(
                            "source", FAIL,
                            f"observed latency below {threshold:.0%} of "
                            "published statistics",
                            sobs[j], sfloor[j]))
                    slots[i] = ServerVerdict(
                        address, hosts, DISCARDED, claim, "source", checks)
                    continue
            if enable_destination:
                code = dcode[j]
                if code == _DST_PASS:
                    checks.append(_result(
                        "destination", PASS, "consistent", dobs[j]))
                else:
                    if code == _DST_NO_TRACE:
                        checks.append(_result(
                            "destination", FAIL, "no destination traceroute"))
                    elif code == _DST_UNREACHED:
                        checks.append(_result(
                            "destination", FAIL,
                            "destination traceroute did not reach"))
                    elif code == _DST_NO_HOPS:
                        checks.append(_result(
                            "destination", FAIL, "no responding hops"))
                    elif code == _DST_SOL:
                        checks.append(_result(
                            "destination", FAIL,
                            "speed-of-light violation for claimed location "
                            "(destination)",
                            dobs[j], dsol[j]))
                    else:  # _DST_STRICT
                        checks.append(_result(
                            "destination", FAIL,
                            "RTT from in-country probe too high for claimed "
                            "location",
                            dobs[j], dbound[j]))
                    slots[i] = ServerVerdict(
                        address, hosts, DISCARDED, claim, "destination", checks)
                    continue
            if enable_rdns:
                hostname = rdns_get(address)
                if not hostname:
                    # ``ReverseDNSConstraint.check``'s missing-PTR path,
                    # inlined for the common case.
                    checks.append(_result(
                        "rdns", SKIP, "no PTR record"))
                else:
                    check = rdns_check(hostname, claim.city)
                    checks.append(check)
                    if check.failed:
                        slots[i] = ServerVerdict(
                            address, hosts, DISCARDED, claim, "rdns", checks)
                        continue
            slots[i] = ServerVerdict(address, hosts, VERIFIED, claim, "", checks)

    # -- phases --------------------------------------------------------------
    def _source_phase(self, addr_list, candidates, cities, city_idx, source_traces):
        """Outcome code + evidence arrays for the source constraint."""
        n = len(candidates)
        has_trace_l = [False] * n
        reached_l = [False] * n
        observed_l = [_NAN] * n
        traces = source_traces.traces
        traces_get = traces.get
        nan = _NAN
        median = statistics.median
        for j, i in enumerate(candidates):
            trace = traces_get(addr_list[i])
            if trace is None:
                continue
            has_trace_l[j] = True
            if not trace.reached:
                continue
            reached_l[j] = True
            if type(trace) is not NormalizedTraceroute:
                # Probe-layer fast path hands back raw simulator traces;
                # their hop RTTs are plain fields, so the duck-typed
                # gather is already cheap.
                observed_l[j] = _gather_trace(trace)
                continue
            # ``adjusted_latency_ms`` inlined: one forward and one reverse
            # scan over the hops, with the per-hop median fast paths from
            # ``NormalizedHop.rtt_ms`` unrolled (bit-identical results).
            hops = trace.hops
            first = None
            for hop in hops:
                if hop.address is not None and hop.rtts_ms:
                    first = hop
                    break
            if first is None:
                observed_l[j] = nan
                continue
            last = first
            for hop in reversed(hops):
                if hop.address is not None and hop.rtts_ms:
                    last = hop
                    break
            samples = last.rtts_ms
            m = len(samples)
            if m == 1:
                lv = float(samples[0])
            elif m == 3:
                a, b, c = samples
                lv = max(min(a, b), min(max(a, b), c))
            else:
                lv = float(median(samples))
            if last is first:
                observed_l[j] = lv
                continue
            samples = first.rtts_ms
            m = len(samples)
            if m == 1:
                fv = float(samples[0])
            elif m == 3:
                a, b, c = samples
                fv = max(min(a, b), min(max(a, b), c))
            else:
                fv = float(median(samples))
            observed_l[j] = lv - fv if fv < lv else lv
        has_trace = np.array(has_trace_l, dtype=bool)
        reached = np.array(reached_l, dtype=bool)
        observed = np.array(observed_l)

        source_city = source_traces.city
        source_key = source_city.key
        memo = self._source_anchors
        sol_anchor = np.empty(len(cities))
        floor_anchor = np.empty(len(cities))
        for k, city in enumerate(cities):
            anchor = memo.get((source_key, city.key))
            if anchor is None:
                published = self._stats.published_rtt_ms(source_city, city)
                anchor = memo[(source_key, city.key)] = (
                    min_rtt_ms(city_distance_km(source_city, city)),
                    float("nan") if published is None
                    else source_latency_floor_ms(self._threshold, published),
                )
            sol_anchor[k], floor_anchor[k] = anchor
        sol = sol_anchor[city_idx]
        floor = floor_anchor[city_idx]

        # The scalar decision ladder as masked assignments in *reverse*
        # priority order (each later store overrides the earlier ones),
        # which is equivalent to ``np.select`` with forward priority but
        # cheaper at per-country batch sizes.
        valid = reached & ~np.isnan(observed)
        has_stats = ~np.isnan(floor)
        code = np.full(n, _SRC_PASS, dtype=np.intp)
        code[valid & ~has_stats] = _SRC_PASS_NO_STATS
        code[valid & has_stats & (observed < floor)] = _SRC_RULE80
        code[valid & (observed < sol)] = _SRC_SOL
        code[~valid] = _SRC_NO_HOPS  # reached, but no responding hops
        code[~reached] = _SRC_UNREACHED
        code[~has_trace] = _SRC_NO_TRACE
        return code, observed, sol, floor

    def _destination_phase(
        self, addr_list, candidates, cities, city_idx, eligible, funnel
    ):
        """Outcome code + evidence arrays for the destination constraint.

        Launches destination traceroutes only for candidates the source
        constraint let through (mirroring the scalar early exit) and
        counts each logical launch on the funnel before the — possibly
        memoised — measurement, exactly as the scalar engine does.
        """
        n = len(candidates)
        mesh = self._atlas.mesh
        memo = self._dest_anchors
        strict = self._config.strict_destination_bound
        probes = []
        sol_anchor = np.empty(len(cities))
        bound_anchor = np.empty(len(cities))
        for k, city in enumerate(cities):
            anchor = memo.get(city.key)
            if anchor is None:
                probe = mesh.probe_for_country(city.country_code, city)[0]
                if probe is None:
                    anchor = (None, float("nan"), float("nan"))
                else:
                    anchor = (
                        probe,
                        min_rtt_ms(city_distance_km(probe.city, city)),
                        self._destination.plausible_rtt_bound_ms(probe.city, city)
                        if strict else float("nan"),
                    )
                memo[city.key] = anchor
            probes.append(anchor[0])
            sol_anchor[k], bound_anchor[k] = anchor[1], anchor[2]
        has_probe = np.array([probe is not None for probe in probes])[city_idx]

        launch = eligible & has_probe
        funnel.destination_traceroutes += int(np.count_nonzero(launch))

        reached_l = [False] * n
        observed_l = [_NAN] * n
        idx_list = city_idx.tolist()
        dest_traceroute = self._atlas.dest_traceroute
        for j in np.flatnonzero(launch).tolist():
            trace = dest_traceroute(probes[idx_list[j]], addr_list[candidates[j]])
            if not trace.reached:
                continue
            reached_l[j] = True
            observed_l[j] = _gather_trace(trace)
        reached = np.array(reached_l, dtype=bool)
        observed = np.array(observed_l)

        sol = sol_anchor[city_idx]
        bound = bound_anchor[city_idx]

        # Reverse-priority masked stores; see ``_source_phase``.
        valid = reached & ~np.isnan(observed)
        code = np.full(n, _DST_PASS, dtype=np.intp)
        if strict:
            code[valid & (observed > bound)] = _DST_STRICT
        code[valid & (observed < sol)] = _DST_SOL
        code[~valid] = _DST_NO_HOPS
        code[~reached] = _DST_UNREACHED
        code[~has_probe] = _DST_NO_TRACE
        return code, observed, sol, bound

    # -- materialisation helpers ---------------------------------------------
    @staticmethod
    def _lists(code, observed, sol, bound):
        """Arrays -> plain Python lists (exact float64 round trip)."""
        if code is None:
            return None, None, None, None
        return code.tolist(), observed.tolist(), sol.tolist(), bound.tolist()
