"""Calibrated per-server confidence scores for geolocation verdicts.

The constraint battery yields binary verdicts; "Overconfident
Coordinates" argues traceroute geolocation needs quantified uncertainty,
and "Leveraging Traceroute Inconsistencies" shows cross-vantage
disagreement is itself signal.  This module scores every verdict with a
probability-shaped confidence in ``[0, 1]`` — *how likely is the binary
foreign/local call to be right?* — from two evidence families:

* **Constraint margins** — how far the adjusted first/last-hop RTT
  evidence sits from the SOL and 80 %-floor thresholds of
  :mod:`repro.core.geoloc.constraints`.  A verdict decided one
  microsecond from the threshold is a coin flip; one decided with a 3x
  margin is not.  Margins are expressed as the relative distance
  ``|observed - threshold| / threshold`` and squashed monotonically into
  ``[0, 1)`` — tightening a margin can never *raise* confidence (the
  property-based suite locks this down).
* **Cross-vantage consistency** — the same destination traced from
  probes in several countries via the ``atlas.dest_traces``
  cross-country memo.  Each vantage votes on whether its RTT is
  physically consistent with the claimed city (above the SOL floor,
  below an inflation-bounded ceiling); disagreement between vantages
  lowers confidence in the claim, which *raises* confidence in a
  discard and *lowers* it in a verification.

Confidence is an **annotation layer**: scoring never changes a verdict,
a funnel counter, a summary, or a stripped journal.  Both engines
implement the same spec — the scalar reference walks verdicts one at a
time (:func:`score_verdict`), the columnar engine evaluates the same
formula as masked numpy array algebra — and the differential suite
asserts bit-identical scores.  Every anchored float (SOL floors, vantage
bounds, consistency ratios) is produced by exactly the scalar helpers,
so the two engines can never drift by an ulp.

Base rates per outcome class are calibrated against the seeded ground
truth of the default world (``gamma confidence --validate`` reports the
reliability diagram, Brier score and ECE; docs/geolocation-confidence.md
records the methodology).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.geoloc.constraints import adjusted_latency_ms
from repro.core.geoloc.verdicts import DatasetGeolocation, ServerStatus, ServerVerdict
from repro.netsim.distance import city_distance_km, min_rtt_ms
from repro.netsim.geography import City

__all__ = [
    "CONFIDENCE_KINDS",
    "ConfidenceAnchors",
    "ConfidenceInputs",
    "ConfidenceReport",
    "combine_score",
    "cross_vantage_consistency",
    "gather_inputs",
    "margin_score",
    "round_confidence",
    "score_verdict",
]

# -- outcome kinds ------------------------------------------------------------
# Every verdict maps to exactly one kind; the kind indexes the base-rate
# and weight tables below.  Codes are contiguous so the columnar engine
# can vectorise the lookup with one ``np.take`` per table.
K_UNLOCATED = 0
K_LOCAL = 1
K_VERIFIED = 2
K_DISC_SOURCE_EVIDENCE = 3    # source SOL / 80 %-rule fail (margin known)
K_DISC_SOURCE_PROCEDURAL = 4  # missing / unreached / hopless source trace
K_DISC_DEST_EVIDENCE = 5      # destination SOL / strict-bound fail
K_DISC_DEST_PROCEDURAL = 6    # no probe / unreached / hopless dest trace
K_DISC_RDNS = 7               # contradicting PTR hint

#: Kind code -> stable label (journal events, reports, docs).
CONFIDENCE_KINDS: Tuple[str, ...] = (
    "unlocated",
    "local",
    "verified",
    "discard_source_evidence",
    "discard_source_procedural",
    "discard_destination_evidence",
    "discard_destination_procedural",
    "discard_rdns",
)

# -- calibrated parameters ----------------------------------------------------
# Base rates and weights are fitted to the measured accuracy of each
# outcome class on the default 23-country world (the binary call
# "verified == truly foreign" scored against ``World.ips.true_country``).
# The load-bearing empirical facts behind the numbers:
#
# * verified / local verdicts are right ~99.9 % of the time (the paper's
#   precision guarantee plus the geodb's 9 % wrong-country error rate);
# * a *discarded or unlocated* candidate is "called local", and most
#   candidates are truly foreign — so discard classes sit at *low*
#   accuracy unless the evidence says otherwise;
# * for evidence discards the margin is strongly informative (accuracy
#   climbs ~0.10 -> ~0.99 across margin quartiles): an RTT far below the
#   claimed city's floor means the server is much closer than claimed —
#   usually in-country;
# * for procedural discards the cross-vantage vote is the signal:
#   accuracy 0.002 when every vantage agrees with the claim (the claim
#   was right, the discard wrong) vs 0.54 when they disagree.
#
# Re-derive with ``gamma confidence --validate`` after touching the
# constraint ladder, the consistency vote, or the geodb error model.
CONF_BASE: Tuple[float, ...] = (
    0.60,   # unlocated: no claim, no evidence; the measured base rate
    0.985,  # local: in-country claims are wrong only via geodb errors
    0.98,   # verified: the paper's ~100 % precision class
    0.66,   # discard (source evidence), at a neutral margin
    0.27,   # discard (source procedural), at a neutral vantage vote
    0.50,   # discard (destination evidence; not hit by the default world)
    0.03,   # discard (destination procedural): probe-less claimed
            # countries, almost always truly foreign
    0.05,   # discard (rdns): contradicted claims are mostly still foreign
)

#: Margin weight per kind: how far a decisive margin may move the score.
CONF_MARGIN_WEIGHT: Tuple[float, ...] = (
    0.0, 0.0, 0.02, 1.90, 0.0, 0.90, 0.0, 0.0,
)

#: Consistency direction per kind: +1 when vantage agreement with the
#: claim supports the verdict (verified), -1 when it undermines it
#: (every discard — an agreeing claim means the discard was wrong).
CONF_CONSISTENCY_SIGN: Tuple[float, ...] = (
    0.0, 0.0, 1.0, -1.0, -1.0, -1.0, -1.0, -1.0,
)

#: Consistency weight per kind (same axis as the other tables).
CONF_CONSISTENCY_WEIGHT: Tuple[float, ...] = (
    0.0, 0.0, 0.01, 0.10, 0.54, 0.10, 0.01, 0.05,
)

#: Bonus for a verified claim whose PTR hostname hint agrees.
CONF_RDNS_BONUS = 0.005

#: Scores are clipped into this band: nothing is ever *certain*.
CONF_FLOOR = 0.02
CONF_CEIL = 0.99

#: Vantage countries (beyond the claimed country's probe) consulted for
#: the consistency vote.
CONSISTENCY_VANTAGES = 2

#: Inflation ceiling for a vantage vote: an RTT above
#: ``sol * inflation + slack`` is inconsistent with the claimed city.
CONSISTENCY_MAX_INFLATION = 4.0
CONSISTENCY_SLACK_MS = 40.0


def round_confidence(value: Optional[float]) -> Optional[float]:
    """Journal-stable form of a confidence score.

    Mirrors :func:`repro.core.geoloc.constraints.round_evidence_ms`:
    scores stay raw floats on the verdict and round only at the journal
    boundary, so rounding can never make the engines disagree.
    """
    return None if value is None else round(value, 6)


def _denom(threshold: float) -> float:
    """Margin denominator: the threshold, floored at 1 ms.

    Guards the relative margin against near-zero thresholds (a claimed
    city one town over) without branching differently in the two
    engines — ``max(threshold, 1.0)`` vectorises exactly.
    """
    return threshold if threshold > 1.0 else 1.0


def margin_ratio(observed: float, threshold: float) -> float:
    """Relative distance of the evidence from its decision threshold."""
    return abs(observed - threshold) / _denom(threshold)


def margin_score(ratio: float) -> float:
    """Squash a non-negative margin ratio into ``[0, 1)``, monotonically.

    ``r / (r + 1)``: a zero margin scores 0 (decided on the line), a
    margin equal to the threshold scores 0.5, and the score approaches 1
    as the margin grows.  Pure ``+ / /`` arithmetic, so the numpy
    elementwise evaluation is bit-identical to this reference.
    """
    if ratio < 0.0:
        ratio = 0.0
    return ratio / (ratio + 1.0)


class ConfidenceAnchors:
    """Per-city / per-address anchor values shared by both engines.

    Everything here is a pure function of the (immutable) services and
    configuration, computed with exactly the scalar helpers — the same
    pattern the columnar constraint engine uses, so scores never depend
    on which engine produced them or how batches were split.
    """

    def __init__(self, atlas):
        self._atlas = atlas
        self._source_sol: Dict[Tuple[str, str], float] = {}
        self._dest: Dict[str, Tuple[Optional[object], float]] = {}
        self._vantages: Dict[str, tuple] = {}
        self._consistency: Dict[str, Optional[float]] = {}

    def source_sol(self, source_city: City, claimed_city: City) -> float:
        """SOL floor for the volunteer -> claimed-city pair."""
        key = (source_city.key, claimed_city.key)
        value = self._source_sol.get(key)
        if value is None:
            value = self._source_sol[key] = min_rtt_ms(
                city_distance_km(source_city, claimed_city)
            )
        return value

    def dest_sol(self, claimed_city: City) -> float:
        """SOL floor from the claimed country's probe (NaN: no probe)."""
        anchor = self._dest.get(claimed_city.key)
        if anchor is None:
            probe = self._atlas.mesh.probe_for_country(
                claimed_city.country_code, claimed_city
            )[0]
            sol = (
                float("nan") if probe is None
                else min_rtt_ms(city_distance_km(probe.city, claimed_city))
            )
            anchor = self._dest[claimed_city.key] = (probe, sol)
        return anchor[1]

    # -- cross-vantage consistency ----------------------------------------
    def _vantage_probes(self, claimed_city: City) -> tuple:
        """The claimed-country probe plus nearby foreign vantages."""
        probes = self._vantages.get(claimed_city.key)
        if probes is None:
            self.dest_sol(claimed_city)  # populate the claimed-country probe
            pool = []
            claimed_probe = self._dest[claimed_city.key][0]
            if claimed_probe is not None:
                pool.append(claimed_probe)
            vantage_picker = getattr(self._atlas.mesh, "vantage_probes", None)
            if vantage_picker is not None:
                pool.extend(vantage_picker(
                    claimed_city, CONSISTENCY_VANTAGES,
                    exclude_country=claimed_city.country_code,
                ))
            probes = self._vantages[claimed_city.key] = tuple(pool)
        return probes

    def consistency(self, address: str, claimed_city: City) -> Optional[float]:
        """Fraction of vantages whose RTT is consistent with the claim.

        Each vantage probe traces *address* (served from the
        ``atlas.dest_traces`` cross-country memo, so countries — and
        engines — share one measurement per ``(probe, address)``) and
        votes: consistent when the adjusted RTT lies between the SOL
        floor for the claimed city and an inflation-bounded ceiling.
        ``None`` when no vantage produced usable evidence.  The ratio of
        two small ints is exact, so both engines land on the same float.
        """
        if address in self._consistency:
            return self._consistency[address]
        votes = agree = 0
        for probe in self._vantage_probes(claimed_city):
            trace = self._atlas.dest_traceroute(probe, address)
            if trace is None or not trace.reached:
                continue
            observed = adjusted_latency_ms(trace)
            if observed is None:
                continue
            votes += 1
            sol = min_rtt_ms(city_distance_km(probe.city, claimed_city))
            ceiling = sol * CONSISTENCY_MAX_INFLATION + CONSISTENCY_SLACK_MS
            if sol <= observed <= ceiling:
                agree += 1
        value = agree / votes if votes else None
        self._consistency[address] = value
        return value


@dataclass(frozen=True)
class ConfidenceInputs:
    """Everything the scoring formula consumes, for one verdict.

    The gather step (this dataclass) is shared by both engines; only the
    arithmetic after it differs (scalar reference vs masked arrays).
    ``margin_src`` / ``margin_dst`` are raw margin *ratios* (pre-squash),
    ``None`` when that constraint produced no usable margin.
    """

    kind: int
    margin_src: Optional[float] = None
    margin_dst: Optional[float] = None
    consistency: Optional[float] = None
    rdns_hint: bool = False


def _check_by_name(verdict: ServerVerdict, name: str):
    for check in verdict.checks:
        if check.constraint == name:
            return check
    return None


def gather_inputs(
    verdict: ServerVerdict,
    source_city: City,
    anchors: ConfidenceAnchors,
) -> ConfidenceInputs:
    """Extract the scoring inputs for one verdict (engine-shared).

    Margins come from the evidence already recorded on the verdict's
    :class:`ConstraintResult` list; thresholds the constraints did not
    record (the SOL floor behind a stats-less source pass, the
    destination SOL behind a pass) are recomputed from *anchors* with
    the same helpers the constraints used.
    """
    status = verdict.status
    if status == ServerStatus.UNLOCATED:
        return ConfidenceInputs(kind=K_UNLOCATED)
    if status == ServerStatus.LOCAL:
        return ConfidenceInputs(kind=K_LOCAL)

    claim_city = verdict.claim.city
    src = _check_by_name(verdict, "source")
    dst = _check_by_name(verdict, "destination")
    rdns = _check_by_name(verdict, "rdns")
    consistency = anchors.consistency(verdict.address, claim_city)

    if status == ServerStatus.DISCARDED:
        # Margins describe only the *deciding* constraint: how decisive
        # was the discard.  (Earlier passes supported the claim the
        # discard rejects; mixing them in would blur the signal.)
        if verdict.discarded_by == "rdns":
            return ConfidenceInputs(kind=K_DISC_RDNS, consistency=consistency)
        if verdict.discarded_by == "source":
            if src is not None and src.observed_ms is not None and src.expected_ms is not None:
                return ConfidenceInputs(
                    kind=K_DISC_SOURCE_EVIDENCE,
                    margin_src=margin_ratio(src.observed_ms, src.expected_ms),
                    consistency=consistency,
                )
            return ConfidenceInputs(kind=K_DISC_SOURCE_PROCEDURAL, consistency=consistency)
        if dst is not None and dst.observed_ms is not None and dst.expected_ms is not None:
            return ConfidenceInputs(
                kind=K_DISC_DEST_EVIDENCE,
                margin_dst=margin_ratio(dst.observed_ms, dst.expected_ms),
                consistency=consistency,
            )
        return ConfidenceInputs(kind=K_DISC_DEST_PROCEDURAL, consistency=consistency)

    # Verified: every pass contributes its margin.
    margin_src = margin_dst = None
    if src is not None and src.passed and src.observed_ms is not None:
        threshold = src.expected_ms
        if threshold is None:  # "SOL ok; no published statistics for pair"
            threshold = anchors.source_sol(source_city, claim_city)
        margin_src = margin_ratio(src.observed_ms, threshold)
    if dst is not None and dst.passed and dst.observed_ms is not None:
        threshold = anchors.dest_sol(claim_city)
        if threshold == threshold:  # not NaN (probe existed, since it passed)
            margin_dst = margin_ratio(dst.observed_ms, threshold)
    return ConfidenceInputs(
        kind=K_VERIFIED,
        margin_src=margin_src,
        margin_dst=margin_dst,
        consistency=consistency,
        rdns_hint=rdns is not None and rdns.passed,
    )


def combine_score(inputs: ConfidenceInputs) -> float:
    """The scoring formula — the scalar reference implementation.

    The columnar engine evaluates exactly this arithmetic, in exactly
    this operation order, as masked array algebra; every operation is
    IEEE-754 elementwise (``+ - * / abs min max``), so the two
    evaluations are bit-identical.
    """
    kind = inputs.kind
    # Margin term: mean of the available squashed margins, neutral 0.5
    # when the kind carries no margin evidence.
    total = 0.0
    count = 0
    if inputs.margin_src is not None:
        total = total + margin_score(inputs.margin_src)
        count += 1
    if inputs.margin_dst is not None:
        total = total + margin_score(inputs.margin_dst)
        count += 1
    margin = total / count if count else 0.5
    consistency = 0.5 if inputs.consistency is None else inputs.consistency

    conf = CONF_BASE[kind]
    conf = conf + CONF_MARGIN_WEIGHT[kind] * (margin - 0.5)
    conf = conf + CONF_CONSISTENCY_WEIGHT[kind] * CONF_CONSISTENCY_SIGN[kind] * (consistency - 0.5)
    conf = conf + (CONF_RDNS_BONUS if inputs.rdns_hint else 0.0)
    if conf < CONF_FLOOR:
        conf = CONF_FLOOR
    elif conf > CONF_CEIL:
        conf = CONF_CEIL
    return conf


def score_verdict(
    verdict: ServerVerdict,
    source_city: City,
    anchors: ConfidenceAnchors,
) -> float:
    """Confidence for one verdict (gather + combine)."""
    return combine_score(gather_inputs(verdict, source_city, anchors))


# -- reporting ----------------------------------------------------------------
@dataclass(frozen=True)
class ConfidenceReport:
    """Per-country confidence summary, derived on demand.

    A pure view over scored verdicts — it is never stored on study
    artefacts, so enabling confidence cannot change their bytes beyond
    the per-verdict annotation itself.
    """

    country_code: str
    scored: int
    mean_confidence: Optional[float]
    by_status: Dict[str, Tuple[int, Optional[float]]]
    low_confidence: Tuple[Tuple[str, float], ...]

    @classmethod
    def from_geolocation(
        cls, geolocation: DatasetGeolocation, low_n: int = 5
    ) -> "ConfidenceReport":
        scored: List[Tuple[str, str, float]] = [
            (verdict.address, verdict.status, verdict.confidence)
            for verdict in geolocation.verdicts.values()
            if verdict.confidence is not None
        ]
        by_status: Dict[str, List[float]] = {}
        for _address, status, conf in scored:
            by_status.setdefault(status, []).append(conf)
        worst = sorted(scored, key=lambda row: (row[2], row[0]))[:low_n]
        return cls(
            country_code=geolocation.country_code,
            scored=len(scored),
            mean_confidence=(
                sum(conf for _, _, conf in scored) / len(scored) if scored else None
            ),
            by_status={
                status: (len(values), sum(values) / len(values))
                for status, values in sorted(by_status.items())
            },
            low_confidence=tuple((address, conf) for address, _, conf in worst),
        )

    def as_dict(self) -> dict:
        return {
            "country": self.country_code,
            "scored": self.scored,
            "mean_confidence": round_confidence(self.mean_confidence),
            "by_status": {
                status: {"count": count, "mean": round_confidence(mean)}
                for status, (count, mean) in self.by_status.items()
            },
            "low_confidence": [
                {"address": address, "confidence": round_confidence(conf)}
                for address, conf in self.low_confidence
            ],
        }


def cross_vantage_consistency(
    atlas, address: str, claimed_city: City
) -> Optional[float]:
    """One-shot consistency probe (API convenience; anchors preferred)."""
    return ConfidenceAnchors(atlas).consistency(address, claimed_city)
