"""The multi-constraint geolocation pipeline (section 4.1).

For every unique host a volunteer's browser contacted:

1. geolocate its IP with the IPmap-like database (unlocatable -> excluded);
2. claims inside the measurement country are **Local** — no further checks;
3. claims outside go through the constraint battery: source-based
   (reachability + SOL + the conservative 80 % rule), destination-based
   (RTT from a probe near the claimed location), and reverse-DNS
   (contradicting hostname hints).  Survivors are **verified non-local**.

The pipeline also accounts the data-collection funnel the paper reports
in section 5 (domains -> non-local -> after latency constraints -> after
reverse DNS).

Two interchangeable engines evaluate the constraint battery
(``PipelineConfig.engine``, ``gamma study --geoloc-engine``):

* ``"scalar"`` — the historical per-address walk through the constraint
  classes of :mod:`repro.core.geoloc.constraints`; always available and
  kept as the byte-identical oracle.
* ``"columnar"`` — the batch engine of
  :mod:`repro.core.geoloc.columnar` (the default): evidence gathered
  into numpy arrays, constraints evaluated as vectorised mask algebra,
  anchored on per-unique-city scalar values so every verdict, funnel
  counter and journal ``geoloc_decision`` event is identical to the
  scalar engine's.  When numpy is unavailable the pipeline silently
  resolves to the scalar oracle.

Funnel accounting and journal emission are shared code below either
engine, so the observability contract (docs/observability.md) cannot
drift between them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.atlas.measurements import AtlasMeasurementService
from repro.core.gamma.output import VolunteerDataset
from repro.core.gamma.parsers import NormalizedTraceroute
from repro.core.geoloc.confidence import (
    CONFIDENCE_KINDS,
    ConfidenceAnchors,
    ConfidenceInputs,
    combine_score,
    gather_inputs,
    round_confidence,
)
from repro.core.geoloc.constraints import (
    ConstraintResult,
    DestinationConstraint,
    ReverseDNSConstraint,
    SourceConstraint,
    round_evidence_ms,
)
from repro.core.geoloc.latency_stats import LatencyStatsProvider
from repro.core.geoloc.verdicts import (
    DatasetGeolocation,
    FunnelCounters,
    ServerStatus,
    ServerVerdict,
)
from repro.geodb.ipmap import IPMapService
from repro.netsim.geography import City
from repro.netsim.latency import LatencyModel
from repro.obs.metrics import CONFIDENCE_BUCKETS, MS_BUCKETS

__all__ = [
    "GEOLOC_ENGINES",
    "ServerStatus",
    "SourceTraces",
    "PipelineConfig",
    "ServerVerdict",
    "FunnelCounters",
    "DatasetGeolocation",
    "GeolocationPipeline",
]

#: Selectable constraint engines; "columnar" resolves to "scalar" when
#: numpy is unavailable (outputs are identical by contract).
GEOLOC_ENGINES = ("scalar", "columnar")


@dataclass
class SourceTraces:
    """Source-side traceroutes and where they were launched from.

    ``origin`` records whether they came from the volunteer machine or a
    nearby probe (the Atlas fallback used for Egypt/Australia/India/
    Qatar/Jordan) — in the latter case ``city`` is the probe's city, which
    may be in a neighbouring country.
    """

    city: City
    traces: Dict[str, NormalizedTraceroute] = field(default_factory=dict)
    origin: str = "volunteer"


@dataclass
class PipelineConfig:
    """Tunables plus per-constraint toggles (used by the ablation benches)."""

    conservative_threshold: float = 0.8
    max_inflation: float = 1.9
    destination_slack_ms: float = 12.0
    #: Apply an (unphysical) RTT upper bound in the destination constraint;
    #: off by default to match the paper, exercised by the ablation benches.
    strict_destination_bound: bool = False
    enable_source: bool = True
    enable_destination: bool = True
    enable_rdns: bool = True
    #: Constraint engine: "columnar" (vectorised batch math, the default)
    #: or "scalar" (the per-address oracle).  Byte-identical outputs.
    engine: str = "columnar"
    #: Score every verdict with a calibrated confidence
    #: (repro.core.geoloc.confidence).  Pure annotation layer: binary
    #: verdicts, funnels, summaries and stripped journals are
    #: byte-identical with this on or off.
    confidence: bool = False


class GeolocationPipeline:
    """Applies database + constraints to a volunteer dataset."""

    def __init__(
        self,
        ipmap: IPMapService,
        atlas: AtlasMeasurementService,
        stats: LatencyStatsProvider,
        latency: LatencyModel,
        config: Optional[PipelineConfig] = None,
    ):
        self._ipmap = ipmap
        self._atlas = atlas
        self._config = config or PipelineConfig()
        if self._config.engine not in GEOLOC_ENGINES:
            raise ValueError(
                f"unknown geoloc engine {self._config.engine!r}; "
                f"expected one of {GEOLOC_ENGINES}"
            )
        self._source = SourceConstraint(stats, self._config.conservative_threshold)
        self._destination = DestinationConstraint(
            latency,
            self._config.max_inflation,
            self._config.destination_slack_ms,
            strict_bound=self._config.strict_destination_bound,
        )
        self._rdns = ReverseDNSConstraint()
        self._confidence_anchors: Optional[ConfidenceAnchors] = None
        self._columnar = None
        if self._config.engine == "columnar":
            from repro.core.geoloc.columnar import HAVE_NUMPY, ColumnarGeolocationEngine

            if HAVE_NUMPY:
                self._columnar = ColumnarGeolocationEngine(
                    ipmap, atlas, stats, latency, self._config
                )

    @classmethod
    def for_scenario(cls, scenario, config: Optional[PipelineConfig] = None) -> "GeolocationPipeline":
        """Pipeline over a scenario's services.

        Construction is pure (constraints only hold configuration and
        service references), so per-country workers can each build their
        own pipeline and classify identically to a shared one — the
        property the parallel executor relies on.
        """
        return cls(
            ipmap=scenario.ipmap,
            atlas=scenario.atlas,
            stats=scenario.stats,
            latency=scenario.world.latency,
            config=config,
        )

    @property
    def config(self) -> PipelineConfig:
        return self._config

    @property
    def engine_name(self) -> str:
        """The engine actually evaluating constraints (after gating)."""
        return "columnar" if self._columnar is not None else "scalar"

    def classify_dataset(
        self,
        dataset: VolunteerDataset,
        source_traces: SourceTraces,
        tracer=None,
        metrics=None,
    ) -> DatasetGeolocation:
        """Classify every contacted host; funnel-account the verdicts.

        When a :class:`repro.obs.Tracer` is supplied, one
        ``geoloc_decision`` event is emitted per unique address — which
        constraint fired and the evidence values — plus one closing
        ``country_funnel`` event, making every exclusion in the paper's
        section-5 funnel auditable from the run journal.  Accounting and
        emission run below whichever engine produced the verdicts, so
        the event contract is engine-invariant.

        With a :class:`repro.obs.MetricsRegistry` the same loop counts
        verdict statuses, constraint outcomes and evidence latencies
        into labeled series.  These are **study** metrics (deterministic
        functions of the scenario, like the events): the engine
        invariance contract makes them identical under either engine,
        and the simulated network makes the latency histograms exact.
        """
        result = DatasetGeolocation(country_code=dataset.country_code)
        rdns_records: Dict[str, Optional[str]] = {}
        # Funnel accounting is per host *observation* (one per site whose
        # page requested the host), matching section 5's "~26K domains".
        observation_counts: Dict[str, int] = {}
        for measurement in dataset.websites.values():
            if not measurement.loaded:
                continue
            for host, address in measurement.dns.items():
                result.host_to_address.setdefault(host, address)
                observation_counts[host] = observation_counts.get(host, 0) + 1
            rdns_records.update(measurement.rdns)

        addresses: Dict[str, List[str]] = {}
        for host, address in result.host_to_address.items():
            addresses.setdefault(address, []).append(host)

        verdicts = self.classify_addresses(
            addresses, dataset.country_code, source_traces, rdns_records,
            result.funnel,
        )
        confidence_inputs: Dict[str, ConfidenceInputs] = {}
        if self._config.confidence:
            confidence_inputs = self.score_confidence(verdicts, source_traces)
        for address, verdict in verdicts.items():
            result.verdicts[address] = verdict
            weight = sum(observation_counts.get(host, 1) for host in verdict.hosts)
            self._account(verdict, weight, result.funnel)
            if metrics is not None:
                metrics.counter(
                    "geoloc_verdicts_total", {"status": verdict.status},
                    help="server verdicts by final status",
                ).inc()
                if verdict.discarded_by:
                    metrics.counter(
                        "geoloc_discards_total", {"constraint": verdict.discarded_by},
                        help="servers discarded, by the constraint that fired",
                    ).inc()
                for check in verdict.checks:
                    metrics.counter(
                        "geoloc_constraint_checks_total",
                        {"constraint": check.constraint, "status": check.status},
                        help="constraint evaluations by outcome",
                    ).inc()
                    observed = round_evidence_ms(check.observed_ms)
                    if observed is not None:
                        metrics.histogram(
                            "geoloc_evidence_ms", {"constraint": check.constraint},
                            buckets=MS_BUCKETS, unit="ms",
                            help="constraint evidence latencies (simulated, deterministic)",
                        ).observe(observed)
            if tracer is not None:
                tracer.event(
                    "geoloc_decision",
                    address=address,
                    hosts=list(verdict.hosts),
                    weight=weight,
                    status=verdict.status,
                    claim_country=verdict.claimed_country,
                    claim_city=verdict.claim.city_key if verdict.claim else None,
                    discarded_by=verdict.discarded_by or None,
                    checks=[
                        {
                            "constraint": check.constraint,
                            "status": check.status,
                            "reason": check.reason,
                            "observed_ms": round_evidence_ms(check.observed_ms),
                            "expected_ms": round_evidence_ms(check.expected_ms),
                        }
                        for check in verdict.checks
                    ],
                )
            if verdict.confidence is not None:
                inputs = confidence_inputs.get(address)
                if metrics is not None:
                    metrics.histogram(
                        "geoloc_confidence", {"status": verdict.status},
                        buckets=CONFIDENCE_BUCKETS,
                        help="calibrated verdict confidence (annotation layer)",
                    ).observe(verdict.confidence)
                if tracer is not None and inputs is not None:
                    # Annotation-layer event: stripped with the
                    # diagnostics so confidence-on and confidence-off
                    # stripped journals stay byte-identical.
                    tracer.event(
                        "geoloc_confidence",
                        address=address,
                        status=verdict.status,
                        kind=CONFIDENCE_KINDS[inputs.kind],
                        confidence=round_confidence(verdict.confidence),
                        margin_source=round_confidence(inputs.margin_src),
                        margin_destination=round_confidence(inputs.margin_dst),
                        consistency=round_confidence(inputs.consistency),
                        rdns_hint=inputs.rdns_hint,
                    )
        funnel = result.funnel
        funnel_stages = {
            "total_hosts": funnel.total_hosts,
            "unlocated": funnel.unlocated,
            "local": funnel.local,
            "nonlocal_candidates": funnel.nonlocal_candidates,
            "discarded_source": funnel.discarded_source,
            "discarded_destination": funnel.discarded_destination,
            "discarded_rdns": funnel.discarded_rdns,
            "verified_nonlocal": funnel.verified_nonlocal,
            "destination_traceroutes": funnel.destination_traceroutes,
        }
        if metrics is not None:
            metrics.counter(
                "geoloc_countries_total", {"engine": self.engine_name},
                help="datasets classified, by constraint engine",
            ).inc()
            for stage, count in funnel_stages.items():
                metrics.counter(
                    "geoloc_funnel_total", {"stage": stage},
                    help="section-5 funnel, host observations per stage",
                ).inc(count)
        if tracer is not None:
            tracer.event(
                "country_funnel",
                country=dataset.country_code,
                funnel=funnel_stages,
            )
        return result

    def classify_addresses(
        self,
        addresses: Dict[str, List[str]],
        measurement_country: str,
        source_traces: SourceTraces,
        rdns_records: Dict[str, Optional[str]],
        funnel: FunnelCounters,
    ) -> Dict[str, ServerVerdict]:
        """One verdict per address, in input order — the engine seam.

        The scalar and columnar engines implement exactly this mapping;
        the differential test harness calls it directly to compare them
        field by field on adversarial batches.  Only
        ``funnel.destination_traceroutes`` is touched here (the logical
        launch counter); stage accounting happens in the caller.
        """
        if self._columnar is not None:
            return self._columnar.classify_batch(
                addresses, measurement_country, source_traces, rdns_records, funnel
            )
        return {
            address: self._classify_address(
                address, hosts, measurement_country, source_traces,
                rdns_records.get(address), funnel,
            )
            for address, hosts in addresses.items()
        }

    def score_confidence(
        self,
        verdicts: Dict[str, ServerVerdict],
        source_traces: SourceTraces,
    ) -> Dict[str, ConfidenceInputs]:
        """Annotate every verdict with a calibrated confidence score.

        The second engine seam (mirroring :meth:`classify_addresses`):
        the scalar reference walks verdicts one at a time through
        :func:`repro.core.geoloc.confidence.combine_score`, the columnar
        engine evaluates the identical formula as masked array algebra —
        the differential suite asserts bit-identical scores.  Returns
        the gathered scoring inputs per address so the caller can
        journal them; mutates only ``verdict.confidence``.
        """
        if self._columnar is not None:
            return self._columnar.score_batch(verdicts, source_traces)
        anchors = self._confidence_anchors
        if anchors is None:
            anchors = self._confidence_anchors = ConfidenceAnchors(self._atlas)
        source_city = source_traces.city
        inputs_map: Dict[str, ConfidenceInputs] = {}
        for address, verdict in verdicts.items():
            inputs = gather_inputs(verdict, source_city, anchors)
            verdict.confidence = combine_score(inputs)
            inputs_map[address] = inputs
        return inputs_map

    # -- the scalar engine (the always-available oracle) ---------------------
    def _classify_address(
        self,
        address: str,
        hosts: List[str],
        measurement_country: str,
        source_traces: SourceTraces,
        ptr_hostname: Optional[str],
        funnel: FunnelCounters,
    ) -> ServerVerdict:
        claim = self._ipmap.locate(address)
        if claim is None:
            return ServerVerdict(address=address, hosts=hosts, status=ServerStatus.UNLOCATED)
        if claim.country_code == measurement_country:
            return ServerVerdict(address=address, hosts=hosts, status=ServerStatus.LOCAL, claim=claim)

        checks: List[ConstraintResult] = []
        if self._config.enable_source:
            check = self._source.check(
                source_traces.traces.get(address), source_traces.city, claim.city
            )
            checks.append(check)
            if check.failed:
                return ServerVerdict(
                    address=address, hosts=hosts, status=ServerStatus.DISCARDED,
                    claim=claim, discarded_by=self._source.name, checks=checks,
                )
        if self._config.enable_destination:
            probe, _country_used = self._atlas.mesh.probe_for_country(
                claim.country_code, claim.city
            )
            trace = None
            if probe is not None:
                # Logical launch count — memoisation below may serve the
                # trace from another country's identical measurement.
                funnel.destination_traceroutes += 1
                trace = self._atlas.dest_traceroute(probe, address)
            check = self._destination.check(trace, probe.city if probe else None, claim.city)
            checks.append(check)
            if check.failed:
                return ServerVerdict(
                    address=address, hosts=hosts, status=ServerStatus.DISCARDED,
                    claim=claim, discarded_by=self._destination.name, checks=checks,
                )
        if self._config.enable_rdns:
            check = self._rdns.check(ptr_hostname, claim.city)
            checks.append(check)
            if check.failed:
                return ServerVerdict(
                    address=address, hosts=hosts, status=ServerStatus.DISCARDED,
                    claim=claim, discarded_by=self._rdns.name, checks=checks,
                )
        return ServerVerdict(
            address=address, hosts=hosts, status=ServerStatus.NONLOCAL_VERIFIED,
            claim=claim, checks=checks,
        )

    @staticmethod
    def _account(verdict: ServerVerdict, host_count: int, funnel: FunnelCounters) -> None:
        funnel.total_hosts += host_count
        if verdict.status == ServerStatus.UNLOCATED:
            funnel.unlocated += host_count
        elif verdict.status == ServerStatus.LOCAL:
            funnel.local += host_count
        else:
            funnel.nonlocal_candidates += host_count
            if verdict.status == ServerStatus.DISCARDED:
                if verdict.discarded_by == "source":
                    funnel.discarded_source += host_count
                elif verdict.discarded_by == "destination":
                    funnel.discarded_destination += host_count
                elif verdict.discarded_by == "rdns":
                    funnel.discarded_rdns += host_count
            elif verdict.status == ServerStatus.NONLOCAL_VERIFIED:
                funnel.verified_nonlocal += host_count
