"""The three verification constraints of section 4.1.

Each constraint examines one *location claim* (an IP, a database-claimed
city) and returns a :class:`ConstraintResult`: PASS (consistent), FAIL
(inconsistent — discard the claim), or SKIP (no evidence available; the
paper keeps such servers, since absence of evidence is not evidence of a
wrong location — except for missing/unreached traceroutes, which are
explicit FAILs per the paper's discard rules).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.gamma.parsers import NormalizedTraceroute
from repro.core.geoloc.latency_stats import LatencyStatsProvider
from repro.netsim.distance import city_distance_km, min_rtt_ms
from repro.netsim.geography import City
from repro.netsim.geohints import extract_hint
from repro.netsim.latency import LatencyModel

__all__ = [
    "ConstraintStatus",
    "ConstraintResult",
    "adjusted_latency_ms",
    "round_evidence_ms",
    "source_latency_floor_ms",
    "SourceConstraint",
    "DestinationConstraint",
    "ReverseDNSConstraint",
]


class ConstraintStatus:
    PASS = "pass"
    FAIL = "fail"
    SKIP = "skip"  # no usable evidence; claim retained


@dataclass(frozen=True)
class ConstraintResult:
    """Outcome of one constraint check."""

    constraint: str
    status: str
    reason: str = ""
    observed_ms: Optional[float] = None
    expected_ms: Optional[float] = None

    @property
    def failed(self) -> bool:
        return self.status == ConstraintStatus.FAIL

    @property
    def passed(self) -> bool:
        return self.status == ConstraintStatus.PASS


def round_evidence_ms(value: Optional[float]) -> Optional[float]:
    """Journal-stable form of a (deterministic) evidence latency.

    The single rounding point for every latency the pipeline reports in
    ``geoloc_decision`` events.  Both engines store *raw* floats on
    :class:`ConstraintResult` and round only here, at the journal
    boundary, so rounding can never shift a threshold comparison and the
    two engines can never round differently.
    """
    return None if value is None else round(value, 6)


def source_latency_floor_ms(threshold: float, published_ms: float) -> float:
    """The 80 %-rule floor: the slowest believable RTT for the pair.

    One shared multiplication, used by the scalar constraint and the
    columnar engine alike — an observed RTT strictly below this value is
    too fast for the claimed location.  Centralised so the comparison
    boundary is bit-identical across engines.
    """
    return threshold * published_ms


def adjusted_latency_ms(trace: NormalizedTraceroute) -> Optional[float]:
    """Latency with local-network delay removed (section 4.1.1).

    Last-hop RTT minus first-hop RTT when the first hop responded and is
    smaller; otherwise the raw last-hop RTT.
    """
    last = trace.last_hop_rtt
    if last is None:
        return None
    first = trace.first_hop_rtt
    if first is not None and first < last:
        return last - first
    return last


class SourceConstraint:
    """Volunteer-side latency checks: reachability, SOL, the 80 % rule."""

    name = "source"

    def __init__(
        self,
        stats: LatencyStatsProvider,
        conservative_threshold: float = 0.8,
    ):
        if not 0.0 < conservative_threshold <= 1.0:
            raise ValueError("conservative threshold must be in (0, 1]")
        self._stats = stats
        self._threshold = conservative_threshold

    def check(
        self,
        trace: Optional[NormalizedTraceroute],
        source_city: City,
        claimed_city: City,
    ) -> ConstraintResult:
        if trace is None:
            return ConstraintResult(self.name, ConstraintStatus.FAIL, "no source traceroute")
        if not trace.reached:
            return ConstraintResult(self.name, ConstraintStatus.FAIL, "traceroute did not reach destination")
        observed = adjusted_latency_ms(trace)
        if observed is None:
            return ConstraintResult(self.name, ConstraintStatus.FAIL, "no responding hops")

        sol_floor = min_rtt_ms(city_distance_km(source_city, claimed_city))
        if observed < sol_floor:
            return ConstraintResult(
                self.name,
                ConstraintStatus.FAIL,
                "speed-of-light violation for claimed location",
                observed_ms=observed,
                expected_ms=sol_floor,
            )

        published = self._stats.published_rtt_ms(source_city, claimed_city)
        if published is None:
            return ConstraintResult(
                self.name,
                ConstraintStatus.PASS,
                "SOL ok; no published statistics for pair",
                observed_ms=observed,
            )
        floor = source_latency_floor_ms(self._threshold, published)
        if observed < floor:
            return ConstraintResult(
                self.name,
                ConstraintStatus.FAIL,
                f"observed latency below {self._threshold:.0%} of published statistics",
                observed_ms=observed,
                expected_ms=floor,
            )
        return ConstraintResult(self.name, ConstraintStatus.PASS, "consistent", observed_ms=observed, expected_ms=floor)


class DestinationConstraint:
    """Probe-side check (section 4.1.2).

    The paper discards a claim when the traceroute from a probe in the
    claimed country (a) never reaches the server, or (b) violates the
    speed-of-light constraint — the observed RTT is too *small* for the
    server to sit as far from the probe as the claimed city does.  An RTT
    that is merely large is not physical evidence against the claim (paths
    can always be inflated), so by default no upper bound is applied.

    ``strict_bound=True`` additionally enforces a plausibility ceiling on
    the RTT — a deliberately more aggressive variant used by the ablation
    benchmarks to show what an unphysical "upper bound" check would do.
    """

    name = "destination"

    def __init__(
        self,
        latency: LatencyModel,
        max_inflation: float = 1.9,
        slack_ms: float = 12.0,
        strict_bound: bool = False,
    ):
        if max_inflation < 1.0:
            raise ValueError("max inflation must be >= 1")
        if slack_ms < 0:
            raise ValueError("slack must be non-negative")
        self._latency = latency
        self._max_inflation = max_inflation
        self._slack_ms = slack_ms
        self._strict_bound = strict_bound

    def plausible_rtt_bound_ms(self, probe_city: City, claimed_city: City) -> float:
        """Worst-case believable RTT if the claim were true (strict mode)."""
        propagation = min_rtt_ms(city_distance_km(probe_city, claimed_city)) * self._max_inflation
        penalties = self._latency.access_penalty(probe_city) + self._latency.access_penalty(claimed_city)
        return propagation + penalties + self._slack_ms

    def check(
        self,
        trace: Optional[NormalizedTraceroute],
        probe_city: Optional[City],
        claimed_city: City,
    ) -> ConstraintResult:
        if trace is None or probe_city is None:
            return ConstraintResult(self.name, ConstraintStatus.FAIL, "no destination traceroute")
        if not trace.reached:
            return ConstraintResult(self.name, ConstraintStatus.FAIL, "destination traceroute did not reach")
        observed = adjusted_latency_ms(trace)
        if observed is None:
            return ConstraintResult(self.name, ConstraintStatus.FAIL, "no responding hops")
        sol_floor = min_rtt_ms(city_distance_km(probe_city, claimed_city))
        if observed < sol_floor:
            return ConstraintResult(
                self.name,
                ConstraintStatus.FAIL,
                "speed-of-light violation for claimed location (destination)",
                observed_ms=observed,
                expected_ms=sol_floor,
            )
        if self._strict_bound:
            bound = self.plausible_rtt_bound_ms(probe_city, claimed_city)
            if observed > bound:
                return ConstraintResult(
                    self.name,
                    ConstraintStatus.FAIL,
                    "RTT from in-country probe too high for claimed location",
                    observed_ms=observed,
                    expected_ms=bound,
                )
        return ConstraintResult(self.name, ConstraintStatus.PASS, "consistent", observed_ms=observed)


class ReverseDNSConstraint:
    """Hostname geo-hint check (section 4.1.3).

    FAIL only on a *contradicting* hint; hostnames without recognisable
    hints (or missing PTR records) are retained.
    """

    name = "rdns"

    def check(self, ptr_hostname: Optional[str], claimed_city: City) -> ConstraintResult:
        if not ptr_hostname:
            return ConstraintResult(self.name, ConstraintStatus.SKIP, "no PTR record")
        hinted_city_key = extract_hint(ptr_hostname)
        if hinted_city_key is None:
            return ConstraintResult(self.name, ConstraintStatus.SKIP, "no geographic hint in hostname")
        hinted_country = hinted_city_key.rsplit(", ", 1)[-1]
        if hinted_country != claimed_city.country_code:
            return ConstraintResult(
                self.name,
                ConstraintStatus.FAIL,
                f"PTR hints {hinted_city_key}, claim is {claimed_city.key}",
            )
        return ConstraintResult(self.name, ConstraintStatus.PASS, f"PTR consistent ({hinted_city_key})")
