"""Verdict and funnel records shared by both geolocation engines.

The scalar pipeline (:mod:`repro.core.geoloc.pipeline`) and the batch
columnar engine (:mod:`repro.core.geoloc.columnar`) must produce
*exactly* the same artefacts — these dataclasses are that common
currency.  They live in their own module so the columnar engine can
build them without importing the pipeline (which imports the engine).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.geoloc.constraints import ConstraintResult
from repro.geodb.ipmap import GeoClaim

try:  # pragma: no cover - exercised via the scalar fallback test
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "ServerStatus",
    "ServerVerdict",
    "FunnelCounters",
    "DatasetGeolocation",
    "merge_funnels",
]


class ServerStatus:
    LOCAL = "local"
    NONLOCAL_VERIFIED = "nonlocal_verified"
    DISCARDED = "discarded"
    UNLOCATED = "unlocated"


@dataclass
class ServerVerdict:
    """Final ruling for one address."""

    address: str
    hosts: List[str]
    status: str
    claim: Optional[GeoClaim] = None
    discarded_by: str = ""  # constraint name when status == DISCARDED
    checks: List[ConstraintResult] = field(default_factory=list)
    #: Calibrated score in [0, 1] that the binary foreign/local call is
    #: right (repro.core.geoloc.confidence); None unless the study ran
    #: with PipelineConfig.confidence.  Annotation only: never consulted
    #: by verdict logic, funnel accounting, or summaries.
    confidence: Optional[float] = None

    @property
    def is_verified_nonlocal(self) -> bool:
        return self.status == ServerStatus.NONLOCAL_VERIFIED

    @property
    def claimed_country(self) -> Optional[str]:
        return self.claim.country_code if self.claim else None


@dataclass
class FunnelCounters:
    """Section-5 accounting, at unique-host granularity per country."""

    total_hosts: int = 0
    unlocated: int = 0
    local: int = 0
    nonlocal_candidates: int = 0
    discarded_source: int = 0
    discarded_destination: int = 0
    discarded_rdns: int = 0
    verified_nonlocal: int = 0
    destination_traceroutes: int = 0

    @property
    def after_latency_constraints(self) -> int:
        """Candidates surviving source+destination (the paper's ~6.1 K stage)."""
        return self.nonlocal_candidates - self.discarded_source - self.discarded_destination

    @property
    def after_rdns(self) -> int:
        """...and surviving reverse DNS too (the paper's ~4.7 K stage)."""
        return self.after_latency_constraints - self.discarded_rdns

    def merged_with(self, other: "FunnelCounters") -> "FunnelCounters":
        return FunnelCounters(
            total_hosts=self.total_hosts + other.total_hosts,
            unlocated=self.unlocated + other.unlocated,
            local=self.local + other.local,
            nonlocal_candidates=self.nonlocal_candidates + other.nonlocal_candidates,
            discarded_source=self.discarded_source + other.discarded_source,
            discarded_destination=self.discarded_destination + other.discarded_destination,
            discarded_rdns=self.discarded_rdns + other.discarded_rdns,
            verified_nonlocal=self.verified_nonlocal + other.verified_nonlocal,
            destination_traceroutes=self.destination_traceroutes + other.destination_traceroutes,
        )


#: Field order matters: it is both the columnar sum layout and the
#: positional-constructor order used by the result transport codec.
_FUNNEL_FIELDS = tuple(f.name for f in dataclasses.fields(FunnelCounters))


def merge_funnels(funnels: Iterable[FunnelCounters]) -> FunnelCounters:
    """Sum per-country funnels into one study-wide :class:`FunnelCounters`.

    With numpy the counters are stacked into one ``(countries, 9)``
    matrix and reduced in a single ``sum`` — the scalar
    :meth:`FunnelCounters.merged_with` fold stays as the always-available
    fallback and produces identical totals.
    """
    rows = list(funnels)
    if _np is not None and rows:
        matrix = _np.array(
            [[getattr(row, name) for name in _FUNNEL_FIELDS] for row in rows],
            dtype=_np.int64,
        )
        return FunnelCounters(*(int(total) for total in matrix.sum(axis=0)))
    merged = FunnelCounters()
    for row in rows:
        merged = merged.merged_with(row)
    return merged


@dataclass
class DatasetGeolocation:
    """Pipeline output for one volunteer dataset."""

    country_code: str
    verdicts: Dict[str, ServerVerdict] = field(default_factory=dict)  # by address
    host_to_address: Dict[str, str] = field(default_factory=dict)
    funnel: FunnelCounters = field(default_factory=FunnelCounters)

    def verdict_for_host(self, host: str) -> Optional[ServerVerdict]:
        address = self.host_to_address.get(host)
        if address is None:
            return None
        return self.verdicts.get(address)

    def nonlocal_hosts(self) -> List[str]:
        # .get, not [], for the same reason verdict_for_host uses it: a
        # host may map to an address the pipeline never ruled on (e.g.
        # hand-filtered datasets), which is "not verified", not an error.
        verdicts_get = self.verdicts.get
        return [
            host
            for host, address in self.host_to_address.items()
            if (verdict := verdicts_get(address)) is not None
            and verdict.is_verified_nonlocal
        ]
