"""Published city-pair latency statistics (the Verizon/WonderNetwork role).

The source-based constraint compares an observed RTT against *published*
statistics for the volunteer-city/claimed-city pair.  Real publications
are independent of any single measurement: they reflect long-run typical
paths, with provider-specific noise and incomplete coverage.  The
synthetic providers reproduce those properties on top of the same
physical model, and the chain implements the paper's fallback order
(Verizon first, WonderNetwork where Verizon has no data).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.determinism import stable_rng
from repro.netsim.geography import City, GeoRegistry
from repro.netsim.latency import LatencyModel

__all__ = [
    "LatencyStatsProvider",
    "SyntheticStatsProvider",
    "StatsChain",
    "default_stats_chain",
    "VERIZON_HUB_CITIES",
]

#: City keys a Verizon-style backbone report covers (major hubs only).
VERIZON_HUB_CITIES = frozenset({
    "New York, US", "Ashburn, US", "San Jose, US", "Toronto, CA",
    "London, GB", "Paris, FR", "Frankfurt, DE", "Amsterdam, NL",
    "Dublin, IE", "Milan, IT", "Madrid, ES", "Stockholm, SE",
    "Warsaw, PL", "Zurich, CH", "Sydney, AU", "Melbourne, AU",
    "Tokyo, JP", "Singapore, SG", "Hong Kong, HK", "Seoul, KR",
    "Mumbai, IN", "Delhi, IN", "Sao Paulo, BR", "Mexico City, MX",
    "Johannesburg, ZA", "Dubai, AE", "Taipei, TW", "Kuala Lumpur, MY",
    "Bangkok, TH", "Auckland, NZ", "Moscow, RU", "Istanbul, TR",
    "Tel Aviv, IL", "Buenos Aires, AR", "Santiago, CL",
})


class LatencyStatsProvider:
    """Interface: typical published RTT between two cities, if covered."""

    name = "abstract"

    def published_rtt_ms(self, a: City, b: City) -> Optional[float]:
        raise NotImplementedError

    def covers(self, city: City) -> bool:
        raise NotImplementedError


class SyntheticStatsProvider(LatencyStatsProvider):
    """Statistics derived from long-run typical latency plus survey noise."""

    def __init__(
        self,
        name: str,
        latency: LatencyModel,
        covered_cities: Optional[Iterable[str]] = None,
        noise_range: Tuple[float, float] = (0.9, 1.15),
    ):
        low, high = noise_range
        if low <= 0 or high < low:
            raise ValueError("noise range must satisfy 0 < low <= high")
        self.name = name
        self._latency = latency
        self._covered: Optional[Set[str]] = set(covered_cities) if covered_cities is not None else None
        self._noise_range = noise_range

    def covers(self, city: City) -> bool:
        return self._covered is None or city.key in self._covered

    def published_rtt_ms(self, a: City, b: City) -> Optional[float]:
        if not (self.covers(a) and self.covers(b)):
            return None
        if a.key == b.key:
            return round(2.0 * self._latency.access_penalty(a), 1)
        first, second = sorted((a.key, b.key))
        low, high = self._noise_range
        noise = stable_rng("stats", self.name, first, second).uniform(low, high)
        return round(self._latency.typical_rtt_ms(a, b) * noise, 1)


class StatsChain(LatencyStatsProvider):
    """Ordered fallback across providers (section 4.1.1)."""

    name = "chain"

    def __init__(self, providers: Sequence[LatencyStatsProvider]):
        if not providers:
            raise ValueError("chain needs at least one provider")
        self._providers: List[LatencyStatsProvider] = list(providers)

    def covers(self, city: City) -> bool:
        return any(p.covers(city) for p in self._providers)

    def published_rtt_ms(self, a: City, b: City) -> Optional[float]:
        for provider in self._providers:
            value = provider.published_rtt_ms(a, b)
            if value is not None:
                return value
        return None

    def source_of(self, a: City, b: City) -> Optional[str]:
        """Which provider would answer for this pair (for provenance)."""
        for provider in self._providers:
            if provider.published_rtt_ms(a, b) is not None:
                return provider.name
        return None


def default_stats_chain(latency: LatencyModel, registry: GeoRegistry) -> StatsChain:
    """Verizon-like hub coverage first, WonderNetwork-like full coverage after."""
    verizon = SyntheticStatsProvider(
        "verizon-like", latency, covered_cities=VERIZON_HUB_CITIES, noise_range=(0.92, 1.12)
    )
    all_cities = [city.key for country in registry.countries for city in country.cities]
    wonder = SyntheticStatsProvider(
        "wondernetwork-like", latency, covered_cities=all_cities, noise_range=(0.85, 1.25)
    )
    return StatsChain([verizon, wonder])
