"""Ground-truth validation of the geolocation pipeline.

The simulator knows every server's true location, so the method's
precision and recall can be measured exactly — this is how the
reproduction *checks* (rather than assumes) the paper's claim that the
multi-constraint framework identifies foreign servers with 100 %
precision.  Shared by the precision/ablation benchmarks and usable
directly by downstream experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.geoloc.pipeline import DatasetGeolocation
from repro.netsim.network import World

__all__ = ["ValidationCounts", "validate_against_truth", "misclassified_servers"]


@dataclass(frozen=True)
class ValidationCounts:
    """Confusion counts for the binary foreign/local decision."""

    true_positive: int = 0   # verified non-local, truly foreign
    false_positive: int = 0  # verified non-local, truly local
    false_negative: int = 0  # truly foreign but not verified (discarded/local/unlocated)
    true_negative: int = 0   # not verified and truly local

    @property
    def precision(self) -> Optional[float]:
        called = self.true_positive + self.false_positive
        if called == 0:
            return None
        return self.true_positive / called

    @property
    def recall(self) -> Optional[float]:
        actual = self.true_positive + self.false_negative
        if actual == 0:
            return None
        return self.true_positive / actual

    @property
    def f1(self) -> Optional[float]:
        p, r = self.precision, self.recall
        if p is None or r is None or p + r == 0:
            return None
        return 2 * p * r / (p + r)

    @property
    def total(self) -> int:
        return (self.true_positive + self.false_positive
                + self.false_negative + self.true_negative)

    def merged_with(self, other: "ValidationCounts") -> "ValidationCounts":
        return ValidationCounts(
            true_positive=self.true_positive + other.true_positive,
            false_positive=self.false_positive + other.false_positive,
            false_negative=self.false_negative + other.false_negative,
            true_negative=self.true_negative + other.true_negative,
        )


def validate_against_truth(
    world: World,
    geolocations: Dict[str, DatasetGeolocation],
) -> ValidationCounts:
    """Score every verdict in *geolocations* against ground truth.

    Addresses outside the world's served space (which have no truth) are
    skipped.
    """
    counts = ValidationCounts()
    for country_code, geolocation in geolocations.items():
        for verdict in geolocation.verdicts.values():
            truth = world.ips.true_country(verdict.address)
            if truth is None:
                continue
            foreign = truth != country_code
            verified = verdict.is_verified_nonlocal
            counts = counts.merged_with(ValidationCounts(
                true_positive=int(verified and foreign),
                false_positive=int(verified and not foreign),
                false_negative=int(not verified and foreign),
                true_negative=int(not verified and not foreign),
            ))
    return counts


def misclassified_servers(
    world: World,
    geolocations: Dict[str, DatasetGeolocation],
) -> List[Tuple[str, str, str, str]]:
    """Every false-positive: ``(country, address, claimed, truth)``.

    Empty under the default pipeline — precisely the paper's guarantee.
    """
    wrong: List[Tuple[str, str, str, str]] = []
    for country_code, geolocation in geolocations.items():
        for verdict in geolocation.verdicts.values():
            if not verdict.is_verified_nonlocal:
                continue
            truth = world.ips.true_country(verdict.address)
            if truth is not None and truth == country_code:
                wrong.append((
                    country_code,
                    verdict.address,
                    verdict.claimed_country or "?",
                    truth,
                ))
    return sorted(wrong)
