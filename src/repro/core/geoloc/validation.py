"""Ground-truth validation of the geolocation pipeline.

The simulator knows every server's true location, so the method's
precision and recall can be measured exactly — this is how the
reproduction *checks* (rather than assumes) the paper's claim that the
multi-constraint framework identifies foreign servers with 100 %
precision.  Shared by the precision/ablation benchmarks and usable
directly by downstream experiments.

With :mod:`repro.core.geoloc.confidence` enabled the same ground truth
also validates the *calibration* of the per-verdict confidence scores:
:func:`calibrate_against_truth` buckets verdicts into reliability bins
and reports Brier score and expected calibration error (ECE) — the
validation loop the real papers never get to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.geoloc.verdicts import DatasetGeolocation
from repro.netsim.network import World

__all__ = [
    "BRIER_TARGET",
    "CalibrationBin",
    "CalibrationReport",
    "ECE_TARGET",
    "ValidationCounts",
    "calibrate_against_truth",
    "misclassified_servers",
    "validate_against_truth",
]

#: Calibration acceptance targets on the default 23-country world
#: (checked by ``gamma confidence --validate`` and CI).  The measured
#: values sit around 0.02 each; the slack absorbs drift from retuning
#: the constraint ladder or the world's error models without letting a
#: miscalibrated release through.
BRIER_TARGET = 0.15
ECE_TARGET = 0.10


@dataclass(frozen=True)
class ValidationCounts:
    """Confusion counts for the binary foreign/local decision."""

    true_positive: int = 0   # verified non-local, truly foreign
    false_positive: int = 0  # verified non-local, truly local
    false_negative: int = 0  # truly foreign but not verified (discarded/local/unlocated)
    true_negative: int = 0   # not verified and truly local

    @property
    def precision(self) -> Optional[float]:
        called = self.true_positive + self.false_positive
        if called == 0:
            return None
        return self.true_positive / called

    @property
    def recall(self) -> Optional[float]:
        actual = self.true_positive + self.false_negative
        if actual == 0:
            return None
        return self.true_positive / actual

    @property
    def f1(self) -> Optional[float]:
        """Harmonic mean of precision and recall.

        ``None`` only when the score is genuinely undefined — no
        positives were called *and* none exist.  The degenerate 0/0
        case with positives in play (precision and recall both defined
        but zero) follows the standard convention: F1 = 0.0.
        """
        p, r = self.precision, self.recall
        if p is None and r is None:
            return None
        if not p or not r:  # either side zero (or undefined): no true positives
            return 0.0
        return 2 * p * r / (p + r)

    @property
    def total(self) -> int:
        return (self.true_positive + self.false_positive
                + self.false_negative + self.true_negative)

    def merged_with(self, other: "ValidationCounts") -> "ValidationCounts":
        return ValidationCounts(
            true_positive=self.true_positive + other.true_positive,
            false_positive=self.false_positive + other.false_positive,
            false_negative=self.false_negative + other.false_negative,
            true_negative=self.true_negative + other.true_negative,
        )


def validate_against_truth(
    world: World,
    geolocations: Dict[str, DatasetGeolocation],
) -> ValidationCounts:
    """Score every verdict in *geolocations* against ground truth.

    Addresses outside the world's served space (which have no truth) are
    skipped.  Accumulates plain ints and builds one frozen dataclass at
    the end — the per-verdict ``merged_with`` allocation churn was a
    measurable share of the precision benchmarks.
    """
    tp = fp = fn = tn = 0
    for country_code, geolocation in geolocations.items():
        true_country = world.ips.true_country
        for verdict in geolocation.verdicts.values():
            truth = true_country(verdict.address)
            if truth is None:
                continue
            foreign = truth != country_code
            if verdict.is_verified_nonlocal:
                if foreign:
                    tp += 1
                else:
                    fp += 1
            elif foreign:
                fn += 1
            else:
                tn += 1
    return ValidationCounts(
        true_positive=tp, false_positive=fp,
        false_negative=fn, true_negative=tn,
    )


def misclassified_servers(
    world: World,
    geolocations: Dict[str, DatasetGeolocation],
) -> List[Tuple[str, str, str, str]]:
    """Every false-positive: ``(country, address, claimed, truth)``.

    Empty under the default pipeline — precisely the paper's guarantee.
    """
    wrong: List[Tuple[str, str, str, str]] = []
    for country_code, geolocation in geolocations.items():
        for verdict in geolocation.verdicts.values():
            if not verdict.is_verified_nonlocal:
                continue
            truth = world.ips.true_country(verdict.address)
            if truth is not None and truth == country_code:
                wrong.append((
                    country_code,
                    verdict.address,
                    verdict.claimed_country or "?",
                    truth,
                ))
    return sorted(wrong)


# -- confidence calibration ---------------------------------------------------
@dataclass(frozen=True)
class CalibrationBin:
    """One reliability bin: verdicts whose confidence fell in [lower, upper)."""

    lower: float
    upper: float
    count: int
    correct: int
    confidence_sum: float

    @property
    def accuracy(self) -> Optional[float]:
        return self.correct / self.count if self.count else None

    @property
    def mean_confidence(self) -> Optional[float]:
        return self.confidence_sum / self.count if self.count else None


@dataclass(frozen=True)
class CalibrationReport:
    """Reliability diagram + scalar calibration metrics.

    * **Brier score** — mean squared error of the confidence against the
      0/1 correctness outcome; 0 is perfect, 0.25 is an uninformative
      coin flip.
    * **ECE** — expected calibration error: the bin-count-weighted mean
      absolute gap between each bin's mean confidence and its accuracy.
    """

    bins: Tuple[CalibrationBin, ...]
    total: int
    skipped: int  # verdicts with no confidence or no ground truth
    brier: Optional[float]
    ece: Optional[float]
    accuracy: Optional[float]
    mean_confidence: Optional[float]

    def as_dict(self) -> dict:
        rnd = lambda v: None if v is None else round(v, 6)  # noqa: E731
        return {
            "total": self.total,
            "skipped": self.skipped,
            "brier": rnd(self.brier),
            "ece": rnd(self.ece),
            "accuracy": rnd(self.accuracy),
            "mean_confidence": rnd(self.mean_confidence),
            "bins": [
                {
                    "range": [bin.lower, bin.upper],
                    "count": bin.count,
                    "accuracy": rnd(bin.accuracy),
                    "mean_confidence": rnd(bin.mean_confidence),
                }
                for bin in self.bins
            ],
        }


def calibrate_against_truth(
    world: World,
    geolocations: Dict[str, DatasetGeolocation],
    bins: int = 10,
) -> CalibrationReport:
    """Measure confidence calibration against seeded ground truth.

    A verdict's confidence claims to be the probability that its binary
    foreign/local call is right; ground truth says whether it actually
    was.  Verdicts without a confidence score (confidence disabled) or
    without ground truth (addresses outside the served space) are
    counted in ``skipped``.
    """
    if bins < 1:
        raise ValueError("bins must be >= 1")
    counts = [0] * bins
    corrects = [0] * bins
    conf_sums = [0.0] * bins
    total = skipped = 0
    brier_sum = 0.0
    for country_code, geolocation in geolocations.items():
        true_country = world.ips.true_country
        for verdict in geolocation.verdicts.values():
            confidence = verdict.confidence
            truth = true_country(verdict.address)
            if confidence is None or truth is None:
                skipped += 1
                continue
            foreign = truth != country_code
            correct = verdict.is_verified_nonlocal == foreign
            slot = int(confidence * bins)
            if slot >= bins:  # confidence == 1.0 lands in the top bin
                slot = bins - 1
            counts[slot] += 1
            corrects[slot] += int(correct)
            conf_sums[slot] += confidence
            total += 1
            gap = confidence - float(correct)
            brier_sum += gap * gap

    bin_rows = tuple(
        CalibrationBin(
            lower=i / bins,
            upper=(i + 1) / bins,
            count=counts[i],
            correct=corrects[i],
            confidence_sum=conf_sums[i],
        )
        for i in range(bins)
    )
    if total == 0:
        return CalibrationReport(
            bins=bin_rows, total=0, skipped=skipped,
            brier=None, ece=None, accuracy=None, mean_confidence=None,
        )
    ece = sum(
        row.count * abs(row.mean_confidence - row.accuracy)
        for row in bin_rows
        if row.count
    ) / total
    return CalibrationReport(
        bins=bin_rows,
        total=total,
        skipped=skipped,
        brier=brier_sum / total,
        ece=ece,
        accuracy=sum(corrects) / total,
        mean_confidence=sum(conf_sums) / total,
    )
