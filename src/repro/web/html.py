"""Page-source synthesis and hardcoded-domain extraction.

Gamma's C1 can save full webpages, and C2 resolves "all captured
domains, whether obtained through network requests or hardcoded on the
webpage" (section 3).  These functions provide both halves: render a
deterministic HTML document for a website (script/img/link tags for its
embedded resources plus plain-text hardcoded references), and scrape a
saved page for every domain it mentions.
"""

from __future__ import annotations

import re
from typing import List, Optional, Set

from repro.determinism import stable_rng
from repro.web.website import ResourceKind, Website

__all__ = ["render_page_html", "extract_domains_from_html"]

_TAG_FOR_KIND = {
    ResourceKind.SCRIPT: '<script src="https://{host}/tag.js"></script>',
    ResourceKind.IMAGE: '<img src="https://{host}/px.gif" alt="">',
    ResourceKind.STYLESHEET: '<link rel="stylesheet" href="https://{host}/site.css">',
    ResourceKind.XHR: '<script>fetch("https://{host}/api/v1/collect");</script>',
    ResourceKind.FRAME: '<iframe src="https://{host}/frame" title="embed"></iframe>',
}

_HEADLINES = (
    "Top stories today", "Market watch", "Weather outlook", "Sport results",
    "Community notices", "Classified listings", "Opinion", "Business briefs",
)


def render_page_html(site: Website, visit_key: str = "visit-1",
                     country_code: Optional[str] = None) -> str:
    """Deterministic landing-page HTML for *site*.

    Every resource that fires on this visit appears as a real tag; one or
    two additional partner domains appear only as *hardcoded text links*
    (never fetched by the browser) so the C2 hardcoded-domain path has
    something to find.
    """
    rng = stable_rng("html", site.domain, visit_key)
    lines: List[str] = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        f"  <title>{site.domain}</title>",
        f'  <link rel="canonical" href="https://{site.domain}/">',
        f'  <link rel="stylesheet" href="https://static.{site.domain}/main.css">',
        "</head>",
        "<body>",
        f"  <h1>{rng.choice(_HEADLINES)}</h1>",
    ]
    for resource in site.embedded:
        if not resource.fires(visit_key, country_code):
            continue
        template = _TAG_FOR_KIND.get(resource.kind, _TAG_FOR_KIND[ResourceKind.SCRIPT])
        lines.append("  " + template.format(host=resource.host))
    # Hardcoded partner references: mentioned in markup, never requested.
    partners = [f"partner{rng.randint(1, 3)}.{site.domain}", "mirror.archive-example.org"]
    for partner in partners:
        lines.append(f'  <p>Also available via <a href="https://{partner}/">{partner}</a></p>')
    lines.append(f"  <footer>&copy; {site.owner_org}</footer>")
    lines.append("</body>")
    lines.append("</html>")
    return "\n".join(lines) + "\n"


_URL_RE = re.compile(r"""https?://([a-z0-9.-]+)""", re.IGNORECASE)
_HOSTISH_RE = re.compile(
    r"""(?<![\w.-])((?:[a-z0-9-]+\.)+[a-z]{2,})(?![\w-])""", re.IGNORECASE
)


def extract_domains_from_html(html: str) -> Set[str]:
    """Every domain a saved page references (URLs and bare hostnames)."""
    found: Set[str] = set()
    for match in _URL_RE.finditer(html):
        found.add(match.group(1).lower().rstrip("."))
    for match in _HOSTISH_RE.finditer(html):
        candidate = match.group(1).lower().rstrip(".")
        # Filter obvious non-hosts (file names picked up by the loose regex).
        if candidate.endswith((".js", ".css", ".gif", ".png", ".html", ".jpg")):
            continue
        found.add(candidate)
    return found
