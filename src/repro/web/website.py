"""Website and embedded-resource structures.

A :class:`Website` is one entry of a country's target list: its landing
hostname, its owner, and the third-party hosts its landing page pulls in.
Embedded resources may be unconditional (analytics snippets baked into the
page) or probabilistic (ad-auction winners that only appear on some
visits), matching the visit-to-visit variability the paper flags as a
limitation of single-visit crawls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.determinism import stable_rng
from repro.domains import validate_hostname

__all__ = ["ResourceKind", "EmbeddedResource", "Website", "CATEGORY_REGIONAL", "CATEGORY_GOVERNMENT"]

CATEGORY_REGIONAL = "regional"
CATEGORY_GOVERNMENT = "government"


class ResourceKind:
    """Resource types a page can request."""

    SCRIPT = "script"
    IMAGE = "image"
    STYLESHEET = "stylesheet"
    XHR = "xhr"
    FRAME = "frame"

    ALL = (SCRIPT, IMAGE, STYLESHEET, XHR, FRAME)


@dataclass(frozen=True)
class EmbeddedResource:
    """A third-party (or same-site) host the landing page requests."""

    host: str
    kind: str = ResourceKind.SCRIPT
    #: Probability the resource loads on any given visit (1.0 = always).
    load_probability: float = 1.0
    #: Measurement countries where this resource fires (geo-targeted ad
    #: campaigns); empty tuple = everywhere.
    countries: tuple = ()

    def __post_init__(self) -> None:
        validate_hostname(self.host)
        if self.kind not in ResourceKind.ALL:
            raise ValueError(f"unknown resource kind {self.kind!r}")
        if not 0.0 < self.load_probability <= 1.0:
            raise ValueError("load_probability must be in (0, 1]")

    def fires(self, visit_key: str, country_code: Optional[str] = None) -> bool:
        """Whether this resource loads on this visit from this country."""
        if self.countries and country_code not in self.countries:
            return False
        if self.load_probability >= 1.0:
            return True
        return stable_rng("resource-fire", self.host, visit_key).random() < self.load_probability


@dataclass
class Website:
    """One target-list entry."""

    domain: str  # landing hostname, e.g. "www.dailynews.lk"
    country_code: str  # country whose target list it appears on
    category: str  # CATEGORY_REGIONAL or CATEGORY_GOVERNMENT
    owner_org: str  # organisation that operates the site
    embedded: List[EmbeddedResource] = field(default_factory=list)
    #: Page weight factor >= 1.0; heavier pages render slower.
    complexity: float = 1.0
    #: Adult sites are removed from target lists (section 3.2).
    adult: bool = False
    #: Sites banned in their own country are removed from target lists.
    banned: bool = False
    #: Global popularity score used by ranking providers (higher = more popular).
    popularity: float = 0.0
    #: For multi-national sites: measurement countries whose regional
    #: rankings list this site (beyond its own country).
    listed_in: tuple = ()

    def __post_init__(self) -> None:
        self.domain = validate_hostname(self.domain)
        if self.category not in (CATEGORY_REGIONAL, CATEGORY_GOVERNMENT):
            raise ValueError(f"unknown category {self.category!r}")
        if self.complexity < 1.0:
            raise ValueError("complexity must be >= 1.0")

    def requested_hosts(self, visit_key: str, country_code: Optional[str] = None) -> List[Tuple[str, str]]:
        """Hosts the page requests on one visit: ``[(host, kind), ...]``.

        Always begins with the landing host itself (document request),
        then its own static-asset host, then whichever embedded resources
        fire for this visit from this country.  Order is deterministic.
        """
        requests: List[Tuple[str, str]] = [(self.domain, "document")]
        requests.append((f"static.{self.domain}", ResourceKind.IMAGE))
        for resource in self.embedded:
            if resource.fires(visit_key, country_code):
                requests.append((resource.host, resource.kind))
        return requests

    @property
    def is_government(self) -> bool:
        return self.category == CATEGORY_GOVERNMENT

    def embedded_hosts(self) -> List[str]:
        return [resource.host for resource in self.embedded]
