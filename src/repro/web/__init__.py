"""Synthetic web: websites, embedded resources, and the site catalogue."""

from repro.web.catalog import SiteCatalog
from repro.web.html import extract_domains_from_html, render_page_html
from repro.web.website import (
    CATEGORY_GOVERNMENT,
    CATEGORY_REGIONAL,
    EmbeddedResource,
    ResourceKind,
    Website,
)

__all__ = [
    "CATEGORY_GOVERNMENT",
    "CATEGORY_REGIONAL",
    "EmbeddedResource",
    "ResourceKind",
    "SiteCatalog",
    "Website",
    "extract_domains_from_html",
    "render_page_html",
]
