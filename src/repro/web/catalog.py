"""Site catalogue: lookup of the world's websites by country and category.

The catalogue is the synthetic analogue of "the web as reachable from a
country": target-list construction draws from it, and the browser engine
consults it to know what a URL's landing page embeds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.domains import validate_hostname
from repro.web.website import CATEGORY_GOVERNMENT, CATEGORY_REGIONAL, Website

__all__ = ["SiteCatalog"]


class SiteCatalog:
    """Indexed collection of every website in the world."""

    def __init__(self, websites: Iterable[Website] = ()):
        self._by_domain: Dict[str, Website] = {}
        self._by_country: Dict[str, List[Website]] = {}
        for site in websites:
            self.add(site)

    def add(self, site: Website) -> Website:
        if site.domain in self._by_domain:
            raise ValueError(f"website {site.domain!r} already in catalogue")
        self._by_domain[site.domain] = site
        self._by_country.setdefault(site.country_code, []).append(site)
        return site

    def get(self, domain: str) -> Website:
        domain = validate_hostname(domain)
        try:
            return self._by_domain[domain]
        except KeyError:
            raise KeyError(f"no website {domain!r} in catalogue") from None

    def has(self, domain: str) -> bool:
        return domain in self._by_domain

    def in_country(self, country_code: str, category: Optional[str] = None) -> List[Website]:
        sites = self._by_country.get(country_code, [])
        if category is None:
            return list(sites)
        return [s for s in sites if s.category == category]

    def market(self, country_code: str, category: Optional[str] = None) -> List[Website]:
        """Sites visible in a country's market: its own sites plus any
        multi-national site whose ``listed_in`` includes the country."""
        sites = self.in_country(country_code, category)
        for site in self._by_domain.values():
            if site.country_code != country_code and country_code in site.listed_in:
                if category is None or site.category == category:
                    sites.append(site)
        return sites

    def regional(self, country_code: str) -> List[Website]:
        return self.in_country(country_code, CATEGORY_REGIONAL)

    def government(self, country_code: str) -> List[Website]:
        return self.in_country(country_code, CATEGORY_GOVERNMENT)

    @property
    def countries(self) -> List[str]:
        return sorted(self._by_country)

    def __len__(self) -> int:
        return len(self._by_domain)

    def __iter__(self):
        return iter(self._by_domain.values())
