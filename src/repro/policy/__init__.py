"""Data-localization policy registry (Table 1)."""

from repro.policy.registry import (
    PolicyRecord,
    PolicyRegistry,
    PolicyType,
    default_policy_registry,
)

__all__ = ["PolicyRecord", "PolicyRegistry", "PolicyType", "default_policy_registry"]
