"""Data-localization policy registry (the paper's Table 1 inputs).

Regimes are grouped into five types by decreasing strictness, following
the paper's taxonomy (sourced from DataGuidance):

* **CS** — cross-border transfer requires consent of the data subject.
* **PA** — prior government approval or registration required.
* **AC** — transfers allowed only to pre-approved countries.
* **TA** — transfers allowed if comparable protections apply abroad.
* **NR** — no restrictions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["PolicyType", "PolicyRecord", "PolicyRegistry", "default_policy_registry"]


class PolicyType:
    CONSENT_OF_SUBJECT = "CS"
    PRIOR_APPROVAL = "PA"
    APPROVED_COUNTRIES = "AC"
    TRANSFERS_ALLOWED = "TA"
    NO_RESTRICTIONS = "NR"

    #: Decreasing strictness, as ordered in Table 1.
    ORDER = (
        CONSENT_OF_SUBJECT,
        PRIOR_APPROVAL,
        APPROVED_COUNTRIES,
        TRANSFERS_ALLOWED,
        NO_RESTRICTIONS,
    )

    @classmethod
    def strictness_rank(cls, policy_type: str) -> int:
        """0 = strictest.  Raises on unknown types."""
        return cls.ORDER.index(policy_type)


@dataclass(frozen=True)
class PolicyRecord:
    """One country's data-localization stance."""

    country_code: str
    policy_type: str
    enacted: bool
    note: str = ""

    def __post_init__(self) -> None:
        if self.policy_type not in PolicyType.ORDER:
            raise ValueError(f"unknown policy type {self.policy_type!r}")

    @property
    def strictness_rank(self) -> int:
        return PolicyType.strictness_rank(self.policy_type)


class PolicyRegistry:
    """Lookup + ordering over policy records."""

    def __init__(self, records: List[PolicyRecord]):
        self._records: Dict[str, PolicyRecord] = {}
        for record in records:
            if record.country_code in self._records:
                raise ValueError(f"duplicate policy for {record.country_code}")
            self._records[record.country_code] = record

    def get(self, country_code: str) -> PolicyRecord:
        try:
            return self._records[country_code]
        except KeyError:
            raise KeyError(f"no policy record for {country_code}") from None

    def has(self, country_code: str) -> bool:
        return country_code in self._records

    def by_strictness(self) -> List[PolicyRecord]:
        """Records sorted strictest-first, then by country code (Table 1 order)."""
        return sorted(self._records.values(), key=lambda r: (r.strictness_rank, r.country_code))

    def __iter__(self):
        return iter(self._records.values())

    def __len__(self) -> int:
        return len(self._records)


def default_policy_registry() -> PolicyRegistry:
    """The 23 measurement countries' regimes exactly as in Table 1."""
    T = PolicyType
    rows = [
        ("AZ", T.CONSENT_OF_SUBJECT, True, ""),
        ("DZ", T.PRIOR_APPROVAL, True, "Law 18-07"),
        ("EG", T.PRIOR_APPROVAL, True, ""),
        ("RW", T.PRIOR_APPROVAL, True, ""),
        ("UG", T.PRIOR_APPROVAL, True, ""),
        ("AR", T.APPROVED_COUNTRIES, True, "EU-style adequacy list"),
        ("RU", T.APPROVED_COUNTRIES, True, ""),
        ("LK", T.APPROVED_COUNTRIES, True, ""),
        ("TH", T.APPROVED_COUNTRIES, False, "enacted after data collection"),
        ("AE", T.APPROVED_COUNTRIES, True, "approved-country list not yet published"),
        ("GB", T.APPROVED_COUNTRIES, True, ""),
        ("AU", T.TRANSFERS_ALLOWED, True, ""),
        ("CA", T.TRANSFERS_ALLOWED, True, ""),
        ("IN", T.TRANSFERS_ALLOWED, False, "DPDP Act not yet in effect"),
        ("JP", T.TRANSFERS_ALLOWED, True, "after opt-out period"),
        ("JO", T.TRANSFERS_ALLOWED, True, "effective 2024-03-17"),
        ("NZ", T.TRANSFERS_ALLOWED, True, ""),
        ("PK", T.TRANSFERS_ALLOWED, False, "not yet in effect"),
        ("QA", T.TRANSFERS_ALLOWED, True, ""),
        ("SA", T.TRANSFERS_ALLOWED, True, ""),
        ("TW", T.TRANSFERS_ALLOWED, True, "excluding mainland China"),
        ("US", T.TRANSFERS_ALLOWED, True, "sectoral protections only"),
        ("LB", T.NO_RESTRICTIONS, True, ""),
    ]
    return PolicyRegistry([PolicyRecord(cc, ptype, enacted, note) for cc, ptype, enacted, note in rows])
