"""Headless-browser simulation: page loads, request records, failures."""

from repro.browser.engine import (
    CHROMEDRIVER_BACKGROUND_HOSTS,
    BrowserConfig,
    BrowserEngine,
    BrowserKind,
)
from repro.browser.har import NetworkRequest, PageLoadRecord, RequestStatus
from repro.browser.harformat import from_har, to_har, to_har_json

__all__ = [
    "CHROMEDRIVER_BACKGROUND_HOSTS",
    "BrowserConfig",
    "BrowserEngine",
    "BrowserKind",
    "NetworkRequest",
    "PageLoadRecord",
    "RequestStatus",
    "from_har",
    "to_har",
    "to_har_json",
]
