"""HAR-style page-load records.

Gamma's browser component (C1) records every network request a page load
generates.  These structures are the normalised form of that recording:
one :class:`PageLoadRecord` per attempted page visit, each holding the
ordered list of :class:`NetworkRequest` entries, load success, and timing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RequestStatus", "NetworkRequest", "PageLoadRecord"]


class RequestStatus:
    """Terminal states of one network request."""

    OK = "ok"
    DNS_ERROR = "dns_error"
    BLOCKED = "blocked"  # blocked by the browser (e.g. Brave's shields)
    REFUSED = "refused"  # server refused to serve this client region

    ALL = (OK, DNS_ERROR, BLOCKED, REFUSED)


@dataclass(frozen=True)
class NetworkRequest:
    """One request observed during a page load."""

    host: str
    kind: str  # document/script/image/stylesheet/xhr/frame/background
    status: str
    address: Optional[str] = None  # resolved IP when status == OK
    #: True for requests the webdriver itself generates (browser telemetry,
    #: safe-browsing updates...), which the paper strips before analysis.
    background: bool = False

    @property
    def succeeded(self) -> bool:
        return self.status == RequestStatus.OK


@dataclass
class PageLoadRecord:
    """Everything Gamma's C1 component records for one page visit."""

    url: str  # landing hostname
    country_code: str  # measurement country
    browser: str
    loaded: bool
    render_time_s: float
    requests: List[NetworkRequest] = field(default_factory=list)
    failure_reason: Optional[str] = None

    def successful_requests(self, include_background: bool = True) -> List[NetworkRequest]:
        return [
            r
            for r in self.requests
            if r.succeeded and (include_background or not r.background)
        ]

    def requested_hosts(self, include_background: bool = False) -> List[str]:
        """Unique hosts with successful requests, in first-seen order."""
        seen: Dict[str, None] = {}
        for request in self.successful_requests(include_background=include_background):
            seen.setdefault(request.host, None)
        return list(seen)

    def host_addresses(self, include_background: bool = False) -> Dict[str, str]:
        """Map of host -> resolved address for successful requests."""
        addresses: Dict[str, str] = {}
        for request in self.successful_requests(include_background=include_background):
            if request.address is not None:
                addresses.setdefault(request.host, request.address)
        return addresses

    def to_dict(self) -> dict:
        """JSON-serialisable form (Gamma's on-disk output schema)."""
        return {
            "url": self.url,
            "country": self.country_code,
            "browser": self.browser,
            "loaded": self.loaded,
            "render_time_s": round(self.render_time_s, 3),
            "failure_reason": self.failure_reason,
            "requests": [
                {
                    "host": r.host,
                    "kind": r.kind,
                    "status": r.status,
                    "address": r.address,
                    "background": r.background,
                }
                for r in self.requests
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PageLoadRecord":
        record = cls(
            url=payload["url"],
            country_code=payload["country"],
            browser=payload["browser"],
            loaded=payload["loaded"],
            render_time_s=payload["render_time_s"],
            failure_reason=payload.get("failure_reason"),
        )
        for entry in payload.get("requests", []):
            record.requests.append(
                NetworkRequest(
                    host=entry["host"],
                    kind=entry["kind"],
                    status=entry["status"],
                    address=entry.get("address"),
                    background=entry.get("background", False),
                )
            )
        return record
