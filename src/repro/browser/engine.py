"""Headless-browser page-load engine.

The engine models what the paper's Selenium-driven Chrome instance does
observably: resolve and fetch the landing document, expand its resource
graph, record every request, occasionally fail to load (connection
instability, render timeout), and emit webdriver *background* requests to
Google services — noise the paper explicitly strips before analysis
(Cassel et al. observed the same artefact).

Chrome, Firefox and Brave are supported; Brave additionally blocks
requests matching a supplied blocklist, mirroring its shields.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Optional, Set

from repro.determinism import stable_rng
from repro.domains import registrable_domain
from repro.netsim.dns import NXDomain
from repro.netsim.geography import City
from repro.netsim.network import World
from repro.browser.har import NetworkRequest, PageLoadRecord, RequestStatus
from repro.web.catalog import SiteCatalog

__all__ = ["BrowserKind", "BrowserConfig", "BrowserEngine", "CHROMEDRIVER_BACKGROUND_HOSTS"]


class BrowserKind:
    CHROME = "chrome"
    FIREFOX = "firefox"
    BRAVE = "brave"

    ALL = (CHROME, FIREFOX, BRAVE)


#: Hosts the Chrome webdriver contacts on its own during page loads.
CHROMEDRIVER_BACKGROUND_HOSTS = (
    "update.googleapis.com",
    "safebrowsing.googleapis.com",
    "optimizationguide-pa.googleapis.com",
    "accounts.google.com",
)


@dataclass
class BrowserConfig:
    """Per-session browser behaviour."""

    browser: str = BrowserKind.CHROME
    wait_time_s: float = 20.0  # render wait (paper: double typical render time)
    hard_timeout_s: float = 180.0  # kill hung instances after this long
    #: country code -> probability a page visit fails outright; models the
    #: connection quality differences behind Figure 2(b).
    failure_rates: Dict[str, float] = field(default_factory=dict)
    default_failure_rate: float = 0.08
    #: Brave-only: hosts whose requests the shields block.
    blocklist: Set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.browser not in BrowserKind.ALL:
            raise ValueError(f"unsupported browser {self.browser!r}")
        if self.wait_time_s <= 0 or self.hard_timeout_s <= 0:
            raise ValueError("timeouts must be positive")
        for country, rate in self.failure_rates.items():
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"failure rate for {country} must be in [0, 1)")

    def failure_rate(self, country_code: str) -> float:
        return self.failure_rates.get(country_code, self.default_failure_rate)


class BrowserEngine:
    """Loads pages from a vantage city and records what happened."""

    def __init__(self, world: World, catalog: SiteCatalog, config: Optional[BrowserConfig] = None):
        self._world = world
        self._catalog = catalog
        self._config = config or BrowserConfig()

    @property
    def config(self) -> BrowserConfig:
        return self._config

    def load(self, url: str, vantage_city: City, visit_key: str = "visit-1") -> PageLoadRecord:
        """Visit *url* from *vantage_city* and return the full record."""
        country = vantage_city.country_code
        record = PageLoadRecord(
            url=url,
            country_code=country,
            browser=self._config.browser,
            loaded=False,
            render_time_s=0.0,
        )
        rng = stable_rng("pageload", url, vantage_city.key, visit_key, self._config.browser)

        if not self._catalog.has(url):
            record.failure_reason = "dns_error"
            record.requests.append(NetworkRequest(url, "document", RequestStatus.DNS_ERROR))
            return record
        site = self._catalog.get(url)

        if rng.random() < self._config.failure_rate(country):
            record.failure_reason = "connection_failure"
            return record

        render_time = self._render_time(site.complexity, vantage_city, url, rng)
        record.render_time_s = render_time
        if render_time > self._config.hard_timeout_s:
            record.failure_reason = "hard_timeout"
            return record

        for host, kind in site.requested_hosts(visit_key, country):
            record.requests.append(self._fetch(host, kind, vantage_city))
        if self._config.browser == BrowserKind.CHROME:
            for host in CHROMEDRIVER_BACKGROUND_HOSTS:
                record.requests.append(self._fetch(host, "background", vantage_city, background=True))
        record.loaded = True
        return record

    def load_many(
        self,
        urls: Iterable[str],
        vantage_city: City,
        visit_key: str = "visit-1",
        progress: Optional[Callable[[str, PageLoadRecord], None]] = None,
    ) -> Dict[str, PageLoadRecord]:
        """Load each URL in order (Gamma's single-thread mode)."""
        records: Dict[str, PageLoadRecord] = {}
        for url in urls:
            record = self.load(url, vantage_city, visit_key)
            records[url] = record
            if progress is not None:
                progress(url, record)
        return records

    # -- internals -----------------------------------------------------------
    def _fetch(self, host: str, kind: str, vantage_city: City, background: bool = False) -> NetworkRequest:
        if self._config.browser == BrowserKind.BRAVE and self._blocked(host):
            return NetworkRequest(host, kind, RequestStatus.BLOCKED, background=background)
        try:
            answer = self._world.dns.resolve(host, vantage_city)
        except NXDomain:
            return NetworkRequest(host, kind, RequestStatus.DNS_ERROR, background=background)
        except LookupError:
            return NetworkRequest(host, kind, RequestStatus.REFUSED, background=background)
        return NetworkRequest(host, kind, RequestStatus.OK, address=answer.address, background=background)

    def _blocked(self, host: str) -> bool:
        if host in self._config.blocklist:
            return True
        base = registrable_domain(host)
        return base is not None and base in self._config.blocklist

    def _render_time(self, complexity: float, vantage_city: City, url: str, rng) -> float:
        """Seconds until the page settles; scales with RTT to the origin."""
        try:
            answer = self._world.dns.resolve(url, vantage_city)
            origin_rtt_ms = self._world.latency.rtt_ms(vantage_city, answer.pop.city, f"render:{url}")
        except LookupError:
            origin_rtt_ms = 300.0
        base = rng.uniform(1.5, 8.0) * complexity
        # Dozens of sequential round trips dominate render time on slow paths.
        network_term = origin_rtt_ms / 1000.0 * rng.uniform(15, 40)
        return base + network_term
