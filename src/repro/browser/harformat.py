"""HTTP Archive (HAR) 1.2 export.

Gamma "is capable of ... recording HAR files and all network requests
during page loads" (section 3, C1).  This module serialises a
:class:`~repro.browser.har.PageLoadRecord` into the standard HAR 1.2
JSON structure that browser devtools and HAR analysers consume, and
parses such files back into records — so datasets can interoperate with
off-the-shelf web-measurement tooling.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.browser.har import NetworkRequest, PageLoadRecord, RequestStatus

__all__ = ["to_har", "to_har_json", "from_har"]

_CREATOR = {"name": "gamma-repro", "version": "1.0.0"}

#: HAR has no first-class failure channel; Gamma stores its request
#: status in a private field, and maps statuses onto HTTP-ish codes.
_STATUS_CODES = {
    RequestStatus.OK: 200,
    RequestStatus.DNS_ERROR: 0,
    RequestStatus.BLOCKED: 0,
    RequestStatus.REFUSED: 0,
}


def _entry(record: PageLoadRecord, request: NetworkRequest, started_ms: float) -> dict:
    scheme = "https"
    return {
        "pageref": record.url,
        "startedDateTime": "1970-01-01T00:00:00.000Z",
        "time": round(started_ms, 3),
        "request": {
            "method": "GET",
            "url": f"{scheme}://{request.host}/",
            "httpVersion": "HTTP/2",
            "headers": [{"name": "Host", "value": request.host}],
            "queryString": [],
            "cookies": [],
            "headersSize": -1,
            "bodySize": 0,
        },
        "response": {
            "status": _STATUS_CODES.get(request.status, 0),
            "statusText": "OK" if request.succeeded else request.status,
            "httpVersion": "HTTP/2",
            "headers": [],
            "cookies": [],
            "content": {"size": 0, "mimeType": "application/octet-stream"},
            "redirectURL": "",
            "headersSize": -1,
            "bodySize": 0,
        },
        "serverIPAddress": request.address or "",
        "cache": {},
        "timings": {"send": 0, "wait": round(started_ms, 3), "receive": 0},
        "_kind": request.kind,
        "_status": request.status,
        "_background": request.background,
    }


def to_har(record: PageLoadRecord) -> dict:
    """The HAR 1.2 document for one page load."""
    entries = []
    for i, request in enumerate(record.requests):
        entries.append(_entry(record, request, started_ms=float(i)))
    return {
        "log": {
            "version": "1.2",
            "creator": dict(_CREATOR),
            "pages": [
                {
                    "startedDateTime": "1970-01-01T00:00:00.000Z",
                    "id": record.url,
                    "title": record.url,
                    "pageTimings": {
                        "onContentLoad": round(record.render_time_s * 1000 / 2, 1),
                        "onLoad": round(record.render_time_s * 1000, 1),
                    },
                    "_country": record.country_code,
                    "_browser": record.browser,
                    "_loaded": record.loaded,
                    "_failureReason": record.failure_reason,
                }
            ],
            "entries": entries,
        }
    }


def to_har_json(record: PageLoadRecord, indent: Optional[int] = 2) -> str:
    return json.dumps(to_har(record), indent=indent, sort_keys=True)


def from_har(payload) -> PageLoadRecord:
    """Rebuild a :class:`PageLoadRecord` from a HAR document (dict or JSON)."""
    if isinstance(payload, str):
        payload = json.loads(payload)
    log = payload.get("log")
    if not log or log.get("version") != "1.2":
        raise ValueError("not a HAR 1.2 document")
    pages: List[Dict] = log.get("pages", [])
    if not pages:
        raise ValueError("HAR document has no pages")
    page = pages[0]
    record = PageLoadRecord(
        url=page["id"],
        country_code=page.get("_country", ""),
        browser=page.get("_browser", ""),
        loaded=bool(page.get("_loaded", True)),
        render_time_s=float(page.get("pageTimings", {}).get("onLoad", 0.0)) / 1000.0,
        failure_reason=page.get("_failureReason"),
    )
    for entry in log.get("entries", []):
        host = entry["request"]["url"].split("://", 1)[-1].split("/", 1)[0]
        status = entry.get("_status")
        if status is None:
            status = RequestStatus.OK if entry["response"]["status"] == 200 else RequestStatus.DNS_ERROR
        record.requests.append(NetworkRequest(
            host=host,
            kind=entry.get("_kind", "other"),
            status=status,
            address=entry.get("serverIPAddress") or None,
            background=bool(entry.get("_background", False)),
        ))
    return record
