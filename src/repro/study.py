"""End-to-end study driver.

``run_study`` executes the paper's whole methodology over a scenario:
run Gamma from each volunteer's machine, fall back to Atlas-style probes
where volunteer traceroutes failed (or were opted out of), geolocate
every responding server through the multi-constraint pipeline, identify
trackers, and expose every figure/table analysis over the joined results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.analysis.continents import ContinentFlowAnalysis
from repro.core.analysis.crosscountry import CrossCountryAnalysis
from repro.core.analysis.firstparty import FirstPartyAnalysis
from repro.core.analysis.flows import FlowAnalysis
from repro.core.analysis.hosting import HostingAnalysis
from repro.core.analysis.infrastructure import InfrastructureAnalysis
from repro.core.analysis.localtrackers import LocalTrackerAnalysis
from repro.core.analysis.organizations import OrganizationAnalysis
from repro.core.analysis.perwebsite import PerWebsiteAnalysis
from repro.core.analysis.policy import PolicyAnalysis
from repro.core.analysis.prevalence import PrevalenceAnalysis
from repro.core.analysis.records import CountryStudyResult, build_country_result
from repro.core.gamma.config import GammaConfig
from repro.core.gamma.output import VolunteerDataset, anonymize
from repro.core.gamma.suite import GammaSuite
from repro.core.gamma.volunteer import Volunteer
from repro.core.geoloc.pipeline import (
    DatasetGeolocation,
    FunnelCounters,
    GeolocationPipeline,
    PipelineConfig,
    SourceTraces,
)
from repro.worldgen.builder import Scenario

__all__ = ["StudyConfig", "StudyOutcome", "run_study", "build_source_traces"]


@dataclass
class StudyConfig:
    """Knobs for a full study run."""

    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    visit_key: str = "visit-1"
    #: Anonymise volunteer IPs after analysis (section 3.5).
    anonymize_ips: bool = True


@dataclass
class StudyOutcome:
    """Everything a study run produced, with analysis accessors."""

    scenario: Scenario
    datasets: Dict[str, VolunteerDataset] = field(default_factory=dict)
    geolocations: Dict[str, DatasetGeolocation] = field(default_factory=dict)
    results: List[CountryStudyResult] = field(default_factory=list)
    #: per country: "volunteer" or "atlas:<country the probe sat in>".
    source_trace_origins: Dict[str, str] = field(default_factory=dict)

    def funnel(self) -> FunnelCounters:
        merged = FunnelCounters()
        for geolocation in self.geolocations.values():
            merged = merged.merged_with(geolocation.funnel)
        return merged

    # -- analysis accessors (one per paper artefact) -------------------------
    def prevalence(self) -> PrevalenceAnalysis:
        return PrevalenceAnalysis(self.results)

    def per_website(self) -> PerWebsiteAnalysis:
        return PerWebsiteAnalysis(self.results)

    def flows(self) -> FlowAnalysis:
        return FlowAnalysis(self.results)

    def continents(self) -> ContinentFlowAnalysis:
        return ContinentFlowAnalysis(self.results, self.scenario.world.geo)

    def organizations(self) -> OrganizationAnalysis:
        return OrganizationAnalysis(self.results, self.scenario.directory, self.scenario.ipinfo)

    def hosting(self) -> HostingAnalysis:
        return HostingAnalysis(self.results)

    def first_party(self) -> FirstPartyAnalysis:
        return FirstPartyAnalysis(self.results, self.scenario.party_classifier)

    def policy(self) -> PolicyAnalysis:
        return PolicyAnalysis(self.results, self.scenario.policy)

    def cross_country(self) -> CrossCountryAnalysis:
        """Same-site behaviour comparison across countries (section 8)."""
        return CrossCountryAnalysis(
            self.datasets, self.scenario.identifier, self.scenario.directory
        )

    def infrastructure(self) -> InfrastructureAnalysis:
        """Cable/geography alignment of the flows (section 7 discussion)."""
        return InfrastructureAnalysis(self.results, self.scenario.world.geo)

    def local_trackers(self) -> LocalTrackerAnalysis:
        """In-country tracker analysis (section 8 future work)."""
        return LocalTrackerAnalysis(
            self.datasets, self.geolocations, self.scenario.identifier,
            self.scenario.directory,
        )

    def summary(self):
        """Headline metrics as one JSON-ready object."""
        from repro.core.analysis.summary import summarize_study

        return summarize_study(self)

    def result_for(self, country_code: str) -> CountryStudyResult:
        for result in self.results:
            if result.country_code == country_code:
                return result
        raise KeyError(f"no result for {country_code}")


def build_source_traces(
    scenario: Scenario, volunteer: Volunteer, dataset: VolunteerDataset
) -> SourceTraces:
    """Source-side traces for the geolocation pipeline.

    Prefers the volunteer's own traceroutes; when the volunteer opted out
    (Egypt) or every probe failed (Australia/India/Qatar/Jordan), launches
    traceroutes from the nearest Atlas-style probe — possibly in a
    neighbouring country, as the paper did for Qatar and Jordan.
    """
    merged: Dict[str, object] = {}
    for measurement in dataset.websites.values():
        for address, trace in measurement.traceroutes.items():
            merged.setdefault(address, trace)
    any_reached = any(getattr(t, "reached", False) for t in merged.values())
    if merged and any_reached:
        return SourceTraces(city=volunteer.city, traces=merged, origin="volunteer")

    probe, used_country = scenario.atlas.mesh.probe_for_country(
        volunteer.country_code, volunteer.city
    )
    if probe is None:
        return SourceTraces(city=volunteer.city, traces={}, origin="none")
    addresses = sorted({
        address
        for measurement in dataset.websites.values()
        for address in measurement.dns.values()
    })
    traces = {
        address: scenario.atlas.traceroute(probe, address, f"src-fallback:{address}")
        for address in addresses
    }
    return SourceTraces(city=probe.city, traces=traces, origin=f"atlas:{used_country}")


def run_study(
    scenario: Scenario,
    countries: Optional[List[str]] = None,
    config: Optional[StudyConfig] = None,
) -> StudyOutcome:
    """Run the full methodology over *countries* (default: all volunteers)."""
    config = config or StudyConfig()
    countries = countries or scenario.countries
    outcome = StudyOutcome(scenario=scenario)
    pipeline = GeolocationPipeline(
        ipmap=scenario.ipmap,
        atlas=scenario.atlas,
        stats=scenario.stats,
        latency=scenario.world.latency,
        config=config.pipeline,
    )

    for cc in countries:
        volunteer = scenario.volunteers[cc]
        targets = scenario.targets[cc].without(sorted(volunteer.opted_out_sites))
        gamma = GammaSuite(
            scenario.world,
            scenario.catalog,
            GammaConfig.study_defaults(os_name=volunteer.os_name),
            browser_config=scenario.browser_config,
            ipinfo=scenario.ipinfo,
        )
        dataset = gamma.run(volunteer, targets, visit_key=config.visit_key)
        source_traces = build_source_traces(scenario, volunteer, dataset)
        outcome.source_trace_origins[cc] = source_traces.origin
        geolocation = pipeline.classify_dataset(dataset, source_traces)
        result = build_country_result(
            dataset, geolocation, scenario.identifier, scenario.directory
        )
        if config.anonymize_ips:
            anonymize(dataset)
        outcome.datasets[cc] = dataset
        outcome.geolocations[cc] = geolocation
        outcome.results.append(result)
    return outcome
