"""End-to-end study driver.

``run_study`` executes the paper's whole methodology over a scenario:
run Gamma from each volunteer's machine, fall back to Atlas-style probes
where volunteer traceroutes failed (or were opted out of), geolocate
every responding server through the multi-constraint pipeline, identify
trackers, and expose every figure/table analysis over the joined results.

Per-country work is independent, so the study fans out across the
backends of :mod:`repro.exec` (``jobs``/``backend`` on
:class:`StudyConfig` or ``run_study``).  Results are merged in input
country order, making the outcome byte-identical for every backend and
worker count — the equivalence the test harness in
``tests/test_exec_equivalence.py`` locks down.

The fan-out is fault tolerant (docs/robustness.md): a per-country
failure policy (``on_error="raise"|"skip"|"retry"`` with deterministic
exponential backoff) lets a failing country be retried or recorded on
:attr:`StudyOutcome.failures` while the rest of the study completes,
and a checkpoint directory (``checkpoint_dir=``/``resume=``) persists
each completed country as it lands so an interrupted study resumes
where it stopped — mirroring, at study level, Gamma's own per-site
resume from section 3.3 of the paper.
"""

from __future__ import annotations

import time
from collections.abc import Mapping as _MappingABC
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.core.analysis.continents import ContinentFlowAnalysis
from repro.core.analysis.crosscountry import CrossCountryAnalysis
from repro.core.analysis.firstparty import FirstPartyAnalysis
from repro.core.analysis.flows import FlowAnalysis
from repro.core.analysis.frames import (
    CountryFrame,
    StudyFrame,
    resolve_analysis_engine,
)
from repro.core.analysis.hosting import HostingAnalysis
from repro.core.analysis.infrastructure import InfrastructureAnalysis
from repro.core.analysis.localtrackers import LocalTrackerAnalysis
from repro.core.analysis.organizations import OrganizationAnalysis
from repro.core.analysis.perwebsite import PerWebsiteAnalysis
from repro.core.analysis.policy import PolicyAnalysis
from repro.core.analysis.prevalence import PrevalenceAnalysis
from repro.core.analysis.records import CountryStudyResult
from repro.core.gamma.output import VolunteerDataset
from repro.core.gamma.volunteer import Volunteer
from repro.core.geoloc.pipeline import (
    DatasetGeolocation,
    FunnelCounters,
    PipelineConfig,
    SourceTraces,
)
from repro.core.geoloc.verdicts import merge_funnels
from repro.exec.cache import cache_registry
from repro.exec.checkpoint import StudyCheckpoint
from repro.exec.executor import create_executor
from repro.exec.metrics import ExecMetrics
from repro.exec.resilience import ON_ERROR_POLICIES, CountryFailure, ResilientWorker
from repro.exec.transport import (
    EncodedCountryRun,
    FrameRun,
    TransportWorker,
    checkpoint_format,
    resolve_transport,
)
from repro.exec.worker import CountryRun, StudyWorker
from repro.obs.journal import SCHEMA_VERSION, RunJournal
from repro.obs.metrics import build_study_snapshot, merge_snapshots, write_snapshot
from repro.obs.progress import ProgressReporter
from repro.worldgen.builder import Scenario

__all__ = ["StudyConfig", "StudyOutcome", "run_study", "build_source_traces"]


@dataclass
class StudyConfig:
    """Knobs for a full study run."""

    #: Geolocation tunables, including the constraint engine
    #: (``pipeline.engine = "columnar"|"scalar"``, byte-identical outputs;
    #: ``gamma study --geoloc-engine``).
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    visit_key: str = "visit-1"
    #: Anonymise volunteer IPs after analysis (section 3.5).
    anonymize_ips: bool = True
    #: Per-country workers: 1 = serial, N > 1 = parallel, 0 = one per CPU.
    jobs: int = 1
    #: Execution backend: "auto", "serial", "thread", or "process".
    backend: str = "auto"
    #: Route traceroutes through the historical render → parse round trip
    #: instead of the byte-identical direct normaliser (CI's oracle mode).
    exercise_parsers: bool = False
    #: Memoise each volunteer's first trace per address across sites.
    memo_traces: bool = True
    #: What a failing country does to the study: "raise" fails fast (the
    #: historical contract), "skip" records it on ``outcome.failures``
    #: and keeps the rest, "retry" re-attempts with deterministic
    #: exponential backoff before skipping (docs/robustness.md).
    on_error: str = "raise"
    #: Retries per country under ``on_error="retry"`` (attempts = 1 + retries).
    max_retries: int = 2
    #: Base of the deterministic exponential backoff schedule, seconds.
    #: ``0`` disables sleeping while keeping the schedule observable.
    retry_base_delay: float = 0.1
    #: How per-country results travel and join: "columnar" ships compact
    #: interned frames across the process-pool boundary and joins/merges
    #: through numpy (:mod:`repro.exec.transport`); "pickle" is the
    #: object-graph oracle.  Byte-identical outcomes either way;
    #: silently resolves to "pickle" when numpy is unavailable
    #: (``gamma study --transport``, docs/performance.md).
    transport: str = "columnar"
    #: Encoded frames at least this large cross the process boundary via
    #: ``multiprocessing.shared_memory`` instead of riding the result
    #: pickle.  ``0`` disables the shared-memory path.
    transport_shm_threshold: int = 1 << 20
    #: Record the labelled metrics registry (:mod:`repro.obs.metrics`)
    #: inside every worker and merge the per-country deltas at the
    #: coordinator.  Purely a measurement side channel: summaries,
    #: exports, and stripped journals are byte-identical either way.
    collect_metrics: bool = True
    #: Profile per-country resource usage (CPU seconds per phase, GC
    #: collections, peak RSS) into ``CountryRun.resources`` and the
    #: study snapshot (``gamma study --profile``).
    profile: bool = False
    #: Additionally track allocations with :mod:`tracemalloc` (slower;
    #: ``gamma study --profile-mem``).  Implies ``profile``.
    profile_mem: bool = False
    #: How the outcome's analysis accessors run: "columnar" assembles a
    #: :class:`repro.core.analysis.frames.StudyFrame` from the decoded
    #: transport frames and answers through vectorised reductions;
    #: "objects" walks the legacy per-record graph.  Byte-identical
    #: outputs either way; silently resolves to "objects" when numpy is
    #: unavailable (``gamma study --analysis-engine``,
    #: docs/performance.md).  The active engine is recorded in
    #: ``outcome.metrics`` and the run snapshot.
    analysis_engine: str = "columnar"


class _RunCell:
    """One country's run, materialised at most once.

    Holds either a full :class:`CountryRun` or a light-decoded
    :class:`FrameRun` (process backend, columnar transport + analysis).
    For a ``FrameRun`` the retained payload only goes through the full
    object-graph decoder on first access to the legacy objects
    (``datasets``/``geolocations``/``results``); the columnar analysis
    path reads :meth:`frame` and never pays for it — that is what keeps
    coordinator memory sublinear in the site count.
    """

    __slots__ = ("_item", "_run")

    def __init__(self, item):
        self._item = item
        self._run = item if isinstance(item, CountryRun) else None

    def get(self) -> CountryRun:
        if self._run is None:
            self._run = self._item.load()
        return self._run

    def frame(self) -> CountryFrame:
        """This country's columnar frame, building one if needed.

        Preference order: the transport's light-decoded frame, the frame
        the columnar join attached to the result, and finally a direct
        object-graph walk (resumed checkpoints and pickle-transport
        results whose frame did not survive pickling).
        """
        if isinstance(self._item, FrameRun):
            return self._item.frame
        run = self.get()
        frame = getattr(run.result, "_frame", None)
        if frame is not None:
            return frame
        return CountryFrame.from_result(run.result, dataset=run.dataset)


class _LazyRunMap(_MappingABC):
    """Read-only country-ordered view of one :class:`CountryRun` field.

    Key iteration and ``len`` never decode; item access materialises
    just that country's run (cached in its cell).
    """

    __slots__ = ("_cells", "_attr")

    def __init__(self, cells: Dict[str, _RunCell], attr: str):
        self._cells = cells
        self._attr = attr

    def __getitem__(self, country_code: str):
        return getattr(self._cells[country_code].get(), self._attr)

    def __iter__(self):
        return iter(self._cells)

    def __len__(self) -> int:
        return len(self._cells)


class _LazyResults(_SequenceABC):
    """Country-ordered result sequence, materialising on access."""

    __slots__ = ("_cells",)

    def __init__(self, cells: List[_RunCell]):
        self._cells = cells

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [cell.get().result for cell in self._cells[index]]
        return self._cells[index].get().result

    def __len__(self) -> int:
        return len(self._cells)


@dataclass
class StudyOutcome:
    """Everything a study run produced, with analysis accessors."""

    scenario: Scenario
    datasets: Dict[str, VolunteerDataset] = field(default_factory=dict)
    geolocations: Dict[str, DatasetGeolocation] = field(default_factory=dict)
    results: List[CountryStudyResult] = field(default_factory=list)
    #: per country: "volunteer" or "atlas:<country the probe sat in>".
    source_trace_origins: Dict[str, str] = field(default_factory=dict)
    #: Execution-layer accounting (backend, jobs, per-phase wall time).
    #: Deliberately excluded from summaries/exports: timings vary run to
    #: run while every study artefact above stays bit-identical.
    metrics: ExecMetrics = field(default_factory=ExecMetrics)
    #: The structured run journal (``run_study(..., trace=...)``), or
    #: None when tracing was off.  Like ``metrics``, a measurement
    #: artefact: never part of summaries or exported bundles.
    journal: Optional[RunJournal] = None
    #: Countries that stayed down under ``on_error="skip"``/``"retry"``,
    #: in input country order: who failed, after how many attempts, with
    #: the worker-side traceback.  Every analysis accessor degrades
    #: gracefully to the surviving countries in ``results``.
    failures: List[CountryFailure] = field(default_factory=list)
    #: The persistent run snapshot (``metrics.json`` shape, see
    #: docs/data-formats.md): merged per-country metric deltas plus the
    #: exec accounting and any resource profiles.  None when
    #: ``StudyConfig.collect_metrics`` is off.  A measurement artefact
    #: like ``metrics``/``journal`` — never part of summaries or exports.
    metrics_snapshot: Optional[dict] = None
    #: The study-wide columnar frame (``analysis_engine="columnar"``):
    #: every per-country (site, tracker) relation concatenated over one
    #: interned string pool.  None under the objects engine (and without
    #: numpy), in which case every accessor walks the object graph —
    #: byte-identical answers either way.
    frame: Optional[StudyFrame] = None
    #: Per-country geolocation funnels in merge (input-country) order,
    #: letting :meth:`funnel` aggregate without materialising
    #: ``geolocations`` from light-decoded frames.  None for hand-built
    #: outcomes, which fall back to the geolocations walk.
    _funnels: Optional[List[FunnelCounters]] = field(default=None, repr=False)

    def failed_countries(self) -> List[str]:
        return [failure.country_code for failure in self.failures]

    def funnel(self) -> FunnelCounters:
        if self._funnels is not None:
            return merge_funnels(self._funnels)
        return merge_funnels(
            geolocation.funnel for geolocation in self.geolocations.values()
        )

    # -- analysis accessors (one per paper artefact) -------------------------
    def prevalence(self) -> PrevalenceAnalysis:
        return PrevalenceAnalysis(self.results, frame=self.frame)

    def per_website(self) -> PerWebsiteAnalysis:
        return PerWebsiteAnalysis(self.results, frame=self.frame)

    def flows(self) -> FlowAnalysis:
        return FlowAnalysis(self.results, frame=self.frame)

    def continents(self) -> ContinentFlowAnalysis:
        return ContinentFlowAnalysis(
            self.results, self.scenario.world.geo, frame=self.frame
        )

    def organizations(self) -> OrganizationAnalysis:
        return OrganizationAnalysis(
            self.results, self.scenario.directory, self.scenario.ipinfo,
            frame=self.frame,
        )

    def hosting(self) -> HostingAnalysis:
        return HostingAnalysis(self.results, frame=self.frame)

    def first_party(self) -> FirstPartyAnalysis:
        return FirstPartyAnalysis(
            self.results, self.scenario.party_classifier, frame=self.frame
        )

    def policy(self) -> PolicyAnalysis:
        return PolicyAnalysis(self.results, self.scenario.policy, frame=self.frame)

    def cross_country(self) -> CrossCountryAnalysis:
        """Same-site behaviour comparison across countries (section 8)."""
        return CrossCountryAnalysis(
            self.datasets, self.scenario.identifier, self.scenario.directory,
            frame=self.frame,
        )

    def infrastructure(self) -> InfrastructureAnalysis:
        """Cable/geography alignment of the flows (section 7 discussion)."""
        return InfrastructureAnalysis(self.results, self.scenario.world.geo)

    def local_trackers(self) -> LocalTrackerAnalysis:
        """In-country tracker analysis (section 8 future work)."""
        return LocalTrackerAnalysis(
            self.datasets, self.geolocations, self.scenario.identifier,
            self.scenario.directory,
        )

    def tracker_confidence(self):
        """Confidence-weighted flow view: ``{country: (rows, mean)}``.

        Per country, how many non-local tracker rows carry a verdict
        confidence and their mean score — the frame answers from its
        ``trk_confidence`` column without touching the object graph; the
        objects path joins tracker rows to verdicts by address.  None
        when the study ran without ``PipelineConfig.confidence``.
        """
        if self.frame is not None:
            return self.frame.confidence_by_country()
        weighted = {}
        any_scored = False
        for result in self.results:
            geolocation = self.geolocations.get(result.country_code)
            verdicts = geolocation.verdicts if geolocation is not None else {}
            total = 0.0
            count = 0
            for site in result.sites:
                for tracker in site.trackers:
                    verdict = verdicts.get(tracker.address)
                    if verdict is None or verdict.confidence is None:
                        continue
                    total += verdict.confidence
                    count += 1
            if count:
                any_scored = True
            weighted[result.country_code] = (
                count, total / count if count else None
            )
        return weighted if any_scored else None

    def summary(self):
        """Headline metrics as one JSON-ready object."""
        from repro.core.analysis.summary import summarize_study

        return summarize_study(self)

    def result_for(self, country_code: str) -> CountryStudyResult:
        for result in self.results:
            if result.country_code == country_code:
                return result
        for failure in self.failures:
            if failure.country_code == country_code:
                raise KeyError(
                    f"no result for {country_code}: country failed after "
                    f"{failure.attempts} attempt(s) ({failure.error_type})"
                )
        raise KeyError(f"no result for {country_code}")


def build_source_traces(
    scenario: Scenario, volunteer: Volunteer, dataset: VolunteerDataset
) -> SourceTraces:
    """Source-side traces for the geolocation pipeline.

    Prefers the volunteer's own traceroutes; when the volunteer opted out
    (Egypt) or every probe failed (Australia/India/Qatar/Jordan), launches
    traceroutes from the nearest Atlas-style probe — possibly in a
    neighbouring country, as the paper did for Qatar and Jordan.
    """
    merged: Dict[str, object] = {}
    for measurement in dataset.websites.values():
        for address, trace in measurement.traceroutes.items():
            merged.setdefault(address, trace)
    any_reached = any(getattr(t, "reached", False) for t in merged.values())
    if merged and any_reached:
        return SourceTraces(city=volunteer.city, traces=merged, origin="volunteer")

    probe, used_country = scenario.atlas.mesh.probe_for_country(
        volunteer.country_code, volunteer.city
    )
    if probe is None:
        return SourceTraces(city=volunteer.city, traces={}, origin="none")
    addresses = sorted({
        address
        for measurement in dataset.websites.values()
        for address in measurement.dns.values()
    })
    traces = {
        address: scenario.atlas.traceroute(probe, address, f"src-fallback:{address}")
        for address in addresses
    }
    return SourceTraces(city=probe.city, traces=traces, origin=f"atlas:{used_country}")


def _merge_accounting(
    outcome: StudyOutcome, run, funnels: List[FunnelCounters]
) -> None:
    """Fold one completed country's side channels into the outcome.

    *run* is either a fully materialised :class:`CountryRun` or a
    light-decoded :class:`FrameRun` — both carry the same accounting
    attributes (input-order caller; the artefact containers themselves
    are installed as lazy views over the run cells afterwards).
    """
    outcome.source_trace_origins[run.country_code] = run.source_trace_origin
    outcome.metrics.record_country(run.timings)
    if run.geoloc_engine:
        outcome.metrics.geoloc_engine = run.geoloc_engine
    funnels.append(
        run.funnel if isinstance(run, FrameRun) else run.geolocation.funnel
    )


def run_study(
    scenario: Scenario,
    countries: Optional[List[str]] = None,
    config: Optional[StudyConfig] = None,
    jobs: Optional[int] = None,
    backend: Optional[str] = None,
    trace: Union[None, bool, str, Path] = None,
    trace_timings: bool = True,
    on_error: Optional[str] = None,
    max_retries: Optional[int] = None,
    checkpoint_dir: Union[None, str, Path] = None,
    resume: bool = False,
    transport: Optional[str] = None,
    analysis_engine: Optional[str] = None,
    fault_injector=None,
    progress: Union[bool, ProgressReporter] = False,
    profile: Optional[bool] = None,
    profile_mem: Optional[bool] = None,
    collect_metrics: Optional[bool] = None,
    metrics_out: Union[None, str, Path] = None,
) -> StudyOutcome:
    """Run the full methodology over *countries* (default: all volunteers).

    *jobs*/*backend* override the corresponding :class:`StudyConfig`
    fields; ``jobs=1`` (the default) reproduces the historical serial
    run exactly, and any other setting produces the identical outcome
    in parallel (results are merged in input country order, so neither
    worker count nor completion order is observable in the artefacts).

    *trace* enables the structured run journal: pass a path to write it
    as JSONL, or ``True`` to only attach it as ``outcome.journal``.
    Per-country buffers recorded inside workers are merged in input
    country order, so — after :func:`repro.obs.strip_timings` (or with
    ``trace_timings=False``) — the journal bytes are identical for
    every backend and worker count.  The default (``trace=None``) skips
    all event collection; study artefacts never include the journal.

    *on_error*/*max_retries* override the :class:`StudyConfig` failure
    policy.  Under ``"skip"``/``"retry"`` a country that stays down is
    recorded on :attr:`StudyOutcome.failures` while every other country
    completes; retry backoff is deterministic (seeded per country and
    attempt), so a transient fault under ``"retry"`` leaves the outcome
    byte-identical to a fault-free run.

    *checkpoint_dir* persists each completed country the moment it
    lands (atomic write, one file per country); with *resume* the
    persisted countries are loaded instead of re-measured and merge
    byte-identically with the fresh ones.  *fault_injector* is the
    deterministic test hook (:class:`repro.exec.FaultInjector`).

    *transport* overrides :attr:`StudyConfig.transport` ("columnar" or
    "pickle"): how results cross the process-pool boundary, which join
    engine runs, and which checkpoint format is written — with every
    study artefact byte-identical across the choice.

    *analysis_engine* overrides :attr:`StudyConfig.analysis_engine`
    ("columnar" or "objects"): whether the outcome assembles a
    study-wide :class:`~repro.core.analysis.frames.StudyFrame` and
    answers the analyses through vectorised reductions, or walks the
    legacy object graph.  Byte-identical artefacts across the choice —
    and orthogonal to *transport*, though the columnar pair is where
    the coordinator stays columnar end to end (process-pool frames are
    only light-decoded, never expanded into objects unless an
    object-graph consumer like ``datasets[cc]`` asks).

    *progress* streams one status line per completed country to stderr
    (pass a preconfigured :class:`repro.obs.ProgressReporter` to control
    the stream/clock); with tracing enabled the same completions land as
    diagnostic ``progress`` journal events.  *profile*/*profile_mem*
    and *collect_metrics* override the matching :class:`StudyConfig`
    fields.  *metrics_out* writes the run snapshot to a path
    (``.prom`` suffix → Prometheus text exposition, otherwise JSON);
    with a *checkpoint_dir* the snapshot is also written there as
    ``metrics.json``.  None of these change any study artefact.
    """
    config = config or StudyConfig()
    overrides = {}
    if profile is not None:
        overrides["profile"] = profile
    if profile_mem is not None:
        overrides["profile_mem"] = profile_mem
        if profile_mem:
            overrides.setdefault("profile", True)
    if collect_metrics is not None:
        overrides["collect_metrics"] = collect_metrics
    if overrides:
        config = replace(config, **overrides)
    active_transport = resolve_transport(
        config.transport if transport is None else transport
    )
    if active_transport != getattr(config, "transport", None):
        config = replace(config, transport=active_transport)
    active_analysis = resolve_analysis_engine(
        getattr(config, "analysis_engine", "columnar")
        if analysis_engine is None
        else analysis_engine
    )
    if active_analysis != getattr(config, "analysis_engine", None):
        config = replace(config, analysis_engine=active_analysis)
    countries = countries or scenario.countries
    effective_jobs = config.jobs if jobs is None else jobs
    effective_backend = config.backend if backend is None else backend
    policy = config.on_error if on_error is None else on_error
    if policy not in ON_ERROR_POLICIES:
        raise ValueError(
            f"unknown on_error policy {policy!r}; expected one of {ON_ERROR_POLICIES}"
        )
    retries = config.max_retries if max_retries is None else max_retries
    executor = create_executor(backend=effective_backend, jobs=effective_jobs)

    checkpoint = (
        None
        if checkpoint_dir is None
        else StudyCheckpoint(checkpoint_dir, fmt=checkpoint_format(active_transport))
    )
    if resume and checkpoint is None:
        raise ValueError("resume=True requires checkpoint_dir")

    tracing = trace is not None and trace is not False
    worker = StudyWorker(
        scenario, config, trace=tracing, fault_injector=fault_injector
    )
    call = ResilientWorker(
        worker,
        on_error=policy,
        max_retries=retries,
        base_delay=config.retry_base_delay,
        checkpoint=checkpoint,
        trace=tracing,
    )
    if active_transport == "columnar" and executor.name == "process":
        # Ship each country back as one compact columnar frame instead
        # of the deep object-graph pickle (docs/performance.md); the
        # coordinator decodes below, recording per-country bytes.
        call = TransportWorker(
            call, shm_threshold=config.transport_shm_threshold
        )

    resumed: Dict[str, CountryRun] = {}
    if resume:
        for country_code in countries:
            run = checkpoint.load(country_code)
            if run is not None:
                resumed[country_code] = run
    pending = [cc for cc in countries if cc not in resumed]

    reporter: Optional[ProgressReporter] = None
    if progress:
        reporter = (
            progress
            if isinstance(progress, ProgressReporter)
            else ProgressReporter(len(countries), record_events=tracing)
        )
        reporter.start()
        for country_code in countries:
            if country_code in resumed:
                run = resumed[country_code]
                reporter.country_done(
                    country_code, sites=len(run.dataset.websites), resumed=True
                )
    on_result = None
    if reporter is not None:
        def on_result(country_code: str, item: object) -> None:
            # Fires in completion order — observation only, the merge
            # below still walks input country order.
            sites, phase_seconds = 0, None
            if isinstance(item, EncodedCountryRun):
                sites = item.sites  # carried outside the single-use payload
            elif isinstance(item, CountryRun):
                sites = len(item.dataset.websites)
                phase_seconds = item.timings.phase_seconds
            reporter.country_done(
                country_code, sites=sites, phase_seconds=phase_seconds,
                failed=isinstance(item, CountryFailure),
            )

    started = time.perf_counter()
    produced = (
        executor.map_countries(call, pending, on_result=on_result)
        if pending else []
    )
    by_country = dict(zip(pending, produced))
    # Decode pre-pass: materialise frames shipped back by process-pool
    # workers (inside the fan-out wall time — decoding is part of
    # getting results across the boundary).  Under the columnar analysis
    # engine the decode is *light*: only the per-country CountryFrame
    # and accounting sections are read, and the payload is retained so
    # the object graph can still be replayed on demand.
    frame_stats = []
    for country_code, item in by_country.items():
        if isinstance(item, EncodedCountryRun):
            decode_started = time.perf_counter()
            by_country[country_code] = (
                item.load_frame() if active_analysis == "columnar" else item.load()
            )
            decode_seconds = time.perf_counter() - decode_started
            frame_stats.append(
                (country_code, item.nbytes, item.encode_seconds, decode_seconds)
            )
    wall_seconds = time.perf_counter() - started
    if reporter is not None:
        reporter.finish()

    outcome = StudyOutcome(
        scenario=scenario,
        metrics=ExecMetrics(
            backend=executor.name, jobs=executor.jobs, wall_seconds=wall_seconds,
            transport=active_transport, analysis_engine=active_analysis,
        ),
    )
    for country_code, nbytes, encode_seconds, decode_seconds in frame_stats:
        outcome.metrics.record_transport(
            country_code, nbytes, encode_seconds, decode_seconds
        )
    cells: Dict[str, _RunCell] = {}  # insertion = input country order
    funnels: List[FunnelCounters] = []
    fresh_runs: List = []  # CountryRun | FrameRun, input country order
    buffers: List[List[dict]] = []  # input country order: deterministic merge
    for country_code in countries:
        if country_code in resumed:
            run = resumed[country_code]
            cells[country_code] = _RunCell(run)
            _merge_accounting(outcome, run, funnels)
            events = list(run.events or [])
            if tracing:
                events.append({
                    "ev": "country_resumed",
                    "span": f"study/{country_code}",
                    "country": country_code,
                })
            buffers.append(events)
            continue
        item = by_country[country_code]
        if isinstance(item, CountryFailure):
            outcome.failures.append(item)
            buffers.append(list(item.events or []))
            continue
        fresh_runs.append(item)
        cells[country_code] = _RunCell(item)
        _merge_accounting(outcome, item, funnels)
        buffers.append(item.events or [])
    # The artefact containers are country-ordered views over the cells:
    # plain dict/list semantics for every reader, while a cell whose run
    # only exists as a light-decoded frame stays un-expanded until an
    # object-graph consumer actually indexes into it.
    outcome.datasets = _LazyRunMap(cells, "dataset")
    outcome.geolocations = _LazyRunMap(cells, "geolocation")
    outcome.results = _LazyResults(list(cells.values()))
    outcome._funnels = funnels
    if active_analysis == "columnar" and cells:
        outcome.frame = StudyFrame.assemble(
            [cell.frame() for cell in cells.values()]
        )
    # Memo-cache counters (verdicts, distance, ...): the coordinator's
    # registry sees serial/thread lookups directly; process-pool workers
    # count in their own interpreters, so their per-country deltas are
    # shipped back with each CountryRun and merged on top.
    outcome.metrics.record_caches(cache_registry())
    if executor.name == "process":
        outcome.metrics.merge_worker_caches(run.cache_deltas for run in fresh_runs)

    if getattr(config, "collect_metrics", True):
        # Merge the per-country registry deltas in input country order —
        # fixed order is what keeps float sums (histogram totals) exact
        # across backends and worker counts.
        deltas = []
        resources_by_country: Dict[str, dict] = {}
        for country_code in countries:
            run = resumed.get(country_code)
            if run is None:
                item = by_country.get(country_code)
                run = (
                    item
                    if isinstance(item, (CountryRun, FrameRun))
                    else None
                )
            if run is None:
                continue
            if run.metrics_delta is not None:
                deltas.append(run.metrics_delta)
            if run.resources is not None:
                resources_by_country[country_code] = run.resources
        meta = {
            "countries": list(countries),
            "backend": executor.name,
            "jobs": executor.jobs,
            "transport": active_transport,
            "analysis_engine": active_analysis,
        }
        if resumed:
            meta["resumed"] = [cc for cc in countries if cc in resumed]
        if outcome.failures:
            meta["failed"] = outcome.failed_countries()
        outcome.metrics_snapshot = build_study_snapshot(
            meta,
            outcome.metrics.to_dict(),
            merge_snapshots(deltas + [outcome.metrics.registry_snapshot()]),
            resources_by_country or None,
        )
        if checkpoint is not None:
            write_snapshot(
                Path(checkpoint_dir) / "metrics.json", outcome.metrics_snapshot
            )
        if metrics_out is not None:
            write_snapshot(metrics_out, outcome.metrics_snapshot)

    if tracing:
        run_record = {
            "ev": "run",
            "schema": SCHEMA_VERSION,
            "countries": list(countries),
            "backend": executor.name,
            "jobs": executor.jobs,
            "wall_seconds": round(wall_seconds, 6),
        }
        # Environment fields (stripped with the timings): how this
        # particular execution unfolded, not what the study measured.
        if resumed:
            run_record["resumed"] = [cc for cc in countries if cc in resumed]
        if outcome.failures:
            run_record["failed"] = outcome.failed_countries()
        study_span = {
            "ev": "span",
            "kind": "study",
            "name": "study",
            "span": "study",
            "parent": "",
            "t": 0.0,
            "dur": round(wall_seconds, 6),
        }
        if reporter is not None:
            # Diagnostic tail before the study span; stripped with the
            # timings, so journal byte-equality is progress-independent.
            buffers.append(reporter.events())
        outcome.journal = RunJournal.assemble(
            run_record,
            buffers,
            [study_span],
        )
        if not isinstance(trace, bool):
            outcome.journal.write(trace, timings=trace_timings)
    return outcome
