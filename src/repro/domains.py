"""Domain-name utilities: a compact public-suffix list and eTLD+1 logic.

The paper counts trackers at two granularities: registrable domains
(eTLD+1, e.g. ``doubleclick.net``) and full hostnames.  Correct eTLD+1
extraction requires public-suffix knowledge — ``example.co.uk`` must
reduce to ``example.co.uk``, not ``co.uk``.  We embed the subset of the
public suffix list covering every TLD used by the world model, including
the government suffixes the target-selection stage filters on.
"""

from __future__ import annotations

from typing import Optional, Tuple

__all__ = [
    "PUBLIC_SUFFIXES",
    "public_suffix",
    "registrable_domain",
    "is_subdomain",
    "split_host",
    "validate_hostname",
]

#: Multi-label suffixes first-class; every bare TLD also counts.
PUBLIC_SUFFIXES = frozenset({
    # Generic TLDs.
    "com", "net", "org", "io", "co", "info", "biz", "tv", "me", "ai",
    "cloud", "app", "dev", "online", "site", "xyz", "live", "news", "im",
    # Country TLDs appearing in the world model.
    "az", "dz", "eg", "rw", "ug", "ar", "ru", "lk", "th", "ae", "uk", "au",
    "ca", "in", "jp", "jo", "nz", "pk", "qa", "sa", "tw", "us", "lb", "fr",
    "de", "ke", "my", "sg", "hk", "om", "nl", "ie", "it", "ch", "be", "bg",
    "fi", "br", "il", "tr", "gh", "es", "se", "pl", "za", "kr", "mx", "cl",
    "gov",
    # Second-level public suffixes.
    "co.uk", "gov.uk", "ac.uk", "org.uk", "net.uk",
    "com.au", "gov.au", "net.au", "org.au", "edu.au",
    "gob.ar", "gov.ar", "com.ar", "org.ar",
    "co.th", "go.th", "or.th", "in.th", "ac.th",
    "com.eg", "gov.eg", "edu.eg", "org.eg",
    "com.pk", "gov.pk", "edu.pk", "org.pk",
    "gov.lk", "com.lk", "org.lk",
    "gov.in", "nic.in", "co.in", "org.in", "net.in", "ac.in",
    "com.qa", "gov.qa", "edu.qa", "org.qa",
    "com.sa", "gov.sa", "edu.sa", "org.sa",
    "gov.ae", "co.ae", "org.ae", "ac.ae",
    "co.nz", "govt.nz", "net.nz", "org.nz", "ac.nz",
    "go.jp", "co.jp", "ne.jp", "or.jp", "ac.jp",
    "gov.az", "com.az", "org.az", "edu.az",
    "gov.tr", "com.tr", "org.tr", "edu.tr",
    "go.ke", "co.ke", "or.ke", "ac.ke",
    "go.ug", "co.ug", "ac.ug", "or.ug",
    "gov.rw", "co.rw", "org.rw", "ac.rw",
    "gov.dz", "com.dz", "org.dz", "edu.dz",
    "gov.jo", "com.jo", "org.jo", "edu.jo",
    "gov.lb", "com.lb", "org.lb", "edu.lb",
    "gov.om", "com.om", "org.om", "edu.om",
    "com.my", "gov.my", "org.my", "edu.my",
    "gov.sg", "com.sg", "org.sg", "edu.sg",
    "com.hk", "gov.hk", "org.hk", "edu.hk",
    "gov.il", "co.il", "org.il", "ac.il",
    "gov.tw", "com.tw", "org.tw", "edu.tw",
    "gov.bg", "com.bg", "org.bg",
    "gov.br", "com.br", "org.br", "net.br",
    "gov.my", "gov.gh", "com.gh", "org.gh",
    "gov.za", "co.za", "org.za", "ac.za",
    "go.kr", "co.kr", "or.kr", "ac.kr",
    "gob.mx", "com.mx", "org.mx",
    "gob.cl", "com.cl", "gov.cl",
    "gouv.fr", "asso.fr",
    "gov.ru", "com.ru", "org.ru",
    "gov.pl", "com.pl", "org.pl",
    "gov.it", "edu.it",
    "gov.ie",
    "gov.fi",
    "gov.se",
    "gov.es",
    "gov.nl",
    "gov.ch",
    "gov.be",
    "gc.ca", "co.ca",
})

_MAX_SUFFIX_LABELS = max(s.count(".") + 1 for s in PUBLIC_SUFFIXES)


def validate_hostname(host: str) -> str:
    """Normalise and sanity-check a hostname; returns the lowercase form."""
    if not host:
        raise ValueError("empty hostname")
    normalised = host.strip().strip(".").lower()
    if not normalised:
        raise ValueError(f"hostname {host!r} contains no labels")
    for label in normalised.split("."):
        if not label or len(label) > 63:
            raise ValueError(f"hostname {host!r} has an invalid label")
    return normalised


def public_suffix(host: str) -> str:
    """Longest known public suffix of *host* (falls back to the final label)."""
    labels = validate_hostname(host).split(".")
    for take in range(min(_MAX_SUFFIX_LABELS, len(labels)), 0, -1):
        candidate = ".".join(labels[-take:])
        if candidate in PUBLIC_SUFFIXES:
            return candidate
    return labels[-1]


def registrable_domain(host: str) -> Optional[str]:
    """eTLD+1 of *host*; ``None`` when the host *is* a public suffix."""
    normalised = validate_hostname(host)
    suffix = public_suffix(normalised)
    if normalised == suffix:
        return None
    suffix_labels = suffix.count(".") + 1
    labels = normalised.split(".")
    return ".".join(labels[-(suffix_labels + 1):])


def split_host(host: str) -> Tuple[str, str]:
    """Split into ``(subdomain_part, registrable_domain)``.

    The subdomain part is ``""`` when the host equals its eTLD+1.
    """
    normalised = validate_hostname(host)
    base = registrable_domain(normalised)
    if base is None:
        return "", normalised
    if normalised == base:
        return "", base
    return normalised[: -(len(base) + 1)], base


def is_subdomain(host: str, domain: str) -> bool:
    """True if *host* equals *domain* or sits beneath it."""
    h = validate_hostname(host)
    d = validate_hostname(domain)
    return h == d or h.endswith("." + d)
