"""Organisation specification format for world generation.

An :class:`OrgSpec` is the declarative description of one organisation:
who they are, which tracking/content domains they own (with the concrete
hostnames pages embed), where their PoPs sit, how their GeoDNS routes
clients, how their reverse DNS looks, and which filter lists know about
them.  The builder turns specs into live deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

__all__ = ["OrgKind", "ListMembership", "OrgSpec"]


class OrgKind:
    MAJOR = "major"  # global tracking networks (Google, Meta...)
    LONGTAIL = "longtail"  # smaller ad/analytics providers
    LOCAL = "local"  # in-country trackers (Yandex-Metrica-like)
    CONTENT = "content"  # non-tracking third parties (CDNs, font hosts)
    PUBLISHER = "publisher"  # website owners
    HOSTING = "hosting"  # web hosting for publisher sites
    CLOUD = "cloud"  # infrastructure providers (AWS-like)


class ListMembership:
    """Which identification channel knows a tracker (section 4.2)."""

    EASYLIST = "easylist"
    EASYPRIVACY = "easyprivacy"
    REGIONAL = "regional"  # regional filter list of the org's home region
    MANUAL = "manual"  # only found via manual inspection / WhoTracksMe
    NONE = "none"  # not a tracker, in no list


@dataclass(frozen=True)
class OrgSpec:
    """Declarative description of one organisation."""

    name: str
    home: str  # ISO country code of headquarters
    kind: str
    #: Registrable domains the org owns.
    domains: Tuple[str, ...]
    #: Concrete hostnames pages embed (each under one of *domains*).
    hosts: Tuple[str, ...] = ()
    #: PoP countries.  The builder places each PoP in the country's
    #: datacenter city and allocates it a /24.
    pops: Tuple[str, ...] = ()
    #: pop country -> client countries it exclusively serves.
    restricted: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    #: pop country -> GeoDNS preference weight (>1 = preferred).
    preferences: Dict[str, float] = field(default_factory=dict)
    #: client country -> pop country pin.
    pinned: Dict[str, str] = field(default_factory=dict)
    #: PoPs hosted on another org's (cloud) address space: pop cc -> cloud org.
    cloud_pops: Dict[str, str] = field(default_factory=dict)
    is_tracker: bool = False
    category: str = ""  # "advertising", "analytics", ...
    list_membership: str = ListMembership.NONE
    #: Reverse-DNS convention (apex domain, PTR coverage, city hints).
    rdns_apex: str = ""
    rdns_coverage: float = 0.85
    rdns_hinted: bool = True

    def __post_init__(self) -> None:
        if not self.domains:
            raise ValueError(f"org {self.name} owns no domains")
        if not self.pops and self.kind != OrgKind.CLOUD:
            raise ValueError(f"org {self.name} has no PoPs")
        for pop in self.restricted:
            if pop not in self.pops:
                raise ValueError(f"org {self.name}: restriction on unknown PoP {pop}")
        for pop in self.cloud_pops:
            if pop not in self.pops:
                raise ValueError(f"org {self.name}: cloud mapping for unknown PoP {pop}")
        for host in self.hosts:
            if not any(host == d or host.endswith("." + d) for d in self.domains):
                raise ValueError(f"org {self.name}: host {host} not under any owned domain")

    @property
    def effective_hosts(self) -> Tuple[str, ...]:
        """Hostnames used in embeddings (falls back to bare domains)."""
        return self.hosts if self.hosts else self.domains
