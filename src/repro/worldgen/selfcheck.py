"""Scenario self-check: validate a built world before running a study.

A corrupted or hand-modified scenario fails loudly here instead of
producing silently-wrong measurements.  The CLI exposes this as
``gamma selfcheck``; the test suite asserts the default scenario passes
cleanly and that seeded corruptions are caught.
"""

from __future__ import annotations

from typing import List

from repro.netsim.dns import NXDomain

__all__ = ["check_scenario"]


def check_scenario(scenario) -> List[str]:
    """Return a list of problems (empty list = healthy scenario)."""
    problems: List[str] = []
    problems.extend(_check_targets(scenario))
    problems.extend(_check_dns(scenario))
    problems.extend(_check_address_space(scenario))
    problems.extend(_check_volunteers(scenario))
    problems.extend(_check_identification(scenario))
    return problems


def _check_targets(scenario) -> List[str]:
    problems = []
    for cc, targets in scenario.targets.items():
        if len(targets.regional) != 50:
            problems.append(f"targets[{cc}]: {len(targets.regional)} regional sites (want 50)")
        if not targets.government:
            problems.append(f"targets[{cc}]: empty government list")
        for url in targets.all_sites:
            if not scenario.catalog.has(url):
                problems.append(f"targets[{cc}]: {url} missing from catalogue")
                continue
            site = scenario.catalog.get(url)
            if site.adult or site.banned:
                problems.append(f"targets[{cc}]: {url} is adult/banned yet selected")
    return problems


def _check_dns(scenario) -> List[str]:
    problems = []
    for cc, targets in scenario.targets.items():
        city = scenario.volunteers[cc].city
        for url in targets.all_sites:
            try:
                scenario.world.dns.resolve(url, city)
            except NXDomain:
                problems.append(f"dns[{cc}]: target {url} does not resolve")
            except LookupError:
                problems.append(f"dns[{cc}]: target {url} refuses its own country")
    return problems


def _check_address_space(scenario) -> List[str]:
    problems = []
    for allocation in scenario.world.ips:
        if not scenario.world.asns.has(allocation.asn):
            problems.append(f"ipspace: {allocation.network} has unknown ASN {allocation.asn}")
        if not allocation.label:
            problems.append(f"ipspace: {allocation.network} has no ownership label")
    return problems


def _check_volunteers(scenario) -> List[str]:
    problems = []
    for cc, volunteer in scenario.volunteers.items():
        if volunteer.country_code != cc:
            problems.append(f"volunteer[{cc}]: lives in {volunteer.country_code}")
        if scenario.world.ips.lookup(volunteer.ip) is None:
            problems.append(f"volunteer[{cc}]: IP {volunteer.ip} not in served space")
        for url in volunteer.opted_out_sites:
            if url not in scenario.targets[cc].all_sites:
                problems.append(f"volunteer[{cc}]: opt-out {url} not in their targets")
    return problems


def _check_identification(scenario) -> List[str]:
    problems = []
    for spec in scenario.org_specs.values():
        if not spec.is_tracker:
            continue
        flagged = any(
            scenario.identifier.classify(host, spec.home).is_tracker
            for host in spec.effective_hosts
        )
        if not flagged:
            problems.append(
                f"identification: tracker org {spec.name} invisible to lists and directory"
            )
    return problems
