"""World/scenario construction.

``build_scenario()`` assembles the full study environment: the synthetic
Internet (ASes, PoPs, GeoDNS, reverse DNS), the web (sites + embeddings),
the measurement services (probe mesh, geolocation databases, latency
statistics), target-list machinery (ranking providers, Tranco-like list),
tracker identification (filter lists + directory), the policy registry,
and one volunteer per measurement country.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.atlas.measurements import AtlasMeasurementService
from repro.atlas.probes import ProbeMesh
from repro.browser.engine import BrowserConfig
from repro.core.gamma.volunteer import Volunteer
from repro.core.geoloc.latency_stats import StatsChain, default_stats_chain
from repro.core.targets.builder import TargetList, TargetListBuilder
from repro.core.targets.government import TrancoLikeList
from repro.core.targets.rankings import CatalogRankingProvider
from repro.core.trackers.identify import TrackerIdentifier
from repro.core.trackers.orgs import OrganizationDirectory
from repro.core.trackers.party import PartyClassifier
from repro.determinism import stable_rng
from repro.geodb.errors import GeoErrorModel
from repro.geodb.ipinfo import IPInfoService
from repro.geodb.ipmap import IPMapService
from repro.netsim.geography import MEASUREMENT_COUNTRIES, default_registry
from repro.netsim.network import World
from repro.netsim.rdns import RDNSStyle
from repro.netsim.servers import Deployment, Organization, PoP, ServingPolicy
from repro.netsim.traceroute import TracerouteBlocking
from repro.policy.registry import PolicyRegistry, default_policy_registry
from repro.web.catalog import SiteCatalog
from repro.worldgen.datacenters import datacenter_city, volunteer_city
from repro.worldgen.lists_gen import build_directory, build_filter_lists
from repro.worldgen.orgs_data import all_org_specs
from repro.worldgen.orgspec import OrgKind, OrgSpec
from repro.worldgen.profiles import PROFILES, CountryProfile
from repro.worldgen.sites import (
    FOREIGN_HOSTING_ANCHORS,
    GeneratedSite,
    generate_country_sites,
    generate_global_sites,
)

__all__ = ["Scenario", "build_scenario", "TRACEROUTE_BLOCKED_COUNTRIES"]

#: Countries whose volunteers' traceroute probes all failed (section 4.1.1).
TRACEROUTE_BLOCKED_COUNTRIES = frozenset({"AU", "IN", "QA", "JO"})

#: Background rate at which home-connection traceroutes never complete.
_VOLUNTEER_UNREACHABLE_RATE = 0.30


@dataclass
class Scenario:
    """Everything a study run needs, fully constructed."""

    world: World
    catalog: SiteCatalog
    profiles: Dict[str, CountryProfile]
    volunteers: Dict[str, Volunteer]
    targets: Dict[str, TargetList]
    identifier: TrackerIdentifier
    directory: OrganizationDirectory
    party_classifier: PartyClassifier
    ipmap: IPMapService
    ipinfo: IPInfoService
    atlas: AtlasMeasurementService
    stats: StatsChain
    policy: PolicyRegistry
    browser_config: BrowserConfig
    tranco: TrancoLikeList
    providers: Dict[str, CatalogRankingProvider]
    target_builder: TargetListBuilder
    filter_list_texts: Dict[str, str] = field(default_factory=dict)
    org_specs: Dict[str, OrgSpec] = field(default_factory=dict)

    @property
    def countries(self) -> List[str]:
        return sorted(self.volunteers)


def _build_deployment(world: World, spec: OrgSpec, cloud_asns: Dict[str, int]) -> None:
    """Instantiate one org spec as AS + PoPs + deployment + rDNS style."""
    own_as = world.asns.register(
        f"{spec.name.upper().replace(' ', '-')}-NET", spec.name, spec.home,
        is_cloud=(spec.kind == OrgKind.CLOUD),
    )
    if spec.kind == OrgKind.CLOUD:
        cloud_asns[spec.name] = own_as.asn
        world.add_organization(Organization(
            name=spec.name, home_country=spec.home, domains=spec.domains,
            is_tracker=False, is_cloud=True,
        ))
        world.rdns.set_style(spec.name, RDNSStyle(
            apex=spec.rdns_apex, coverage=spec.rdns_coverage, hinted=spec.rdns_hinted,
        ))
        return

    pops: List[PoP] = []
    for pop_cc in spec.pops:
        city = datacenter_city(world.geo, pop_cc)
        cloud_org = spec.cloud_pops.get(pop_cc)
        if cloud_org is not None:
            label = f"{cloud_org}/{spec.name}-{pop_cc.lower()}"
            hosting_asn = cloud_asns[cloud_org]
        else:
            label = f"{spec.name}/{pop_cc.lower()}1"
            hosting_asn = own_as.asn
        allocation = world.ips.allocate(hosting_asn, city, label=label)
        pops.append(PoP(
            org_name=spec.name, name=f"{pop_cc.lower()}1", city=city,
            allocation=allocation, hosting_asn=hosting_asn,
        ))

    policy = ServingPolicy(
        restricted={cc: set(clients) for cc, clients in spec.restricted.items()},
        preferences=dict(spec.preferences),
        pinned=dict(spec.pinned),
    )
    org = Organization(
        name=spec.name, home_country=spec.home, domains=spec.domains,
        is_tracker=spec.is_tracker,
    )
    world.add_deployment(Deployment(org=org, pops=pops, policy=policy))
    world.rdns.set_style(spec.name, RDNSStyle(
        apex=spec.rdns_apex or f"{spec.name.lower().replace(' ', '')}.net",
        coverage=spec.rdns_coverage,
        hinted=spec.rdns_hinted,
    ))


def _build_hosting_org(world: World, name: str, country_code: str) -> Deployment:
    """A web-hosting deployment with one local PoP."""
    asys = world.asns.register(f"{name.upper()}-AS", name, country_code)
    city = datacenter_city(world.geo, country_code)
    allocation = world.ips.allocate(asys.asn, city, label=f"{name}/{country_code.lower()}1")
    org = Organization(name=name, home_country=country_code, domains=(f"{name.lower()}.net",))
    deployment = Deployment(
        org=org,
        pops=[PoP(org_name=name, name=f"{country_code.lower()}1", city=city,
                  allocation=allocation, hosting_asn=asys.asn)],
    )
    world.add_deployment(deployment)
    world.rdns.set_style(name, RDNSStyle(
        apex=f"{name.lower()}.net", coverage=0.6, hinted=True, role="web",
    ))
    return deployment


def build_scenario(
    seed: str = "imc2025",
    countries: Optional[List[str]] = None,
    geo_errors: Optional[GeoErrorModel] = None,
) -> Scenario:
    """Construct the full calibrated scenario.

    *countries* restricts the study to a subset (useful for fast tests);
    defaults to all 23 measurement countries.
    """
    if countries is None:
        countries = list(MEASUREMENT_COUNTRIES)
    unknown = set(countries) - set(MEASUREMENT_COUNTRIES)
    if unknown:
        raise ValueError(f"not measurement countries: {sorted(unknown)}")

    registry = default_registry()
    world = World(
        geo=registry,
        traceroute_blocking=TracerouteBlocking(
            blocked_source_countries=set(TRACEROUTE_BLOCKED_COUNTRIES),
            unreachable_rate=_VOLUNTEER_UNREACHABLE_RATE,
        ),
    )

    # 1. Organisations and their deployments.
    specs = {spec.name: spec for spec in all_org_specs()}
    cloud_asns: Dict[str, int] = {}
    for spec in all_org_specs():
        if spec.kind == OrgKind.CLOUD:
            _build_deployment(world, spec, cloud_asns)
    for spec in all_org_specs():
        if spec.kind != OrgKind.CLOUD:
            _build_deployment(world, spec, cloud_asns)

    # 2. Hosting deployments: one local per measurement country + anchors.
    hosting: Dict[str, Deployment] = {}
    for cc in MEASUREMENT_COUNTRIES:
        hosting[f"Hosting-{cc}"] = _build_hosting_org(world, f"Hosting-{cc}", cc)
    for anchor_cc, name in FOREIGN_HOSTING_ANCHORS.items():
        if name not in hosting:
            hosting[name] = _build_hosting_org(world, name, anchor_cc)

    # 3. Volunteer access networks.
    volunteer_ips: Dict[str, str] = {}
    for cc in MEASUREMENT_COUNTRIES:
        asys = world.asns.register(f"{cc}-TELECOM", f"{cc} Telecom", cc)
        city = volunteer_city(registry, cc)
        allocation = world.ips.allocate(asys.asn, city, label=f"{cc}-Telecom/access")
        volunteer_ips[cc] = str(allocation.address(10))

    # 4. The web.
    profiles = {cc: PROFILES[cc] for cc in MEASUREMENT_COUNTRIES}
    catalog = SiteCatalog()
    generated: List[GeneratedSite] = []
    for cc in MEASUREMENT_COUNTRIES:
        generated.extend(generate_country_sites(profiles[cc], registry, specs))
    generated.extend(generate_global_sites(profiles, specs))
    for item in generated:
        catalog.add(item.website)
        serving = world.deployments.get(item.hosting_org) or hosting.get(item.hosting_org)
        if serving is None:
            raise ValueError(f"no deployment for hosting org {item.hosting_org}")
        # Global platform sites' own domains are already registered via
        # their owning org's deployment.
        if item.website.domain not in serving.org.domains:
            world.dns.register(item.website.domain, serving)

    # 5. Target-list machinery.
    similarweb = CatalogRankingProvider(
        "similarweb", catalog, noise=4.0,
        missing_countries=("RW", "UG", "LB", "DZ", "AZ"),
    )
    # Noise levels calibrated so top-50 agreement with the similarweb-like
    # reference lands near the paper's 65 % (semrush) and 48 % (ahrefs).
    semrush = CatalogRankingProvider("semrush", catalog, noise=520.0)
    ahrefs = CatalogRankingProvider("ahrefs", catalog, noise=1600.0, score_cap=380.0)
    tranco = TrancoLikeList.from_catalog(catalog, coverage=0.85)
    target_builder = TargetListBuilder(registry, catalog, similarweb, semrush, tranco)
    targets = target_builder.build_all(countries)

    # 6. Identification.
    global_lists, regional_lists, texts = build_filter_lists(all_org_specs())
    directory = build_directory(all_org_specs())
    identifier = TrackerIdentifier(global_lists, regional_lists, directory)

    # 7. Measurement services.
    mesh = ProbeMesh(registry)
    atlas = AtlasMeasurementService(world, mesh)
    ipmap = IPMapService(world, geo_errors or GeoErrorModel(seed=f"{seed}:ipmap"))
    ipinfo = IPInfoService(world)
    stats = default_stats_chain(world.latency, registry)

    # 8. Volunteers (one per country; opt-outs drawn from their targets).
    volunteers: Dict[str, Volunteer] = {}
    for cc in countries:
        profile = profiles[cc]
        opted_out = set()
        if profile.opt_out_sites > 0:
            rng = stable_rng(seed, "optout", cc)
            pool = sorted(targets[cc].all_sites)
            opted_out = set(rng.sample(pool, min(profile.opt_out_sites, len(pool))))
        volunteers[cc] = Volunteer(
            name=f"vol-{cc}",
            city=volunteer_city(registry, cc),
            ip=volunteer_ips[cc],
            os_name=profile.volunteer_os,
            opted_out_sites=opted_out,
            traceroute_opt_out=profile.traceroute_opt_out,
        )

    browser_config = BrowserConfig(
        failure_rates={cc: profiles[cc].load_failure_rate for cc in MEASUREMENT_COUNTRIES},
        default_failure_rate=0.08,
    )

    return Scenario(
        world=world,
        catalog=catalog,
        profiles=profiles,
        volunteers=volunteers,
        targets=targets,
        identifier=identifier,
        directory=directory,
        party_classifier=PartyClassifier(directory),
        ipmap=ipmap,
        ipinfo=ipinfo,
        atlas=atlas,
        stats=stats,
        policy=default_policy_registry(),
        browser_config=browser_config,
        tranco=tranco,
        providers={"similarweb": similarweb, "semrush": semrush, "ahrefs": ahrefs},
        target_builder=target_builder,
        filter_list_texts=texts,
        org_specs=specs,
    )
